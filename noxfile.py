"""Nox sessions: lint and test gates, mirrored by .github/workflows/ci.yml.

Run `nox -s lint` / `nox -s tests`, or the same commands directly:

    ruff check src tests
    ruff format --check src tests
    mypy src/repro/schedules src/repro/nn
    mypy --strict src/repro/analysis
    mypy --strict src/repro/analysis/evaluate
    mypy --strict src/repro/analysis/capacity
    mypy --strict src/repro/obs
    mypy --strict src/repro/pipeline
    mypy --strict src/repro/api src/repro/service
    mypy --strict src/repro/schedules/greedy.py src/repro/schedules/gencache.py src/repro/schedules/graph.py
    mypy --strict src/repro/analysis/evaluate/batch.py src/repro/planner/pool.py
    PYTHONPATH=src python -m pytest -x -q
    python -m repro check-model grid
"""

import nox

nox.options.sessions = [
    "lint", "analysis", "evaluate", "batch", "capacity", "generate", "obs",
    "pipeline", "service", "tests",
]

#: Tool configuration lives in pyproject.toml ([tool.ruff], [tool.mypy]).
LINT_TARGETS = ("src", "tests")
TYPED_TARGETS = ("src/repro/schedules", "src/repro/nn")


@nox.session
def lint(session: nox.Session) -> None:
    """Static checks: ruff lint + format drift + mypy on the typed layers."""
    session.install("-e", ".[lint]")
    session.run("ruff", "check", *LINT_TARGETS)
    session.run("ruff", "format", "--check", *LINT_TARGETS)
    session.run("mypy", *TYPED_TARGETS)


@nox.session
def analysis(session: nox.Session) -> None:
    """The model-analyzer gate: strict typing plus the acceptance grid.

    ``check-model grid`` proves shape/interface agreement, gradient
    coverage, and hazard freedom for every E0 (method × partition)
    pair; it exits non-zero on any ERROR-severity finding.
    """
    session.install("-e", ".[lint]")
    session.run("mypy", "--strict", "src/repro/analysis")
    session.run("python", "-m", "repro", "check-model", "grid")


@nox.session
def evaluate(session: nox.Session) -> None:
    """The analytic-evaluator gate: strict typing plus its proof suite.

    The evaluator's claim is bit-for-bit agreement with the event
    simulator; the gate runs the engine golden tests (all three sim
    engines), the evaluator's exactness/bounds/tiering suite, and the
    seeded EV-rule mutation tests.
    """
    session.install("-e", ".[test,lint]")
    session.run("mypy", "--strict", "src/repro/analysis/evaluate")
    session.run(
        "python", "-m", "pytest", "-x", "-q",
        "tests/test_engine_golden.py",
        "tests/test_evaluate.py",
        "tests/test_evaluate_mutations.py",
    )


@nox.session
def batch(session: nox.Session) -> None:
    """The batched-sweep gate: strict typing plus its proof suite.

    The batched analytic tier's claim is bit-for-bit agreement with the
    scalar evaluator over every topology class (one stacked max-plus
    pass per class); the gate runs the golden bit-identity grid, the
    seeded cost-row/class-key mutation tests, and the persistent
    worker-pool lifecycle suite, under strict typing for the batch
    evaluator and the pool.
    """
    session.install("-e", ".[test,lint]")
    session.run(
        "mypy", "--strict",
        "src/repro/analysis/evaluate/batch.py",
        "src/repro/planner/pool.py",
    )
    session.run(
        "python", "-m", "pytest", "-x", "-q",
        "tests/test_evaluate_batch.py",
        "tests/test_batch_mutations.py",
        "tests/test_planner_pool.py",
    )


@nox.session
def capacity(session: nox.Session) -> None:
    """The capacity-analyzer gate: strict typing plus its proof suite.

    The analyzer's claims are soundness (bounded sim at the inferred
    deadlock-free capacities completes, or a CP001 witness names the
    saturated channel) and exactness (bounded analytic replay ==
    bounded event sim, bit for bit); the gate runs the grid soundness
    suite, the seeded CP-rule mutation tests, and strict typing over
    the pass plus the pipeline modules it gates.
    """
    session.install("-e", ".[test,lint]")
    session.run("mypy", "--strict", "src/repro/analysis/capacity",
                "src/repro/pipeline")
    session.run(
        "python", "-m", "pytest", "-x", "-q",
        "tests/test_capacity.py",
        "tests/test_capacity_mutations.py",
    )


@nox.session
def generate(session: nox.Session) -> None:
    """The schedule-generation gate: strict typing plus its proof suite.

    The array-native greedy engine's claim is byte-identical output to
    the preserved reference engine; the gate runs the golden-equivalence
    grid, the seeded tiebreak/epsilon mutation tests, and the
    generation-cache identity/aliasing suite.
    """
    session.install("-e", ".[test,lint]")
    session.run(
        "mypy", "--strict",
        "src/repro/schedules/greedy.py",
        "src/repro/schedules/gencache.py",
        "src/repro/schedules/graph.py",
    )
    session.run(
        "python", "-m", "pytest", "-x", "-q",
        "tests/test_greedy_golden.py",
        "tests/test_gencache.py",
    )


@nox.session
def obs(session: nox.Session) -> None:
    """The telemetry-bus gate: strict typing plus the obs/facade tests.

    ``repro.obs`` is the observability contract every substrate emits
    through; it is held to ``mypy --strict`` and its test module covers
    span nesting, JSONL round-trips, the Chrome-trace golden, and
    sim-vs-runtime trace alignment.
    """
    session.install("-e", ".[test,lint]")
    session.run("mypy", "--strict", "src/repro/obs")
    session.run(
        "python", "-m", "pytest", "-x", "-q",
        "tests/test_obs.py", "tests/test_api.py",
    )


@nox.session
def pipeline(session: nox.Session) -> None:
    """The parallel-executor gate: strict typing plus a spawn smoke run.

    The multi-process runtime is where process lifecycles, shared
    memory, and timeouts live; its tests prove bit-exactness against
    the serial golden runtime, measured comm/wgrad overlap, and clean
    failure (no orphan workers, no leaked segments).
    """
    session.install("-e", ".[test,lint]")
    session.run("mypy", "--strict", "src/repro/pipeline")
    session.run(
        "python", "-m", "pytest", "-x", "-q", "tests/test_parallel_runtime.py"
    )


@nox.session
def service(session: nox.Session) -> None:
    """The service gate: strict typing plus the wire-surface tests.

    ``repro.api`` is the typed request/response facade every transport
    (CLI, HTTP, library) shares and ``repro.service`` is the asyncio
    job/HTTP layer on top; both are held to ``mypy --strict``.  The
    test modules cover canonical round-trips, fingerprint dedup (32
    concurrent identical requests -> one computation), SSE progress
    streams, per-tenant quotas, and structured timeout errors.
    """
    session.install("-e", ".[test,lint]")
    session.run("mypy", "--strict", "src/repro/api", "src/repro/service")
    session.run(
        "python", "-m", "pytest", "-x", "-q",
        "tests/test_service.py", "tests/test_api.py",
    )


@nox.session
def tests(session: nox.Session) -> None:
    """The tier-1 test suite (unit + integration + property tests)."""
    session.install("-e", ".[test]")
    session.run("python", "-m", "pytest", "-x", "-q", *session.posargs)
