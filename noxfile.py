"""Nox sessions: lint and test gates, mirrored by .github/workflows/ci.yml.

Run `nox -s lint` / `nox -s tests`, or the same commands directly:

    ruff check src tests
    ruff format --check src tests
    mypy src/repro/schedules
    PYTHONPATH=src python -m pytest -x -q
"""

import nox

nox.options.sessions = ["lint", "tests"]

#: Tool configuration lives in pyproject.toml ([tool.ruff], [tool.mypy]).
LINT_TARGETS = ("src", "tests")
TYPED_TARGETS = ("src/repro/schedules",)


@nox.session
def lint(session: nox.Session) -> None:
    """Static checks: ruff lint + format drift + mypy on the schedules layer."""
    session.install("-e", ".[lint]")
    session.run("ruff", "check", *LINT_TARGETS)
    session.run("ruff", "format", "--check", *LINT_TARGETS)
    session.run("mypy", *TYPED_TARGETS)


@nox.session
def tests(session: nox.Session) -> None:
    """The tier-1 test suite (unit + integration + property tests)."""
    session.install("-e", ".[test]")
    session.run("python", "-m", "pytest", "-x", "-q", *session.posargs)
