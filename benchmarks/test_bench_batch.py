"""Bench: batched sweep planning vs the per-cell planner it replaced.

Two claims, two grains:

* **Stacked pass** — ``evaluate_schedule_batch`` over one topology
  class (the largest 13B MEPipe cell, K=8 cost variants) must beat the
  equivalent ``evaluate_schedule`` loop, with bit-identical floats.
  The stacked recurrence amortizes the per-level Python dispatch over
  all members, so the win grows with K but is modest at this scale —
  the floor is deliberately conservative (the measured ratio on a
  quiet machine is ~1.25x at K=8).
* **End-to-end sweep** — the full Figure 10 sweep under the new
  defaults (grid evaluator, topology-class structure sharing, dense
  structure verification, dirty-channel FIFO checking, persistent
  pool) must beat the same sweep with every one of those reverted to
  its per-cell predecessor.  Each leg runs in its own interpreter so
  both are true cold starts.

Both grains time min-of-reps: evaluation is deterministic, so the
minimum is the least noisy estimator on a shared machine.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis.evaluate import evaluate_schedule, evaluate_schedule_batch
from repro.schedules.base import PipelineProblem
from repro.schedules.svpp import mepipe_schedule
from repro.sim.cost import UniformCost

REPS = 7
#: Stacked-pass floor at K=8 on the 18k-op cell; measured ~1.25x.
MIN_BATCH_SPEEDUP = 1.1
#: End-to-end sweep floor vs the per-cell planner; measured ~1.5x.
MIN_SWEEP_SPEEDUP = 1.4

#: The largest 13B MEPipe cell of the Figure 10 grid (~18k ops).
PROBLEM = PipelineProblem(
    num_stages=8, num_microbatches=32, num_slices=8, virtual_size=1,
    split_backward=True, wgrad_gemms=2,
)
K = 8


def _class_members():
    """One topology class: one structure, K distinct cost tables."""
    base = UniformCost(PROBLEM, tf=1.0, tb=2.0, tw=1.0)
    schedule = mepipe_schedule(PROBLEM, cost=base)
    costs = [
        UniformCost(PROBLEM, tf=1.0 + 0.05 * i, tb=2.0 + 0.1 * i, tw=1.0)
        for i in range(K)
    ]
    return [schedule] * K, costs


def interleaved_min_of(fn_a, fn_b, reps=REPS):
    """Min-of-reps for two callables, alternating them each round.

    Alternation means background load on a shared machine degrades both
    measurements alike instead of landing on whichever path happened to
    be timed second, which is what keeps the asserted *ratio* stable
    under noise.
    """
    best_a = best_b = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def test_bench_batch_stacked_pass_speedup(benchmark):
    schedules, costs = _class_members()
    overheads = [0.0] * K

    def batched():
        return evaluate_schedule_batch(schedules, costs, overheads)

    def scalar_loop():
        return [
            evaluate_schedule(s, c) for s, c in zip(schedules, costs)
        ]

    # Warm the shared structure (plan, gather tables, verification
    # verdict) both paths tap, and check the bit-identity claim the
    # speedup rides on — the full field-by-field gate lives in
    # tests/test_evaluate_batch.py.
    for got, want in zip(batched(), scalar_loop()):
        assert got.makespan == want.makespan
        assert np.array_equal(got.times.start, want.times.start)
        assert np.array_equal(got.times.end, want.times.end)

    # Up to three measurement attempts: a burst of unrelated machine
    # load can still skew one round of mins, and the claim under test
    # is the path ratio, not the machine's quietness.
    for _ in range(3):
        loop_s, batch_s = interleaved_min_of(scalar_loop, batched)
        if loop_s >= MIN_BATCH_SPEEDUP * batch_s:
            break
    # Record the batched path under the regression gate.
    benchmark.pedantic(batched, rounds=REPS, iterations=1, warmup_rounds=1)
    assert loop_s >= MIN_BATCH_SPEEDUP * batch_s, (
        f"K={K} stacked pass {batch_s * 1e3:.1f} ms vs scalar loop "
        f"{loop_s * 1e3:.1f} ms is below the {MIN_BATCH_SPEEDUP:.1f}x floor"
    )


#: Each fig10 leg runs in its own interpreter so neither pollutes (or
#: borrows) this process's schedule memo, generation cache, structure
#: store, or planner pool — both legs are true cold starts, and the
#: rest of the benchmark suite keeps its warm state.
_FIG10_LEG = """\
import time
{prelude}
from repro.experiments import fig10
t0 = time.perf_counter()
report = fig10.run()
assert report.rows
print("SECONDS", time.perf_counter() - t0)
"""

#: Revert every batched-sweep mechanism to its per-cell predecessor:
#: tiered (cell-at-a-time) evaluator, per-sweep worker pools, no
#: structure store, cold prelude per call, Kahn re-run per graph, full
#: op-tuple materialization before cost probing, and the per-edge
#: Python channel walk.  This is the planner as it stood before the
#: batched-sweep work, expressed as monkeypatches so both legs ship
#: identical generation/simulation code.
_PER_CELL_PRELUDE = """\
import repro.planner.search as search_mod
search_mod.DEFAULT_EVALUATOR = "tiered"
from repro.planner import pool
pool.set_mode("per-sweep")
import repro.planner.evaluate as ev
ev._prelude = ev._prelude.__wrapped__
from repro.schedules import gencache
gencache.get_structure = lambda key: None
gencache.put_structure = lambda key, value: None
import repro.schedules.verify.deps as deps
import repro.schedules.graph as graph_mod
deps._dense_structure_clean = lambda schedule: None
deps.toposort_plan = graph_mod.build_topo_plan
import repro.analysis.evaluate.dense as dense_mod
_cost_arrays = dense_mod.op_cost_arrays
def _per_cell_cost_arrays(graph, cost):
    graph.ops  # the per-cell planner materialized the op tuple up front
    return _cost_arrays(graph, cost)
dense_mod.op_cost_arrays = _per_cell_cost_arrays
import repro.schedules.verify.channels as channels_mod
def _per_cell_channels_from_graph(graph):
    ops, stage, pos, kind = graph.ops, graph.stage, graph.pos, graph.kind
    pred_indptr, pred = graph.pred_indptr, graph.pred
    pred_cross = graph.pred_cross
    channels = {}
    for i in range(graph.num_ops):
        for e in range(pred_indptr[i], pred_indptr[i + 1]):
            if not pred_cross[e]:
                continue
            j = pred[e]
            key = (stage[j], stage[i], channels_mod._KIND_OF_CODE[kind[j]])
            channels.setdefault(key, []).append(
                channels_mod._Message(ops[j], ops[i], pos[j], pos[i]))
    return channels
channels_mod._channels_from_graph = _per_cell_channels_from_graph
"""


def _fig10_seconds(prelude: str) -> float:
    env = {
        k: v for k, v in os.environ.items()
        if not k.startswith("REPRO_")
    }
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _FIG10_LEG.format(prelude=prelude)],
        env=env, capture_output=True, text=True, check=True,
    )
    for line in proc.stdout.splitlines():
        if line.startswith("SECONDS "):
            return float(line.split()[1])
    raise AssertionError(f"no timing line in fig10 leg output: {proc.stdout}")


def test_bench_fig10_batched_sweep_speedup(benchmark):
    """The full Figure 10 sweep under the batched-sweep defaults must
    beat the same sweep with every mechanism reverted to its per-cell
    predecessor (both legs cold, each in its own interpreter)."""
    fast_box = {}

    def fast_leg():
        fast_box["s"] = _fig10_seconds("")

    # The recorded gate number includes interpreter startup; the
    # asserted ratio uses the in-leg measurement, which does not.
    benchmark.pedantic(fast_leg, rounds=1, iterations=1, warmup_rounds=0)
    fast_s = fast_box["s"]
    cell_s = _fig10_seconds(_PER_CELL_PRELUDE)
    if cell_s < MIN_SWEEP_SPEEDUP * fast_s:
        # One retry of each leg: a ~20 s leg is a wide window for a
        # burst of unrelated load to land in, and the mins are what
        # the ratio claim is about.
        fast_s = min(fast_s, _fig10_seconds(""))
        cell_s = min(cell_s, _fig10_seconds(_PER_CELL_PRELUDE))

    print(f"\nfig10 sweep: per-cell {cell_s:.2f}s, batched {fast_s:.2f}s, "
          f"speedup {cell_s / fast_s:.2f}x")
    assert cell_s >= MIN_SWEEP_SPEEDUP * fast_s, (
        f"fig10 end-to-end: per-cell {cell_s:.2f}s vs batched {fast_s:.2f}s "
        f"is below the {MIN_SWEEP_SPEEDUP:.2f}x floor"
    )
