"""Bench the capacity analyzer: inference speed and the shm it saves.

Three claims ride the regression gate, each with a conservative
asserted budget and the measured number printed for the record:

* minimal ring-size inference per compiled graph — the parallel
  runtime's spawn-gate path (``infer_capacities`` without a cost
  model, structural tables cached on the graph) — is sub-millisecond
  on an E0-scale schedule (~320 ops; measured ~50 us, asserted
  < 1 ms);
* the full certified plan (both capacity vectors plus the bounded
  max-plus replay, unbounded times precomputed as in a planner cell)
  and the cost-free CP001/CP002 spawn-gate check each stay within a
  few milliseconds (asserted < 5 ms amortized);
* sizing rings at the inferred deadlock-free capacities shrinks the
  parallel runtime's shared-memory footprint versus the pre-analysis
  one-slot-per-message sizing, across the whole E0 grid.
"""

import time

from repro.analysis.capacity import check_capacities, infer_capacities
from repro.analysis.evaluate.dense import dense_schedule_times
from repro.data import token_batches
from repro.model import tiny_spec
from repro.nn import build_model
from repro.pipeline import ParallelPipelineRuntime
from repro.schedules.graph import compiled_graph
from repro.schedules.methods import build_problem, build_schedule
from repro.sim.cost import UniformCost


def subject():
    """E0-scale subject: mepipe p=4 n=8 s=4 g=3 — 320 ops, 10 channels."""
    problem = build_problem("mepipe", 4, 8, num_slices=4, wgrad_gemms=3)
    schedule = build_schedule("mepipe", problem)
    return schedule, UniformCost(problem, tw=0.5)


GRID = [
    ("dapple", {}),
    ("terapipe", {"num_slices": 4}),
    ("vpp", {"virtual_size": 2}),
    ("zb", {}),
    ("zbv", {}),
    ("svpp", {"num_slices": 4, "virtual_size": 2}),
    ("mepipe", {"num_slices": 4, "wgrad_gemms": 3}),
]

#: Asserted amortized budgets.  Measured on this runner: ~50 us for the
#: spawn-gate inference, ~0.4-0.7 ms for the spawn-gate check, ~0.8-1.5
#: ms for the full certified plan; budgets leave >= 3x headroom.
GATE_BUDGET_S = 1e-3
PLAN_BUDGET_S = 5e-3
ROUNDS = 50


def _amortized(fn):
    t0 = time.perf_counter()
    for _ in range(ROUNDS):
        out = fn()
    return (time.perf_counter() - t0) / ROUNDS, out


def test_bench_capacity_spawn_gate_inference(once):
    """Ring-size inference on the runtime spawn path is sub-ms."""
    schedule, _cost = subject()
    infer_capacities(schedule)  # warm the per-graph structural cache

    per_graph, plan = once(lambda: _amortized(
        lambda: infer_capacities(schedule)
    ))
    print(f"\nspawn-gate inference: {per_graph * 1e6:.0f} us/graph")
    assert per_graph < GATE_BUDGET_S
    caps = plan.capacities("deadlock-free")
    assert caps and all(k >= 1 for k in caps.values())


def test_bench_capacity_spawn_gate_check(once):
    """The cost-free CP001/CP002 certification guarding worker spawn."""
    schedule, _cost = subject()
    caps = infer_capacities(schedule).capacities("deadlock-free")

    per_graph, report = once(lambda: _amortized(
        lambda: check_capacities(schedule, capacities=caps)
    ))
    print(f"\nspawn-gate check: {per_graph * 1e6:.0f} us/graph")
    assert per_graph < PLAN_BUDGET_S
    assert report.ok


def test_bench_capacity_certified_plan(once):
    """The planner-cell path: full plan with unbounded times in hand."""
    schedule, cost = subject()
    graph = compiled_graph(schedule)
    times = dense_schedule_times(graph, cost)
    infer_capacities(schedule, cost, times=times)  # warm

    per_graph, plan = once(lambda: _amortized(
        lambda: infer_capacities(schedule, cost, times=times)
    ))
    print(f"\ncertified plan: {per_graph * 1e6:.0f} us/graph")
    assert per_graph < PLAN_BUDGET_S
    assert plan.backpressure_free_makespan == plan.unbounded_makespan


def test_bench_ring_footprint_savings(once):
    """Inferred capacities shrink every E0 grid config's shm rings."""
    spec = tiny_spec(hidden_size=32, num_layers=6, num_heads=4,
                     ffn_hidden_size=64, vocab_size=31, seq_length=16)
    tokens, targets = token_batches(spec.vocab_size, 4, 2, spec.seq_length,
                                    seed=5)
    runtime = ParallelPipelineRuntime(build_model(spec, seed=11),
                                      tokens, targets)

    def plan_grid():
        rows = []
        for method, kwargs in GRID:
            problem = build_problem(method, 4, 4, **kwargs)
            schedule = build_schedule(method, problem)
            _, auto_bytes = runtime.plan_channels(schedule,
                                                  capacity_mode="auto")
            _, full_bytes = runtime.plan_channels(schedule,
                                                  capacity_mode="full")
            rows.append((schedule.name, auto_bytes, full_bytes))
        return rows

    rows = once(plan_grid)
    total_auto = sum(a for _, a, _ in rows)
    total_full = sum(f for _, _, f in rows)
    saving = 1.0 - total_auto / total_full
    print(f"\nshm rings: {total_auto} B capacity-sized vs "
          f"{total_full} B full ({saving:.0%} saved)")
    for name, auto_bytes, full_bytes in rows:
        assert 0 < auto_bytes < full_bytes, name
    # The grid-wide saving is structural (ring slots drop from one per
    # message to the small inferred bound), not a measurement artifact.
    assert saving > 0.5
