"""Planner-service benchmarks: request latency and dedup throughput.

Times the full wire path — stdlib HTTP client, asyncio parser/router,
job store, handler execution on the worker pool — for the scenarios
the service exists to serve: cheap synchronous analytics (warm p99),
planner sweeps cold vs warm through the shared sweep cache, and a
32-way burst of identical plan requests deduplicated onto one
computation.  Medians ride the same 20% regression gate as every other
benchmark (``benchmarks/compare.py``).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from repro.api import EvaluateRequest, PlanRequest, ShapeSpec
from repro.service import PlannerService, ServiceClient, ServiceConfig

PLAN = PlanRequest(
    model="13b", global_batch_size=32, methods=("mepipe",), max_spp=4
)


class _Server:
    """A planner service on a daemon thread with its own loop."""

    def __init__(self, config: ServiceConfig) -> None:
        self.service = PlannerService(config)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.service.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10.0)

    def client(self) -> ServiceClient:
        return ServiceClient(self.service.address)

    def shutdown(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.service.stop(), self.loop
        ).result(30.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10.0)
        self.loop.close()


def _serve(tmp_path, monkeypatch, **config_kwargs) -> _Server:
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sweep-cache"))
    return _Server(
        ServiceConfig(port=0, request_timeout_s=60.0, **config_kwargs)
    )


def test_bench_service_evaluate_warm_p99(once, tmp_path, monkeypatch):
    """50 sequential evaluate requests over HTTP, after one warm-up.

    The benchmarked value is the whole batch; the p99 (here: worst) of
    the per-request latencies is asserted to stay interactive.
    """
    server = _serve(tmp_path, monkeypatch)
    try:
        client = server.client()
        request = EvaluateRequest(
            method="mepipe", shape=ShapeSpec(slices=4, wgrad_gemms=3)
        )
        assert client.request(request).ok  # warm-up (imports, first GC)

        def batch() -> list[float]:
            latencies = []
            for _ in range(50):
                t0 = perf_counter()
                response = client.request(request)
                latencies.append(perf_counter() - t0)
                assert response.ok
            return latencies

        latencies = once(batch)
        latencies.sort()
        p99 = latencies[int(0.99 * (len(latencies) - 1))]
        assert p99 < 2.0, f"warm evaluate p99 {p99:.3f}s is not interactive"
    finally:
        server.shutdown()


def test_bench_service_plan_cold_then_warm(once, tmp_path, monkeypatch):
    """A real sweep cold, then the identical sweep warm.

    The second request replays from the on-disk sweep cache the service
    shares across requests, so warm must beat cold.
    """
    server = _serve(tmp_path, monkeypatch)
    try:
        client = server.client()

        def cold_then_warm() -> tuple[float, float]:
            t0 = perf_counter()
            first = client.request(PLAN)
            cold = perf_counter() - t0
            t1 = perf_counter()
            second = client.request(PLAN)
            warm = perf_counter() - t1
            assert first.methods[0]["best"] is not None
            assert first.methods == second.methods
            return cold, warm

        cold, warm = once(cold_then_warm)
        assert warm <= cold
    finally:
        server.shutdown()


def test_bench_service_pool_reuse_latency(once, tmp_path, monkeypatch):
    """Parallel plan requests on the persistent worker pool vs a fresh
    pool per sweep.

    ``jobs=2`` routes each sweep through the planner process pool; in
    ``"per-sweep"`` mode (the historical behavior) every request pays
    pool spawn + teardown, while the default ``"persistent"`` mode pays
    it once at warm-up and then reuses live, cache-warm workers.  Both
    modes are timed min-of-reps on the same server, per-sweep first so
    mode switching (which disposes the shared pool) never lands a cold
    spawn inside the persistent measurement.
    """
    from repro.planner import pool

    plan = PlanRequest(
        model="13b", global_batch_size=32, methods=("mepipe",),
        max_spp=4, jobs=2, use_cache=False,
    )
    server = _serve(tmp_path, monkeypatch, use_cache=False)
    try:
        client = server.client()

        def timed_request() -> float:
            t0 = perf_counter()
            response = client.request(plan)
            assert response.methods[0]["best"] is not None
            return perf_counter() - t0

        def min_of(reps: int) -> float:
            return min(timed_request() for _ in range(reps))

        # Up to three measurement attempts, re-warming each mode before
        # its mins: the claim is the mode ratio, not machine quietness.
        for _ in range(3):
            pool.set_mode("per-sweep")
            per_sweep = min_of(5)
            pool.set_mode("persistent")
            timed_request()  # warm-up: spawn the persistent pool
            persistent = min_of(5)
            if persistent < per_sweep:
                break

        # Record the persistent path under the regression gate.
        once(timed_request)
        assert persistent < per_sweep, (
            f"persistent pool {persistent * 1e3:.0f} ms per request is not "
            f"below per-sweep pools {per_sweep * 1e3:.0f} ms"
        )
    finally:
        pool.set_mode(None)
        server.shutdown()


def test_bench_service_dedup_burst_throughput(once, tmp_path, monkeypatch):
    """32 concurrent identical plan requests -> one computation.

    Times the dedup fast path end to end: 31 of the 32 callers attach
    to the in-flight job and share its result.
    """
    server = _serve(tmp_path, monkeypatch, use_cache=False)
    try:
        client = server.client()
        executed_before = server.service.store.executed

        def burst() -> list[str]:
            with ThreadPoolExecutor(max_workers=32) as pool:
                return list(
                    pool.map(
                        lambda _: client.request(PLAN).to_json(), range(32)
                    )
                )

        bodies = once(burst)
        assert len(set(bodies)) == 1
        assert server.service.store.executed == executed_before + 1
    finally:
        server.shutdown()
