"""Bench E-fig1: regenerate Figure 1 and check its headline claims."""

from repro.experiments import fig1


def test_bench_fig1(once):
    points = once(fig1.compute_points)
    by_label = {p.label: p for p in points}
    dapple = by_label["DAPPLE"]
    s4, s8 = by_label["SVPP s=4"], by_label["SVPP s=8"]
    # Section 1: >70% / >80% activation-memory reduction.
    assert 1 - s4.activation_gb / dapple.activation_gb > 0.70
    assert 1 - s8.activation_gb / dapple.activation_gb > 0.80
    # SVPP dominates the plane: the least memory of all series, and
    # both slice counts sit below every baseline's bubble ratio.
    for p in points:
        assert s8.activation_gb <= p.activation_gb + 1e-9
        if not p.label.startswith("SVPP"):
            assert s4.bubble_ratio < p.bubble_ratio
            assert s8.bubble_ratio < p.bubble_ratio
    print()
    print(fig1.run().render())
