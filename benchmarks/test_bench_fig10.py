"""Bench E-fig10/E-tab8: model-size sweep at GBS 128."""

from repro.experiments import fig10


def test_bench_fig10(once):
    report = once(fig10.run)
    print()
    print(report.render())

    rows = {(r[0], r[1]): r for r in report.rows}
    # 34B: only DAPPLE (with recomputation) and MEPipe survive; VPP,
    # ZB, and ZBV exceed 24 GB statics at their max pipeline depth
    # (Section 7.4 / Table 8).
    assert rows[("llama-34b", "vpp")][3] == "OOM"
    assert rows[("llama-34b", "zb")][3] == "OOM"
    assert rows[("llama-34b", "zbv")][3] == "OOM"
    dapple_34b = rows[("llama-34b", "dapple")]
    assert "yes" in dapple_34b[2]  # needs recomputation
    assert dapple_34b[2].startswith("(16")
    mepipe_34b = rows[("llama-34b", "mepipe")]
    assert mepipe_34b[2] == "(16, 16, 1, no)"  # the s=16 variant
    t_dapple = float(dapple_34b[3].split()[0])
    t_mepipe = float(mepipe_34b[3].split()[0])
    assert t_mepipe < t_dapple

    # MEPipe wins at every model size.
    for model in ("llama-7b", "llama-13b", "llama-34b"):
        mepipe = float(rows[(model, "mepipe")][3].split()[0])
        for method in ("dapple", "vpp", "zb", "zbv"):
            cell = rows[(model, method)][3]
            if cell != "OOM":
                assert mepipe < float(cell.split()[0]), (model, method)
