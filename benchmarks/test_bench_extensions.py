"""Benches for the Section 5 partitioning and Section 9 estimates."""

from repro.experiments import partitioning, section9


def test_bench_partitioning(once):
    report = once(partitioning.run)
    print()
    print(report.render())
    gains = [float(c.rstrip("%")) for c in report.column("balanced gain")]
    # Uniform is competitive at 4k; DP-balancing pays at long contexts.
    assert gains[0] < 1.0
    assert gains[-1] > 10.0
    assert gains == sorted(gains)


def test_bench_section9_reliability(once):
    report = once(section9.run_reliability)
    print()
    print(report.render())
    overheads = [float(c.rstrip("%")) for c in report.column("overhead")]
    assert overheads[1] < 5.0  # the paper's <5% with in-memory ckpt
    assert overheads == sorted(overheads, reverse=True)


def test_bench_section9_tco(once):
    report = once(section9.run_tco)
    print()
    print(report.render())
    parity = [float(c.split()[0]) for c in report.column("parity")]
    assert 20 < parity[1] < 30  # ~24 years at $0.1/kWh
    assert parity == sorted(parity, reverse=True)
