"""Benches E-tab2/3/6/7: regenerate Tables 2, 3, 6, and 7."""

from repro.experiments import tables23, tables67


def test_bench_table2(once):
    report = once(tables23.run_table2)
    comm = report.column("comm (MiB/layer/microbatch)")
    # TP > CP > PP in wire bytes at equal group size (Table 2 ranking).
    tp, cp, pp = float(comm[0]), float(comm[1]), float(comm[3])
    assert tp > cp > pp
    print()
    print(report.render())


def test_bench_table3(once):
    report = once(tables23.run_table3)
    for row in report.rows:
        formula_mem, sim_mem = float(row[3]), float(row[4])
        assert abs(formula_mem - sim_mem) < 1e-3
        formula_bub, sim_bub = float(row[1]), float(row[2])
        # Hanayo's wave schedule is a greedy approximation (DESIGN.md
        # "Known deviations"); the others track the closed form tightly.
        tolerance = 0.10 if row[0].startswith("hanayo") else 0.05
        assert abs(formula_bub - sim_bub) < tolerance, row
    print()
    print(report.render())


def test_bench_table6(once):
    report = once(tables67.run_table6)
    cells = report.column("iteration")
    assert cells[0] == "OOM"  # PP=2 does not fit 24 GB
    t4 = float(cells[1].split()[0])
    t8 = float(cells[2].split()[0])
    assert t8 < t4  # PP=8 beats PP=4 despite the larger bubble
    print()
    print(report.render())


def test_bench_table7(once):
    report = once(tables67.run_table7)
    times = [float(c.split()[0]) for c in report.column("iteration")]
    # CP=2 is the sweet spot: CP=1 pays bubbles, CP=4 pays communication.
    assert times[1] < times[0]
    assert times[1] < times[2]
    print()
    print(report.render())
