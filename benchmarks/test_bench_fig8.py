"""Bench E-fig8/E-tab5: Llama 13B end-to-end across global batch sizes."""

from repro.experiments import fig8


def test_bench_fig8(once):
    report = once(fig8.run)
    print()
    print(report.render())

    times: dict[tuple[int, str], float | None] = {}
    for row in report.rows:
        gbs, method, _cfg, cell = int(row[0]), row[1], row[2], row[3]
        times[(gbs, method)] = None if cell == "OOM" else float(cell.split()[0])

    for gbs in (32, 64, 128):
        mepipe = times[(gbs, "mepipe")]
        assert mepipe is not None
        baselines = [
            t for (g, m), t in times.items()
            if g == gbs and m != "mepipe" and t is not None
        ]
        best = min(baselines)
        speedup = best / mepipe
        # Paper: 1.86x / 1.49x / 1.36x; shape criterion: MEPipe always
        # wins, by a factor in the paper's range.
        assert speedup > 1.15, (gbs, speedup)
        assert speedup < 2.2, (gbs, speedup)
    # The gain grows as the batch shrinks (the large-cluster regime).
    s32 = min(t for (g, m), t in times.items()
              if g == 32 and m != "mepipe" and t) / times[(32, "mepipe")]
    s128 = min(t for (g, m), t in times.items()
               if g == 128 and m != "mepipe" and t) / times[(128, "mepipe")]
    assert s32 > s128


def test_bench_fig8_table5_configs(once):
    """The grid search rediscovers Table 5's configuration tuples."""
    cells = once(fig8.compute, batch_sizes=[128])
    by_method = {c.method: c.result.best for c in cells}
    dapple = by_method["dapple"].config
    assert (dapple.pp, dapple.cp, dapple.vp, dapple.recompute) == (8, 2, 1, False)
    zb = by_method["zb"].config
    assert (zb.pp, zb.cp) == (8, 4)
    mepipe = by_method["mepipe"].config
    assert (mepipe.pp, mepipe.spp, mepipe.recompute) == (8, 4, False)
