"""Bench the analytic evaluation tier against the sim tier.

The planner's first pass replaces ``assert_clean`` + event replay with
the certified closed-form evaluator (see ``docs/evaluation.md``).  Three
claims are benchmarked, each with a conservative asserted floor and the
measured ratio printed for the record:

* the analytic evaluation stage beats the sim evaluation stage on the
  sweep's largest cells while producing bit-identical numbers
  (measured ~5-8x; asserted >= 3x);
* the build-free first pass dispatches a certified-dominated candidate
  cheaper than the sim-only pipeline would evaluate it (measured ~4x on
  the candidates the 13B sweep actually prunes; asserted >= 2x);
* a tiered end-to-end sweep returns the identical best configuration
  and Pareto frontier as a sim-only sweep.

Schedule *generation* is excluded from the per-cell timed regions: both
tiers share the same built schedule (the planner memoizes builds), so
the tiers differ only in how they evaluate it.  ``docs/evaluation.md``
records why the per-cell ratio saturates around ~8x: both tiers are
linear-time in ops, and bit-exactness forbids the closed-form float
shortcuts that would break certificate equality.
"""

import time

from repro.analysis.evaluate import evaluate_schedule
from repro.hardware.cluster import RTX4090_CLUSTER
from repro.model.spec import LLAMA_13B
from repro.parallel.strategies import ParallelConfig
from repro.planner.evaluate import (
    _cached_schedule,
    config_bounds,
    evaluate_config,
)
from repro.planner.search import pareto_frontier, search_method
from repro.schedules.methods import build_problem, build_schedule
from repro.schedules.verify import assert_clean
from repro.sim.cost import ClusterCost
from repro.sim.executor import simulate

#: The largest (dp, pp, spp, microbatches) cells the 13B sweeps
#: evaluate — GBS-256 scale, where per-cell evaluation cost matters.
CELLS = [
    (8, 8, 8, 32),
    (8, 8, 16, 32),
]

#: A candidate the GBS-128 tiered sweep certifies as dominated without
#: ever building its schedule (see test_bench_first_pass_prune_speedup).
PRUNED = ParallelConfig(dp=16, pp=4, spp=8)


def build_subjects():
    subjects = []
    for dp, pp, spp, n in CELLS:
        config = ParallelConfig(dp=dp, pp=pp, spp=spp)
        problem = build_problem("mepipe", pp, n, num_slices=spp, wgrad_gemms=2)
        cost = ClusterCost(
            spec=LLAMA_13B, config=config, cluster=RTX4090_CLUSTER,
            problem=problem,
        )
        subjects.append((build_schedule("mepipe", problem, cost=cost), cost))
    return subjects


def test_bench_evaluate_sim_tier(once):
    """The sim tier's per-cell cost: full verification + event replay."""
    subjects = build_subjects()

    def sim_tier():
        out = []
        for schedule, cost in subjects:
            assert_clean(schedule, method="mepipe")
            out.append(simulate(schedule, cost, engine="heap"))
        return out

    sims = once(sim_tier)
    assert all(s.iteration_time > 0 for s in sims)


def test_bench_evaluate_analytic_tier(once):
    """The analytic tier's per-cell cost, bit-identical to the sim tier."""
    subjects = build_subjects()
    sims = [simulate(schedule, cost) for schedule, cost in subjects]

    def analytic_tier():
        return [evaluate_schedule(schedule, cost) for schedule, cost in subjects]

    evals = once(analytic_tier)
    for ev, sim in zip(evals, sims):
        assert ev.iteration_time == sim.iteration_time
        assert ev.bubble_ratio == sim.bubble_ratio
        assert ev.stage_peak_units == tuple(
            m.peak_activation_units for m in sim.stages
        )


def test_bench_evaluation_stage_speedup(once):
    """The analytic evaluation stage beats the sim stage, bit-for-bit.

    The sim stage is what the planner's confirmation tier runs per cell
    (``assert_clean`` + the scalar heap replay); the analytic stage is
    the first-pass evaluator.  Measured ~5-8x on these cells; the
    asserted floor leaves margin for CI noise.
    """
    subjects = build_subjects()

    def measure():
        t0 = time.perf_counter()
        sims = []
        for schedule, cost in subjects:
            assert_clean(schedule, method="mepipe")
            sims.append(simulate(schedule, cost, engine="heap"))
        t_sim = time.perf_counter() - t0
        t0 = time.perf_counter()
        evals = [evaluate_schedule(s, c) for s, c in subjects]
        t_analytic = time.perf_counter() - t0
        return sims, evals, t_sim, t_analytic

    sims, evals, t_sim, t_analytic = once(measure)
    for ev, sim in zip(evals, sims):
        assert ev.iteration_time == sim.iteration_time
        assert ev.bubble_ratio == sim.bubble_ratio
    speedup = t_sim / t_analytic
    print(f"\nevaluation stage: sim {t_sim * 1e3:.1f} ms, "
          f"analytic {t_analytic * 1e3:.1f} ms, {speedup:.1f}x")
    assert speedup >= 3.0, f"analytic tier only {speedup:.1f}x faster"


def test_bench_first_pass_prune_speedup(once):
    """Dispatching a dominated candidate: certified bounds vs sim-only.

    The tiered sweep's first pass decides a candidate's fate from
    build-free bounds; the sim-only pipeline must build, verify, and
    replay the schedule to reach the same verdict.  The candidate here
    is one the GBS-128 sweep *actually* prunes (asserted below), so the
    measured ratio is the real per-candidate saving, including the
    skipped schedule build.
    """

    def measure():
        sweep = search_method(
            "mepipe", LLAMA_13B, RTX4090_CLUSTER, 128, evaluator="tiered"
        )
        t0 = time.perf_counter()
        bounds = config_bounds(
            "mepipe", LLAMA_13B, RTX4090_CLUSTER, PRUNED, 128
        )
        t_first = time.perf_counter() - t0
        _cached_schedule.cache_clear()  # sim-only has no memoized build
        t0 = time.perf_counter()
        row = evaluate_config(
            "mepipe", LLAMA_13B, RTX4090_CLUSTER, PRUNED, 128, tier="sim"
        )
        t_sim = time.perf_counter() - t0
        return sweep, bounds, row, t_first, t_sim

    sweep, bounds, row, t_first, t_sim = once(measure)
    assert any(
        s.config == PRUNED and s.reason.startswith("analytic:")
        for s in sweep.skipped
    ), "expected the GBS-128 sweep to prune this candidate analytically"
    assert bounds is not None
    assert bounds.lower_time_s <= row.iteration_time_s <= bounds.upper_time_s
    speedup = t_sim / t_first
    print(f"\nfirst pass: bounds {t_first * 1e3:.2f} ms, "
          f"sim-only {t_sim * 1e3:.2f} ms, {speedup:.1f}x")
    assert speedup >= 2.0, f"first pass only {speedup:.1f}x cheaper"


def test_bench_sweep_tiered_vs_sim(once):
    """End-to-end: tiered and sim-only sweeps, identical frontier.

    Generation dominates the sweep (both pipelines build every
    surviving schedule once — the planner memoizes builds) and the
    Pareto frontier must be sim-confirmed either way, so the end-to-end
    gap is modest; the stage benchmarks above isolate the tier ratio.
    What this guards is the equivalence: same best, same Pareto
    frontier, from a sweep that pruned dominated cells without ever
    scheduling them.
    """

    def sweeps():
        tiered = search_method(
            "mepipe", LLAMA_13B, RTX4090_CLUSTER, 128, evaluator="tiered"
        )
        sim = search_method(
            "mepipe", LLAMA_13B, RTX4090_CLUSTER, 128, evaluator="sim"
        )
        return tiered, sim

    tiered, sim = once(sweeps)
    assert tiered.best == sim.best

    def key(r):
        return (r.config, r.iteration_time_s, r.peak_memory_bytes)

    assert [key(r) for r in pareto_frontier(tiered.evaluated)] == [
        key(r) for r in pareto_frontier(sim.evaluated)
    ]
