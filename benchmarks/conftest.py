"""Benchmark configuration: each paper artifact is regenerated once per
benchmark round (the work is deterministic, so one round suffices)."""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
