"""Benches E-abl-*: rescheduling and f-variant ablations."""

from repro.experiments import ablations


def test_bench_reschedule(once):
    report = once(ablations.run_reschedule)
    print()
    print(report.render())
    children = float(report.cell(0, "bubble"))
    fifo = float(report.cell(1, "bubble"))
    assert children <= fifo  # Section 4.3's optimization never hurts
    assert report.cell(0, "peak act (A)") == report.cell(1, "peak act (A)")


def test_bench_variant_sweep(once):
    report = once(ablations.run_variant_sweep)
    print()
    print(report.render())
    mems = [float(r[2]) for r in report.rows]
    assert mems == sorted(mems, reverse=True)
    # Endpoints: halving f halves the memory (Figure 5(a) vs 5(c)).
    assert abs(mems[-1] / mems[0] - 0.5) < 0.1
    bubbles = [float(r[1]) for r in report.rows]
    assert bubbles[-1] > bubbles[0]
