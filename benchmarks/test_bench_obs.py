"""Telemetry-bus overhead benchmarks.

Two guards: the instrumented-but-disabled path (``NULL_SINK``, the
default everywhere) must be indistinguishable from the pre-telemetry
simulator — ``test_bench_simulate_large`` in the scheduler suite is the
regression gate for that — and the enabled path (full event recording
into a :class:`MemorySink`) must stay cheap enough to leave on during
sweeps.
"""

from repro.obs import NULL_SINK, MemorySink, record_iteration
from repro.schedules import build_problem, build_schedule
from repro.sim import UniformCost, simulate


def _large():
    problem = build_problem("mepipe", 8, 64, num_slices=4, wgrad_gemms=2)
    return build_schedule("mepipe", problem), UniformCost(problem, tw=1.0)


def test_bench_simulate_null_sink(benchmark):
    schedule, cost = _large()
    result = benchmark(lambda: simulate(schedule, cost, sink=NULL_SINK))
    assert result.makespan > 0


def test_bench_simulate_memory_sink(benchmark):
    schedule, cost = _large()

    def run():
        sink = MemorySink()
        simulate(schedule, cost, sink=sink)
        return sink

    sink = benchmark(run)
    assert sink.spans()


def test_bench_record_iteration(benchmark):
    schedule, cost = _large()
    result = simulate(schedule, cost)

    def run():
        sink = MemorySink()
        record_iteration(result, sink)
        return sink

    sink = benchmark(run)
    assert len(sink.spans()) == schedule.op_count()
