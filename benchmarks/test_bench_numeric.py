"""Bench E-E0: functionality — pipelined gradients equal sequential."""

from repro.experiments import e0


def test_bench_e0(once):
    report = once(e0.run)
    print()
    print(report.render())
    statuses = report.column("status")
    assert statuses and all(s == "PASS" for s in statuses)
