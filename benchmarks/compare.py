"""Compare a pytest-benchmark JSON run against a committed baseline.

CI regenerates the benchmark suite and fails the build when any
benchmark's median regresses by more than the threshold (default 20%)
relative to the baseline committed at the repo root.  A small absolute
slack absorbs timer noise on sub-millisecond micro-benchmarks.

Usage:
    python benchmarks/compare.py --baseline BENCH_pr2.json \
        --current BENCH_run.json [--max-regression 20]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ABSOLUTE_SLACK_S = 0.005  # ignore deltas smaller than 5 ms outright


def load_medians(path: Path) -> dict[str, float]:
    data = json.loads(path.read_text())
    return {b["name"]: b["stats"]["median"] for b in data["benchmarks"]}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=20.0,
        metavar="PCT",
        help="fail when a median regresses by more than PCT percent",
    )
    args = parser.parse_args(argv)

    baseline = load_medians(args.baseline)
    current = load_medians(args.current)
    missing = sorted(set(baseline) - set(current))
    regressions: list[tuple[str, float, float, float]] = []

    for name in sorted(set(baseline) & set(current)):
        old, new = baseline[name], current[name]
        ratio = 100.0 * (new - old) / old if old else 0.0
        flag = ""
        if new - old > ABSOLUTE_SLACK_S and ratio > args.max_regression:
            regressions.append((name, old, new, ratio))
            flag = "  << REGRESSION"
        print(f"{name:55s} {old:10.4f}s -> {new:10.4f}s {ratio:+7.1f}%{flag}")

    if missing:
        print(f"\nnote: {len(missing)} baseline benchmark(s) not in current "
              f"run: {', '.join(missing)}")
    if regressions:
        # Name every offender with its before/after medians so a CI log
        # is actionable without re-running the suite locally.
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed by more than "
            f"{args.max_regression:.0f}% vs {args.baseline}:",
            file=sys.stderr,
        )
        for name, old, new, ratio in regressions:
            print(
                f"  {name}: {old:.4f}s -> {new:.4f}s "
                f"({ratio:+.1f}%, threshold {args.max_regression:.0f}%)",
                file=sys.stderr,
            )
        return 1
    print(f"\nOK: no benchmark regressed by more than "
          f"{args.max_regression:.0f}% vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
