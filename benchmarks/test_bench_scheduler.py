"""Scheduler micro-benchmarks: generation and simulation throughput.

These are genuine performance benchmarks (multiple rounds): the greedy
generator and the executor must stay fast enough for the grid searches
that back Figures 8 and 10.
"""

from repro.schedules import build_problem, build_schedule
from repro.sim import UniformCost, simulate


def test_bench_generate_mepipe_large(benchmark):
    problem = build_problem("mepipe", 8, 64, num_slices=4, wgrad_gemms=2)
    schedule = benchmark(lambda: build_schedule("mepipe", problem))
    assert schedule.op_count() == len(problem.all_ops())


def test_bench_generate_svpp_34b_shape(benchmark):
    problem = build_problem("svpp", 16, 32, num_slices=16)
    schedule = benchmark(lambda: build_schedule("svpp", problem))
    assert schedule.op_count() == len(problem.all_ops())


def test_bench_simulate_large(benchmark):
    problem = build_problem("mepipe", 8, 64, num_slices=4, wgrad_gemms=2)
    schedule = build_schedule("mepipe", problem)
    cost = UniformCost(problem, tw=1.0)
    result = benchmark(lambda: simulate(schedule, cost))
    assert result.makespan > 0


def test_bench_generate_dapple(benchmark):
    problem = build_problem("dapple", 8, 64)
    schedule = benchmark(lambda: build_schedule("dapple", problem))
    assert schedule.op_count() == 2 * 8 * 64
