"""Bench: serial vs multi-process pipeline executor on one E0 iteration.

Times one MEPipe split-backward iteration (p=2, s=4, deferred W groups)
on both executors.  The parallel timing includes process spawn and
channel setup — the honest end-to-end cost — and the run must exhibit
measured comm/wgrad overlap while staying bit-identical to serial.
"""

from repro.data import token_batches
from repro.model import tiny_spec
from repro.nn import build_model
from repro.pipeline import ParallelPipelineRuntime, PipelineRuntime
from repro.schedules import build_problem, build_schedule

SPEC = tiny_spec(hidden_size=32, num_layers=6, num_heads=4,
                 ffn_hidden_size=64, vocab_size=31, seq_length=16)
N, B = 4, 2


def _setup():
    problem = build_problem("mepipe", 2, N, num_slices=4, wgrad_gemms=3)
    schedule = build_schedule("mepipe", problem)
    tokens, targets = token_batches(SPEC.vocab_size, N, B, SPEC.seq_length,
                                    seed=5)
    return schedule, tokens, targets


def test_bench_runtime_serial(once):
    schedule, tokens, targets = _setup()

    def run():
        model = build_model(SPEC, seed=11)
        return PipelineRuntime(model, tokens, targets).run(schedule)

    result = once(run)
    assert result.executor == "serial"
    assert result.ops_executed == schedule.op_count()


def test_bench_runtime_parallel(once):
    schedule, tokens, targets = _setup()

    serial_model = build_model(SPEC, seed=11)
    serial = PipelineRuntime(serial_model, tokens, targets).run(schedule)

    def run():
        model = build_model(SPEC, seed=11)
        return ParallelPipelineRuntime(model, tokens, targets).run(schedule)

    result = once(run)
    assert result.executor == "parallel"
    assert result.loss == serial.loss
    # The point of the exercise: deferred W GEMMs measurably execute
    # while channel receives are pending.
    assert result.overlap_w_seconds > 0.0
    print(f"\nparallel wall {result.wall_seconds * 1e3:.1f} ms, "
          f"overlap_w {result.overlap_w_seconds * 1e3:.2f} ms, "
          f"bubble {result.bubble_ratio:.3f}")
