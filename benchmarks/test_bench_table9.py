"""Bench E-tab9: A100 vs RTX 4090 — throughput, MFU, cost-effectiveness."""

from repro.experiments import table9
from repro.hardware import A100_CLUSTER, RTX4090_CLUSTER
from repro.model import LLAMA_13B


def test_bench_table9_13b(once):
    a100 = once(table9.best_on_a100, LLAMA_13B)
    rtx = table9.best_on_4090(LLAMA_13B)
    assert a100 is not None and rtx is not None

    # Comparable iteration times (paper: 6131 vs 5852 ms); we accept
    # the same global batch finishing within 25% on either side.
    ratio = a100.iteration_time_s / rtx.iteration_time_s
    assert 0.75 < ratio < 1.25

    # MFU anchor: ~35% on the 4090 cluster for 13B (Table 9 / abstract).
    assert 0.28 < rtx.mfu < 0.40
    # A single 4090 delivers about half an A100 (Section 7.6).
    assert 0.4 < rtx.tflops_per_gpu / a100.tflops_per_gpu < 0.6

    # Cost-effectiveness ~2.5x (paper).
    cost_eff = ratio * (A100_CLUSTER.total_price_usd
                        / RTX4090_CLUSTER.total_price_usd)
    assert 1.9 < cost_eff < 3.1


def test_bench_table9_report(once):
    report = once(table9.run, [LLAMA_13B])
    print()
    print(report.render())
    assert len(report.rows) == 2
    assert any("cost-" in note or "cost" in note for note in report.notes)
