"""Bench E-fig11/12: fine-grained weight-gradient computation."""

from repro.experiments import fig1112


def test_bench_fig1112(once):
    ablation = once(fig1112.compute)
    # At the paper's 4k config our simulator shows parity-or-better;
    # never a regression beyond noise.
    assert ablation.improvement > -0.02
    print()
    print(fig1112.run().render())


def test_bench_fig1112_long_context(once):
    """Where slice imbalance is large the technique pays clearly."""
    ablation = once(fig1112.compute_long_context)
    assert ablation.improvement > 0.04
    # The gain comes from filling bubbles, not skipping work: both
    # variants execute the same ops.
    assert (len(ablation.with_fine_grained.records)
            == len(ablation.without_fine_grained.records))


def test_bench_fig1112_timelines(once):
    art = once(fig1112.render_timelines)
    assert "Figure 11" in art and "Figure 12" in art
    print()
    print(art)
