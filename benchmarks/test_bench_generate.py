"""Bench: fast-path schedule generation vs the preserved reference.

The array-native engine (``repro.schedules.greedy``) must beat the
pre-rewrite engine (``repro.schedules.greedy_reference``) by >=3x
per cell on the largest 13B MEPipe cells, and the end-to-end Figure 10
sweep — the generation-bound workload that motivated the rewrite —
must be measurably faster than the same sweep forced through the
reference engine.

Both paths are timed min-of-reps: generation is deterministic, so the
minimum is the least noisy estimator on a shared machine.  The "old
path" reproduces what the planner used to pay per cell: reference
generation plus the content fingerprint plus graph compilation (the
fast engine emits the graph during generation, so its path prices all
three as one call).
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.schedules import gencache
from repro.schedules.base import PipelineProblem
from repro.schedules.graph import compiled_graph, fingerprint
from repro.schedules.greedy import GreedyPolicy, greedy_schedule
from repro.schedules.greedy_reference import greedy_reference

#: The two largest MEPipe cells of the 13B row: p=8, n=32, split
#: backward with 2 W GEMM fragments, at both slice counts the Figure 10
#: sweep visits.
CELLS = {
    "s8": PipelineProblem(
        num_stages=8, num_microbatches=32, num_slices=8, virtual_size=1,
        split_backward=True, wgrad_gemms=2,
    ),
    "s16": PipelineProblem(
        num_stages=8, num_microbatches=32, num_slices=16, virtual_size=1,
        split_backward=True, wgrad_gemms=2,
    ),
}
POLICY = GreedyPolicy(cap_slope=0)
REPS = 7
MIN_CELL_SPEEDUP = 3.0
MIN_SWEEP_SPEEDUP = 1.15


@pytest.fixture
def cold_gen():
    """Disable the generation cache so every call prices the engine."""
    gencache.clear()
    gencache.set_enabled(False)
    yield
    gencache.set_enabled(None)
    gencache.clear()


def interleaved_min_of(fn_a, fn_b, reps=REPS):
    """Min-of-reps for two callables, alternating them each round.

    Alternation means background load on a shared machine degrades both
    measurements alike instead of landing on whichever path happened to
    be timed second, which is what keeps the asserted *ratio* stable
    under noise.
    """
    best_a = best_b = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def reference_path(problem):
    schedule = greedy_reference(problem, POLICY, None, "greedy")
    fingerprint(schedule)
    compiled_graph(schedule)
    return schedule


def fast_path(problem):
    schedule = greedy_schedule(problem, POLICY)
    fingerprint(schedule)
    compiled_graph(schedule)
    return schedule


@pytest.mark.parametrize("cell", sorted(CELLS), ids=str)
def test_bench_generate_13b_speedup(benchmark, cold_gen, cell):
    problem = CELLS[cell]
    # Warm the structure/cost memos both paths share before timing.
    reference_path(problem)
    schedule = fast_path(problem)
    assert schedule.op_count() == len(problem.all_ops())

    # Up to three measurement attempts: a burst of unrelated machine
    # load can still skew one round of mins, and the claim under test
    # is the engine ratio, not the machine's quietness.
    for _ in range(3):
        old_s, new_s = interleaved_min_of(
            lambda: reference_path(problem), lambda: fast_path(problem)
        )
        if old_s >= MIN_CELL_SPEEDUP * new_s:
            break
    # Record the fast path under the regression gate.
    benchmark.pedantic(
        lambda: fast_path(problem), rounds=REPS, iterations=1, warmup_rounds=1
    )
    assert old_s >= MIN_CELL_SPEEDUP * new_s, (
        f"{cell}: reference {old_s * 1e3:.1f} ms vs fast {new_s * 1e3:.1f} ms "
        f"is below the {MIN_CELL_SPEEDUP:.1f}x floor"
    )


#: Each fig10 leg runs in its own interpreter so neither pollutes (or
#: borrows) this process's schedule memo, generation cache, or cost
#: memos — both legs are true cold starts, and the rest of the
#: benchmark suite keeps its warm state.
_FIG10_LEG = """\
import time
{prelude}
from repro.experiments import fig10
t0 = time.perf_counter()
report = fig10.run()
assert report.rows
print("SECONDS", time.perf_counter() - t0)
"""

_REFERENCE_PRELUDE = """\
import repro.schedules.greedy as greedy
from repro.schedules import gencache
from repro.schedules.graph import compiled_graph, fingerprint
from repro.schedules.greedy_reference import greedy_reference

def _reference_once(problem, policy, cost, name):
    schedule = greedy_reference(problem, policy, cost, name)
    fingerprint(schedule)
    compiled_graph(schedule)
    return schedule

greedy._greedy_once = _reference_once
gencache.set_enabled(False)
"""


def _fig10_seconds(prelude: str) -> float:
    env = {
        k: v for k, v in os.environ.items()
        if not k.startswith("REPRO_")
    }
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _FIG10_LEG.format(prelude=prelude)],
        env=env, capture_output=True, text=True, check=True,
    )
    for line in proc.stdout.splitlines():
        if line.startswith("SECONDS "):
            return float(line.split()[1])
    raise AssertionError(f"no timing line in fig10 leg output: {proc.stdout}")


def test_bench_fig10_end_to_end_speedup(benchmark):
    """The full Figure 10 sweep must be measurably faster than the same
    sweep forced through the reference engine (both legs cold, each in
    its own interpreter)."""
    fast_box = {}

    def fast_leg():
        fast_box["s"] = _fig10_seconds("")

    # The recorded gate number includes interpreter startup; the
    # asserted ratio uses the in-leg measurement, which does not.
    benchmark.pedantic(fast_leg, rounds=1, iterations=1, warmup_rounds=0)
    fast_s = fast_box["s"]
    ref_s = _fig10_seconds(_REFERENCE_PRELUDE)
    if ref_s < MIN_SWEEP_SPEEDUP * fast_s:
        # One retry of each leg: a ~20 s leg is a wide window for a
        # burst of unrelated load to land in, and the mins are what
        # the ratio claim is about.
        fast_s = min(fast_s, _fig10_seconds(""))
        ref_s = min(ref_s, _fig10_seconds(_REFERENCE_PRELUDE))

    print(f"\nfig10 sweep: reference {ref_s:.2f}s, fast {fast_s:.2f}s, "
          f"speedup {ref_s / fast_s:.2f}x")
    assert ref_s >= MIN_SWEEP_SPEEDUP * fast_s, (
        f"fig10 end-to-end: reference {ref_s:.2f}s vs fast {fast_s:.2f}s "
        f"is below the {MIN_SWEEP_SPEEDUP:.2f}x floor"
    )
