"""Bench E-fig9: transformer-layer performance vs CP/SPP size (claim C2)."""

from repro.experiments import fig9


def test_bench_fig9(once):
    perf = once(fig9.compute)
    by_key = {(p.kind, p.size): p for p in perf}
    # SPP=8 costs ~12.6% (Section 7.3).
    spp8 = by_key[("spp", 8)].relative_throughput
    assert 0.85 < spp8 < 0.92
    # Claim C2: SPP beats CP at every partitioning size > 1.
    for size in (2, 4, 8):
        assert (by_key[("spp", size)].relative_throughput
                > by_key[("cp", size)].relative_throughput)
    # Both degrade monotonically with size.
    for kind in ("cp", "spp"):
        series = [by_key[(kind, s)].relative_throughput for s in (1, 2, 4, 8)]
        assert series == sorted(series, reverse=True)
    print()
    print(fig9.run().render())
