"""Full decoder model assembly, partitioning, and a sequential reference.

The model is a list of components — ``Embedding``, ``num_layers`` x
``DecoderLayer``, ``LossHead`` — which matches the paper's
"balanced layer count" view (Section 7.1): the embedding and the head
each occupy one schedulable slot.  ``partition`` cuts this list into
``v * p`` contiguous chunks for pipeline execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.spec import ModelSpec
from repro.nn.layers import Component, DecoderLayer, Embedding, LossHead

Array = np.ndarray


@dataclass
class TransformerModel:
    """A complete model plus its spec."""

    spec: ModelSpec
    components: list[Component]

    @property
    def embedding(self) -> Embedding:
        return self.components[0]  # type: ignore[return-value]

    @property
    def head(self) -> LossHead:
        return self.components[-1]  # type: ignore[return-value]

    def init_grads(self) -> None:
        """Zero all parameter gradients."""
        for c in self.components:
            c.init_grads()

    def named_params(self) -> dict[str, Array]:
        """Flat view ``{component_index.param_name: array}``."""
        out = {}
        for i, c in enumerate(self.components):
            for k, v in c.params.items():
                out[f"{i}.{k}"] = v
        return out

    def named_grads(self) -> dict[str, Array]:
        """Flat view of all gradients."""
        out = {}
        for i, c in enumerate(self.components):
            for k, v in c.grads.items():
                out[f"{i}.{k}"] = v
        return out

    def live_bytes(self) -> int:
        """Bytes of stored forward state across all components."""
        return sum(c.live_bytes() for c in self.components)

    def partition(self, num_chunks: int) -> list[list[Component]]:
        """Cut the component list into contiguous, balanced chunks."""
        total = len(self.components)
        if num_chunks > total:
            raise ValueError(
                f"cannot cut {total} components into {num_chunks} chunks")
        base, extra = divmod(total, num_chunks)
        chunks, start = [], 0
        for i in range(num_chunks):
            size = base + (1 if i < extra else 0)
            chunks.append(self.components[start : start + size])
            start += size
        return chunks


def build_model(
    spec: ModelSpec, seed: int = 0, recompute: bool = False
) -> TransformerModel:
    """Construct a model with deterministic initialization.

    ``recompute=True`` builds layers that keep only their input after
    the forward pass and replay the math at backward time (whole
    micro-batches only, matching the paper's constraint).
    """
    rng = np.random.default_rng(seed)
    components: list[Component] = [Embedding(spec.vocab_size, spec.hidden_size, rng)]
    for _unused in range(spec.num_layers):
        components.append(
            DecoderLayer(
                spec.hidden_size,
                spec.num_heads,
                spec.ffn_hidden_size,
                rng,
                num_kv_heads=spec.kv_heads,
                recompute=recompute,
            )
        )
    components.append(LossHead(spec.hidden_size, spec.vocab_size, rng))
    model = TransformerModel(spec=spec, components=components)
    model.init_grads()
    return model


def sequential_step(
    model: TransformerModel,
    tokens: Array,
    targets: Array,
    num_slices: int = 1,
) -> float:
    """Reference execution: forward + backward, micro-batch at a time.

    Args:
        model: The model (gradients are accumulated into it).
        tokens: ``(n, B, T)`` token ids for ``n`` micro-batches.
        targets: Same shape, the labels.
        num_slices: Slices per sample — with 1 this is the classic
            non-sliced execution every schedule must reproduce.

    Returns:
        The iteration loss (token mean over all micro-batches).
    """
    n, batch, seqlen = tokens.shape
    if seqlen % num_slices != 0:
        raise ValueError("sequence not divisible into slices")
    t = seqlen // num_slices
    model.head.loss_scale = 1.0 / (n * batch * seqlen)
    total_loss = 0.0
    for mb in range(n):
        for sl in range(num_slices):
            lo, hi = sl * t, (sl + 1) * t
            model.head.set_targets(mb, sl, targets[mb, :, lo:hi])
            x: Array | float = tokens[mb, :, lo:hi]
            for comp in model.components:
                assert isinstance(x, np.ndarray)
                x = comp.forward(mb, sl, x)
            total_loss += float(x)  # LossHead returns the slice loss
        for sl in reversed(range(num_slices)):
            dy: Array | None = None
            for comp in reversed(model.components):
                dy = comp.backward(mb, sl, dy)
                for task in comp.pop_wgrad_tasks(mb, sl):
                    task()
    return total_loss
