"""Model components with slice-wise forward/backward execution.

Each component supports the exact execution protocol a slice-level
pipeline needs (Section 4.1):

* ``forward(mb, sl, x)`` — run one slice, caching what the backward
  needs; attention appends this slice's keys/values to a per-microbatch
  KV cache so later slices can attend to them (Figure 3).
* ``backward(mb, sl, dy)`` — activation gradients only.  Attention
  returns dK/dV blocks for *earlier* slices into pending buffers, and
  consumes the pending contributions that *later* slices (whose
  backward necessarily ran first) left for this slice.
* ``pop_wgrad_tasks(mb, sl)`` — the weight-gradient GEMMs produced by
  that backward, as independently executable closures (Section 5's
  fine-grained decomposition).

Calling the weight-gradient tasks immediately after ``backward``
reproduces a classic fused backward; deferring them reproduces
zero-bubble / MEPipe behaviour.  Gradients are identical either way.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import functional as F

Array = np.ndarray
WgradTask = Callable[[], None]


class Component:
    """Base class: parameters, gradients, and wgrad-task bookkeeping."""

    def __init__(self) -> None:
        self.params: dict[str, Array] = {}
        self.grads: dict[str, Array] = {}
        self._wgrad_tasks: dict[tuple[int, int], list[WgradTask]] = {}
        self.live_contexts = 0

    def live_bytes(self) -> int:
        """Bytes of stored forward state (activations, caches)."""
        return 0

    def init_grads(self) -> None:
        """(Re)allocate zero gradients matching the parameters."""
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}

    def _queue(self, mb: int, sl: int, task: WgradTask) -> None:
        self._wgrad_tasks.setdefault((mb, sl), []).append(task)

    def pop_wgrad_tasks(self, mb: int, sl: int) -> list[WgradTask]:
        """Take ownership of the pending weight-gradient GEMMs."""
        return self._wgrad_tasks.pop((mb, sl), [])

    def forward(self, mb: int, sl: int, x: Array) -> Array | float:
        raise NotImplementedError

    def backward(self, mb: int, sl: int, dy: Array | None) -> Array | None:
        """Activation gradients of one slice.

        The contract is uniform across components: ``dy`` is the
        upstream gradient (``None`` only for the pipeline's last
        component, whose forward produced the loss), and the return
        value is the input gradient (``None`` only for the pipeline's
        first component, whose input has no gradient).
        """
        raise NotImplementedError

    def add_grad(self, key: str, value: Array) -> None:
        self.grads[key] += value


class Embedding(Component):
    """Token embedding; the pipeline's first component.

    ``forward`` receives integer token ids ``(B, t)``; ``backward``
    scatter-adds into the table gradient and returns None (tokens have
    no gradient).
    """

    def __init__(self, vocab_size: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.params = {"table": rng.normal(0, 0.02, size=(vocab_size, hidden))}
        self._ctx: dict[tuple[int, int], Array] = {}

    def live_bytes(self) -> int:
        return sum(t.nbytes for t in self._ctx.values())

    def forward(self, mb: int, sl: int, x: Array) -> Array:
        tokens = np.asarray(x)
        self._ctx[(mb, sl)] = tokens
        self.live_contexts += 1
        return self.params["table"][tokens]

    def backward(self, mb: int, sl: int, dy: Array | None) -> Array | None:
        tokens = self._ctx.pop((mb, sl))
        self.live_contexts -= 1
        assert dy is not None
        dy_arr = dy

        def wgrad() -> None:
            np.add.at(self.grads["table"], tokens.reshape(-1),
                      dy_arr.reshape(-1, dy_arr.shape[-1]))

        self._queue(mb, sl, wgrad)
        return None


class DecoderLayer(Component):
    """Pre-norm transformer decoder layer (RMSNorm, RoPE attention,
    SwiGLU), with optional grouped-query attention and full activation
    recomputation.

    With ``recompute=True`` only the layer *input* is kept after the
    forward pass (the ~90% activation cut of Section 7.3) and the
    forward math is replayed at backward time; this mode supports whole
    micro-batches only (``num_slices == 1``), matching the paper's
    constraint that recomputation and slice scheduling don't combine.
    """

    def __init__(
        self,
        hidden: int,
        num_heads: int,
        ffn_hidden: int,
        rng: np.random.Generator,
        num_kv_heads: int | None = None,
        recompute: bool = False,
    ):
        super().__init__()
        if hidden % num_heads != 0:
            raise ValueError("hidden must be divisible by num_heads")
        self.hidden = hidden
        self.num_heads = num_heads
        self.num_kv_heads = num_kv_heads or num_heads
        if num_heads % self.num_kv_heads != 0:
            raise ValueError("num_heads must be a multiple of num_kv_heads")
        self.head_dim = hidden // num_heads
        self.recompute = recompute
        kv_width = self.num_kv_heads * self.head_dim
        std = 0.02
        self.params = {
            "wq": rng.normal(0, std, size=(hidden, hidden)),
            "wk": rng.normal(0, std, size=(hidden, kv_width)),
            "wv": rng.normal(0, std, size=(hidden, kv_width)),
            "wo": rng.normal(0, std, size=(hidden, hidden)),
            "wg": rng.normal(0, std, size=(hidden, ffn_hidden)),
            "wu": rng.normal(0, std, size=(hidden, ffn_hidden)),
            "wd": rng.normal(0, std, size=(ffn_hidden, hidden)),
            "g1": np.ones(hidden),
            "g2": np.ones(hidden),
        }
        # Per-microbatch KV cache: rotated keys / values per slice
        # (kv-head layout).
        self._kv: dict[int, list[tuple[Array, Array]]] = {}
        # Pending dK (rotated) / dV contributions from later slices.
        self._pending: dict[tuple[int, int], tuple[Array, Array]] = {}
        self._ctx: dict[tuple[int, int], dict] = {}

    @property
    def _group(self) -> int:
        """Query heads per key/value head."""
        return self.num_heads // self.num_kv_heads

    def _heads(self, x: Array, heads: int) -> Array:
        b, t, _w = x.shape
        return x.reshape(b, t, heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge(self, x: Array) -> Array:
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    def _expand_kv(self, x: Array) -> Array:
        """Repeat kv heads across their query group (GQA)."""
        if self._group == 1:
            return x
        return np.repeat(x, self._group, axis=1)

    def _collapse_kv(self, x: Array) -> Array:
        """Sum query-group gradients back onto the kv heads."""
        if self._group == 1:
            return x
        b, h, t, d = x.shape
        return x.reshape(b, self.num_kv_heads, self._group, t, d).sum(axis=2)

    def live_bytes(self) -> int:
        total = 0
        for ctx in self._ctx.values():
            total += sum(v.nbytes for v in ctx.values()
                         if isinstance(v, np.ndarray))
        for entries in self._kv.values():
            total += sum(k.nbytes + v.nbytes for k, v in entries)
        for k, v in self._pending.values():
            total += k.nbytes + v.nbytes
        return total

    def forward(self, mb: int, sl: int, x: Array) -> Array:
        if self.recompute and sl != 0:
            raise ValueError("recomputation supports whole micro-batches only")
        out, ctx = self._compute(mb, sl, x)
        if self.recompute:
            # Keep only the layer input; everything else is replayed.
            self._ctx[(mb, sl)] = {"x": x}
            self._kv.pop(mb, None)
        else:
            self._ctx[(mb, sl)] = ctx
        self.live_contexts += 1
        return out

    def _compute(self, mb: int, sl: int, x: Array) -> tuple[Array, dict]:
        """The forward math; appends this slice's KV to the cache."""
        p = self.params
        offset = sum(k.shape[2] for k, _v in self._kv.get(mb, []))
        t = x.shape[1]
        y1, inv1 = F.rmsnorm(x, p["g1"])
        q = self._heads(F.linear(y1, p["wq"]), self.num_heads)
        k = self._heads(F.linear(y1, p["wk"]), self.num_kv_heads)
        v = self._heads(F.linear(y1, p["wv"]), self.num_kv_heads)
        cos, sin = F.rope_angles(self.head_dim, np.arange(offset, offset + t))
        q_rot = F.rope_apply(q, cos, sin)
        k_rot = F.rope_apply(k, cos, sin)
        self._kv.setdefault(mb, []).append((k_rot, v))
        k_full = np.concatenate([kk for kk, _vv in self._kv[mb]], axis=2)
        v_full = np.concatenate([vv for _kk, vv in self._kv[mb]], axis=2)
        attn, probs = F.attention_slice(
            q_rot, self._expand_kv(k_full), self._expand_kv(v_full), offset)
        merged = self._merge(attn)
        proj = F.linear(merged, p["wo"])
        mid = x + proj
        y2, inv2 = F.rmsnorm(mid, p["g2"])
        gate = F.linear(y2, p["wg"])
        up = F.linear(y2, p["wu"])
        act = F.silu(gate) * up
        out = mid + F.linear(act, p["wd"])
        ctx = {
            "x": x, "y1": y1, "inv1": inv1, "q_rot": q_rot, "probs": probs,
            "merged": merged, "mid": mid, "y2": y2, "inv2": inv2,
            "gate": gate, "up": up, "act": act, "cos": cos, "sin": sin,
            "offset": offset, "t": t,
        }
        return out, ctx

    def backward(self, mb: int, sl: int, dy: Array | None) -> Array:
        assert dy is not None
        ctx = self._ctx.pop((mb, sl))
        self.live_contexts -= 1
        if self.recompute:
            _out, ctx = self._compute(mb, sl, ctx["x"])
        p = self.params

        # --- MLP branch ---
        dact = F.linear_dgrad(dy, p["wd"])
        dgate = F.silu_dgrad(dact * ctx["up"], ctx["gate"])
        dup = dact * F.silu(ctx["gate"])
        dy2 = F.linear_dgrad(dgate, p["wg"]) + F.linear_dgrad(dup, p["wu"])
        dmid = dy + F.rmsnorm_dgrad(dy2, ctx["mid"], p["g2"], ctx["inv2"])

        # --- Attention branch ---
        dmerged = F.linear_dgrad(dmid, p["wo"])
        b, t = dmerged.shape[0], ctx["t"]
        dattn = dmerged.reshape(b, t, self.num_heads, self.head_dim)
        dattn = dattn.transpose(0, 2, 1, 3)
        k_full = np.concatenate([kk for kk, _vv in self._kv[mb]][: sl + 1], axis=2)
        v_full = np.concatenate([vv for _kk, vv in self._kv[mb]][: sl + 1], axis=2)
        dq_rot, dk_exp, dv_exp = F.attention_slice_dgrad(
            dattn, ctx["q_rot"], self._expand_kv(k_full),
            self._expand_kv(v_full), ctx["probs"])
        dk_full = self._collapse_kv(dk_exp)
        dv_full = self._collapse_kv(dv_exp)

        # Split prefix gradients: earlier slices' blocks go to pending
        # buffers; this slice's block combines with what later slices
        # already contributed.
        start = ctx["offset"]
        dk_own = dk_full[:, :, start : start + t]
        dv_own = dv_full[:, :, start : start + t]
        pend = self._pending.pop((mb, sl), None)
        if pend is not None:
            dk_own = dk_own + pend[0]
            dv_own = dv_own + pend[1]
        pos = 0
        for j in range(sl):
            tj = self._kv[mb][j][0].shape[2]
            blk_k = dk_full[:, :, pos : pos + tj]
            blk_v = dv_full[:, :, pos : pos + tj]
            prev = self._pending.get((mb, j))
            if prev is None:
                self._pending[(mb, j)] = (blk_k.copy(), blk_v.copy())
            else:
                self._pending[(mb, j)] = (prev[0] + blk_k, prev[1] + blk_v)
            pos += tj

        dq = F.rope_unapply(dq_rot, ctx["cos"], ctx["sin"])
        dk = F.rope_unapply(dk_own, ctx["cos"], ctx["sin"])
        dq_m, dk_m, dv_m = self._merge(dq), self._merge(dk), self._merge(dv_own)
        dy1 = (
            F.linear_dgrad(dq_m, p["wq"])
            + F.linear_dgrad(dk_m, p["wk"])
            + F.linear_dgrad(dv_m, p["wv"])
        )
        dx = dmid + F.rmsnorm_dgrad(dy1, ctx["x"], p["g1"], ctx["inv1"])

        # --- Weight-gradient GEMMs, one task per parameter ---
        y1, y2, merged, act = ctx["y1"], ctx["y2"], ctx["merged"], ctx["act"]
        x_in, mid, inv1, inv2 = ctx["x"], ctx["mid"], ctx["inv1"], ctx["inv2"]
        tasks: list[tuple[str, WgradTask]] = [
            ("wq", lambda: self.add_grad("wq", F.linear_wgrad(y1, dq_m))),
            ("wk", lambda: self.add_grad("wk", F.linear_wgrad(y1, dk_m))),
            ("wv", lambda: self.add_grad("wv", F.linear_wgrad(y1, dv_m))),
            ("wo", lambda: self.add_grad("wo", F.linear_wgrad(merged, dmid))),
            ("wg", lambda: self.add_grad("wg", F.linear_wgrad(y2, dgate))),
            ("wu", lambda: self.add_grad("wu", F.linear_wgrad(y2, dup))),
            ("wd", lambda: self.add_grad("wd", F.linear_wgrad(act, dy))),
            ("g1", lambda: self.add_grad("g1", F.rmsnorm_wgrad(dy1, x_in, inv1))),
            ("g2", lambda: self.add_grad("g2", F.rmsnorm_wgrad(dy2, mid, inv2))),
        ]
        for _name, task in tasks:
            self._queue(mb, sl, task)

        # The KV cache entries for this micro-batch can be dropped once
        # slice 0's backward has consumed them.
        if sl == 0:
            del self._kv[mb]
        return dx


class LossHead(Component):
    """Final RMSNorm + LM head + token-mean cross entropy.

    ``forward`` returns this slice's loss contribution as a float;
    ``backward`` takes ``dy=None`` and starts the gradient chain.
    """

    def __init__(self, hidden: int, vocab_size: int, rng: np.random.Generator):
        super().__init__()
        self.params = {
            "gf": np.ones(hidden),
            "wh": rng.normal(0, 0.02, size=(hidden, vocab_size)),
        }
        self._ctx: dict[tuple[int, int], dict] = {}
        self._targets: dict[tuple[int, int], Array] = {}
        self.loss_scale = 1.0

    def live_bytes(self) -> int:
        return sum(
            sum(v.nbytes for v in ctx.values() if isinstance(v, np.ndarray))
            for ctx in self._ctx.values()
        )

    def set_targets(self, mb: int, sl: int, targets: Array) -> None:
        """Provide the labels for one slice before its forward runs."""
        self._targets[(mb, sl)] = targets

    def forward(self, mb: int, sl: int, x: Array) -> float:
        targets = self._targets.pop((mb, sl))
        y, inv = F.rmsnorm(x, self.params["gf"])
        logits = F.linear(y, self.params["wh"])
        loss, dlogits = F.cross_entropy(logits, targets, self.loss_scale)
        self._ctx[(mb, sl)] = {"x": x, "y": y, "inv": inv, "dlogits": dlogits}
        self.live_contexts += 1
        return loss

    def backward(self, mb: int, sl: int, dy: Array | None = None) -> Array:
        ctx = self._ctx.pop((mb, sl))
        self.live_contexts -= 1
        dlogits = ctx["dlogits"]
        dy_norm = F.linear_dgrad(dlogits, self.params["wh"])
        dx = F.rmsnorm_dgrad(dy_norm, ctx["x"], self.params["gf"], ctx["inv"])
        y, x_in, inv = ctx["y"], ctx["x"], ctx["inv"]
        self._queue(mb, sl,
                    lambda: self.add_grad("wh", F.linear_wgrad(y, dlogits)))
        self._queue(mb, sl,
                    lambda: self.add_grad("gf", F.rmsnorm_wgrad(dy_norm, x_in, inv)))
        return dx
