"""Primitive neural-network ops with explicit forward/backward.

All functions operate on NumPy arrays in float64 so that pipeline
schedules can be verified to produce *bit-comparable* gradients against
sequential execution.  Every backward is hand-derived and split the way
MEPipe splits it: ``*_dgrad`` produces input gradients, ``*_wgrad``
produces weight gradients from the saved forward inputs — the two halves
zero-bubble scheduling reorders independently (Section 5).
"""

from __future__ import annotations

import numpy as np

Array = np.ndarray


# ----------------------------------------------------------------------
# Linear
# ----------------------------------------------------------------------
def linear(x: Array, w: Array) -> Array:
    """``y = x @ w`` with ``x: (..., in)`` and ``w: (in, out)``."""
    return x @ w


def linear_dgrad(dy: Array, w: Array) -> Array:
    """Input gradient of :func:`linear`."""
    return dy @ w.T


def linear_wgrad(x: Array, dy: Array) -> Array:
    """Weight gradient of :func:`linear` — one GEMM, freely deferrable."""
    x2 = x.reshape(-1, x.shape[-1])
    dy2 = dy.reshape(-1, dy.shape[-1])
    return x2.T @ dy2


# ----------------------------------------------------------------------
# RMSNorm
# ----------------------------------------------------------------------
def rmsnorm(x: Array, g: Array, eps: float = 1e-6) -> tuple[Array, Array]:
    """Root-mean-square layer norm; returns ``(y, inv_rms)``."""
    inv = 1.0 / np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x * inv * g, inv


def rmsnorm_dgrad(dy: Array, x: Array, g: Array, inv: Array) -> Array:
    """Input gradient of :func:`rmsnorm`."""
    h = x.shape[-1]
    dxhat = dy * g
    dot = np.sum(dxhat * x, axis=-1, keepdims=True)
    return inv * dxhat - (inv**3 / h) * x * dot


def rmsnorm_wgrad(dy: Array, x: Array, inv: Array) -> Array:
    """Gain gradient of :func:`rmsnorm`."""
    contrib = dy * x * inv
    return contrib.reshape(-1, x.shape[-1]).sum(axis=0)


# ----------------------------------------------------------------------
# SiLU / SwiGLU
# ----------------------------------------------------------------------
def silu(x: Array) -> Array:
    """``x * sigmoid(x)``."""
    return x / (1.0 + np.exp(-x))


def silu_dgrad(dy: Array, x: Array) -> Array:
    """Input gradient of :func:`silu`."""
    s = 1.0 / (1.0 + np.exp(-x))
    return dy * s * (1.0 + x * (1.0 - s))


# ----------------------------------------------------------------------
# Rotary position embedding
# ----------------------------------------------------------------------
def rope_angles(head_dim: int, positions: Array) -> tuple[Array, Array]:
    """cos/sin tables for RoPE at ``positions``; shape (T, head_dim/2)."""
    half = head_dim // 2
    freq = 1.0 / (10000.0 ** (np.arange(half) / half))
    theta = positions[:, None] * freq[None, :]
    return np.cos(theta), np.sin(theta)


def rope_apply(x: Array, cos: Array, sin: Array) -> Array:
    """Rotate pairs of channels; ``x: (B, H, T, D)``."""
    x1, x2 = x[..., 0::2], x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * cos - x2 * sin
    out[..., 1::2] = x1 * sin + x2 * cos
    return out


def rope_unapply(dy: Array, cos: Array, sin: Array) -> Array:
    """Backward of :func:`rope_apply` (the inverse rotation)."""
    return rope_apply(dy, cos, -sin)


# ----------------------------------------------------------------------
# Causal attention over a KV prefix
# ----------------------------------------------------------------------
def attention_slice(
    q: Array, k: Array, v: Array, offset: int
) -> tuple[Array, Array]:
    """Causal attention of a query slice against a key/value prefix.

    Args:
        q: Queries ``(B, H, t, D)`` for tokens ``offset .. offset+t-1``.
        k: Keys ``(B, H, T_kv, D)`` with ``T_kv >= offset + t`` — the
            concatenation of all preceding slices' keys plus this one.
        v: Values, same shape as ``k``.
        offset: Absolute position of the first query token.

    Returns:
        ``(out, probs)`` with ``out: (B, H, t, D)``; ``probs`` is saved
        for the backward pass.
    """
    scale = 1.0 / np.sqrt(q.shape[-1])
    scores = (q @ k.transpose(0, 1, 3, 2)) * scale
    t, t_kv = q.shape[2], k.shape[2]
    pos_q = offset + np.arange(t)[:, None]
    pos_k = np.arange(t_kv)[None, :]
    scores = np.where(pos_k <= pos_q, scores, -np.inf)
    scores -= scores.max(axis=-1, keepdims=True)
    expv = np.exp(scores)
    probs = expv / expv.sum(axis=-1, keepdims=True)
    return probs @ v, probs


def attention_slice_dgrad(
    dout: Array, q: Array, k: Array, v: Array, probs: Array
) -> tuple[Array, Array, Array]:
    """Backward of :func:`attention_slice`.

    Returns ``(dq, dk, dv)``; ``dk``/``dv`` cover the *whole* prefix —
    the slice-level pipeline routes the sub-blocks belonging to earlier
    slices back to their pending-gradient buffers (the inverse of the
    Figure 3 KV dependency).
    """
    scale = 1.0 / np.sqrt(q.shape[-1])
    dv = probs.transpose(0, 1, 3, 2) @ dout
    dprobs = dout @ v.transpose(0, 1, 3, 2)
    dot = np.sum(dprobs * probs, axis=-1, keepdims=True)
    dscores = probs * (dprobs - dot)
    dq = (dscores @ k) * scale
    dk = (dscores.transpose(0, 1, 3, 2) @ q) * scale
    return dq, dk, dv


# ----------------------------------------------------------------------
# Cross-entropy over logits
# ----------------------------------------------------------------------
def cross_entropy(
    logits: Array, targets: Array, loss_scale: float
) -> tuple[float, Array]:
    """Token-mean cross entropy with a precomputed normalization.

    Args:
        logits: ``(B, t, V)``.
        targets: ``(B, t)`` integer labels.
        loss_scale: Weight of each token in the iteration loss — slices
            of one iteration must all use the same scale so that
            slice-wise gradients sum to the full-batch gradients.

    Returns:
        ``(loss_contribution, dlogits)``.
    """
    m = logits.max(axis=-1, keepdims=True)
    z = logits - m
    lse = np.log(np.exp(z).sum(axis=-1, keepdims=True))
    logp = z - lse
    b_idx = np.arange(logits.shape[0])[:, None]
    t_idx = np.arange(logits.shape[1])[None, :]
    picked = logp[b_idx, t_idx, targets]
    loss = -picked.sum() * loss_scale
    dlogits = np.exp(logp)
    dlogits[b_idx, t_idx, targets] -= 1.0
    return float(loss), dlogits * loss_scale
