"""NumPy training substrate: slice-wise transformer with split backward."""

from repro.nn.adam import Adam
from repro.nn.layers import Component, DecoderLayer, Embedding, LossHead
from repro.nn.model import TransformerModel, build_model, sequential_step

__all__ = [
    "Adam",
    "Component",
    "DecoderLayer",
    "Embedding",
    "LossHead",
    "TransformerModel",
    "build_model",
    "sequential_step",
]
