"""Adam optimizer over a model's parameter/gradient dictionaries."""

from __future__ import annotations

import numpy as np

from repro.nn.model import TransformerModel


class Adam:
    """Standard Adam (Kingma & Ba) with bias correction.

    Operates in place on a :class:`TransformerModel`'s parameters using
    the gradients its components accumulated.
    """

    def __init__(
        self,
        model: TransformerModel,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        self.model = model
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.step_count = 0
        self.m = {k: np.zeros_like(v) for k, v in model.named_params().items()}
        self.v = {k: np.zeros_like(v) for k, v in model.named_params().items()}

    def step(self) -> None:
        """Apply one update and zero the gradients."""
        self.step_count += 1
        t = self.step_count
        params = self.model.named_params()
        grads = self.model.named_grads()
        for key, p in params.items():
            g = grads[key]
            self.m[key] = self.beta1 * self.m[key] + (1 - self.beta1) * g
            self.v[key] = self.beta2 * self.v[key] + (1 - self.beta2) * g * g
            m_hat = self.m[key] / (1 - self.beta1**t)
            v_hat = self.v[key] / (1 - self.beta2**t)
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        self.model.init_grads()
