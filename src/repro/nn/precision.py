"""Mixed-precision training utilities (Section 9, second point).

Training in FP16 "is prone to overflow and underflow issues, requiring
techniques like sandwich layer normalization and embedding layer
gradient shrink" (citing GLM-130B).  This module provides the standard
toolkit: dynamic loss scaling with overflow-skip, and the embedding
gradient shrink.  The substrate itself computes in float64 for
verifiability; these utilities operate on its gradient dictionaries and
are exercised with injected overflows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.model import TransformerModel


def has_overflow(grads: dict[str, np.ndarray]) -> bool:
    """True if any gradient contains inf or NaN."""
    return any(not np.isfinite(g).all() for g in grads.values())


@dataclass
class LossScaler:
    """Dynamic loss scaling with overflow-skip (NVIDIA Apex semantics).

    The loss is multiplied by ``scale`` before backward; gradients are
    divided by it before the optimizer step.  On overflow the step is
    skipped and the scale halved; after ``growth_interval`` clean steps
    the scale doubles.

    Attributes:
        scale: Current loss scale.
        growth_interval: Clean steps before the scale doubles.
        min_scale / max_scale: Clamping bounds.
    """

    scale: float = 2.0**15
    growth_interval: int = 200
    min_scale: float = 1.0
    max_scale: float = 2.0**24
    backoff: float = 0.5
    growth: float = 2.0
    _clean_steps: int = 0
    skipped_steps: int = 0

    def scale_loss(self, loss: float) -> float:
        """Value the backward pass should start from."""
        return loss * self.scale

    def unscale_and_check(self, grads: dict[str, np.ndarray]) -> bool:
        """Unscale gradients in place; returns True if the step may run.

        On overflow the gradients are zeroed (the step must be skipped)
        and the scale backs off.
        """
        if has_overflow(grads):
            for g in grads.values():
                g[...] = 0.0
            self.scale = max(self.min_scale, self.scale * self.backoff)
            self._clean_steps = 0
            self.skipped_steps += 1
            return False
        inv = 1.0 / self.scale
        for g in grads.values():
            g *= inv
        self._clean_steps += 1
        if self._clean_steps >= self.growth_interval:
            self.scale = min(self.max_scale, self.scale * self.growth)
            self._clean_steps = 0
        return True


def shrink_embedding_gradients(model: TransformerModel, alpha: float = 0.1) -> None:
    """GLM-130B's embedding-layer gradient shrink.

    Scales the embedding table's gradient by ``alpha``, damping the
    disproportionately large early-training embedding updates that
    destabilize FP16 runs.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    model.embedding.grads["table"] *= alpha


@dataclass
class GradNormClipper:
    """Global gradient-norm clipping (standard Megatron companion)."""

    max_norm: float = 1.0
    last_norm: float = field(default=0.0, init=False)

    def clip(self, grads: dict[str, np.ndarray]) -> float:
        """Scale all gradients so their global L2 norm <= max_norm."""
        total = 0.0
        for g in grads.values():
            total += float(np.sum(g * g))
        norm = float(np.sqrt(total))
        self.last_norm = norm
        if norm > self.max_norm and norm > 0:
            factor = self.max_norm / norm
            for g in grads.values():
                g *= factor
        return norm
