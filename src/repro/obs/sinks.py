"""Concrete event sinks: in-memory, JSONL streaming, Chrome trace, tee.

The sink matrix (see ``docs/observability.md``):

============== ======== ======================================== =========
sink           enabled  destination                              use
============== ======== ======================================== =========
``NullSink``   no       nowhere                                  default
``MemorySink`` yes      ``events`` list                          tests, metrics
``JsonlSink``  yes      one JSON object per line                 streaming/logs
``ChromeTraceSink`` yes Chrome/Perfetto JSON file on ``close()`` trace viewers
``QueueSink``  yes      thread-safe queue another thread drains  services
``TeeSink``    yes      fan-out to several sinks                 composition
============== ======== ======================================== =========
"""

from __future__ import annotations

import json
import queue as _queue
from collections.abc import Iterable, Iterator, Mapping
from pathlib import Path
from typing import IO

from repro.obs.events import Event, EventSink, Sink


class MemorySink(Sink):
    """Collects events into a list, in emit order."""

    def __init__(self) -> None:
        super().__init__()
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def spans(self) -> list[Event]:
        """The span events, in emit order."""
        return [e for e in self.events if e.kind == "span"]

    def instants(self) -> list[Event]:
        """The instant events, in emit order."""
        return [e for e in self.events if e.kind == "instant"]

    def counters(self, name: str | None = None) -> list[Event]:
        """Counter samples, optionally filtered by series name."""
        return [
            e
            for e in self.events
            if e.kind == "counter" and (name is None or e.name == name)
        ]

    def counter_value(self, name: str, tid: int = 0, pid: int = 0) -> float:
        """Last sample of one counter series on one track."""
        for e in reversed(self.events):
            if (
                e.kind == "counter"
                and e.name == name
                and e.tid == tid
                and e.pid == pid
            ):
                return e.value
        raise KeyError(f"no counter {name!r} on pid={pid} tid={tid}")


class JsonlSink(Sink):
    """Streams each event as one JSON line to a file or file object."""

    def __init__(self, target: str | Path | IO[str]) -> None:
        super().__init__()
        if isinstance(target, (str, Path)):
            self.path: Path | None = Path(target)
            self._fh: IO[str] = self.path.open("w")
            self._owns = True
        else:
            self.path = None
            self._fh = target
            self._owns = False

    def emit(self, event: Event) -> None:
        # No sort_keys: ``to_dict`` order is already deterministic, and
        # sorting would reorder ``args`` and break exact round-trips.
        self._fh.write(json.dumps(event.to_dict()))
        self._fh.write("\n")

    def close(self) -> None:
        super().close()
        self._fh.flush()
        if self._owns:
            self._fh.close()


def read_jsonl(source: str | Path | Iterable[str]) -> list[Event]:
    """Parse a JSONL event stream back into :class:`Event` objects."""
    lines: Iterator[str]
    if isinstance(source, (str, Path)):
        lines = iter(Path(source).read_text().splitlines())
    else:
        lines = iter(source)
    events: list[Event] = []
    for line in lines:
        line = line.strip()
        if line:
            events.append(Event.from_dict(json.loads(line)))
    return events


class ChromeTraceSink(Sink):
    """Buffers events and writes a Chrome-trace JSON file on ``close``.

    Args:
        path: Output file (open it at https://ui.perfetto.dev).
        time_unit_us: Microseconds per unit of event time — ``1e6``
            when events carry seconds (the runtime), anything for the
            simulator's abstract units.
        other_data: Extra payload for the trace's ``otherData`` block.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        time_unit_us: float = 1e6,
        other_data: Mapping[str, object] | None = None,
    ) -> None:
        super().__init__()
        self.path = Path(path)
        self.time_unit_us = time_unit_us
        self.other_data: dict[str, object] = dict(other_data or {})
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def trace_dict(self) -> dict[str, object]:
        """The Chrome-trace dictionary for the buffered events."""
        from repro.obs.chrome import OP_COLORS, chrome_trace

        return chrome_trace(
            self.events,
            time_unit_us=self.time_unit_us,
            other_data=self.other_data,
            colors=OP_COLORS,
        )

    def close(self) -> None:
        super().close()
        self.path.write_text(json.dumps(self.trace_dict()))


class QueueSink(Sink):
    """Bridges the event bus into a thread-safe queue.

    The emitting side (a planner sweep or simulation running on an
    executor thread) calls the usual sink primitives; a consumer on
    any other thread — e.g. the asyncio service pumping per-job
    progress streams — drains complete events with :meth:`drain`
    without ever blocking the producer.  ``close()`` enqueues a
    ``None`` sentinel; once the consumer has drained it,
    :attr:`finished` is ``True`` and no further events will arrive.
    """

    def __init__(self) -> None:
        super().__init__()
        self._queue: _queue.SimpleQueue[Event | None] = _queue.SimpleQueue()
        #: Set by :meth:`drain` once the close sentinel has been seen.
        self.finished = False

    def emit(self, event: Event) -> None:
        self._queue.put(event)

    def close(self) -> None:
        super().close()
        self._queue.put(None)

    def drain(self) -> list[Event]:
        """Every event enqueued since the last drain (non-blocking)."""
        events: list[Event] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except _queue.Empty:
                return events
            if item is None:
                self.finished = True
                return events
            events.append(item)


class TeeSink(Sink):
    """Forwards every event to several sinks."""

    def __init__(self, *sinks: EventSink) -> None:
        super().__init__()
        self.sinks: tuple[EventSink, ...] = sinks

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)
