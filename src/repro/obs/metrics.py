"""The redesigned result/metrics API shared by simulator and runtime.

MEPipe's evaluation revolves around a handful of per-iteration
quantities — per-op timelines (Figures 11-12), per-stage bubble ratio
and peak activation memory (Tables 2-3), and cross-stage communication
volume.  Both execution substrates expose them through one vocabulary:

* :class:`PipelineResult` — the protocol ``SimResult`` (simulated) and
  ``RunResult`` (numerically executed) both satisfy, so experiments and
  visualization stop special-casing the two.
* :class:`IterationMetrics` — the uniform per-iteration summary either
  result derives via ``metrics()``; the ``repro report`` CLI prints it.
* :class:`CommLog` — cross-stage traffic (moved here from
  ``repro.pipeline.runtime``, which re-exports it unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schedules.base import PipelineProblem


@dataclass
class CommLog:
    """Cross-stage traffic of one iteration: message counts and bytes."""

    messages: dict[tuple[int, int], int] = field(default_factory=dict)
    bytes_total: int = 0

    def note(self, src: int, dst: int, nbytes: int) -> None:
        key = (src, dst)
        self.messages[key] = self.messages.get(key, 0) + 1
        self.bytes_total += nbytes

    @property
    def message_count(self) -> int:
        return sum(self.messages.values())


def schedule_comm_log(
    problem: "PipelineProblem", bytes_per_message: float = 0.0
) -> CommLog:
    """The cross-stage traffic any valid execution of ``problem`` incurs.

    Every chunk-boundary edge that crosses a stage boundary is one
    message: forward activations flow ``c -> c+1``, activation
    gradients flow ``c -> c-1`` (mirroring exactly the sends the
    numerical runtime performs).  ``bytes_per_message`` sizes each
    message when the payload is known (the boundary tensor of one
    micro-batch slice); counts are exact either way.
    """
    log = CommLog()
    per_sample = problem.num_microbatches * problem.num_slices
    nbytes = int(bytes_per_message)
    for c in range(problem.num_chunks - 1):
        src, dst = problem.stage_of_chunk(c), problem.stage_of_chunk(c + 1)
        if src == dst:
            continue
        for _ in range(per_sample):
            log.note(src, dst, nbytes)  # forward activation c -> c+1
            log.note(dst, src, nbytes)  # activation gradient c+1 -> c
    return log


@dataclass(frozen=True)
class SpanRow:
    """One executed op in the uniform span table."""

    stage: int
    name: str
    cat: str
    start: float
    duration: float


@dataclass(frozen=True)
class IterationMetrics:
    """Uniform summary of one training iteration, however it was run.

    Attributes:
        source: ``"sim"`` (discrete-event replay) or ``"runtime"``
            (numerical execution).
        time_unit: ``"model"`` for the simulator's abstract/calibrated
            units, ``"seconds"`` for measured wall clock.
        schedule_name: Name of the executed schedule.
        num_stages: Pipeline stages.
        ops_executed: Total ops across stages.
        stage_op_counts: Ops per stage.
        bubble_ratio: Aggregate idle fraction ``1 - busy/(p*makespan)``
            in the result's own time base (for the runtime this is
            wall-clock idle of the single-process execution).
        stage_peak_bytes: Per-stage peak live activation bytes (the
            simulator converts its ledger units via the cost model's
            bytes-per-unit; zero when no conversion is known).
        comm_messages: Cross-stage messages sent.
        comm_bytes: Cross-stage bytes sent (zero when payload sizes are
            unknown to the substrate).
        span_table: Per-op ``(stage, name, kind, start, duration)``
            rows, per-stage in start order.
    """

    source: str
    time_unit: str
    schedule_name: str
    num_stages: int
    ops_executed: int
    stage_op_counts: tuple[int, ...]
    bubble_ratio: float
    stage_peak_bytes: tuple[int, ...]
    comm_messages: int
    comm_bytes: int
    span_table: tuple[SpanRow, ...]

    @property
    def peak_live_bytes(self) -> int:
        """Largest per-stage peak."""
        return max(self.stage_peak_bytes, default=0)

    def to_dict(self, spans: bool = False) -> dict[str, object]:
        """JSON-serializable form; ``spans`` includes the span table."""
        out: dict[str, object] = {
            "source": self.source,
            "time_unit": self.time_unit,
            "schedule": self.schedule_name,
            "num_stages": self.num_stages,
            "ops_executed": self.ops_executed,
            "stage_op_counts": list(self.stage_op_counts),
            "bubble_ratio": self.bubble_ratio,
            "stage_peak_bytes": list(self.stage_peak_bytes),
            "peak_live_bytes": self.peak_live_bytes,
            "comm_messages": self.comm_messages,
            "comm_bytes": self.comm_bytes,
        }
        if spans:
            out["span_table"] = [
                {
                    "stage": r.stage,
                    "name": r.name,
                    "cat": r.cat,
                    "start": r.start,
                    "duration": r.duration,
                }
                for r in self.span_table
            ]
        return out

    def render_text(self) -> str:
        """Fixed-width rendering for the ``repro report`` CLI."""
        lines = [
            f"== {self.schedule_name} [{self.source}, {self.time_unit}] ==",
            f"  stages           {self.num_stages}",
            f"  ops executed     {self.ops_executed}  "
            f"(per stage: {', '.join(str(c) for c in self.stage_op_counts)})",
            f"  bubble ratio     {self.bubble_ratio:.4f}",
            f"  peak live bytes  {self.peak_live_bytes}  "
            f"(per stage: {', '.join(str(b) for b in self.stage_peak_bytes)})",
            f"  comm messages    {self.comm_messages}",
            f"  comm bytes       {self.comm_bytes}",
        ]
        return "\n".join(lines)


@runtime_checkable
class PipelineResult(Protocol):
    """What any per-iteration result exposes, simulated or executed.

    ``SimResult`` and ``RunResult`` both satisfy this protocol; the
    legacy per-class attributes (``peak_activation_units``,
    ``stage_stats``, ``comms``, ...) remain as thin delegates.
    """

    schedule_name: str

    @property
    def bubble_ratio(self) -> float: ...

    @property
    def peak_live_bytes(self) -> int: ...

    @property
    def stage_peak_bytes(self) -> tuple[int, ...]: ...

    @property
    def comm_volume(self) -> CommLog: ...

    def stage_records(self, stage: int) -> list[Any]: ...

    def metrics(self) -> IterationMetrics: ...


def iteration_metrics(
    result: Any, *, source: str, time_unit: str, num_stages: int
) -> IterationMetrics:
    """Derive :class:`IterationMetrics` from any :class:`PipelineResult`.

    The derivation is uniform: only the protocol accessors are used, so
    a simulated and an executed iteration of the same schedule produce
    structurally identical metrics (same rows, same op counts, same
    communication volume) with only the time base differing.
    """
    rows: list[SpanRow] = []
    counts: list[int] = []
    for stage in range(num_stages):
        records = result.stage_records(stage)
        counts.append(len(records))
        for record in records:
            rows.append(
                SpanRow(
                    stage=stage,
                    name=str(record.op),
                    cat=record.op.kind.value,
                    start=record.start,
                    duration=record.duration,
                )
            )
    comms: CommLog = result.comm_volume
    return IterationMetrics(
        source=source,
        time_unit=time_unit,
        schedule_name=result.schedule_name,
        num_stages=num_stages,
        ops_executed=sum(counts),
        stage_op_counts=tuple(counts),
        bubble_ratio=result.bubble_ratio,
        stage_peak_bytes=tuple(result.stage_peak_bytes),
        comm_messages=comms.message_count,
        comm_bytes=comms.bytes_total,
        span_table=tuple(rows),
    )
