"""Chrome-trace (``chrome://tracing`` / Perfetto) rendering of events.

This is the JSON event format the paper's own timeline figures (11-12)
were made with.  It absorbs the former ``repro.viz.trace`` exporter:
:func:`sim_chrome_trace` reproduces that module's output exactly (one
row per stage, one duration event per op, colored by op kind), while
:func:`chrome_trace` renders *any* event stream from the telemetry bus
— including a simulated and an executed iteration side by side as two
process groups in one trace.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports obs)
    from repro.sim.executor import SimResult

#: Perfetto color names per op-kind category.
OP_COLORS = {
    "F": "thread_state_running",
    "B": "thread_state_iowait",
    "W": "thread_state_runnable",
}

#: Floor for rendered span durations so zero-length ops stay visible.
MIN_DUR_US = 0.01


def chrome_trace(
    events: list[Event],
    *,
    time_unit_us: float = 1e6,
    other_data: Mapping[str, object] | None = None,
    colors: Mapping[str, str] | None = None,
) -> dict[str, object]:
    """Convert a telemetry event stream into a Chrome-trace dictionary.

    Args:
        events: Events in emission order (preserved in the output).
        time_unit_us: Microseconds per unit of event time (1e6 when
            events carry seconds; pick anything for abstract units).
        other_data: Payload for the trace's ``otherData`` block.
        colors: Optional category -> Perfetto ``cname`` mapping applied
            to spans (:data:`OP_COLORS` colors op kinds).
    """
    out: list[dict[str, object]] = []
    for event in events:
        if event.kind == "meta":
            out.append(
                {
                    "name": event.name,
                    "ph": "M",
                    "pid": event.pid,
                    "tid": event.tid,
                    "args": dict(event.args),
                }
            )
        elif event.kind == "span":
            entry: dict[str, object] = {
                "name": event.name,
                "cat": event.cat,
                "ph": "X",
                "pid": event.pid,
                "tid": event.tid,
                "ts": event.ts * time_unit_us,
                "dur": max(event.dur * time_unit_us, MIN_DUR_US),
            }
            if colors and event.cat in colors:
                entry["cname"] = colors[event.cat]
            entry["args"] = dict(event.args)
            out.append(entry)
        elif event.kind == "instant":
            out.append(
                {
                    "name": event.name,
                    "cat": event.cat,
                    "ph": "i",
                    "s": "t",
                    "pid": event.pid,
                    "tid": event.tid,
                    "ts": event.ts * time_unit_us,
                    "args": dict(event.args),
                }
            )
        else:  # counter
            out.append(
                {
                    "name": event.name,
                    "ph": "C",
                    "pid": event.pid,
                    "tid": event.tid,
                    "ts": event.ts * time_unit_us,
                    "args": {"value": event.value},
                }
            )
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": dict(other_data or {}),
    }


def sim_chrome_trace(
    result: "SimResult", time_unit_us: float = 1e6
) -> dict[str, object]:
    """Chrome trace of one simulated iteration.

    Produces the exact event structure of the legacy
    ``repro.viz.trace.to_chrome_trace`` (same rows, events, colors, and
    ``otherData``), but routed through the telemetry bus: the trace is
    one :func:`~repro.obs.record.record_iteration` pass into a
    :class:`~repro.obs.sinks.MemorySink`, rendered by
    :func:`chrome_trace`.
    """
    from repro.obs.record import record_iteration
    from repro.obs.sinks import MemorySink

    sink = MemorySink()
    record_iteration(result, sink, counters=False, channel_events=False)
    # The legacy exporter did not emit span args beyond the op coords;
    # record_iteration emits exactly those, so the structures agree.
    return chrome_trace(
        sink.events,
        time_unit_us=time_unit_us,
        colors=OP_COLORS,
        other_data={
            "schedule": result.schedule_name,
            "bubble_ratio": round(result.bubble_ratio, 6),
            "peak_activation_units": round(result.peak_activation_units, 6),
        },
    )


def write_sim_trace(
    result: "SimResult", path: str | Path, time_unit_us: float = 1e6
) -> Path:
    """Write :func:`sim_chrome_trace` JSON to ``path`` and return it."""
    path = Path(path)
    path.write_text(json.dumps(sim_chrome_trace(result, time_unit_us)))
    return path
