"""Event primitives of the telemetry bus.

Everything the library observes — simulated op timelines, real
wall-clock execution, profiler measurements, planner sweep progress —
is expressed as one small vocabulary of events:

* **span** — a named interval ``[ts, ts + dur)`` on a track
  (``pid``/``tid``; by convention ``tid`` is the pipeline stage).
* **instant** — a point event (channel send/recv, cache hit, skip).
* **counter** — a sampled numeric series (activation bytes, bubble
  ratio, cache hits).
* **meta** — track naming (``thread_name`` / ``process_name``).

Sinks receive the events; :mod:`repro.obs.sinks` provides in-memory
collection, JSONL streaming, and Chrome-trace export, and the
:data:`NULL_SINK` here makes uninstrumented runs effectively free:
every instrumentation site guards on ``sink.enabled`` before building
any event, so the disabled path costs one attribute load and branch.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

#: Frozen, deterministic representation of event arguments.
ArgItems = tuple[tuple[str, object], ...]

#: The event kinds of the bus (the ``Event.kind`` values).
EVENT_KINDS = ("span", "instant", "counter", "meta")


class ObsError(RuntimeError):
    """Misuse of the telemetry API (e.g. unbalanced ``begin``/``end``)."""


def _freeze_args(args: Mapping[str, object] | ArgItems | None) -> ArgItems:
    if not args:
        return ()
    if isinstance(args, tuple):
        return args
    return tuple(args.items())


@dataclass(frozen=True)
class Event:
    """One telemetry event.

    Attributes:
        kind: ``"span"`` / ``"instant"`` / ``"counter"`` / ``"meta"``.
        name: Event name (op tag, counter name, or the meta key
            ``thread_name`` / ``process_name``).
        ts: Timestamp in the emitting substrate's time base — simulated
            time units for the simulator, seconds since iteration start
            for the runtime/profiler/planner.
        dur: Span length (spans only).
        tid: Track within the process; by convention the pipeline stage.
        pid: Process/row group; used to lay a simulated and an executed
            iteration side by side in one trace.
        cat: Category (op kind ``F``/``B``/``W``, ``eval``, ...).
        value: Counter sample (counters only).
        args: Frozen key/value payload.
    """

    kind: str
    name: str
    ts: float = 0.0
    dur: float = 0.0
    tid: int = 0
    pid: int = 0
    cat: str = ""
    value: float = 0.0
    args: ArgItems = ()

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ObsError(f"unknown event kind {self.kind!r}")
        if not isinstance(self.args, tuple):  # accept a plain mapping
            object.__setattr__(self, "args", _freeze_args(self.args))

    def arg(self, key: str) -> object:
        """Payload value for ``key`` (``None`` when absent)."""
        for k, v in self.args:
            if k == key:
                return v
        return None

    @property
    def end(self) -> float:
        """Span end time ``ts + dur``."""
        return self.ts + self.dur

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (see :func:`Event.from_dict`)."""
        out: dict[str, object] = {
            "kind": self.kind,
            "name": self.name,
            "ts": self.ts,
            "dur": self.dur,
            "tid": self.tid,
            "pid": self.pid,
            "cat": self.cat,
            "value": self.value,
        }
        if self.args:
            out["args"] = dict(self.args)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> Event:
        """Inverse of :meth:`to_dict` (JSONL round-trip)."""
        args = data.get("args")
        if args is not None and not isinstance(args, Mapping):
            raise ObsError(f"event args must be a mapping, got {type(args)}")
        return cls(
            kind=str(data["kind"]),
            name=str(data["name"]),
            ts=float(data.get("ts", 0.0)),  # type: ignore[arg-type]
            dur=float(data.get("dur", 0.0)),  # type: ignore[arg-type]
            tid=int(data.get("tid", 0)),  # type: ignore[arg-type]
            pid=int(data.get("pid", 0)),  # type: ignore[arg-type]
            cat=str(data.get("cat", "")),
            value=float(data.get("value", 0.0)),  # type: ignore[arg-type]
            args=_freeze_args(args),
        )


@runtime_checkable
class EventSink(Protocol):
    """What every telemetry consumer implements.

    ``enabled`` lets instrumentation sites skip event construction
    entirely when nothing is listening; ``emit`` receives each event,
    and the span/instant/counter primitives are conveniences layered on
    it (:class:`Sink` provides them; subclass it rather than
    implementing the protocol from scratch).
    """

    enabled: bool

    def emit(self, event: Event) -> None: ...

    def span(
        self,
        name: str,
        *,
        ts: float,
        dur: float,
        tid: int = 0,
        pid: int = 0,
        cat: str = "",
        args: Mapping[str, object] | ArgItems | None = None,
    ) -> None: ...

    def begin(
        self,
        name: str,
        *,
        ts: float,
        tid: int = 0,
        pid: int = 0,
        cat: str = "",
        args: Mapping[str, object] | ArgItems | None = None,
    ) -> None: ...

    def end(self, *, ts: float, tid: int = 0, pid: int = 0) -> None: ...

    def instant(
        self,
        name: str,
        *,
        ts: float,
        tid: int = 0,
        pid: int = 0,
        cat: str = "",
        args: Mapping[str, object] | ArgItems | None = None,
    ) -> None: ...

    def counter(
        self,
        name: str,
        value: float,
        *,
        ts: float,
        tid: int = 0,
        pid: int = 0,
    ) -> None: ...

    def thread_name(self, tid: int, name: str, *, pid: int = 0) -> None: ...

    def process_name(self, pid: int, name: str) -> None: ...


@dataclass
class _OpenSpan:
    name: str
    ts: float
    cat: str
    args: ArgItems


class Sink:
    """Base sink: ``emit`` is abstract, the primitives are provided.

    ``begin``/``end`` maintain a per-``(pid, tid)`` stack and emit one
    complete span when the matching ``end`` arrives, so nested begins
    always produce properly nested spans (children are emitted before
    their parents and are contained in them).
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._open: dict[tuple[int, int], list[_OpenSpan]] = {}

    # -- transport ------------------------------------------------------
    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/finalize; open ``begin`` spans are an error."""
        leftover = sum(len(v) for v in self._open.values())
        if leftover:
            raise ObsError(f"{leftover} span(s) still open at close")

    def __enter__(self) -> Sink:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- primitives -----------------------------------------------------
    def span(
        self,
        name: str,
        *,
        ts: float,
        dur: float,
        tid: int = 0,
        pid: int = 0,
        cat: str = "",
        args: Mapping[str, object] | ArgItems | None = None,
    ) -> None:
        """Emit a complete span."""
        self.emit(
            Event(
                kind="span", name=name, ts=ts, dur=dur, tid=tid, pid=pid,
                cat=cat, args=_freeze_args(args),
            )
        )

    def begin(
        self,
        name: str,
        *,
        ts: float,
        tid: int = 0,
        pid: int = 0,
        cat: str = "",
        args: Mapping[str, object] | ArgItems | None = None,
    ) -> None:
        """Open a span; the matching :meth:`end` emits it."""
        stack = self._open.setdefault((pid, tid), [])
        stack.append(_OpenSpan(name=name, ts=ts, cat=cat, args=_freeze_args(args)))

    def end(self, *, ts: float, tid: int = 0, pid: int = 0) -> None:
        """Close the innermost open span on ``(pid, tid)``."""
        stack = self._open.get((pid, tid))
        if not stack:
            raise ObsError(f"end without begin on pid={pid} tid={tid}")
        top = stack.pop()
        if ts < top.ts:
            raise ObsError(
                f"span {top.name!r} ends at {ts} before it begins at {top.ts}"
            )
        self.span(
            top.name, ts=top.ts, dur=ts - top.ts, tid=tid, pid=pid,
            cat=top.cat, args=top.args,
        )

    def instant(
        self,
        name: str,
        *,
        ts: float,
        tid: int = 0,
        pid: int = 0,
        cat: str = "",
        args: Mapping[str, object] | ArgItems | None = None,
    ) -> None:
        """Emit a point event."""
        self.emit(
            Event(
                kind="instant", name=name, ts=ts, tid=tid, pid=pid, cat=cat,
                args=_freeze_args(args),
            )
        )

    def counter(
        self,
        name: str,
        value: float,
        *,
        ts: float,
        tid: int = 0,
        pid: int = 0,
    ) -> None:
        """Emit one sample of a numeric series."""
        self.emit(
            Event(kind="counter", name=name, ts=ts, tid=tid, pid=pid, value=value)
        )

    def thread_name(self, tid: int, name: str, *, pid: int = 0) -> None:
        """Name a track (Chrome ``thread_name`` metadata)."""
        self.emit(
            Event(
                kind="meta", name="thread_name", tid=tid, pid=pid,
                args=(("name", name),),
            )
        )

    def process_name(self, pid: int, name: str) -> None:
        """Name a process row group (Chrome ``process_name`` metadata)."""
        self.emit(
            Event(kind="meta", name="process_name", pid=pid, args=(("name", name),))
        )


class NullSink(Sink):
    """Discards everything; ``enabled`` is ``False``.

    Instrumented code guards on ``sink.enabled``, so with this sink the
    telemetry layer reduces to one attribute check per site — measured
    to be inside the benchmark suite's noise floor (see
    ``benchmarks/test_bench_obs.py``).
    """

    enabled = False

    def emit(self, event: Event) -> None:
        pass


#: Shared no-op sink — the default everywhere instrumentation is wired.
NULL_SINK = NullSink()
