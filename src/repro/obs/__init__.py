"""Unified telemetry bus: events, sinks, traces, iteration metrics.

One instrumentation layer every substrate emits into — the simulator,
the numerical pipeline runtime, the profiler, and the planner sweeps —
and one result API every consumer reads from (``IterationMetrics`` via
the shared ``PipelineResult`` protocol).  See ``docs/observability.md``.
"""

from repro.obs.chrome import (
    OP_COLORS,
    chrome_trace,
    sim_chrome_trace,
    write_sim_trace,
)
from repro.obs.events import (
    NULL_SINK,
    Event,
    EventSink,
    NullSink,
    ObsError,
    Sink,
)
from repro.obs.metrics import (
    CommLog,
    IterationMetrics,
    PipelineResult,
    SpanRow,
    iteration_metrics,
    schedule_comm_log,
)
from repro.obs.record import record_iteration, record_sim_comm
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    QueueSink,
    TeeSink,
    read_jsonl,
)

__all__ = [
    "NULL_SINK",
    "OP_COLORS",
    "ChromeTraceSink",
    "CommLog",
    "Event",
    "EventSink",
    "IterationMetrics",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "ObsError",
    "PipelineResult",
    "QueueSink",
    "Sink",
    "SpanRow",
    "TeeSink",
    "chrome_trace",
    "iteration_metrics",
    "read_jsonl",
    "record_iteration",
    "record_sim_comm",
    "schedule_comm_log",
    "sim_chrome_trace",
    "write_sim_trace",
]
