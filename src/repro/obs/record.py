"""Uniform instrumentation of per-iteration results onto the bus.

:func:`record_iteration` turns any :class:`~repro.obs.metrics
.PipelineResult` — a simulated ``SimResult`` or an executed
``RunResult`` — into the same event stream: one named track per
pipeline stage, one span per op, instant send/recv events for every
cross-stage channel message, and per-stage counters.  Because the
derivation only reads the shared protocol, a simulated and an executed
iteration of the same schedule render **row-for-row identically** in a
trace viewer; only the time base (model units vs wall-clock seconds)
differs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.events import EventSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schedules.base import OpId
    from repro.sim.executor import SimResult
    from repro.sim.cost import CostModel


def _channel_tag(op: "OpId", dst_chunk: int) -> str:
    """Stable name of the channel message an op emits."""
    return f"{op.kind.value}{op.microbatch}.{op.slice_idx} c{op.chunk}>c{dst_chunk}"


def record_iteration(
    result: Any,
    sink: EventSink,
    *,
    pid: int = 0,
    process: str | None = None,
    counters: bool = True,
    channel_events: bool = True,
) -> None:
    """Emit one iteration's telemetry into ``sink``.

    Args:
        result: Any :class:`~repro.obs.metrics.PipelineResult` — needs
            ``problem``, ``schedule_name``, and ``stage_records``.
        sink: Destination; a disabled sink returns immediately.
        pid: Process group for the emitted events (lay a simulated and
            an executed iteration side by side with different pids).
        process: Optional process name metadata.
        counters: Also emit the per-stage counter series.
        channel_events: Also emit send/recv instants for cross-stage
            channel messages.
    """
    if not sink.enabled:
        return
    from repro.schedules.base import OpKind

    problem = result.problem
    num_stages = problem.num_stages
    if process is not None:
        sink.process_name(pid, process)

    # One named row per stage, spans in start order — the exact layout
    # the legacy viz.trace exporter produced.
    for stage in range(num_stages):
        sink.thread_name(stage, f"stage {stage}", pid=pid)
        for record in result.stage_records(stage):
            op = record.op
            sink.span(
                str(op),
                ts=record.start,
                dur=record.duration,
                tid=stage,
                pid=pid,
                cat=op.kind.value,
                args={
                    "microbatch": op.microbatch,
                    "slice": op.slice_idx,
                    "chunk": op.chunk,
                },
            )

    if channel_events:
        records = {
            r.op: r
            for s in range(num_stages)
            for r in result.stage_records(s)
        }
        for op, record in records.items():
            if op.kind is OpKind.F and op.chunk < problem.num_chunks - 1:
                dst_chunk = op.chunk + 1
                consumer = _peer_op(op, dst_chunk)
            elif op.kind is OpKind.B and op.chunk > 0:
                dst_chunk = op.chunk - 1
                consumer = _peer_op(op, dst_chunk)
            else:
                continue
            src = problem.stage_of_chunk(op.chunk)
            dst = problem.stage_of_chunk(dst_chunk)
            if src == dst:
                continue
            tag = _channel_tag(op, dst_chunk)
            args = {"src": src, "dst": dst}
            sink.instant(
                f"send {tag}", ts=record.end, tid=src, pid=pid,
                cat="channel", args=args,
            )
            peer = records.get(consumer)
            if peer is not None:
                sink.instant(
                    f"recv {tag}", ts=peer.start, tid=dst, pid=pid,
                    cat="channel", args=args,
                )

    if counters:
        _record_counters(result, sink, pid)


def _peer_op(op: "OpId", chunk: int) -> "OpId":
    """The same (kind, microbatch, slice) coordinate on another chunk."""
    from repro.schedules.base import OpId

    return OpId(op.kind, op.microbatch, op.slice_idx, chunk)


def _record_counters(result: Any, sink: EventSink, pid: int) -> None:
    """Per-stage counter series, from whichever stats the result has."""
    problem = result.problem
    stages = getattr(result, "stages", None)
    if stages is not None:  # SimResult: ledger units and sim-time ratios
        from repro.viz.memory import activation_series

        makespan = result.makespan
        for metric in stages:
            s = metric.stage
            for ts, units in activation_series(result, s):
                sink.counter("activation_units", units, ts=ts, tid=s, pid=pid)
            sink.counter("busy_time", metric.busy_time, ts=makespan, tid=s, pid=pid)
            sink.counter(
                "bubble_ratio", result.stage_bubble_ratio(s),
                ts=makespan, tid=s, pid=pid,
            )
            sink.counter(
                "peak_activation_units", metric.peak_activation_units,
                ts=makespan, tid=s, pid=pid,
            )
    stage_stats = getattr(result, "stage_stats", None)
    if stage_stats is not None:  # RunResult: measured bytes and wall clock
        wall = result.wall_seconds
        for stat in stage_stats:
            s = stat.stage
            sink.counter(
                "peak_live_bytes", float(stat.peak_live_bytes),
                ts=wall, tid=s, pid=pid,
            )
            sink.counter(
                "peak_live_contexts", float(stat.peak_live_contexts),
                ts=wall, tid=s, pid=pid,
            )
            sink.counter(
                "busy_seconds", stat.busy_seconds, ts=wall, tid=s, pid=pid
            )
            if getattr(result, "executor", "serial") == "parallel":
                # Only a multi-process execution measures these: time the
                # worker spent blocked on channel receives, and W-op
                # compute performed while such a receive was pending.
                sink.counter(
                    "wait_seconds", stat.wait_seconds, ts=wall, tid=s, pid=pid
                )
                sink.counter(
                    "overlap_w_seconds", stat.overlap_w_seconds,
                    ts=wall, tid=s, pid=pid,
                )
    comms = getattr(result, "comm_volume", None)
    if comms is not None:
        end_ts = getattr(result, "makespan", None)
        if end_ts is None:
            end_ts = getattr(result, "wall_seconds", 0.0)
        sink.counter("comm_messages", float(comms.message_count), ts=end_ts, pid=pid)
        sink.counter("comm_bytes", float(comms.bytes_total), ts=end_ts, pid=pid)


def record_sim_comm(result: "SimResult", cost: "CostModel", sink: EventSink, *, pid: int = 0) -> None:
    """Per-stage comm/overlap counters for a simulated iteration.

    Computed post-replay (never on the uninstrumented path): per stage,
    the total modeled transfer time on incoming cross-stage edges
    (``comm_time``), and the portion of it that cannot be hiding in the
    stage's idle time (``comm_overlap_time`` — a lower bound on the
    comm/compute overlap the schedule achieves).
    """
    if not sink.enabled:
        return
    problem = result.problem
    num_stages = problem.num_stages
    comm_in = [0.0] * num_stages
    for op in result.records:
        for dep in problem.deps(op):
            if problem.is_cross_stage(dep, op):
                comm_in[problem.stage_of(op)] += cost.comm_time(dep, op)
    makespan = result.makespan
    for metric in result.stages:
        s = metric.stage
        idle = max(makespan - metric.busy_time, 0.0)
        overlapped = max(comm_in[s] - idle, 0.0)
        sink.counter("comm_time", comm_in[s], ts=makespan, tid=s, pid=pid)
        sink.counter(
            "comm_overlap_time", overlapped, ts=makespan, tid=s, pid=pid
        )
