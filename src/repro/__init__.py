"""MEPipe reproduction library.

A from-scratch reproduction of *MEPipe: Democratizing LLM Training with
Memory-Efficient Slice-Level Pipeline Scheduling on Cost-Effective
Accelerators* (EuroSys '25): slice-level pipeline schedules (SVPP),
fine-grained weight-gradient computation, the baselines the paper
compares against, a discrete-event cluster simulator to regenerate every
table/figure, and a NumPy training substrate that executes the schedules
numerically.

Quickstart::

    from repro import LLAMA_13B, ParallelConfig, RTX4090_CLUSTER
    from repro.planner import evaluate_config

    cfg = ParallelConfig(dp=2, pp=8, spp=4)
    result = evaluate_config("mepipe", LLAMA_13B, RTX4090_CLUSTER, cfg,
                             global_batch_size=128)
    print(result.iteration_time_s, result.bubble_ratio)
"""

from repro.hardware import (
    A100_80GB,
    A100_CLUSTER,
    RTX4090_CLUSTER,
    RTX_4090,
    ClusterSpec,
    GPUSpec,
)
from repro.model import (
    LLAMA_7B,
    LLAMA_13B,
    LLAMA_34B,
    ModelSpec,
    get_model,
    tiny_spec,
)
from repro.parallel import ParallelConfig

__version__ = "1.0.0"

__all__ = [
    "A100_80GB",
    "A100_CLUSTER",
    "LLAMA_13B",
    "LLAMA_34B",
    "LLAMA_7B",
    "RTX4090_CLUSTER",
    "RTX_4090",
    "ClusterSpec",
    "GPUSpec",
    "ModelSpec",
    "ParallelConfig",
    "__version__",
    "get_model",
    "tiny_spec",
]
