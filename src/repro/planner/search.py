"""Grid search for the optimal parallel strategy per scheduling method.

Section 7.3 ("Selection of the Optimal Parallel Strategy"): memory and
bubble ratio are predictable, communication and kernel efficiency less
so, hence the paper grid-searches (PP, DP, CP or SPP, VP, recompute)
per method.  This module reproduces that search against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cluster import ClusterSpec
from repro.model.spec import ModelSpec
from repro.parallel.grid import enumerate_configs
from repro.parallel.strategies import ParallelConfig
from repro.planner.evaluate import EvalResult, evaluate_config
from repro.schedules.base import ScheduleError
from repro.schedules.methods import method_traits


@dataclass
class SearchResult:
    """Best configuration found for one method, plus the trail."""

    method: str
    best: EvalResult | None
    evaluated: list[EvalResult]

    @property
    def all_oom(self) -> bool:
        return self.best is None and bool(self.evaluated)


def search_method(
    method: str,
    spec: ModelSpec,
    cluster: ClusterSpec,
    global_batch_size: int,
    max_spp: int = 16,
    max_vp: int = 2,
    min_dp: int = 2,
) -> SearchResult:
    """Find the fastest non-OOM configuration of ``method``.

    The candidate space follows the paper's per-method search spaces
    (Section 7.1 "Baseline"): DAPPLE searches DP/PP/CP/recompute, VPP
    additionally VP, ZB/ZBV search PP/CP only (no recomputation), and
    SVPP/MEPipe search PP/SPP/VP with no CP and no recomputation.
    """
    traits = method_traits(method)
    candidates = enumerate_configs(
        spec,
        cluster.num_devices,
        global_batch_size,
        use_cp=traits.uses_cp,
        use_spp=traits.uses_spp,
        use_vp=traits.uses_vp and traits.fixed_vp is None,
        use_recompute=traits.supports_recompute,
        min_dp=min_dp,
        max_spp=max_spp,
        max_vp=max_vp,
    )
    evaluated: list[EvalResult] = []
    best: EvalResult | None = None
    for config in candidates:
        if traits.fixed_vp is not None and config.vp != 1:
            continue
        if not _worth_evaluating(method, config, spec, cluster, global_batch_size):
            continue
        try:
            result = evaluate_config(
                method, spec, cluster, config, global_batch_size)
        except (ScheduleError, ValueError):
            continue
        evaluated.append(result)
        if result.oom:
            continue
        if best is None or result.iteration_time_s < best.iteration_time_s:
            best = result
    return SearchResult(method=method, best=best, evaluated=evaluated)


def _worth_evaluating(
    method: str,
    config: ParallelConfig,
    spec: ModelSpec,
    cluster: ClusterSpec,
    global_batch_size: int,
) -> bool:
    """Cheap static pruning to keep the search tractable.

    Skips configurations whose *static* memory alone exceeds the device
    (the simulator would only confirm the OOM) and caps the number of
    micro-batches at 512 to bound simulation cost.
    """
    from repro.model.memory import budget_for

    n = global_batch_size // config.dp
    if n > 512:
        return False
    budget = budget_for(
        spec,
        capacity_bytes=cluster.gpu.memory_bytes,
        pipeline_stages=config.pp,
        total_devices=cluster.num_devices,
        micro_batch_tokens=spec.seq_length // (config.cp * config.spp),
    )
    return budget.available_for_activations > 0
