"""Grid search for the optimal parallel strategy per scheduling method.

Section 7.3 ("Selection of the Optimal Parallel Strategy"): memory and
bubble ratio are predictable, communication and kernel efficiency less
so, hence the paper grid-searches (PP, DP, CP or SPP, VP, recompute)
per method.  This module reproduces that search against the simulator.

The search itself is a task list handed to
:mod:`repro.planner.parallel`, which fans evaluations out over a
process pool (``jobs``) and replays previously computed cells from the
on-disk sweep cache; the merge is deterministic in both dimensions.
Every candidate the search does *not* evaluate is recorded in the
result's ``skipped`` trail with the reason, so a sweep is auditable:
``evaluated + skipped`` covers the whole enumerated space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cluster import ClusterSpec
from repro.model.spec import ModelSpec
from repro.obs.events import NULL_SINK, EventSink
from repro.parallel.grid import enumerate_configs
from repro.parallel.strategies import ParallelConfig
from repro.planner.evaluate import EvalResult
from repro.planner.parallel import (
    EvalTask,
    SweepCache,
    evaluate_tasks,
    merge_outcomes,
)
from repro.schedules.methods import method_traits


@dataclass(frozen=True)
class SkippedConfig:
    """One candidate the search rejected without simulating, and why."""

    config: ParallelConfig
    reason: str


@dataclass
class SearchResult:
    """Best configuration found for one method, plus the trail."""

    method: str
    best: EvalResult | None
    evaluated: list[EvalResult]
    #: Candidates rejected before or during evaluation, with reasons
    #: (static pruning, fixed-VP methods, scheduler rejections).
    skipped: list[SkippedConfig] = field(default_factory=list)

    @property
    def all_oom(self) -> bool:
        return self.best is None and bool(self.evaluated)


def search_method(
    method: str,
    spec: ModelSpec,
    cluster: ClusterSpec,
    global_batch_size: int,
    max_spp: int = 16,
    max_vp: int = 2,
    min_dp: int = 2,
    jobs: int = 1,
    cache: SweepCache | None = None,
    sink: EventSink = NULL_SINK,
) -> SearchResult:
    """Find the fastest non-OOM configuration of ``method``.

    The candidate space follows the paper's per-method search spaces
    (Section 7.1 "Baseline"): DAPPLE searches DP/PP/CP/recompute, VPP
    additionally VP, ZB/ZBV search PP/CP only (no recomputation), and
    SVPP/MEPipe search PP/SPP/VP with no CP and no recomputation.

    ``jobs`` fans the evaluations out over a process pool; ``cache``
    replays previously computed cells from disk.  Neither affects the
    returned result — best, trail, and skip reasons are identical for
    every ``jobs`` value and cache state.

    An enabled ``sink`` observes the sweep: per-config ``eval`` spans
    and cache-hit instants from :func:`~repro.planner.parallel
    .evaluate_tasks`, plus one ``skip`` instant per statically pruned
    candidate and a final ``skipped`` counter.
    """
    traits = method_traits(method)
    candidates = enumerate_configs(
        spec,
        cluster.num_devices,
        global_batch_size,
        use_cp=traits.uses_cp,
        use_spp=traits.uses_spp,
        use_vp=traits.uses_vp and traits.fixed_vp is None,
        use_recompute=traits.supports_recompute,
        min_dp=min_dp,
        max_spp=max_spp,
        max_vp=max_vp,
    )
    skipped: list[SkippedConfig] = []
    tasks: list[EvalTask] = []
    for config in candidates:
        if traits.fixed_vp is not None and config.vp != 1:
            skipped.append(
                SkippedConfig(
                    config,
                    f"vp fixed at {traits.fixed_vp} by method {method!r}",
                )
            )
            continue
        reason = prune_reason(method, config, spec, cluster, global_batch_size)
        if reason is not None:
            skipped.append(SkippedConfig(config, reason))
            continue
        tasks.append(
            EvalTask(method, spec, cluster, config, global_batch_size)
        )
    if sink.enabled:
        for skip in skipped:
            sink.instant(
                f"skip {method} {skip.config.describe()}",
                ts=0.0,
                cat="skip",
                args={"method": method, "reason": skip.reason},
            )

    outcomes = evaluate_tasks(tasks, jobs=jobs, cache=cache, sink=sink)
    for task, outcome in zip(tasks, outcomes):
        if not outcome.ok:
            skipped.append(
                SkippedConfig(task.config, f"rejected: {outcome.error}")
            )
    best, evaluated = merge_outcomes(outcomes)
    if sink.enabled:
        sink.counter("skipped", float(len(skipped)), ts=0.0)
    return SearchResult(
        method=method, best=best, evaluated=evaluated, skipped=skipped
    )


def prune_reason(
    method: str,
    config: ParallelConfig,
    spec: ModelSpec,
    cluster: ClusterSpec,
    global_batch_size: int,
) -> str | None:
    """Why a candidate is not worth simulating, or ``None`` to keep it.

    Cheap static pruning to keep the search tractable: skips
    configurations whose *static* memory alone exceeds the device (the
    simulator would only confirm the OOM) and caps the number of
    micro-batches at 512 to bound simulation cost.
    """
    from repro.model.memory import budget_for

    n = global_batch_size // config.dp
    if n > 512:
        return f"{n} micro-batches exceeds the simulation cap of 512"
    budget = budget_for(
        spec,
        capacity_bytes=cluster.gpu.memory_bytes,
        pipeline_stages=config.pp,
        total_devices=cluster.num_devices,
        micro_batch_tokens=spec.seq_length // (config.cp * config.spp),
    )
    if budget.available_for_activations <= 0:
        return (
            "static memory alone exceeds device capacity "
            f"({budget.static / 2**30:.1f} GiB static)"
        )
    return None
