"""Grid search for the optimal parallel strategy per scheduling method.

Section 7.3 ("Selection of the Optimal Parallel Strategy"): memory and
bubble ratio are predictable, communication and kernel efficiency less
so, hence the paper grid-searches (PP, DP, CP or SPP, VP, recompute)
per method.  This module reproduces that search against the simulator.

The search itself is a task list handed to
:mod:`repro.planner.parallel`, which fans evaluations out over a
process pool (``jobs``) and replays previously computed cells from the
on-disk sweep cache; the merge is deterministic in both dimensions.
Every candidate the search does *not* evaluate is recorded in the
result's ``skipped`` trail with the reason, so a sweep is auditable:
``evaluated + skipped`` covers the whole enumerated space.

The default ``evaluator="grid"`` routes the sweep through the analytic
first pass (see ``docs/evaluation.md``): certified build-free bounds
prune candidates that are provably dominated by an already evaluated
configuration, the survivors are evaluated with the closed-form
evaluator (bit-identical numbers, no event replay), and only the
resulting Pareto frontier is re-evaluated at full ``"sim"``
provenance.  ``"grid"`` additionally evaluates the survivors
*grid-wise*: structurally identical candidates (topology classes)
share one compiled graph, one topological plan, and one stacked
multi-config evaluation (:mod:`repro.analysis.evaluate.batch`), and
shared preludes/bounds are computed once per cell for the whole sweep.
``"tiered"`` is the same pipeline cell-at-a-time.  Because the
analytic tier is exact in both shapes, the returned best, trail
values, and frontier are identical across ``"sim"``, ``"tiered"``,
and ``"grid"`` — only the provenance tags and the work done differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hardware.cluster import ClusterSpec
from repro.model.memory import GiB
from repro.model.spec import ModelSpec
from repro.obs.events import NULL_SINK, EventSink
from repro.parallel.grid import enumerate_configs
from repro.parallel.strategies import ParallelConfig
from repro.planner.evaluate import (
    ConfigBounds,
    EvalResult,
    config_bounds,
    config_bounds_batch,
)
from repro.planner.parallel import (
    EvalOutcome,
    EvalTask,
    SweepCache,
    evaluate_tasks,
    evaluate_tasks_batched,
    merge_outcomes,
)
from repro.schedules.methods import method_traits

#: The evaluation pipeline ``search_method`` uses when none is named.
#: ``"grid"`` since the batched planner landed; the historical
#: ``"tiered"`` (cell-at-a-time) and ``"sim"`` pipelines remain
#: selectable and return identical results.
DEFAULT_EVALUATOR = "grid"


@dataclass(frozen=True)
class SkippedConfig:
    """One candidate the search rejected without simulating, and why."""

    config: ParallelConfig
    reason: str


@dataclass
class SearchResult:
    """Best configuration found for one method, plus the trail."""

    method: str
    best: EvalResult | None
    evaluated: list[EvalResult]
    #: Candidates rejected before or during evaluation, with reasons
    #: (static pruning, fixed-VP methods, analytic domination,
    #: scheduler rejections).
    skipped: list[SkippedConfig] = field(default_factory=list)
    #: Which evaluation pipeline produced this result ("sim", "tiered",
    #: or "grid"); the numbers are identical in every case.
    evaluator: str = "sim"

    @property
    def all_oom(self) -> bool:
        return self.best is None and bool(self.evaluated)


def search_method(
    method: str,
    spec: ModelSpec,
    cluster: ClusterSpec,
    global_batch_size: int,
    max_spp: int = 16,
    max_vp: int = 2,
    min_dp: int = 2,
    jobs: int = 1,
    cache: SweepCache | None = None,
    sink: EventSink = NULL_SINK,
    evaluator: str | None = None,
) -> SearchResult:
    """Find the fastest non-OOM configuration of ``method``.

    The candidate space follows the paper's per-method search spaces
    (Section 7.1 "Baseline"): DAPPLE searches DP/PP/CP/recompute, VPP
    additionally VP, ZB/ZBV search PP/CP only (no recomputation), and
    SVPP/MEPipe search PP/SPP/VP with no CP and no recomputation.

    ``jobs`` fans the evaluations out over a process pool; ``cache``
    replays previously computed cells from disk.  Neither affects the
    returned result — best, trail, and skip reasons are identical for
    every ``jobs`` value and cache state.

    ``evaluator`` selects the pipeline (``None`` means
    :data:`DEFAULT_EVALUATOR`): ``"grid"`` (the default) prunes
    provably dominated candidates with certified build-free bounds,
    evaluates survivors analytically — batching topology classes
    through the stacked multi-config evaluator — and re-evaluates the
    Pareto frontier at ``"sim"`` provenance; ``"tiered"`` is the same
    pipeline evaluating one cell at a time; ``"sim"`` evaluates every
    candidate with the full verification + event replay.  The analytic
    tier is bit-exact in both shapes, so all settings return the same
    best and the same numbers (the ``tier`` tags on the trail differ).

    An enabled ``sink`` observes the sweep: per-config ``eval`` spans
    and cache-hit instants from :func:`~repro.planner.parallel
    .evaluate_tasks`, plus one ``skip`` instant per statically or
    analytically pruned candidate and a final ``skipped`` counter.
    """
    if evaluator is None:
        evaluator = DEFAULT_EVALUATOR
    if evaluator not in ("sim", "tiered", "grid"):
        raise ValueError(f"unknown search evaluator {evaluator!r}")
    traits = method_traits(method)
    candidates = enumerate_configs(
        spec,
        cluster.num_devices,
        global_batch_size,
        use_cp=traits.uses_cp,
        use_spp=traits.uses_spp,
        use_vp=traits.uses_vp and traits.fixed_vp is None,
        use_recompute=traits.supports_recompute,
        min_dp=min_dp,
        max_spp=max_spp,
        max_vp=max_vp,
    )
    skipped: list[SkippedConfig] = []
    tasks: list[EvalTask] = []
    for config in candidates:
        if traits.fixed_vp is not None and config.vp != 1:
            skipped.append(
                SkippedConfig(
                    config,
                    f"vp fixed at {traits.fixed_vp} by method {method!r}",
                )
            )
            continue
        reason = prune_reason(method, config, spec, cluster, global_batch_size)
        if reason is not None:
            skipped.append(SkippedConfig(config, reason))
            continue
        tasks.append(
            EvalTask(method, spec, cluster, config, global_batch_size)
        )
    if sink.enabled:
        for skip in skipped:
            sink.instant(
                f"skip {method} {skip.config.describe()}",
                ts=0.0,
                cat="skip",
                args={"method": method, "reason": skip.reason},
            )

    if evaluator == "sim":
        outcomes = evaluate_tasks(tasks, jobs=jobs, cache=cache, sink=sink)
        for task, outcome in zip(tasks, outcomes):
            if not outcome.ok:
                skipped.append(
                    SkippedConfig(task.config, f"rejected: {outcome.error}")
                )
        best, evaluated = merge_outcomes(outcomes)
    else:
        best, evaluated, tier_skips = _tiered_sweep(
            tasks,
            jobs=jobs,
            cache=cache,
            sink=sink,
            batched=(evaluator == "grid"),
        )
        skipped.extend(tier_skips)
    if sink.enabled:
        sink.counter("skipped", float(len(skipped)), ts=0.0)
    return SearchResult(
        method=method,
        best=best,
        evaluated=evaluated,
        skipped=skipped,
        evaluator=evaluator,
    )


def _tiered_sweep(
    tasks: list[EvalTask],
    jobs: int,
    cache: SweepCache | None,
    sink: EventSink,
    batched: bool = False,
) -> tuple[EvalResult | None, list[EvalResult], list[SkippedConfig]]:
    """The analytic first pass (see module docstring and docs/evaluation.md).

    1. Derive certified build-free bounds for every candidate (no
       schedule generation; candidates the bound theory cannot cover
       simply carry no bounds and are always evaluated in full).  With
       ``batched`` the bounds pass shares one cached prelude per cell
       with the evaluation passes below.
    2. Probe candidates sequentially in ascending time-lower-bound
       order until the first non-OOM analytic result — the incumbent.
       Sequential regardless of ``jobs`` so the incumbent (and thus the
       prune set) is identical for every worker count.
    3. Prune every remaining candidate whose time lower bound *and*
       memory floor both lose to the incumbent: such a candidate is
       certainly dominated, and transitivity guarantees anything it
       would have dominated is dominated by the incumbent too — so the
       Pareto frontier is unchanged (the frontier-soundness argument in
       docs/evaluation.md).
    4. Evaluate the survivors analytically (parallel, cached; with
       ``batched``, topology classes among them share one stacked
       evaluation — bit-identical outcomes, so the sweep's results do
       not depend on ``batched``), then re-evaluate the resulting
       Pareto frontier at ``"sim"`` provenance — full static
       verification plus event replay — and splice those results into
       the trail.
    """
    bounds: list[ConfigBounds | None]
    if batched:
        bounds = config_bounds_batch(tasks)
    else:
        bounds = [
            config_bounds(
                t.method, t.spec, t.cluster, t.config, t.global_batch_size
            )
            for t in tasks
        ]
    analytic = [replace(t, tier="analytic") for t in tasks]

    def lower(i: int) -> float:
        b = bounds[i]
        return b.lower_time_s if b is not None else float("inf")

    outcomes: dict[int, EvalOutcome] = {}
    incumbent: EvalResult | None = None
    order = sorted(
        range(len(tasks)), key=lambda i: (lower(i), tasks[i].config.sort_key())
    )
    for i in order:
        (outcome,) = evaluate_tasks([analytic[i]], jobs=1, cache=cache, sink=sink)
        outcomes[i] = outcome
        if outcome.result is not None and not outcome.result.oom:
            incumbent = outcome.result
            break

    pruned: dict[int, str] = {}
    if incumbent is not None:
        for i, b in enumerate(bounds):
            if i in outcomes or b is None:
                continue
            if (
                b.lower_time_s > incumbent.iteration_time_s
                and b.memory_floor_bytes >= incumbent.peak_memory_bytes
            ):
                pruned[i] = (
                    f"analytic: dominated by {incumbent.config.describe()} "
                    f"(time lower bound {b.lower_time_s:.3f} s > "
                    f"{incumbent.iteration_time_s:.3f} s, memory floor "
                    f"{b.memory_floor_bytes / GiB:.2f} GiB >= "
                    f"{incumbent.peak_memory_bytes / GiB:.2f} GiB)"
                )
    rest = [i for i in range(len(tasks)) if i not in outcomes and i not in pruned]
    sweep = evaluate_tasks_batched if batched else evaluate_tasks
    rest_outcomes = sweep(
        [analytic[i] for i in rest], jobs=jobs, cache=cache, sink=sink
    )
    for i, outcome in zip(rest, rest_outcomes):
        outcomes[i] = outcome

    skips: list[SkippedConfig] = []
    for i in sorted(pruned):
        skips.append(SkippedConfig(tasks[i].config, pruned[i]))
        if sink.enabled:
            sink.instant(
                f"skip {tasks[i].method} {tasks[i].config.describe()}",
                ts=0.0,
                cat="skip",
                args={"method": tasks[i].method, "reason": pruned[i]},
            )
    for i in sorted(outcomes):
        if not outcomes[i].ok:
            skips.append(
                SkippedConfig(
                    tasks[i].config, f"rejected: {outcomes[i].error}"
                )
            )
    best, evaluated = merge_outcomes([outcomes[i] for i in sorted(outcomes)])

    # Frontier refinement: only the Pareto-optimal survivors pay for the
    # full verification + event replay.  The analytic tier is exact, so
    # this replaces entries with bit-equal numbers under a "sim" tag.
    frontier = pareto_frontier(evaluated)
    sim_tasks = [
        next(t for t in tasks if t.config == r.config) for r in frontier
    ]
    refined = evaluate_tasks(sim_tasks, jobs=jobs, cache=cache, sink=sink)
    position = {r.config: k for k, r in enumerate(evaluated)}
    dropped: set[ParallelConfig] = set()
    for r, outcome in zip(frontier, refined):
        if outcome.result is not None:
            evaluated[position[r.config]] = outcome.result
        else:
            # Unreachable when analytic succeeded (same build path), but
            # a sim-tier rejection must not leave a stale analytic entry.
            dropped.add(r.config)
            skips.append(
                SkippedConfig(r.config, f"rejected: {outcome.error}")
            )
    if dropped:
        evaluated = [r for r in evaluated if r.config not in dropped]
    best = None
    for r in evaluated:
        if r.oom:
            continue
        if best is None or (
            (r.iteration_time_s, r.config.sort_key())
            < (best.iteration_time_s, best.config.sort_key())
        ):
            best = r
    return best, evaluated, skips


def pareto_frontier(evaluated: list[EvalResult]) -> list[EvalResult]:
    """Non-dominated, non-OOM results in (iteration time, peak memory).

    A result is dominated when another non-OOM result is no worse on
    both axes and strictly better on at least one; order follows the
    input trail, so the frontier is deterministic.
    """
    candidates = [r for r in evaluated if not r.oom]
    frontier: list[EvalResult] = []
    for r in candidates:
        dominated = any(
            o.iteration_time_s <= r.iteration_time_s
            and o.peak_memory_bytes <= r.peak_memory_bytes
            and (
                o.iteration_time_s < r.iteration_time_s
                or o.peak_memory_bytes < r.peak_memory_bytes
            )
            for o in candidates
        )
        if not dominated:
            frontier.append(r)
    return frontier


def prune_reason(
    method: str,
    config: ParallelConfig,
    spec: ModelSpec,
    cluster: ClusterSpec,
    global_batch_size: int,
) -> str | None:
    """Why a candidate is not worth simulating, or ``None`` to keep it.

    Cheap static pruning to keep the search tractable: skips
    configurations whose *static* memory alone exceeds the device (the
    simulator would only confirm the OOM) and caps the number of
    micro-batches at 512 to bound simulation cost.
    """
    from repro.model.memory import budget_for

    n = global_batch_size // config.dp
    if n > 512:
        return f"{n} micro-batches exceeds the simulation cap of 512"
    budget = budget_for(
        spec,
        capacity_bytes=cluster.gpu.memory_bytes,
        pipeline_stages=config.pp,
        total_devices=cluster.num_devices,
        micro_batch_tokens=spec.seq_length // (config.cp * config.spp),
    )
    if budget.available_for_activations <= 0:
        return (
            "static memory alone exceeds device capacity "
            f"({budget.static / 2**30:.1f} GiB static)"
        )
    return None
