"""Fit cost-model parameters from profiler measurements.

Section 9's fourth discussion point: the grid search "calls for
automated parallelization frameworks that can construct cost models".
This module is that construction step — it fits the saturating kernel-
efficiency curve ``eff(t) = e_max * t / (t + t_half)`` (the model
behind Figure 9) to measured per-slice forward times, so a planner can
predict configurations it never profiled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.efficiency import EfficiencyModel
from repro.model.flops import layer_slice_flops
from repro.model.spec import ModelSpec


@dataclass(frozen=True)
class FittedCurve:
    """Result of fitting the efficiency curve.

    ``peak_flops`` absorbs ``e_max * hardware_peak`` (they are not
    separately identifiable from timings alone); ``t_half`` is the
    token count at half saturation.
    """

    peak_flops: float
    half_saturation_tokens: float
    residual: float

    def predict_seconds(self, flops: float, tokens: int) -> float:
        """Predicted kernel time for ``flops`` over ``tokens`` rows."""
        eff = tokens / (tokens + self.half_saturation_tokens)
        return flops / (self.peak_flops * eff)

    def as_efficiency_model(self, hardware_peak_flops: float) -> EfficiencyModel:
        """Express the fit relative to a known hardware peak."""
        e_max = min(self.peak_flops / hardware_peak_flops, 1.0)
        return EfficiencyModel(
            max_gemm_efficiency=e_max,
            max_attention_efficiency=e_max,
            half_saturation_tokens=self.half_saturation_tokens,
        )


def observations_from_slices(
    spec: ModelSpec, slice_seconds: dict[tuple[int, int], float]
) -> list[tuple[float, int, float]]:
    """Convert per-(tokens, offset) timings into (flops, tokens, secs)."""
    out = []
    for (tokens, offset), seconds in slice_seconds.items():
        flops = layer_slice_flops(spec, tokens, offset).forward
        out.append((float(flops), tokens, seconds))
    return out


def fit_efficiency_curve(
    observations: list[tuple[float, int, float]],
    t_half_grid: tuple[float, ...] = tuple(float(x) for x in
                                           (1, 2, 4, 8, 16, 32, 64, 128, 256)),
) -> FittedCurve:
    """Least-squares fit of ``seconds = flops * (t + h) / (P * t)``.

    For each candidate ``h`` the peak ``P`` has a closed-form optimum
    (linear least squares through the origin on the transformed
    variable); the grid picks the ``h`` with the smallest residual.

    Args:
        observations: ``(flops, tokens, measured_seconds)`` triples from
            the profiler; needs at least two distinct token counts.
    """
    if len(observations) < 2:
        raise ValueError("need at least two observations")
    tokens = {t for _f, t, _s in observations}
    if len(tokens) < 2:
        raise ValueError("need at least two distinct token counts")
    best: FittedCurve | None = None
    flops = np.array([o[0] for o in observations])
    toks = np.array([o[1] for o in observations], dtype=float)
    secs = np.array([o[2] for o in observations])
    for h in t_half_grid:
        # seconds ~= (1/P) * x  with  x = flops * (toks + h) / toks
        x = flops * (toks + h) / toks
        inv_p = float(np.dot(x, secs) / np.dot(x, x))
        if inv_p <= 0:
            continue
        residual = float(np.sqrt(np.mean((x * inv_p - secs) ** 2)))
        candidate = FittedCurve(
            peak_flops=1.0 / inv_p,
            half_saturation_tokens=h,
            residual=residual,
        )
        if best is None or candidate.residual < best.residual:
            best = candidate
    assert best is not None
    return best


def synthetic_observations(
    spec: ModelSpec,
    eff: EfficiencyModel,
    hardware_peak_flops: float,
    slice_counts: tuple[int, ...] = (1, 2, 4, 8),
    noise: float = 0.0,
    seed: int = 0,
) -> list[tuple[float, int, float]]:
    """Generate ground-truth observations from a known curve (tests)."""
    rng = np.random.default_rng(seed)
    out = []
    for s in slice_counts:
        t = spec.seq_length // s
        for i in range(s):
            flops = layer_slice_flops(spec, t, i * t).forward
            seconds = flops / (hardware_peak_flops * eff.gemm(t))
            if noise:
                seconds *= 1.0 + rng.normal(0, noise)
            out.append((float(flops), t, seconds))
    return out
