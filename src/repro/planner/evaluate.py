"""Evaluate one (method, parallel config) on a simulated cluster.

This is the heart of every end-to-end experiment: it builds the
pipeline problem, lets the method's scheduler plan with the calibrated
cost model (the role MEPipe's profiler plays, Section 6), evaluates the
schedule — on the discrete-event executor (``tier="sim"``) or through
the certified closed-form evaluator (``tier="analytic"``, bit-identical
floats, see ``docs/evaluation.md``) — and converts the outcome into
iteration time, memory footprint, OOM status, throughput, and MFU.

:func:`config_bounds` additionally derives certified build-free bounds
(iteration-time interval, memory floor) for a configuration without
generating a schedule at all; the tiered grid search uses those to
prune dominated candidates before paying for schedule generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Hashable, Protocol, Sequence

from repro.analysis import interface_report
from repro.analysis.evaluate import (
    AnalyticEvaluation,
    evaluate_schedule,
    evaluate_schedule_batch,
    iteration_time_bounds,
    peak_units_floor,
)
from repro.hardware.cluster import ClusterSpec
from repro.model.flops import model_train_flops
from repro.model.memory import GiB, MemoryBudget, budget_for
from repro.model.spec import ModelSpec
from repro.parallel.strategies import ParallelConfig, validate_for_cluster
from repro.schedules.base import PipelineProblem, Schedule, ScheduleError
from repro.schedules.graph import compiled_graph
from repro.schedules.greedy import default_first_stage_cap, min_first_stage_cap
from repro.schedules.methods import build_problem, build_schedule, method_traits
from repro.schedules.verify import assert_clean
from repro.sim.cost import ClusterCost
from repro.sim.executor import SimResult, simulate


@dataclass(frozen=True)
class EvalResult:
    """Outcome of evaluating one configuration."""

    method: str
    config: ParallelConfig
    iteration_time_s: float
    bubble_ratio: float
    peak_memory_bytes: int
    activation_bytes: int
    oom: bool
    tflops_per_gpu: float
    mfu: float
    forwards_before_first_backward: int | None = None
    #: Which evaluation tier produced this result: ``"sim"`` (event
    #: replay + full static verification) or ``"analytic"`` (certified
    #: closed-form evaluator).  The numbers are bit-identical either
    #: way; the tier records provenance and keys the sweep cache so the
    #: tiers never alias.
    tier: str = "sim"
    #: Channel-buffer ledger (see :mod:`repro.analysis.capacity`): the
    #: ring-sizing mode the memory charge assumed (``"none"`` skips the
    #: ledger entirely), the worst stage's pinned ring bytes (folded
    #: into ``peak_memory_bytes`` and the OOM check), the total ring
    #: slots across channels, and whether the charged capacities are
    #: certified backpressure-free (no critical-path lengthening vs
    #: unbounded channels — always true for mode "backpressure-free",
    #: informative for "deadlock-free").
    capacity_mode: str = "none"
    channel_buffer_bytes: int = 0
    channel_slots: int = 0
    backpressure_free: bool = True

    @property
    def peak_memory_gib(self) -> float:
        return self.peak_memory_bytes / GiB

    def describe(self) -> str:
        state = "OOM" if self.oom else f"{self.iteration_time_s * 1e3:8.1f} ms"
        return (
            f"{self.method:9s} {self.config.describe():34s} {state}  "
            f"bubble={self.bubble_ratio:5.1%}  mem={self.peak_memory_gib:5.1f} GiB"
        )


#: Fine-grained W GEMM fragments per (slice, chunk) used in cluster
#: evaluations; small to keep simulations fast, large enough that gap
#: filling works.
WGRAD_GEMMS = 2


@lru_cache(maxsize=64)
def _cached_schedule(
    method: str,
    problem: object,
    cost: ClusterCost,
    f: int | None,
) -> object:
    """Per-process memo over deterministic schedule builds.

    Generation dominates evaluation cost, and the tiered search
    evaluates the same cell twice — analytically in the first pass and
    on the simulator for Pareto-frontier provenance.  The inputs fully
    determine the build (all are frozen/hashable), and the schedule's
    verification verdict and compiled graph are cached on the object,
    so sharing it between tiers is both safe and what makes the second
    evaluation of a cell nearly free.
    """
    return build_schedule(
        method, problem, cost=cost, forwards_before_first_backward=f
    )


@dataclass(frozen=True)
class ConfigPrelude:
    """Everything a configuration's evaluation needs before a schedule.

    ``auto_f`` is the Section 4.5 variant selection (``None`` for
    methods without slice-level variants, or when even the default
    fits); ``overhead_time`` the iteration-level DP-sync + optimizer
    seconds.  All of it is a pure function of the evaluation inputs, so
    one cached prelude serves ``evaluate_config``, ``config_bounds``,
    and the batched grid tier for the same cell — the bounds pass and
    the full evaluation no longer each rebuild problem, interface
    report, cost model, and budget.
    """

    problem: PipelineProblem
    cost: ClusterCost
    budget: MemoryBudget
    auto_f: int | None
    overhead_time: float


@lru_cache(maxsize=256)
def _prelude(
    method: str,
    spec: ModelSpec,
    cluster: ClusterSpec,
    config: ParallelConfig,
    global_batch_size: int,
) -> ConfigPrelude:
    """Validate and assemble one configuration's evaluation prelude.

    Raises exactly the ``ValueError``\\ s :func:`evaluate_config` has
    always raised (invalid config, failing interface check); the
    exceptions are not cached, so every caller observes them.
    """
    traits = method_traits(method)
    vp = traits.fixed_vp or config.vp
    effective = config.with_(vp=vp) if vp != config.vp else config
    problems = validate_for_cluster(effective, cluster.num_devices, spec)
    if problems:
        raise ValueError(f"invalid config {effective}: {problems}")
    n = config.micro_batches(global_batch_size)
    wgrad_gemms = WGRAD_GEMMS if traits.split_backward else 1
    problem = build_problem(
        method,
        config.pp,
        n,
        num_slices=config.spp,
        virtual_size=vp,
        wgrad_gemms=wgrad_gemms,
    )
    # Static interface gate: the partition this (pp, vp) chunking implies
    # must shape/dtype-check before any schedule is built or simulated;
    # a failing config is rejected with the rendered findings and the
    # grid search records why.
    interfaces = interface_report(spec, problem, name=f"{method} {config.describe()}")
    if not interfaces.ok:
        raise ValueError(
            f"partition fails interface checking:\n{interfaces.render_text()}"
        )
    cost = ClusterCost(spec=spec, config=config, cluster=cluster, problem=problem)
    budget = budget_for(
        spec,
        capacity_bytes=cluster.gpu.memory_bytes,
        # TP shards every stage's parameters the same way more pipeline
        # stages would, so it folds into the per-device divisor.
        pipeline_stages=config.pp * config.tp,
        total_devices=cluster.num_devices,
        micro_batch_tokens=cost.tokens_per_op * config.micro_batch_size,
    )
    auto_f = None
    if traits.uses_spp:
        auto_f = select_variant(problem, cost, budget.available_for_activations)
    overhead = cost.dp_sync_seconds() + cost.optimizer_seconds()
    return ConfigPrelude(
        problem=problem,
        cost=cost,
        budget=budget,
        auto_f=auto_f,
        overhead_time=overhead,
    )


def evaluate_config(
    method: str,
    spec: ModelSpec,
    cluster: ClusterSpec,
    config: ParallelConfig,
    global_batch_size: int,
    forwards_before_first_backward: int | None = None,
    auto_select_variant: bool = True,
    tier: str = "sim",
    capacity_mode: str = "backpressure-free",
) -> EvalResult:
    """Evaluate one configuration; never raises for OOM (returns it).

    For SVPP/MEPipe, ``auto_select_variant`` applies the Section 4.5
    memory model: the largest ``f`` whose activation footprint fits the
    device budget is selected (fewer forwards in flight -> more bubbles
    but less memory, Figure 5).

    ``tier`` selects how the built schedule is evaluated.  ``"sim"``
    runs the full static verification (``assert_clean``) and the
    discrete-event replay; ``"analytic"`` runs the certified closed-form
    evaluator instead, which produces bit-identical iteration time,
    bubble ratio, and memory — the tiered grid search uses it for the
    cheap first pass and re-evaluates only the Pareto frontier at
    ``"sim"`` provenance.

    ``capacity_mode`` sets the channel-buffer ledger: ring bytes at the
    inferred per-channel capacities of that mode
    (:func:`repro.analysis.capacity.infer_capacities`) are charged to
    the peak-memory figure and the OOM check.  The default,
    ``"backpressure-free"``, is the sizing consistent with the reported
    iteration time — the smallest rings that leave the unbounded-channel
    critical path intact; ``"deadlock-free"`` charges the absolute
    minimum rings (iteration time may then understate a bounded run),
    and ``"none"`` skips the ledger (pre-capacity-analysis behavior).
    The charge is conservative: the worst stage's ring bytes are added
    to the shared per-stage budget.
    """
    pre = _prelude(method, spec, cluster, config, global_batch_size)
    f = forwards_before_first_backward
    if f is None and auto_select_variant:
        f = pre.auto_f

    schedule = _cached_schedule(method, pre.problem, pre.cost, f)
    result: SimResult | AnalyticEvaluation
    cost, overhead = pre.cost, pre.overhead_time
    if tier == "sim":
        # Full static verification (channel order, liveness, closed-form
        # cross-check on top of the builder's safety tier): a misgenerated
        # schedule is rejected here with the complete diagnostic report, so
        # the grid search skips it and the trail explains why.
        assert_clean(schedule, method=method)
        # The heap engine, deliberately: the sim tier confirms the
        # analytic tier's frontier, so it must not share the dense
        # replay code path the analytic evaluator runs on (the scalar
        # event heap is an independent implementation of the same
        # recurrence; all engines are bit-for-bit per the golden tests).
        result = simulate(schedule, cost, overhead_time=overhead, engine="heap")
    elif tier == "analytic":
        # The closed-form evaluator: same floats, certified exact, no
        # event replay and only the builder's safety-tier verification
        # (the frontier is re-evaluated at "sim" before anything ships).
        result = evaluate_schedule(schedule, cost, overhead_time=overhead)
    else:
        raise ValueError(f"unknown evaluation tier {tier!r}")

    return _finalize(
        method,
        spec,
        cluster,
        config,
        global_batch_size,
        pre,
        f,
        schedule,
        result,
        tier,
        capacity_mode,
    )


def _finalize(
    method: str,
    spec: ModelSpec,
    cluster: ClusterSpec,
    config: ParallelConfig,
    global_batch_size: int,
    pre: ConfigPrelude,
    f: int | None,
    schedule: Schedule,
    result: SimResult | AnalyticEvaluation,
    tier: str,
    capacity_mode: str,
) -> EvalResult:
    """Turn a tier's raw evaluation into an :class:`EvalResult`.

    The memory/OOM/throughput postlude of :func:`evaluate_config`,
    shared verbatim with the batched grid tier so a batched member's
    result is identical to the scalar path's.
    """
    cost, budget, problem = pre.cost, pre.budget, pre.problem
    act_bytes = int(result.peak_activation_units * cost.activation_bytes_per_unit())
    peak = budget.static + budget.temporary + budget.allocator_reserve + act_bytes
    peak += budget.framework_overhead

    channel_bytes = 0
    channel_slots = 0
    backpressure_free = True
    if capacity_mode != "none":
        from repro.analysis.capacity import infer_capacities, ring_bytes_per_stage
        from repro.pipeline.channels import _HEADER_BYTES

        times = result.times if isinstance(result, AnalyticEvaluation) else None
        # The deadlock-free coordinate descent is the analyzer's one
        # expensive inference and the backpressure-free ledger never
        # reads it — skip it unless that mode was asked for.
        plan = infer_capacities(
            schedule,
            cost,
            times=times,
            include_deadlock_free=(capacity_mode == "deadlock-free"),
        )
        caps = plan.capacities(capacity_mode)
        slot_bytes = _HEADER_BYTES + int(cost.boundary_message_bytes())
        per_stage = ring_bytes_per_stage(caps, problem.num_stages, slot_bytes)
        channel_bytes = max(per_stage, default=0)
        channel_slots = sum(caps.values())
        backpressure_free = all(
            ch.backpressure_free is not None
            and caps[ch.key] >= ch.backpressure_free
            for ch in plan.channels
        )
        peak += channel_bytes

    oom = peak > cluster.gpu.memory_bytes
    flops = model_train_flops(spec, spec.seq_length) * global_batch_size
    tflops_per_gpu = flops / result.iteration_time / cluster.num_devices / 1e12
    mfu = tflops_per_gpu / cluster.gpu.peak_fp16_tflops
    return EvalResult(
        method=method,
        config=config,
        iteration_time_s=result.iteration_time,
        bubble_ratio=result.bubble_ratio,
        peak_memory_bytes=peak,
        activation_bytes=act_bytes,
        oom=oom,
        tflops_per_gpu=tflops_per_gpu,
        mfu=mfu,
        forwards_before_first_backward=f,
        tier=tier,
        capacity_mode=capacity_mode,
        channel_buffer_bytes=channel_bytes,
        channel_slots=channel_slots,
        backpressure_free=backpressure_free,
    )


@dataclass(frozen=True)
class ConfigBounds:
    """Certified build-free bounds on one configuration's outcome.

    ``lower_time_s``/``upper_time_s`` bound the iteration time of *any*
    schedule of this configuration (guard-banded, see
    :mod:`repro.analysis.evaluate.bounds`); ``memory_floor_bytes``
    lower-bounds its peak memory the same way.  A configuration whose
    lower bound already loses to an evaluated incumbent on *both* axes
    is certainly dominated and need never be scheduled.
    """

    lower_time_s: float
    upper_time_s: float
    memory_floor_bytes: int


def config_bounds(
    method: str,
    spec: ModelSpec,
    cluster: ClusterSpec,
    config: ParallelConfig,
    global_batch_size: int,
) -> ConfigBounds | None:
    """Certified bounds for a configuration, without building a schedule.

    Mirrors :func:`evaluate_config`'s prelude (validation, problem and
    cost construction, budget, variant selection) but stops before
    ``build_schedule``.  Returns ``None`` whenever anything that the
    full evaluation would reject (or that the bound theory does not
    cover) comes up — the caller then falls through to the full
    evaluation, which raises or answers authoritatively.
    """
    try:
        pre = _prelude(method, spec, cluster, config, global_batch_size)
        bounds = iteration_time_bounds(
            pre.problem, pre.cost, overhead_time=pre.overhead_time
        )
        if bounds is None:
            return None
        floor_units = peak_units_floor(
            pre.problem, pre.cost, forwards_floor=pre.auto_f
        )
        budget = pre.budget
        floor = budget.static + budget.temporary + budget.allocator_reserve
        floor += budget.framework_overhead
        floor += int(floor_units * pre.cost.activation_bytes_per_unit())
        return ConfigBounds(
            lower_time_s=bounds.lower,
            upper_time_s=bounds.upper,
            memory_floor_bytes=floor,
        )
    except (ScheduleError, ValueError, KeyError):
        return None


class EvalTaskLike(Protocol):
    """The task shape the batched grid tier consumes.

    Structural twin of :class:`repro.planner.parallel.EvalTask`
    (declared here as a protocol because ``parallel`` imports this
    module, not the other way around).
    """

    @property
    def method(self) -> str: ...
    @property
    def spec(self) -> ModelSpec: ...
    @property
    def cluster(self) -> ClusterSpec: ...
    @property
    def config(self) -> ParallelConfig: ...
    @property
    def global_batch_size(self) -> int: ...
    @property
    def tier(self) -> str: ...
    @property
    def capacity_mode(self) -> str: ...


def task_class_key(task: EvalTaskLike) -> Hashable | None:
    """Predicted topology-class key of one task, for dispatch grouping.

    Tasks sharing this key build their schedules over the same problem
    with the same variant selection — the *candidates* for one topology
    class.  The prediction only steers which worker evaluates which
    tasks together; the batched evaluator verifies *actual* structural
    identity per generated graph before sharing anything, so a wrong
    prediction costs a smaller batch, never a wrong float.  ``None``
    when the prelude rejects the task (it will error identically in the
    worker).
    """
    try:
        pre = _prelude(
            task.method, task.spec, task.cluster, task.config, task.global_batch_size
        )
    except (ScheduleError, ValueError, KeyError):
        return None
    return (task.method, pre.problem, pre.auto_f, task.tier, task.capacity_mode)


@dataclass(frozen=True)
class BatchReport:
    """Result of one batched evaluation call.

    ``results[i]`` is task ``i``'s :class:`EvalResult` or the exception
    the scalar path would have raised for it.  ``class_sizes`` lists
    the sizes of the topology classes that were actually evaluated by
    one stacked pass (size ≥ 2; singleton classes take the scalar
    evaluator and gain nothing — the honest limit of grid batching).
    """

    results: tuple[object, ...]
    class_sizes: tuple[int, ...]


def evaluate_config_batch(tasks: Sequence[EvalTaskLike]) -> BatchReport:
    """Evaluate a group of tasks, batching structurally identical ones.

    Preludes and schedules are built per task (both cached); the built
    graphs are then grouped by **exact** structure
    (:meth:`~repro.schedules.graph.ScheduleGraph.structure_key`) and
    each multi-member class runs the stacked analytic evaluator once.
    Every member's floats — and every raised error — are identical to
    the scalar :func:`evaluate_config` path's (the batched evaluator is
    bit-identical and the finalize postlude is shared code).  ``"sim"``
    tier tasks always take the scalar path: the simulator tier exists
    to be an *independent* replay of the frontier.
    """
    results: list[object] = [None] * len(tasks)
    pending: list[tuple[int, EvalTaskLike, ConfigPrelude, int | None, Schedule]] = []
    for i, task in enumerate(tasks):
        try:
            pre = _prelude(
                task.method,
                task.spec,
                task.cluster,
                task.config,
                task.global_batch_size,
            )
            f = pre.auto_f
            schedule = _cached_schedule(task.method, pre.problem, pre.cost, f)
            if task.tier != "analytic":
                results[i] = evaluate_config(
                    task.method,
                    task.spec,
                    task.cluster,
                    task.config,
                    task.global_batch_size,
                    tier=task.tier,
                    capacity_mode=task.capacity_mode,
                )
            else:
                assert isinstance(schedule, Schedule)
                pending.append((i, task, pre, f, schedule))
        except (ScheduleError, ValueError) as exc:
            results[i] = exc

    groups: dict[Hashable, list[tuple[int, EvalTaskLike, ConfigPrelude, int | None, Schedule]]] = {}
    for member in pending:
        graph = compiled_graph(member[4])
        groups.setdefault(graph.structure_key(), []).append(member)

    class_sizes: list[int] = []
    for members in groups.values():
        if len(members) == 1:
            # Singleton class: the scalar wavefront is cheaper on the
            # narrow fronts pipeline graphs produce, and bit-identical.
            evals = [
                evaluate_schedule(
                    members[0][4],
                    members[0][2].cost,
                    overhead_time=members[0][2].overhead_time,
                )
            ]
        else:
            class_sizes.append(len(members))
            # A structural mismatch in here would be a grouping bug;
            # the batched evaluator's own exact check turns it into a
            # loud ValueError rather than a silently wrong float.
            evals = evaluate_schedule_batch(
                [m[4] for m in members],
                [m[2].cost for m in members],
                [m[2].overhead_time for m in members],
            )
        for (i, task, pre, f, schedule), ev in zip(members, evals):
            try:
                results[i] = _finalize(
                    task.method,
                    task.spec,
                    task.cluster,
                    task.config,
                    task.global_batch_size,
                    pre,
                    f,
                    schedule,
                    ev,
                    task.tier,
                    task.capacity_mode,
                )
            except (ScheduleError, ValueError) as exc:
                results[i] = exc
    return BatchReport(results=tuple(results), class_sizes=tuple(class_sizes))


def config_bounds_batch(
    tasks: Sequence[EvalTaskLike],
) -> list[ConfigBounds | None]:
    """Certified bounds for a whole task group.

    One shared-prelude pass: each task's problem/cost/budget is built
    (or reused from the prelude cache, which the class-key and
    evaluation passes also hit) exactly once for the entire tiered
    sweep, instead of once per pass.
    """
    return [
        config_bounds(
            task.method,
            task.spec,
            task.cluster,
            task.config,
            task.global_batch_size,
        )
        for task in tasks
    ]


def select_variant(problem, cost: ClusterCost, available_bytes: int) -> int | None:
    """Section 4.5: pick the largest feasible ``f`` for the budget.

    Returns ``None`` when even the memory-optimal variant fits (the
    scheduler then uses its default), otherwise the clamped ``f``; the
    minimum ``v*s`` is returned even when it does not fit — the caller
    detects the OOM from the simulated footprint.
    """
    per_op = cost.activation_bytes_per_unit() * problem.activation_units_per_op
    max_f = default_first_stage_cap(problem)
    min_f = min_first_stage_cap(problem)
    if available_bytes <= 0:
        return min_f
    fit = int(available_bytes // per_op)
    if fit >= max_f:
        return None
    return max(min_f, fit)
