"""Long-lived planner worker pool.

The planner's parallel tier used to spin up a fresh
``ProcessPoolExecutor`` for every sweep.  That pays the process-spawn
cost per sweep *and* — worse — throws away every worker-side cache
each time: the generation cache, the structure store, and the
per-process schedule/prelude memos a worker populated while evaluating
one sweep were gone before the next request arrived.  For the planning
service, whose hot path is many small sweeps arriving over time, the
repeated spawn + cache-cold cost dominated cold-request latency.

This module keeps **one** process pool alive for the whole process and
shares it across every ``search_method`` call and every service
request.  Workers therefore accumulate warm caches across dispatches —
the second sweep that touches a problem a worker has seen gets its
schedules, topological plans, and batch tables from memory.

Modes (env knob ``REPRO_PLANNER_POOL``, or :func:`set_mode` /
``--pool``):

* ``"persistent"`` (default) — the long-lived pool described above;
* ``"per-sweep"`` — the historical behavior: a fresh pool per call,
  torn down when the call returns.

Fault handling: a broken pool (a worker killed under us) is disposed
and the affected call falls back to deterministic inline execution, so
a crashed worker degrades throughput, never results.  ``shutdown()``
is idempotent and registered via ``atexit``; the service's
``JobStore.close`` calls it so stopping the service never leaks
worker processes.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

_MODES = ("persistent", "per-sweep")

_lock = threading.Lock()
_mode: str | None = None  # None -> consult the env on first use
_executor: ProcessPoolExecutor | None = None
_executor_workers = 0
#: Tasks served by a pool that already existed when the call arrived
#: (the measure of warm-worker reuse the obs bus surfaces).
_reuse_tasks = 0
#: Tasks that created (or re-created) the pool.
_cold_tasks = 0
#: Broken-pool incidents survived by falling back inline.
_faults = 0


def pool_mode() -> str:
    """The active pool mode (env knob ``REPRO_PLANNER_POOL``)."""
    global _mode
    with _lock:
        if _mode is None:
            raw = os.environ.get("REPRO_PLANNER_POOL", "persistent").lower()
            _mode = raw if raw in _MODES else "persistent"
        return _mode


def set_mode(value: str | None) -> None:
    """Force a pool mode; ``None`` re-reads the environment.

    Switching away from ``"persistent"`` disposes any live pool so the
    knob is also a kill switch.
    """
    global _mode
    if value is not None and value not in _MODES:
        raise ValueError(
            f"unknown pool mode {value!r}; expected one of {_MODES}"
        )
    with _lock:
        _mode = value
    if value == "per-sweep":
        shutdown()


def _ensure_executor(jobs: int) -> tuple[ProcessPoolExecutor, bool]:
    """The shared executor, created or grown to ``jobs`` workers.

    Returns ``(executor, warm)`` where ``warm`` says the pool already
    existed with enough workers — the reuse the persistent mode is for.
    A pool that is too small is replaced (executors cannot grow), which
    counts as cold.
    """
    global _executor, _executor_workers
    with _lock:
        if _executor is not None and _executor_workers >= jobs:
            return _executor, True
        stale = _executor
        _executor = ProcessPoolExecutor(max_workers=jobs)
        _executor_workers = jobs
    if stale is not None:
        stale.shutdown(wait=True)
    return _executor, False


def _dispose(broken: ProcessPoolExecutor) -> None:
    """Drop a broken executor (best-effort teardown, never raises)."""
    global _executor, _executor_workers
    with _lock:
        if _executor is broken:
            _executor = None
            _executor_workers = 0
    try:
        broken.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def run_map(
    fn: Callable[[_T], _R], items: Sequence[_T], jobs: int
) -> list[_R]:
    """``[fn(item) for item in items]`` on the planner worker pool.

    Order-preserving and result-deterministic in every mode: the pool
    only changes *where* each item runs.  A broken pool (worker killed
    mid-call) falls back to inline execution of the whole call — the
    items are pure functions, so re-running them is safe.
    """
    global _reuse_tasks, _cold_tasks, _faults
    if not items:
        return []
    if jobs <= 1:
        return [fn(item) for item in items]
    if pool_mode() == "per-sweep":
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(fn, items))
    executor, warm = _ensure_executor(jobs)
    try:
        results = list(executor.map(fn, items))
    except BrokenProcessPool:
        _dispose(executor)
        with _lock:
            _faults += 1
        return [fn(item) for item in items]
    with _lock:
        if warm:
            _reuse_tasks += len(items)
        else:
            _cold_tasks += len(items)
    return results


def stats() -> dict[str, int]:
    """Counters for the obs bus: reuse/cold task counts, faults, size."""
    with _lock:
        return {
            "worker_reuse": _reuse_tasks,
            "worker_cold": _cold_tasks,
            "pool_faults": _faults,
            "pool_workers": _executor_workers if _executor is not None else 0,
        }


def reset_stats() -> None:
    """Zero the counters (tests)."""
    global _reuse_tasks, _cold_tasks, _faults
    with _lock:
        _reuse_tasks = 0
        _cold_tasks = 0
        _faults = 0


def shutdown() -> None:
    """Tear down the shared pool (idempotent; also runs at exit)."""
    global _executor, _executor_workers
    with _lock:
        executor = _executor
        _executor = None
        _executor_workers = 0
    if executor is not None:
        executor.shutdown(wait=True)


atexit.register(shutdown)
