"""Config evaluation, Section 4.5 variant selection, grid search, and
cost-model fitting."""

from repro.planner.costfit import (
    FittedCurve,
    fit_efficiency_curve,
    observations_from_slices,
    synthetic_observations,
)
from repro.planner.evaluate import EvalResult, evaluate_config, select_variant
from repro.planner.search import SearchResult, search_method

__all__ = [
    "EvalResult",
    "FittedCurve",
    "SearchResult",
    "evaluate_config",
    "fit_efficiency_curve",
    "observations_from_slices",
    "search_method",
    "select_variant",
    "synthetic_observations",
]
