"""Config evaluation, Section 4.5 variant selection, grid search
(parallel and cached), and cost-model fitting."""

from repro.planner.costfit import (
    FittedCurve,
    fit_efficiency_curve,
    observations_from_slices,
    synthetic_observations,
)
from repro.planner.evaluate import EvalResult, evaluate_config, select_variant
from repro.planner.parallel import (
    EvalOutcome,
    EvalTask,
    PlannerSettings,
    SweepCache,
    eval_fingerprint,
    evaluate_tasks,
    merge_outcomes,
)
from repro.planner.search import SearchResult, SkippedConfig, search_method

__all__ = [
    "EvalOutcome",
    "EvalResult",
    "EvalTask",
    "FittedCurve",
    "PlannerSettings",
    "SearchResult",
    "SkippedConfig",
    "SweepCache",
    "eval_fingerprint",
    "evaluate_config",
    "evaluate_tasks",
    "fit_efficiency_curve",
    "merge_outcomes",
    "observations_from_slices",
    "search_method",
    "select_variant",
    "synthetic_observations",
]
