"""Config evaluation, Section 4.5 variant selection, grid search
(parallel and cached), and cost-model fitting."""

from repro.planner.costfit import (
    FittedCurve,
    fit_efficiency_curve,
    observations_from_slices,
    synthetic_observations,
)
from repro.planner.evaluate import (
    EvalResult,
    evaluate_config,
    evaluate_config_batch,
    select_variant,
)
from repro.planner.parallel import (
    EvalOutcome,
    EvalTask,
    PlannerSettings,
    SweepCache,
    eval_fingerprint,
    evaluate_tasks,
    evaluate_tasks_batched,
    grid_stats,
    merge_outcomes,
)
from repro.planner.search import (
    DEFAULT_EVALUATOR,
    SearchResult,
    SkippedConfig,
    search_method,
)

__all__ = [
    "DEFAULT_EVALUATOR",
    "EvalOutcome",
    "EvalResult",
    "EvalTask",
    "FittedCurve",
    "PlannerSettings",
    "SearchResult",
    "SkippedConfig",
    "SweepCache",
    "eval_fingerprint",
    "evaluate_config",
    "evaluate_config_batch",
    "evaluate_tasks",
    "evaluate_tasks_batched",
    "fit_efficiency_curve",
    "grid_stats",
    "merge_outcomes",
    "observations_from_slices",
    "search_method",
    "select_variant",
    "synthetic_observations",
]
