"""Parallel fan-out and on-disk caching for planner sweeps.

The grid searches behind every headline artifact (Figures 8/10,
Tables 5/8/9) evaluate hundreds of (method, parallel config) cells, and
several experiments share cells — the Figure 8 GBS-128 column *is* the
Figure 10 13B row.  This module makes those sweeps cheap twice over:

* :func:`evaluate_tasks` fans :func:`~repro.planner.evaluate
  .evaluate_config` calls out over a process pool.  Results are merged
  back **by task index**, so the outcome list — and therefore the
  selected optimum — is bit-identical for any worker count, including
  the inline ``jobs=1`` path.
* :class:`SweepCache` persists each evaluation outcome (including
  rejections) under ``artifacts/cache/``, keyed by a content
  fingerprint of everything that determines the result: the cache
  schema version, method, model spec, cluster spec, config, and global
  batch size.  A second sweep over overlapping cells replays from disk.

Environment knobs (all optional):

* ``REPRO_CACHE_DIR`` — cache directory (default ``artifacts/cache``).
* ``REPRO_SWEEP_CACHE=0`` — disable the cache even when one is passed.
* ``REPRO_JOBS`` — default worker count for the experiment wrappers.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from hashlib import sha256
from pathlib import Path

from repro.analysis.capacity.rules import CAPACITY_VERSION
from repro.analysis.evaluate.rules import EVALUATOR_VERSION
from repro.hardware.cluster import ClusterSpec
from repro.model.spec import ModelSpec
from repro.obs.events import NULL_SINK, EventSink
from repro.parallel.strategies import ParallelConfig
from repro.planner import pool
from repro.planner.evaluate import (
    EvalResult,
    evaluate_config,
    evaluate_config_batch,
    task_class_key,
)
from repro.schedules import gencache
from repro.schedules.base import ScheduleError

#: Bump when the evaluation semantics change so stale cache entries
#: (computed under the old semantics) can never be replayed.
#: Schema 2 added the evaluation tier (and the evaluator version) to
#: both the fingerprint and the stored result.  Schema 3 folds the
#: schedule generator's version into the fingerprint: generation moved
#: to the array-native engine (repro.schedules.greedy, so entries
#: computed by a different generator can never replay).  Schema 4 adds
#: the channel-buffer ledger: the capacity mode and the capacity
#: analyzer's version join the fingerprint (peak memory now includes
#: ring bytes, so pre-capacity entries and entries across capacity
#: modes can never alias).
CACHE_SCHEMA = 4


@dataclass(frozen=True)
class EvalTask:
    """One grid cell: everything :func:`evaluate_config` needs.

    ``tier`` selects the evaluation tier (``"sim"`` or ``"analytic"``,
    see :func:`~repro.planner.evaluate.evaluate_config`); it is part of
    the cache fingerprint, so analytic and sim outcomes never alias.
    ``capacity_mode`` selects the channel-buffer ledger the evaluation
    charges (``"backpressure-free"``, ``"deadlock-free"``, or
    ``"none"``) and is fingerprinted for the same reason.
    """

    method: str
    spec: ModelSpec
    cluster: ClusterSpec
    config: ParallelConfig
    global_batch_size: int
    tier: str = "sim"
    capacity_mode: str = "backpressure-free"


@dataclass(frozen=True)
class EvalOutcome:
    """Result of one task: either an :class:`EvalResult` or a rejection.

    ``error`` carries the rejection reason when the evaluation raised
    (invalid config, scheduler wedge); exactly one of ``result`` and
    ``error`` is set.
    """

    result: EvalResult | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None


def eval_fingerprint(task: EvalTask) -> str:
    """Stable content hash of one evaluation's full input."""
    payload = {
        "schema": CACHE_SCHEMA,
        "method": task.method,
        "spec": asdict(task.spec),
        "cluster": asdict(task.cluster),
        "config": asdict(task.config),
        "global_batch_size": task.global_batch_size,
        # The evaluation tier and the analytic evaluator's version are
        # part of the input: a tier="sim" sweep must never replay an
        # analytic entry (or vice versa), and bumping the evaluator
        # invalidates every analytic cell it computed.
        "tier": task.tier,
        "evaluator": EVALUATOR_VERSION,
        # Schedule construction happens inside the evaluation, so the
        # generation engine's version is part of the input too.
        "generator": gencache.GENERATOR_VERSION,
        # The channel-buffer ledger changes peak memory (and therefore
        # OOM verdicts): both the chosen mode and the capacity
        # analyzer's version are part of the input.
        "capacity_mode": task.capacity_mode,
        "capacity": CAPACITY_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return sha256(blob.encode()).hexdigest()


class SweepCache:
    """Filesystem cache of evaluation outcomes, one JSON file per cell.

    Writes are atomic (temp file + ``os.replace``) so concurrent
    workers and interrupted runs can never leave a torn entry; corrupt
    or stale-schema files read as misses and are overwritten.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", "artifacts/cache")
        self.root = Path(root)
        self.enabled = os.environ.get("REPRO_SWEEP_CACHE", "1") != "0"
        self.hits = 0
        self.misses = 0

    def _path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def get(self, task: EvalTask) -> EvalOutcome | None:
        """Cached outcome of ``task``, or ``None`` on a miss."""
        if not self.enabled:
            return None
        fingerprint = eval_fingerprint(task)
        try:
            raw = self._path(fingerprint).read_text()
            entry = json.loads(raw)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("schema") != CACHE_SCHEMA:
            self.misses += 1
            return None
        self.hits += 1
        if entry.get("status") == "error":
            return EvalOutcome(error=str(entry["reason"]))
        data = entry["result"]
        data["config"] = ParallelConfig(**data["config"])
        return EvalOutcome(result=EvalResult(**data))

    def put(self, task: EvalTask, outcome: EvalOutcome) -> None:
        """Persist ``outcome`` atomically; failures degrade to no cache."""
        if not self.enabled:
            return
        fingerprint = eval_fingerprint(task)
        entry: dict[str, object] = {
            "schema": CACHE_SCHEMA,
            "method": task.method,
            "model": task.spec.name,
            "cluster": task.cluster.name,
            "global_batch_size": task.global_batch_size,
        }
        if outcome.result is not None:
            entry["status"] = "ok"
            entry["result"] = asdict(outcome.result)
        else:
            entry["status"] = "error"
            entry["reason"] = outcome.error
        path = self._path(fingerprint)
        tmp = path.with_suffix(".tmp." + str(os.getpid()))
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(entry, sort_keys=True, indent=1))
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)


def _run_task(
    indexed: tuple[int, EvalTask],
) -> tuple[int, EvalOutcome, float, int, int]:
    """Worker body: evaluate one cell, mapping rejections to outcomes.

    Module-level (picklable) and index-tagged so pool results can be
    merged deterministically regardless of completion order.  The third
    element is the evaluation's wall-clock duration, reported back so
    the parent can emit per-config telemetry spans even for pool runs;
    the last two are the generation-cache hit/miss deltas this
    evaluation caused (pool workers hold their own gen cache, so the
    parent folds these back into its counters).
    """
    index, task = indexed
    start = time.perf_counter()
    gen_h0, gen_m0 = gencache.snapshot()
    try:
        result = evaluate_config(
            task.method,
            task.spec,
            task.cluster,
            task.config,
            task.global_batch_size,
            tier=task.tier,
            capacity_mode=task.capacity_mode,
        )
        outcome = EvalOutcome(result=result)
    except (ScheduleError, ValueError) as exc:
        first = str(exc).splitlines()[0] if str(exc) else type(exc).__name__
        outcome = EvalOutcome(error=first)
    gen_h1, gen_m1 = gencache.snapshot()
    seconds = time.perf_counter() - start
    return index, outcome, seconds, gen_h1 - gen_h0, gen_m1 - gen_m0


def evaluate_tasks(
    tasks: list[EvalTask],
    jobs: int = 1,
    cache: SweepCache | None = None,
    sink: EventSink = NULL_SINK,
) -> list[EvalOutcome]:
    """Evaluate every task; returns outcomes aligned with ``tasks``.

    Cache hits are resolved up front; only misses are dispatched (to a
    process pool when ``jobs > 1``, inline otherwise) and written back.
    The returned list depends only on the task list — not on worker
    count, scheduling, or cache state — which is what makes sweeps
    reproducible across machines and ``--jobs`` settings.

    With an enabled ``sink``, the sweep emits one ``cache hit`` instant
    per replayed cell, one ``eval`` span per computed cell (worker
    durations are measured in the worker; pool runs lay the spans out
    at merge time), one ``gen cache hit`` instant per computed cell
    whose schedule constructions were (at least partly) served from the
    generation cache, and final ``cache_hits`` / ``evaluated`` /
    ``errors`` / ``gen_cache_hits`` / ``gen_cache_misses`` counters.
    Pool workers hold their own generation caches; their hit/miss
    deltas are folded back into this process's counters
    (:func:`repro.schedules.gencache.record_remote`).
    """
    observing = sink.enabled
    t0 = time.perf_counter() if observing else 0.0
    outcomes: list[EvalOutcome | None] = [None] * len(tasks)
    pending: list[tuple[int, EvalTask]] = []
    cache_hits = 0
    for i, task in enumerate(tasks):
        hit = cache.get(task) if cache is not None else None
        if hit is not None:
            outcomes[i] = hit
            cache_hits += 1
            if observing:
                sink.instant(
                    f"cache hit {task.method} {task.config.describe()}",
                    ts=time.perf_counter() - t0,
                    cat="cache",
                    args={"method": task.method, "index": i},
                )
        else:
            pending.append((i, task))

    errors = 0
    gen_hits = 0
    gen_misses = 0
    if pending:
        pooled = jobs > 1
        if pooled:
            # The planner worker pool: persistent by default (warm
            # caches across sweeps and service requests), per-sweep via
            # REPRO_PLANNER_POOL=per-sweep.  Either way the merge below
            # is by task index, so results are pool-independent.
            computed = pool.run_map(_run_task, pending, jobs)
        else:
            computed = [_run_task(item) for item in pending]
        tasks_by_index = dict(pending)
        for i, outcome, seconds, gen_h, gen_m in computed:
            outcomes[i] = outcome
            if not outcome.ok:
                errors += 1
            gen_hits += gen_h
            gen_misses += gen_m
            if pooled and (gen_h or gen_m):
                # Workers count in their own process-wide gen caches;
                # fold their deltas into ours (the inline path already
                # counted here).
                gencache.record_remote(gen_h, gen_m)
            if cache is not None:
                cache.put(tasks[i], outcome)
            if observing:
                task = tasks_by_index[i]
                now = time.perf_counter() - t0
                sink.span(
                    f"{task.method} {task.config.describe()}",
                    ts=max(0.0, now - seconds),
                    dur=seconds,
                    cat="eval",
                    args={
                        "method": task.method,
                        "index": i,
                        "ok": outcome.ok,
                        "error": outcome.error,
                    },
                )
                if gen_h:
                    sink.instant(
                        f"gen cache hit {task.method} "
                        f"{task.config.describe()}",
                        ts=now,
                        cat="cache",
                        args={"method": task.method, "index": i,
                              "hits": gen_h, "misses": gen_m},
                    )
    if observing:
        end = time.perf_counter() - t0
        sink.counter("cache_hits", float(cache_hits), ts=end)
        sink.counter("evaluated", float(len(pending)), ts=end)
        sink.counter("errors", float(errors), ts=end)
        sink.counter("gen_cache_hits", float(gen_hits), ts=end)
        sink.counter("gen_cache_misses", float(gen_misses), ts=end)
    return [outcome for outcome in outcomes if outcome is not None]


_grid_lock = threading.Lock()
_grid_batch_size = 0
_grid_class_hits = 0


def _record_grid(batch_size: int, class_hits: int) -> None:
    global _grid_batch_size, _grid_class_hits
    with _grid_lock:
        _grid_batch_size += batch_size
        _grid_class_hits += class_hits


def grid_stats() -> dict[str, int]:
    """Cumulative grid-evaluation counters for the obs bus / healthz.

    ``batch_size`` counts configs that went through a stacked
    multi-config evaluation (classes of size ≥ 2 only — singletons take
    the scalar path and gain nothing); ``topology_class_hits`` counts
    structure reuse: one per member that shared another member's
    compiled topology within a batch, plus every structure-store hit
    (plan or batch tables served from a previously compiled graph,
    including across sweeps and models).
    """
    with _grid_lock:
        return {
            "batch_size": _grid_batch_size,
            "topology_class_hits": _grid_class_hits,
        }


def reset_grid_stats() -> None:
    """Zero the grid counters (tests)."""
    global _grid_batch_size, _grid_class_hits
    with _grid_lock:
        _grid_batch_size = 0
        _grid_class_hits = 0


def _run_class(
    group: tuple[tuple[int, ...], tuple[EvalTask, ...]],
) -> tuple[
    list[tuple[int, EvalOutcome]], float, int, int, int, int, tuple[int, ...]
]:
    """Worker body: evaluate one predicted topology class as a batch.

    Returns the index-tagged outcomes plus this call's wall time, the
    generation-cache and structure-store hit/miss deltas (workers hold
    their own caches; the parent folds the deltas back), and the sizes
    of the classes that were actually batched.
    """
    indices, tasks = group
    start = time.perf_counter()
    gen_h0, gen_m0 = gencache.snapshot()
    st_h0, st_m0 = gencache.structure_snapshot()
    report = evaluate_config_batch(tasks)
    outcomes: list[tuple[int, EvalOutcome]] = []
    for i, res in zip(indices, report.results):
        if isinstance(res, EvalResult):
            outcomes.append((i, EvalOutcome(result=res)))
        else:
            text = str(res)
            first = text.splitlines()[0] if text else type(res).__name__
            outcomes.append((i, EvalOutcome(error=first)))
    gen_h1, gen_m1 = gencache.snapshot()
    st_h1, st_m1 = gencache.structure_snapshot()
    seconds = time.perf_counter() - start
    return (
        outcomes,
        seconds,
        gen_h1 - gen_h0,
        gen_m1 - gen_m0,
        st_h1 - st_h0,
        st_m1 - st_m0,
        report.class_sizes,
    )


def evaluate_tasks_batched(
    tasks: list[EvalTask],
    jobs: int = 1,
    cache: SweepCache | None = None,
    sink: EventSink = NULL_SINK,
) -> list[EvalOutcome]:
    """Like :func:`evaluate_tasks`, batching topology classes.

    Cache misses are grouped by their *predicted* topology class
    (:func:`~repro.planner.evaluate.task_class_key`) so structurally
    identical configurations reach the same worker and are evaluated by
    one stacked pass of the batched analytic evaluator.  The grouping
    is a pure dispatch optimization: the batched evaluator verifies
    actual structural identity and is bit-identical per member, so the
    returned outcomes equal :func:`evaluate_tasks`'s for any grouping,
    worker count, or pool mode.

    Emits (with an enabled sink) the ``evaluate_tasks`` counters plus
    ``batch_size`` (configs through stacked passes),
    ``topology_class_hits`` (structure reuse within batches and via the
    structure store), and ``worker_reuse`` (tasks served by an
    already-warm persistent pool); the same numbers accumulate in
    :func:`grid_stats` / :func:`repro.planner.pool.stats` for
    ``/v1/healthz``.
    """
    observing = sink.enabled
    t0 = time.perf_counter() if observing else 0.0
    outcomes: list[EvalOutcome | None] = [None] * len(tasks)
    pending: list[tuple[int, EvalTask]] = []
    cache_hits = 0
    for i, task in enumerate(tasks):
        hit = cache.get(task) if cache is not None else None
        if hit is not None:
            outcomes[i] = hit
            cache_hits += 1
            if observing:
                sink.instant(
                    f"cache hit {task.method} {task.config.describe()}",
                    ts=time.perf_counter() - t0,
                    cat="cache",
                    args={"method": task.method, "index": i},
                )
        else:
            pending.append((i, task))

    errors = 0
    gen_hits = 0
    gen_misses = 0
    batch_size = 0
    class_hits = 0
    reuse_before = pool.stats()["worker_reuse"]
    if pending:
        grouped: dict[object, list[tuple[int, EvalTask]]] = {}
        for i, task in pending:
            grouped.setdefault(task_class_key(task), []).append((i, task))
        groups = [
            (tuple(i for i, _ in members), tuple(t for _, t in members))
            for members in grouped.values()
        ]
        pooled = jobs > 1
        if pooled:
            computed = pool.run_map(_run_class, groups, jobs)
        else:
            computed = [_run_class(group) for group in groups]
        for group, record in zip(groups, computed):
            members, seconds, gen_h, gen_m, st_h, st_m, sizes = record
            if pooled and (gen_h or gen_m):
                gencache.record_remote(gen_h, gen_m)
            if pooled and (st_h or st_m):
                gencache.record_remote_structure(st_h, st_m)
            gen_hits += gen_h
            gen_misses += gen_m
            batch_size += sum(sizes)
            class_hits += st_h + sum(size - 1 for size in sizes)
            for i, outcome in members:
                outcomes[i] = outcome
                if not outcome.ok:
                    errors += 1
                if cache is not None:
                    cache.put(tasks[i], outcome)
            if observing:
                now = time.perf_counter() - t0
                first = group[1][0]
                sink.span(
                    f"class {first.method} x{len(group[0])}",
                    ts=max(0.0, now - seconds),
                    dur=seconds,
                    cat="eval",
                    args={
                        "method": first.method,
                        "members": len(group[0]),
                        "batched": list(sizes),
                    },
                )
    reuse_delta = pool.stats()["worker_reuse"] - reuse_before
    _record_grid(batch_size, class_hits)
    if observing:
        end = time.perf_counter() - t0
        sink.counter("cache_hits", float(cache_hits), ts=end)
        sink.counter("evaluated", float(len(pending)), ts=end)
        sink.counter("errors", float(errors), ts=end)
        sink.counter("gen_cache_hits", float(gen_hits), ts=end)
        sink.counter("gen_cache_misses", float(gen_misses), ts=end)
        sink.counter("batch_size", float(batch_size), ts=end)
        sink.counter("topology_class_hits", float(class_hits), ts=end)
        sink.counter("worker_reuse", float(reuse_delta), ts=end)
    return [outcome for outcome in outcomes if outcome is not None]


def merge_outcomes(
    outcomes: list[EvalOutcome],
) -> tuple[EvalResult | None, list[EvalResult]]:
    """Deterministic reduction of a sweep: the trail and the optimum.

    The best is the minimum over non-OOM results of
    ``(iteration_time, config.sort_key())`` — a total order, so ties
    between equally fast configurations resolve identically no matter
    how the work was partitioned.
    """
    evaluated: list[EvalResult] = []
    best: EvalResult | None = None
    for outcome in outcomes:
        result = outcome.result
        if result is None:
            continue
        evaluated.append(result)
        if result.oom:
            continue
        if best is None or (
            (result.iteration_time_s, result.config.sort_key())
            < (best.iteration_time_s, best.config.sort_key())
        ):
            best = result
    return best, evaluated


@dataclass
class PlannerSettings:
    """Process-wide defaults for experiment-driven sweeps.

    The CLI's ``--jobs``/``--no-cache`` flags and the ``REPRO_JOBS`` /
    ``REPRO_SWEEP_CACHE`` environment variables configure this; the
    experiment modules route their searches through it so a whole
    artifact regeneration shares one cache and one worker budget.
    """

    jobs: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_JOBS", "1"))
    )
    cache: SweepCache | None = None
    sink: EventSink = field(default_factory=lambda: NULL_SINK)

    def shared_cache(self) -> SweepCache | None:
        if self.cache is None:
            self.cache = SweepCache()
        return self.cache if self.cache.enabled else None
