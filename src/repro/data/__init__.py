"""Synthetic data generation (OpenWebText stand-in)."""

from repro.data.synthetic import token_batches

__all__ = ["token_batches"]
