"""Synthetic token streams standing in for the OpenWebText corpus.

The artifact evaluates on OpenWebText processed with the Llama 2
tokenizer; throughput and scheduling results are data-independent, so a
deterministic synthetic stream with a loosely Zipfian unigram
distribution and next-token targets exercises the same code paths.
"""

from __future__ import annotations

import numpy as np

Array = np.ndarray


def token_batches(
    vocab_size: int,
    num_microbatches: int,
    batch_size: int,
    seq_length: int,
    seed: int = 0,
) -> tuple[Array, Array]:
    """Generate ``(tokens, targets)`` of shape ``(n, B, T)``.

    Targets are the next token of a shared underlying stream, matching
    causal-LM training; the distribution is Zipf-like so the loss has
    realistic structure for the convergence examples.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = 1.0 / ranks
    probs /= probs.sum()
    total = num_microbatches * batch_size * (seq_length + 1)
    stream = rng.choice(vocab_size, size=total, p=probs)
    stream = stream.reshape(num_microbatches, batch_size, seq_length + 1)
    return stream[:, :, :-1].copy(), stream[:, :, 1:].copy()
