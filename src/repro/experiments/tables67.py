"""Tables 6 and 7: influence of PP and CP on DAPPLE for Llama 13B."""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, ms
from repro.hardware.cluster import RTX4090_CLUSTER, ClusterSpec
from repro.model.spec import LLAMA_13B, ModelSpec
from repro.parallel.strategies import ParallelConfig
from repro.planner.evaluate import evaluate_config
from repro.schedules.analysis import dapple_analysis

#: Table 6 rows: (pp, dp, cp) at GBS 64; paper: OOM / 6711.8 / 6226.3 ms.
TABLE6_CONFIGS = [(2, 4, 8), (4, 4, 4), (8, 4, 2)]

#: Table 7 rows: (pp, dp, cp) at GBS 32; paper: 3619.0 / 3199.7 / 3772.9 ms.
TABLE7_CONFIGS = [(8, 8, 1), (8, 4, 2), (8, 2, 4)]


def _run_rows(
    configs, gbs, spec: ModelSpec, cluster: ClusterSpec, report: ExperimentReport
) -> list[float | None]:
    times = []
    for pp, dp, cp in configs:
        config = ParallelConfig(dp=dp, pp=pp, cp=cp)
        n = config.micro_batches(gbs)
        theory = dapple_analysis(pp, n)
        result = evaluate_config("dapple", spec, cluster, config, gbs)
        cell = "OOM" if result.oom else ms(result.iteration_time_s) + " ms"
        report.add_row(f"({pp}, {dp}, {cp}, no)", f"{theory.bubble_ratio:.1%}", cell)
        times.append(None if result.oom else result.iteration_time_s)
    return times


def run_table6(
    spec: ModelSpec = LLAMA_13B, cluster: ClusterSpec = RTX4090_CLUSTER
) -> ExperimentReport:
    """Table 6: PP in {2, 4, 8} with CP balancing, GBS 64."""
    report = ExperimentReport(
        experiment_id="table6",
        title="Influence of PP on DAPPLE (13B, GBS 64)",
        header=["(PP, DP, CP, rc)", "bubble ratio", "iteration"],
    )
    times = _run_rows(TABLE6_CONFIGS, 64, spec, cluster, report)
    if times[0] is None and times[1] and times[2] and times[2] < times[1]:
        report.add_note("PP=2 OOM; PP=8 beats PP=4 (paper shape reproduced)")
    return report


def run_table7(
    spec: ModelSpec = LLAMA_13B, cluster: ClusterSpec = RTX4090_CLUSTER
) -> ExperimentReport:
    """Table 7: CP in {1, 2, 4} at PP 8, GBS 32."""
    report = ExperimentReport(
        experiment_id="table7",
        title="Influence of CP on DAPPLE (13B, GBS 32)",
        header=["(PP, DP, CP, rc)", "bubble ratio", "iteration"],
    )
    times = _run_rows(TABLE7_CONFIGS, 32, spec, cluster, report)
    if all(times) and times[1] < times[0] and times[1] < times[2]:
        report.add_note("CP=2 optimal: bubble gain beats comm overhead only "
                        "up to CP=2 (paper shape reproduced)")
    return report
