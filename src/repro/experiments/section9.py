"""Section 9 discussion quantified: reliability and cost of ownership.

Two of the paper's discussion estimates turned into reproducible
numbers: (1) hardware failures cost <5% on a thousand-4090 cluster
given minutes-level recovery; (2) at $0.1/kWh an A100 cluster needs
~24 years to repay its purchase premium through power savings.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport
from repro.hardware.tco import compare_equal_compute
from repro.reliability import (
    OPT_GPUS,
    OPT_MTBF_HOURS,
    ReliabilityModel,
    rtx4090_thousand_gpu_model,
    scaled_mtbf,
)


def run_reliability() -> ExperimentReport:
    """Failure-cost estimates across recovery technologies."""
    report = ExperimentReport(
        experiment_id="sec9-reliability",
        title="Failure cost, 1000x RTX 4090 (Young/Daly, OPT-logbook MTBF)",
        header=["recovery tech", "ckpt", "recover", "opt. interval",
                "overhead"],
    )
    mtbf = scaled_mtbf(OPT_MTBF_HOURS, OPT_GPUS, 1000) / 2.0
    scenarios = [
        ("disk checkpoints (classic)", 300.0, 1800.0),
        ("in-memory ckpt (GEMINI-style)", 20.0, 120.0),
        ("in-memory + fast reschedule", 5.0, 60.0),
    ]
    for label, ckpt, recover in scenarios:
        model = ReliabilityModel(
            cluster_mtbf_hours=mtbf,
            checkpoint_seconds=ckpt,
            recovery_seconds=recover,
        )
        report.add_row(
            label,
            f"{ckpt:.0f} s",
            f"{recover:.0f} s",
            f"{model.optimal_checkpoint_interval() / 60:.1f} min",
            f"{model.overhead_fraction():.1%}",
        )
    headline = rtx4090_thousand_gpu_model()
    report.add_note(
        f"memory-based checkpointing keeps the failure cost at "
        f"{headline.overhead_fraction():.1%} (paper estimate: <5%)"
    )
    return report


def run_tco() -> ExperimentReport:
    """Purchase-vs-power parity (the ~24-year figure)."""
    report = ExperimentReport(
        experiment_id="sec9-tco",
        title="Equal-compute TCO: 2x RTX 4090 vs 1x A100",
        header=["electricity $/kWh", "capex saving", "extra power",
                "parity"],
    )
    for price in (0.05, 0.10, 0.20):
        tco = compare_equal_compute(electricity_usd_per_kwh=price)
        report.add_row(
            f"{price:.2f}",
            f"${tco.capex_saving_usd:,.0f}",
            f"{tco.extra_power_watts:.0f} W",
            f"{tco.parity_years:.1f} years",
        )
    base = compare_equal_compute()
    report.add_note(
        f"at $0.1/kWh the A100 cluster reaches cost parity after "
        f"{base.parity_years:.0f} years (paper: ~24)"
    )
    return report
