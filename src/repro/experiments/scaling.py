"""Cluster-scaling view of Figure 8 (Section 7.1's emulation).

The paper keeps per-accelerator work constant by shrinking the global
batch: GBS 128/64/32 on 64 GPUs emulates a fixed GBS-1024 job on
512/1024/2048 accelerators.  This experiment presents Figure 8's data
in that frame: per-device efficiency (MFU) versus emulated cluster
size, showing MEPipe's advantage *growing* with scale — the paper's
"large cluster" (n < p) argument in Section 4.4.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport
from repro.hardware.cluster import RTX4090_CLUSTER, ClusterSpec
from repro.model.spec import LLAMA_13B, ModelSpec
from repro.parallel.strategies import ParallelConfig
from repro.planner.evaluate import evaluate_config

#: (emulated accelerators, GBS on the 64-GPU testbed).
SCALE_POINTS = [(512, 128), (1024, 64), (2048, 32)]

BASELINE = ("zb", ParallelConfig(dp=2, pp=8, cp=4))
MEPIPE = ("mepipe", ParallelConfig(dp=8, pp=8, spp=4))


def run(
    spec: ModelSpec = LLAMA_13B, cluster: ClusterSpec = RTX4090_CLUSTER
) -> ExperimentReport:
    """MFU vs emulated cluster size for MEPipe and the ZB baseline."""
    report = ExperimentReport(
        experiment_id="scaling",
        title="Per-device efficiency vs emulated cluster size (13B)",
        header=["emulated GPUs", "GBS@64", "ZB MFU", "MEPipe MFU",
                "speedup"],
    )
    for gpus, gbs in SCALE_POINTS:
        rows = {}
        for method, config in (BASELINE, MEPIPE):
            rows[method] = evaluate_config(
                method, spec, cluster, config, gbs)
        speedup = (rows["zb"].iteration_time_s
                   / rows["mepipe"].iteration_time_s)
        report.add_row(
            gpus,
            gbs,
            f"{rows['zb'].mfu:.1%}",
            f"{rows['mepipe'].mfu:.1%}",
            f"{speedup:.2f}x",
        )
    report.add_note(
        "slice-level scheduling holds its efficiency as micro-batches per "
        "pipeline shrink; whole-sample baselines lose theirs to bubbles "
        "(Section 4.4, n < p regime)"
    )
    return report
