"""Figure 8 + Table 5: end-to-end Llama 13B across global batch sizes.

For each scheduling method the optimal parallel configuration is found
by grid search over the method's search space (Section 7.1's baseline
protocol), and the winner's iteration time reported — regenerating both
the Figure 8 bars and the Table 5 configuration tuples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentReport, ms, search
from repro.hardware.cluster import RTX4090_CLUSTER, ClusterSpec
from repro.model.spec import LLAMA_13B, ModelSpec
from repro.planner.search import SearchResult

METHODS = ["dapple", "vpp", "zb", "zbv", "mepipe"]
BATCH_SIZES = [32, 64, 128]

#: Paper-measured iteration times (ms) read off Figure 8/Section 7.2
#: for shape comparison; MEPipe 13B GBS 128 is 5852 ms per Table 9.
PAPER_SPEEDUPS = {32: 1.86, 64: 1.49, 128: 1.36}


def config_tuple(method: str, cfg) -> str:
    """Render a config as Table 5's (PP, CP/SPP, VP, recompute) tuple."""
    from repro.schedules.methods import method_traits

    vp = method_traits(method).fixed_vp or cfg.vp
    return (
        f"({cfg.pp}, {max(cfg.cp, cfg.spp)}, {vp}, "
        f"{'yes' if cfg.recompute else 'no'})"
    )


@dataclass
class Fig8Cell:
    """One (method, GBS) measurement."""

    method: str
    global_batch_size: int
    result: SearchResult

    @property
    def time_ms(self) -> float | None:
        if self.result.best is None:
            return None
        return self.result.best.iteration_time_s * 1e3


def compute(
    spec: ModelSpec = LLAMA_13B,
    cluster: ClusterSpec = RTX4090_CLUSTER,
    batch_sizes: list[int] | None = None,
    methods: list[str] | None = None,
) -> list[Fig8Cell]:
    """Grid-search every (method, GBS) cell."""
    cells = []
    for gbs in batch_sizes or BATCH_SIZES:
        for method in methods or METHODS:
            cells.append(
                Fig8Cell(method, gbs, search(method, spec, cluster, gbs))
            )
    return cells


def run(
    spec: ModelSpec = LLAMA_13B,
    cluster: ClusterSpec = RTX4090_CLUSTER,
    batch_sizes: list[int] | None = None,
) -> ExperimentReport:
    """Regenerate Figure 8 (iteration times) and Table 5 (configs)."""
    batch_sizes = batch_sizes or BATCH_SIZES
    report = ExperimentReport(
        experiment_id="fig8",
        title="Llama 13B iteration time by global batch size (64x RTX 4090)",
        header=["GBS", "method", "config (PP, CP/SPP, VP, rc)", "iteration"],
    )
    cells = compute(spec, cluster, batch_sizes)
    for gbs in batch_sizes:
        times = {}
        for cell in cells:
            if cell.global_batch_size != gbs:
                continue
            best = cell.result.best
            if best is None:
                report.add_row(gbs, cell.method, "-", "OOM")
                continue
            report.add_row(
                gbs,
                cell.method,
                config_tuple(cell.method, best.config),
                ms(best.iteration_time_s) + " ms",
            )
            times[cell.method] = best.iteration_time_s
        if "mepipe" in times and len(times) > 1:
            base = min(t for m, t in times.items() if m != "mepipe")
            speedup = base / times["mepipe"]
            report.add_note(
                f"GBS {gbs}: MEPipe speedup {speedup:.2f}x over best baseline "
                f"(paper: {PAPER_SPEEDUPS.get(gbs, float('nan')):.2f}x)"
            )
    return report
