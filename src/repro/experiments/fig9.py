"""Figure 9: transformer-layer performance vs CP/SPP size.

Measures the per-layer forward+backward throughput of one Llama 13B
transformer layer under context parallelism (kernel chunking *and*
KV-exchange communication) and sequence pipeline parallelism (kernel
chunking only).  The paper's headline: SPP=8 costs only ~12.6% while CP
degrades much faster — SPP partitions activations without extra
communication (claim C2 of the artifact).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentReport
from repro.hardware.cluster import RTX4090_CLUSTER, ClusterSpec
from repro.model.spec import LLAMA_13B, ModelSpec
from repro.parallel.strategies import ParallelConfig
from repro.schedules.base import OpId, OpKind, PipelineProblem
from repro.sim.cost import ClusterCost

SIZES = [1, 2, 4, 8]


@dataclass(frozen=True)
class LayerPerf:
    """Relative per-layer throughput for one partitioning size."""

    kind: str  # "cp" or "spp"
    size: int
    layer_seconds: float
    relative_throughput: float


def _layer_seconds(
    spec: ModelSpec, cluster: ClusterSpec, cp: int, spp: int
) -> float:
    """Full-sample fwd+bwd time of one transformer layer per worker,
    summed over the worker's ops and multiplied by the partitioning
    degree (so sizes are comparable: same total work)."""
    config = ParallelConfig(dp=64 // cp, pp=1, cp=cp, spp=spp)
    problem = PipelineProblem(num_stages=1, num_microbatches=1, num_slices=spp)
    cost = ClusterCost(spec=spec, config=config, cluster=cluster, problem=problem)
    # One layer's share of a chunk: scale a single middle-chunk op down
    # to one layer.
    total = 0.0
    for sl in range(spp):
        f = cost.duration(OpId(OpKind.F, 0, sl, 0))
        b = cost.duration(OpId(OpKind.B, 0, sl, 0))
        total += f + b
    layers, _unused, _unused2 = cost._chunk_layers(0)
    return total / max(layers, 1) * cp


def compute(
    spec: ModelSpec = LLAMA_13B, cluster: ClusterSpec = RTX4090_CLUSTER
) -> list[LayerPerf]:
    """Per-layer throughput for CP and SPP at sizes 1..8."""
    base = _layer_seconds(spec, cluster, 1, 1)
    out = []
    for size in SIZES:
        for kind in ("cp", "spp"):
            cp = size if kind == "cp" else 1
            spp = size if kind == "spp" else 1
            seconds = _layer_seconds(spec, cluster, cp, spp)
            out.append(
                LayerPerf(kind, size, seconds, relative_throughput=base / seconds)
            )
    return out


def run(
    spec: ModelSpec = LLAMA_13B, cluster: ClusterSpec = RTX4090_CLUSTER
) -> ExperimentReport:
    """Regenerate Figure 9 as relative layer throughput per size."""
    report = ExperimentReport(
        experiment_id="fig9",
        title="Transformer-layer performance vs CP/SPP size (13B)",
        header=["size", "CP rel. perf", "SPP rel. perf"],
    )
    perf = {(p.kind, p.size): p for p in compute(spec, cluster)}
    for size in SIZES:
        report.add_row(
            size,
            f"{perf[('cp', size)].relative_throughput:.3f}",
            f"{perf[('spp', size)].relative_throughput:.3f}",
        )
    spp8 = perf[("spp", 8)].relative_throughput
    report.add_note(
        f"SPP=8 layer performance {1 - spp8:.1%} below SPP=1 (paper: 12.6%)"
    )
    report.add_note("SPP beats CP at every size: no KV-exchange communication")
    return report
