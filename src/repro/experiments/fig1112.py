"""Figures 11-12 + Section 7.5: fine-grained weight-gradient ablation.

Runs the paper's configuration (Llama 13B, GBS 64, the Table 5 MEPipe
strategy (PP=8, SPP=4)) with and without dynamic weight-gradient
scheduling, renders both timelines, and reports the improvement
(paper: 9.4%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentReport, ms
from repro.hardware.cluster import RTX4090_CLUSTER, ClusterSpec
from repro.model.spec import LLAMA_13B, ModelSpec
from repro.parallel.strategies import ParallelConfig
from repro.schedules.svpp import mepipe_problem, mepipe_schedule
from repro.sim.cost import ClusterCost
from repro.sim.executor import SimResult, simulate
from repro.viz.timeline import render_timeline

GBS = 64
CONFIG = ParallelConfig(dp=8, pp=8, spp=4)


@dataclass
class Ablation:
    """Simulated iteration with and without fine-grained W scheduling."""

    with_fine_grained: SimResult
    without_fine_grained: SimResult

    @property
    def improvement(self) -> float:
        """Relative iteration-time reduction from the technique."""
        t_with = self.with_fine_grained.iteration_time
        t_without = self.without_fine_grained.iteration_time
        return 1.0 - t_with / t_without


def compute(
    spec: ModelSpec = LLAMA_13B,
    cluster: ClusterSpec = RTX4090_CLUSTER,
    config: ParallelConfig = CONFIG,
    gbs: int = GBS,
    wgrad_gemms: int = 4,
) -> Ablation:
    """Simulate both variants under the calibrated cost model."""
    n = config.micro_batches(gbs)
    problem = mepipe_problem(
        config.pp, n, config.spp, virtual_size=config.vp, wgrad_gemms=wgrad_gemms
    )
    cost = ClusterCost(spec=spec, config=config, cluster=cluster, problem=problem)
    overhead = cost.dp_sync_seconds() + cost.optimizer_seconds()
    results = {}
    for fine in (True, False):
        schedule = mepipe_schedule(problem, cost=cost, fine_grained_wgrad=fine)
        results[fine] = simulate(schedule, cost, overhead_time=overhead)
    return Ablation(with_fine_grained=results[True],
                    without_fine_grained=results[False])


def compute_long_context(
    spec: ModelSpec = LLAMA_13B,
    cluster: ClusterSpec = RTX4090_CLUSTER,
    seq_length: int = 16384,
) -> Ablation:
    """Same ablation at long context, where the attention-score share —
    and therefore the slice imbalance the technique absorbs — is large
    (Section 5's imbalance discussion)."""
    from dataclasses import replace

    long_spec = replace(spec, seq_length=seq_length)
    config = ParallelConfig(dp=8, pp=8, spp=8)
    return compute(long_spec, cluster, config=config, gbs=GBS)


def run(
    spec: ModelSpec = LLAMA_13B, cluster: ClusterSpec = RTX4090_CLUSTER
) -> ExperimentReport:
    """Regenerate the Section 7.5 comparison and both timelines."""
    report = ExperimentReport(
        experiment_id="fig11-12",
        title="Fine-grained weight-gradient computation (13B, GBS 64)",
        header=["context", "variant", "iteration", "bubble", "peak act (A)"],
    )
    for ctx, ablation in [
        ("4096", compute(spec, cluster)),
        ("16384", compute_long_context(spec, cluster)),
    ]:
        for label, result in [
            ("w/o fine-grained W (Fig 11)", ablation.without_fine_grained),
            ("with fine-grained W (Fig 12)", ablation.with_fine_grained),
        ]:
            report.add_row(
                ctx,
                label,
                ms(result.iteration_time) + " ms",
                f"{result.bubble_ratio:.1%}",
                f"{result.peak_activation_units:.3f}",
            )
        report.add_note(
            f"ctx {ctx}: fine-grained W improves iteration time by "
            f"{ablation.improvement:.1%} (paper @4096: 9.4%)"
        )
    report.add_note(
        "deviation: at ctx 4096 our simulator leaves fewer mid-iteration "
        "gaps than the real PCIe cluster, so the technique's gain "
        "concentrates in the imbalanced long-context regime"
    )
    return report


def render_timelines(
    spec: ModelSpec = LLAMA_13B,
    cluster: ClusterSpec = RTX4090_CLUSTER,
    width: int = 140,
) -> str:
    """ASCII versions of Figures 11 and 12."""
    ablation = compute(spec, cluster)
    return "\n".join(
        [
            "-- Figure 11: W computed immediately after B --",
            render_timeline(ablation.without_fine_grained, width),
            "",
            "-- Figure 12: fine-grained dynamic W scheduling --",
            render_timeline(ablation.with_fine_grained, width),
        ]
    )
