"""Table 9: RTX 4090 cluster vs A100 cluster — FLOPS, MFU, and cost.

Compares the optimal strategy on 64x RTX 4090 (MEPipe) against the
optimal strategy on 32x A100-80GB (grid-searched over the classic
methods with tensor parallelism enabled, as NVLink permits) at global
batch size 128, and derives the cost-effectiveness ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentReport, ms, search
from repro.hardware.cluster import A100_CLUSTER, RTX4090_CLUSTER, ClusterSpec
from repro.model.spec import LLAMA_7B, LLAMA_13B, LLAMA_34B, ModelSpec
from repro.parallel.grid import enumerate_configs
from repro.planner.evaluate import EvalResult
from repro.planner.parallel import EvalTask, evaluate_tasks, merge_outcomes

GBS = 128
MODELS = [LLAMA_7B, LLAMA_13B, LLAMA_34B]

#: Paper-measured anchors (ms / TFLOPS per GPU) for the notes.
PAPER = {
    "llama-7b": ((3216, 220.4), (3171, 111.7)),
    "llama-13b": ((6131, 221.4), (5852, 116.0)),
    "llama-34b": ((16167, 213.9), (17043, 101.5)),
}


@dataclass
class ClusterOutcome:
    """Best result for one model on one cluster."""

    cluster: ClusterSpec
    best: EvalResult


def best_on_a100(spec: ModelSpec, gbs: int = GBS) -> EvalResult | None:
    """Grid search classic methods with TP over the A100 cluster.

    Built as one task list over all three methods and fanned out /
    cached through the shared planner plumbing, like every other sweep.
    """
    from repro.experiments.common import SETTINGS

    tasks: list[EvalTask] = []
    for method in ("dapple", "vpp", "zb"):
        for config in enumerate_configs(
            spec,
            A100_CLUSTER.num_devices,
            gbs,
            use_cp=False,
            use_tp=True,
            use_vp=method == "vpp",
            use_recompute=method == "dapple",
            min_dp=1,
        ):
            if config.tp > A100_CLUSTER.gpus_per_node:
                continue
            tasks.append(EvalTask(method, spec, A100_CLUSTER, config, gbs))
    outcomes = evaluate_tasks(tasks, jobs=SETTINGS.jobs, cache=SETTINGS.cache)
    best, _ = merge_outcomes(outcomes)
    return best


def best_on_4090(spec: ModelSpec, gbs: int = GBS) -> EvalResult | None:
    """MEPipe's grid-searched optimum on the 4090 cluster."""
    return search("mepipe", spec, RTX4090_CLUSTER, gbs).best


def run(models: list[ModelSpec] | None = None) -> ExperimentReport:
    """Regenerate Table 9."""
    report = ExperimentReport(
        experiment_id="table9",
        title="A100 (32 GPUs) vs RTX 4090 (64 GPUs) at GBS 128",
        header=["model", "cluster", "iteration", "TFLOPS/GPU", "MFU"],
    )
    for spec in models or MODELS:
        a100 = best_on_a100(spec)
        rtx = best_on_4090(spec)
        for cluster, result in ((A100_CLUSTER, a100), (RTX4090_CLUSTER, rtx)):
            if result is None:
                report.add_row(spec.name, cluster.name, "OOM", "-", "-")
                continue
            report.add_row(
                spec.name,
                cluster.name,
                ms(result.iteration_time_s) + " ms",
                f"{result.tflops_per_gpu:.1f}",
                f"{result.mfu:.1%}",
            )
        if a100 and rtx:
            # Same global batch on both clusters: throughput ratio times
            # price ratio = cost effectiveness.
            ratio = a100.iteration_time_s / rtx.iteration_time_s
            cost_eff = ratio * (
                A100_CLUSTER.total_price_usd / RTX4090_CLUSTER.total_price_usd
            )
            report.add_note(
                f"{spec.name}: 4090 cluster {cost_eff:.1f}x more cost-"
                f"effective (paper: 2.5x)"
            )
    return report
