"""Validation: static contention factor vs queued-link replay.

The end-to-end experiments charge pipeline transfers a fixed time with
a static NIC-sharing factor.  This experiment replays the Figure 8
MEPipe configuration on the queueing network simulator (links as FIFO
resources) and checks that the static model's iteration times — and
therefore every headline speedup — are not artifacts of that
simplification.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, ms
from repro.hardware.cluster import RTX4090_CLUSTER, ClusterSpec
from repro.model.memory import HALF
from repro.model.spec import LLAMA_13B, ModelSpec
from repro.parallel.strategies import ParallelConfig
from repro.schedules.methods import build_problem, build_schedule
from repro.sim.cost import ClusterCost
from repro.sim.executor import simulate
from repro.sim.network import NetworkModel, simulate_with_network

CONFIGS = [
    ("mepipe", ParallelConfig(dp=8, pp=8, spp=4)),
    ("dapple", ParallelConfig(dp=4, pp=8, cp=2)),
    ("zb", ParallelConfig(dp=2, pp=8, cp=4)),
]
GBS = 64


def run(
    spec: ModelSpec = LLAMA_13B, cluster: ClusterSpec = RTX4090_CLUSTER
) -> ExperimentReport:
    """Compare makespans under both communication models."""
    report = ExperimentReport(
        experiment_id="net-validate",
        title=f"Static vs queued-link communication model (13B, GBS {GBS})",
        header=["method", "static model", "queued links", "delta",
                "queue delay"],
    )
    for method, config in CONFIGS:
        n = config.micro_batches(GBS)
        problem = build_problem(
            method, config.pp, n,
            num_slices=config.spp, virtual_size=config.vp,
            wgrad_gemms=2 if method in ("mepipe", "zb") else 1,
        )
        cost = ClusterCost(spec=spec, config=config, cluster=cluster,
                           problem=problem)
        schedule = build_schedule(method, problem, cost=cost)
        static = simulate(schedule, cost)

        # Per-transfer bandwidth under the same sharing assumption the
        # static model uses, but with FIFO queueing instead of a fixed
        # per-edge charge.
        groups = min(config.dp * config.cp * config.tp,
                     cluster.gpus_per_node)
        nic = cluster.inter_node_link
        bw = nic.bandwidth_gbps * 1e9 / groups
        edge_bytes = HALF * cost.tokens_per_op * spec.hidden_size
        network = NetworkModel.uniform(
            problem.num_stages, bw, edge_bytes=edge_bytes,
            latency_s=nic.latency_s)
        queued = simulate_with_network(schedule, cost, network)
        delta = queued.makespan / static.makespan - 1.0
        report.add_row(
            method,
            ms(static.makespan) + " ms",
            ms(queued.makespan) + " ms",
            f"{delta:+.1%}",
            ms(network.total_queue_delay) + " ms",
        )
    report.add_note(
        "the static factor model tracks the queued replay within a few "
        "percent; headline speedups are not artifacts of the simplification"
    )
    return report
