"""Artifact experiment E0: functionality validation.

Runs a miniature model through every scheduling method on the NumPy
pipeline runtime and checks loss and gradients against sequential
execution — the reproduction of the artifact's single-node
functionality test.
"""

from __future__ import annotations

import numpy as np

from repro.data import token_batches
from repro.experiments.common import ExperimentReport
from repro.model.spec import ModelSpec, tiny_spec
from repro.nn import build_model, sequential_step
from repro.obs.events import NULL_SINK, EventSink
from repro.pipeline import PipelineRuntime
from repro.schedules.methods import build_problem, build_schedule

METHOD_SETUPS = [
    ("dapple", {}),
    ("terapipe", {"num_slices": 4}),
    ("vpp", {"virtual_size": 2}),
    ("zb", {}),
    ("zbv", {}),
    ("svpp", {"num_slices": 4, "virtual_size": 2}),
    ("mepipe", {"num_slices": 4, "wgrad_gemms": 3}),
]


def run(
    spec: ModelSpec | None = None,
    num_stages: int = 4,
    num_microbatches: int = 4,
    seed: int = 11,
    sink: EventSink = NULL_SINK,
) -> ExperimentReport:
    """Execute E0 and report max gradient deviation per method.

    With an enabled ``sink``, every method's executed iteration is
    recorded onto the telemetry bus as its own process group (``pid`` =
    method index, named after the method), so the whole E0 grid loads
    as one side-by-side trace.
    """
    spec = spec or tiny_spec(
        hidden_size=32, num_layers=6, num_heads=4, ffn_hidden_size=64,
        vocab_size=31, seq_length=16,
    )
    tokens, targets = token_batches(
        spec.vocab_size, num_microbatches, 2, spec.seq_length, seed=5)
    reference = build_model(spec, seed=seed)
    ref_loss = sequential_step(reference, tokens, targets)
    ref_grads = {k: v.copy() for k, v in reference.named_grads().items()}

    report = ExperimentReport(
        experiment_id="e0",
        title="Functionality: pipelined vs sequential gradients",
        header=["method", "loss delta", "max grad delta", "status"],
    )
    for index, (method, kwargs) in enumerate(METHOD_SETUPS):
        problem = build_problem(method, num_stages, num_microbatches, **kwargs)
        schedule = build_schedule(method, problem)
        model = build_model(spec, seed=seed)
        result = PipelineRuntime(model, tokens, targets).run(schedule)
        if sink.enabled:
            from repro.obs.record import record_iteration

            record_iteration(result, sink, pid=index, process=method)
        grad_delta = max(
            float(np.abs(g - ref_grads[k]).max())
            for k, g in model.named_grads().items()
        )
        loss_delta = abs(result.loss - ref_loss)
        ok = loss_delta < 1e-10 and grad_delta < 1e-10
        report.add_row(method, f"{loss_delta:.1e}", f"{grad_delta:.1e}",
                       "PASS" if ok else "FAIL")
    return report
