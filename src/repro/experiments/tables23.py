"""Tables 2 and 3 rendered from the library's own models.

Table 2 is qualitative (communication ranking and what each strategy
partitions); Table 3 is the closed-form bubble/memory comparison, here
cross-validated against the simulator for a representative shape.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport
from repro.model.spec import LLAMA_13B
from repro.parallel.strategies import (
    COMM_RANKING,
    ParallelConfig,
    cp_layer_comm_bytes,
    pp_boundary_bytes,
    tp_layer_comm_bytes,
)
from repro.schedules.analysis import analyze
from repro.schedules.methods import build_problem, build_schedule
from repro.sim.cost import UniformCost
from repro.sim.executor import simulate


def run_table2() -> ExperimentReport:
    """Regenerate Table 2 with modeled per-layer wire volumes."""
    report = ExperimentReport(
        experiment_id="table2",
        title="Parallel strategies: communication and partitioning",
        header=["strategy", "comm (MiB/layer/microbatch)", "param", "act", "optim"],
    )
    spec = LLAMA_13B
    g = 2
    tp = tp_layer_comm_bytes(spec, ParallelConfig(dp=8, pp=4, tp=g))
    cp = cp_layer_comm_bytes(spec, ParallelConfig(dp=8, pp=4, cp=g))
    pp = pp_boundary_bytes(spec, ParallelConfig(dp=8, pp=4)) * 2  # fwd+bwd
    mib = 1024 * 1024
    report.add_row("TP", f"{tp / mib:.1f}", "yes", "yes", "yes")
    report.add_row("CP (ZeRO)", f"{cp / mib:.1f}", "no", "yes", "yes")
    report.add_row("DP (ZeRO)", "grads only", "no", "no", "yes")
    report.add_row("PP", f"{pp / mib:.1f}", "yes", "no", "yes")
    report.add_row("SPP", f"{pp / mib / g:.1f}", "yes", "yes", "yes")
    report.add_note(f"ranking (most to least comm): {' > '.join(COMM_RANKING)}")
    return report


#: (method, s, v) rows for the Table 3 cross-check.
TABLE3_ROWS = [
    ("dapple", 1, 1),
    ("vpp", 1, 2),
    ("hanayo", 1, 2),
    ("terapipe", 4, 1),
    ("svpp", 4, 1),
    ("svpp", 4, 2),
]


def run_table3(p: int = 8, n: int = 8) -> ExperimentReport:
    """Closed forms vs simulation for every Table 3 row."""
    report = ExperimentReport(
        experiment_id="table3",
        title=f"Bubble ratio and activation memory (p={p}, n={n})",
        header=["method", "bubble (formula)", "bubble (sim)",
                "memory/A (formula)", "memory/A (sim)"],
    )
    for method, s, v in TABLE3_ROWS:
        theory = analyze(method, p, n, s=s, v=v)
        problem = build_problem(method, p, n, num_slices=s, virtual_size=v)
        schedule = build_schedule(method, problem)
        sim = simulate(schedule, UniformCost(problem))
        label = method + (f" s={s}" if s > 1 else "") + (f" v={v}" if v > 1 else "")
        report.add_row(
            label,
            f"{theory.bubble_ratio:.3f}",
            f"{sim.bubble_ratio:.3f}",
            f"{theory.memory_units:.3f}",
            f"{sim.peak_activation_units:.3f}",
        )
    return report
