"""Ablations beyond the paper's own: backward rescheduling and the
Figure 5 memory/bubble trade-off measured end to end."""

from __future__ import annotations

from repro.experiments.common import ExperimentReport
from repro.schedules.svpp import svpp_problem, svpp_schedule, svpp_variants
from repro.sim.cost import UniformCost
from repro.sim.executor import simulate


def run_reschedule(p: int = 4, n: int = 8, s: int = 2, v: int = 2) -> ExperimentReport:
    """Section 4.3's backward rescheduling: child-priority vs FIFO."""
    report = ExperimentReport(
        experiment_id="abl-resched",
        title=f"Backward rescheduling (p={p}, n={n}, s={s}, v={v})",
        header=["backward order", "bubble", "makespan", "peak act (A)"],
    )
    problem = svpp_problem(p, n, s, virtual_size=v)
    cost = UniformCost(problem)
    for label, optimize in [("children-priority (4.3)", True), ("fifo", False)]:
        schedule = svpp_schedule(problem, optimize_backward_order=optimize)
        result = simulate(schedule, cost)
        report.add_row(
            label,
            f"{result.bubble_ratio:.3f}",
            f"{result.makespan:.2f}",
            f"{result.peak_activation_units:.4f}",
        )
    return report


def run_variant_sweep(p: int = 4, n: int = 4, s: int = 2, v: int = 2) -> ExperimentReport:
    """Figure 5: every f variant's bubble/memory point."""
    report = ExperimentReport(
        experiment_id="abl-variants",
        title=f"SVPP f-variant sweep (p={p}, n={n}, s={s}, v={v})",
        header=["f", "bubble", "peak act (A)"],
    )
    problem = svpp_problem(p, n, s, virtual_size=v)
    cost = UniformCost(problem)
    for f in svpp_variants(problem):
        schedule = svpp_schedule(problem, forwards_before_first_backward=f)
        result = simulate(schedule, cost)
        report.add_row(f, f"{result.bubble_ratio:.3f}",
                       f"{result.peak_activation_units:.4f}")
    report.add_note("smaller f: less memory, more bubbles (Figure 5 trade-off)")
    return report
