"""Experiment modules regenerating every table and figure of the paper."""

from repro.experiments import (
    ablations,
    e0,
    fig1,
    fig8,
    fig9,
    fig10,
    fig1112,
    network,
    partitioning,
    scaling,
    section9,
    table9,
    tables23,
    tables67,
)
from repro.experiments.common import ExperimentReport

#: CLI-facing registry: id -> zero-argument runner.
REGISTRY = {
    "e0": e0.run,
    "fig1": fig1.run,
    "table2": tables23.run_table2,
    "table3": tables23.run_table3,
    "fig8": fig8.run,
    "table6": tables67.run_table6,
    "table7": tables67.run_table7,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11-12": fig1112.run,
    "table9": table9.run,
    "abl-resched": ablations.run_reschedule,
    "abl-variants": ablations.run_variant_sweep,
    "abl-partition": partitioning.run,
    "sec9-reliability": section9.run_reliability,
    "sec9-tco": section9.run_tco,
    "net-validate": network.run,
    "scaling": scaling.run,
}

__all__ = ["ExperimentReport", "REGISTRY"]
