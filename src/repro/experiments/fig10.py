"""Figure 10 + Table 8: model-size sweep at global batch size 128.

Grid-searches each method for Llama 7B/13B/34B on the RTX 4090 cluster.
The 34B row exercises the paper's tightest memory regime: only PP=16
fits the statics, ~5-7 GB remain for activations, and MEPipe's s=16
variant (selected by the Section 4.5 memory model) is what makes the
schedule fit without recomputation.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, ms, search
from repro.hardware.cluster import RTX4090_CLUSTER, ClusterSpec
from repro.model.spec import LLAMA_7B, LLAMA_13B, LLAMA_34B, ModelSpec

GBS = 128
MODELS: list[ModelSpec] = [LLAMA_7B, LLAMA_13B, LLAMA_34B]
METHODS = ["dapple", "vpp", "zb", "zbv", "mepipe"]


def run(
    cluster: ClusterSpec = RTX4090_CLUSTER,
    models: list[ModelSpec] | None = None,
    methods: list[str] | None = None,
) -> ExperimentReport:
    """Regenerate Figure 10 / Table 8."""
    report = ExperimentReport(
        experiment_id="fig10",
        title=f"Iteration time by model size (GBS {GBS}, 64x RTX 4090)",
        header=["model", "method", "config (PP, CP/SPP, VP, rc)", "iteration"],
    )
    for spec in models or MODELS:
        times = {}
        for method in methods or METHODS:
            result = search(method, spec, cluster, GBS)
            if result.best is None:
                report.add_row(spec.name, method, "-", "OOM")
                continue
            from repro.experiments.fig8 import config_tuple

            report.add_row(
                spec.name,
                method,
                config_tuple(method, result.best.config),
                ms(result.best.iteration_time_s) + " ms",
            )
            times[method] = result.best.iteration_time_s
        if "mepipe" in times and len(times) > 1:
            base = min(t for m, t in times.items() if m != "mepipe")
            report.add_note(
                f"{spec.name}: MEPipe speedup {base / times['mepipe']:.2f}x "
                f"over best baseline"
            )
    return report
