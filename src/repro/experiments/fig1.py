"""Figure 1: bubble ratio vs peak activation memory of SOTA schedules.

Setup from the caption: Llama 13B, context 4096, pipeline size 8,
virtual pipeline size 2, micro-batch size 1, 8 micro-batches.  Each
method is *simulated* (not just the closed form) and its per-worker
peak activation memory converted to GB with the Section 4.5 model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.memory import GiB, sample_activation_bytes
from repro.model.spec import LLAMA_13B, ModelSpec
from repro.schedules.methods import build_problem, build_schedule
from repro.sim.cost import UniformCost
from repro.sim.executor import simulate
from repro.experiments.common import ExperimentReport

P, V, N = 8, 2, 8

#: (label, method, kwargs) for every series in the figure.
SERIES: list[tuple[str, str, dict]] = [
    ("DAPPLE", "dapple", {}),
    ("VPP", "vpp", {"virtual_size": V}),
    ("Hanayo", "hanayo", {"virtual_size": V}),
    ("TeraPipe s=4", "terapipe", {"num_slices": 4}),
    ("SVPP s=4", "svpp", {"num_slices": 4, "virtual_size": V}),
    ("SVPP s=8", "svpp", {"num_slices": 8, "virtual_size": V}),
]


@dataclass(frozen=True)
class Fig1Point:
    """One point of the scatter plot."""

    label: str
    bubble_ratio: float
    activation_gb: float


def compute_points(spec: ModelSpec = LLAMA_13B) -> list[Fig1Point]:
    """Simulate every series and return the scatter points."""
    a_bytes = sample_activation_bytes(spec)
    points = []
    for label, method, kwargs in SERIES:
        problem = build_problem(method, P, N, **kwargs)
        schedule = build_schedule(method, problem)
        result = simulate(schedule, UniformCost(problem))
        points.append(
            Fig1Point(
                label=label,
                bubble_ratio=result.bubble_ratio,
                activation_gb=result.peak_activation_units * a_bytes / GiB,
            )
        )
    return points


def run(spec: ModelSpec = LLAMA_13B) -> ExperimentReport:
    """Regenerate Figure 1 as a table of (bubble, peak activation GB)."""
    report = ExperimentReport(
        experiment_id="fig1",
        title="Bubble ratio vs peak activation memory (13B, p=8, v=2, n=8)",
        header=["schedule", "bubble ratio", "peak act. (GiB/worker)"],
    )
    points = compute_points(spec)
    for pt in points:
        report.add_row(pt.label, f"{pt.bubble_ratio:.1%}", f"{pt.activation_gb:.1f}")
    by_label = {p.label: p for p in points}
    base = by_label["DAPPLE"].activation_gb
    for s in (4, 8):
        cut = 1 - by_label[f"SVPP s={s}"].activation_gb / base
        report.add_note(
            f"SVPP s={s} cuts peak activation memory {cut:.0%} vs DAPPLE "
            f"(paper: >{'70' if s == 4 else '80'}%)"
        )
    return report
