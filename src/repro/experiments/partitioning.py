"""Ablation: uniform slices + fine-grained W vs TeraPipe's DP slices.

Section 5's closing argument: below very long contexts, uniform
power-of-two slices plus dynamic weight-gradient filling beat
non-uniform DP-balanced slices (which pay irregular kernel shapes);
only when attention dominates (>128k tokens) does non-uniform
partitioning become the better tool.  This experiment measures both
ends: the per-slice bottleneck crossover and the pipeline-level
absorption of imbalance by fine-grained W.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import ExperimentReport
from repro.model.spec import LLAMA_7B, ModelSpec
from repro.schedules.partition import (
    compare_plans,
    slice_forward_seconds,
    uniform_plan,
)
from repro.schedules.svpp import mepipe_problem, mepipe_schedule
from repro.sim.cost import UniformCost
from repro.sim.executor import simulate

CONTEXTS = [4096, 16384, 65536, 131072]
SLICES = 8
PENALTY = 1.25


def imbalance_weights(spec: ModelSpec, num_slices: int) -> tuple[float, ...]:
    """Relative forward times of uniform slices (attention imbalance)."""
    plan = uniform_plan(spec.seq_length, num_slices)
    return tuple(
        slice_forward_seconds(spec, plan.slice_tokens(i), plan.slice_offset(i))
        for i in range(num_slices)
    )


def pipeline_absorption(spec: ModelSpec, num_slices: int = SLICES) -> float:
    """Fraction of the imbalance cost fine-grained W absorbs.

    Simulates MEPipe (p=4, n=8) with the context's true slice-time
    imbalance, with and without dynamic W filling; returns the
    improvement the technique delivers at this context length.
    """
    problem = mepipe_problem(4, 8, num_slices, wgrad_gemms=4)
    weights = imbalance_weights(spec, num_slices)
    cost = UniformCost(problem, tf=1.0, tb=2.0, tw=1.0, imbalance=weights)
    fine = simulate(mepipe_schedule(problem, cost=cost), cost)
    imm = simulate(
        mepipe_schedule(problem, cost=cost, fine_grained_wgrad=False), cost)
    return 1.0 - fine.makespan / imm.makespan


def run(spec: ModelSpec = LLAMA_7B) -> ExperimentReport:
    """Regenerate the Section 5 partitioning argument as a table."""
    report = ExperimentReport(
        experiment_id="abl-partition",
        title="Uniform vs DP-balanced slice partitioning (7B geometry)",
        header=["context", "uniform bottleneck", "balanced bottleneck",
                "balanced gain", "fine-grained W gain"],
    )
    for ctx in CONTEXTS:
        ctx_spec = replace(spec, seq_length=ctx)
        comparison = compare_plans(
            ctx_spec, SLICES, granularity=ctx // 64, irregular_penalty=PENALTY)
        gain = 1.0 - comparison.balanced_bottleneck / comparison.uniform_bottleneck
        absorb = pipeline_absorption(ctx_spec)
        report.add_row(
            ctx,
            f"{comparison.uniform_bottleneck * 1e3:.2f} ms",
            f"{comparison.balanced_bottleneck * 1e3:.2f} ms",
            f"{gain:.1%}",
            f"{absorb:.1%}",
        )
    report.add_note(
        "short contexts: uniform slices lose nothing and fine-grained W "
        "absorbs the residual imbalance; very long contexts: DP-balanced "
        "partitioning becomes worthwhile (Section 5)"
    )
    return report
