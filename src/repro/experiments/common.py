"""Shared report plumbing and planner settings for the experiments.

Every experiment returns an :class:`ExperimentReport` with tabular rows
that render as the paper's tables/figures-as-text, so the benchmark
harness and the CLI can print paper-vs-measured side by side.

The experiments' grid searches all route through :func:`search` here,
which applies the process-wide :class:`~repro.planner.parallel
.PlannerSettings` — worker count (``--jobs`` / ``REPRO_JOBS``) and the
shared on-disk sweep cache — so overlapping cells (e.g. Figure 8's
GBS-128 column and Figure 10's 13B row) are evaluated once per
machine, not once per artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cluster import ClusterSpec
from repro.model.spec import ModelSpec
from repro.planner.parallel import PlannerSettings
from repro.planner.search import SearchResult, search_method

#: Process-wide sweep settings; the CLI mutates this before running
#: experiments, tests leave it at the hermetic defaults (1 job, cache
#: only when ``REPRO_SWEEP_CACHE`` enables it).
SETTINGS = PlannerSettings()


def configure_planner(
    jobs: int | None = None,
    use_cache: bool | None = None,
    use_gen_cache: bool | None = None,
    pool: str | None = None,
) -> None:
    """Apply CLI-level sweep settings for subsequent :func:`search` calls.

    ``pool`` selects the planner worker-pool mode (``"persistent"`` or
    ``"per-sweep"``, the CLI's ``--pool`` / the ``REPRO_PLANNER_POOL``
    environment knob); see :mod:`repro.planner.pool`.
    """
    if jobs is not None:
        SETTINGS.jobs = jobs
    if use_cache is not None:
        SETTINGS.cache = None
        if use_cache:
            SETTINGS.shared_cache()
    if use_gen_cache is not None:
        from repro.schedules import gencache

        gencache.set_enabled(use_gen_cache)
    if pool is not None:
        from repro.planner import pool as planner_pool

        planner_pool.set_mode(pool)


def search(
    method: str,
    spec: ModelSpec,
    cluster: ClusterSpec,
    global_batch_size: int,
) -> SearchResult:
    """Grid-search ``method`` under the process-wide sweep settings."""
    return search_method(
        method,
        spec,
        cluster,
        global_batch_size,
        jobs=SETTINGS.jobs,
        cache=SETTINGS.cache,
        sink=SETTINGS.sink,
    )


@dataclass
class ExperimentReport:
    """A regenerated paper artifact."""

    experiment_id: str
    title: str
    header: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append([_fmt(c) for c in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Fixed-width text rendering."""
        table = [self.header] + self.rows
        widths = [max(len(row[i]) for row in table) for i in range(len(self.header))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for r, row in enumerate(table):
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
            if r == 0:
                lines.append("  ".join("-" * w for w in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def cell(self, row: int, column: str) -> str:
        """Look up a cell by row index and column name."""
        return self.rows[row][self.header.index(column)]

    def column(self, name: str) -> list[str]:
        idx = self.header.index(name)
        return [row[idx] for row in self.rows]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def ms(seconds: float) -> str:
    """Milliseconds with one decimal, like the paper's tables."""
    return f"{seconds * 1e3:.1f}"
