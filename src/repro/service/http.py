"""Hand-rolled asyncio HTTP/1.1 front end for the planner service.

Pure stdlib (``asyncio.start_server``) — no web framework, so the
service rides the same zero-dependency tier as the rest of the
library.  One connection serves one request (``Connection: close``),
which keeps the parser trivial and is plenty for a planning service
whose unit of work is a sweep, not a byte.

Routes (all JSON, every body carries ``schema_version``)::

    GET  /v1/healthz              liveness + store stats
    POST /v1/<kind>               execute a request (kind = plan,
                                  verify, check-model, evaluate,
                                  capacity, simulate)
         ?mode=async              -> 202 + job descriptor immediately
         ?timeout=<seconds>       per-request deadline override
         X-Repro-Tenant: <id>     quota accounting key
    GET  /v1/jobs/<id>            poll a job descriptor
    GET  /v1/jobs/<id>/events     Server-Sent Events progress stream

Request bodies are the ``to_dict`` form of the typed dataclasses in
:mod:`repro.api.types`; the ``kind`` key may be omitted because the
path already names it.  Error payloads are
:class:`repro.api.ErrorInfo` objects; the HTTP status derives from the
error ``code`` (see :data:`ERROR_STATUS`).
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qsl, urlsplit

from repro.api import SCHEMA_VERSION, ErrorInfo, RequestError, Response
from repro.api.types import REQUESTS, JsonDict
from repro.planner import SweepCache
from repro.service.config import ServiceConfig
from repro.service.jobs import Job, JobStore, QuotaExceeded

#: Error ``code`` -> HTTP status for codes minted outside
#: :class:`RequestError` (which carries its own ``http_status``).
ERROR_STATUS = {
    "timeout": 504,
    "quota-exceeded": 429,
    "not-found": 404,
    "internal": 500,
    "schema-mismatch": 400,
    "schedule-rejected": 422,
    "capacity-rejected": 422,
}

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Content",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}

_MAX_BODY_BYTES = 8 * 1024 * 1024


def error_status(error: ErrorInfo) -> int:
    """HTTP status for a structured error payload."""
    status = error.detail.get("http_status")
    if isinstance(status, int):
        return status
    return ERROR_STATUS.get(error.code, 400)


class _HttpRequest:
    def __init__(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        parts = urlsplit(target)
        self.path = parts.path
        self.query = dict(parse_qsl(parts.query))
        self.headers = headers
        self.body = body

    @property
    def tenant(self) -> str:
        return self.headers.get("x-repro-tenant", "default")

    def timeout_s(self) -> float | None:
        raw = self.query.get("timeout")
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise RequestError(
                f"timeout={raw!r} is not a number", code="bad-timeout"
            ) from None
        if value <= 0.0:
            raise RequestError(
                f"timeout must be positive, got {raw!r}", code="bad-timeout"
            )
        return value


class PlannerService:
    """The asyncio server: parse, route, respond (or stream)."""

    def __init__(
        self, config: ServiceConfig | None = None, *,
        cache: SweepCache | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.store = JobStore(self.config, cache=cache)
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self.config.port == 0:
            sockets = self._server.sockets or []
            if sockets:
                self.config.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.store.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.config.port}"

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._dispatch(request, writer)
        except RequestError as exc:
            await self._send_json(
                writer, exc.http_status, exc.to_error().to_dict()
            )
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
        ):  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - defensive
            error = ErrorInfo(
                code="internal", message=f"{type(exc).__name__}: {exc}"
            )
            try:
                await self._send_json(writer, 500, error.to_dict())
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> _HttpRequest | None:
        try:
            request_line = await reader.readline()
        except ConnectionError:  # pragma: no cover
            return None
        if not request_line:
            return None
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise RequestError("malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise RequestError(f"body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return _HttpRequest(method.upper(), target, headers, body)

    # -- routing --------------------------------------------------------

    async def _dispatch(
        self, request: _HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        path = request.path.rstrip("/") or "/"
        if path == "/v1/healthz" and request.method == "GET":
            await self._send_json(
                writer,
                200,
                {
                    "ok": True,
                    "schema_version": SCHEMA_VERSION,
                    "stats": self.store.stats(),
                },
            )
            return
        if path.startswith("/v1/jobs/"):
            await self._handle_jobs(request, path, writer)
            return
        if path.startswith("/v1/"):
            kind = path[len("/v1/") :]
            if kind in REQUESTS:
                if request.method != "POST":
                    raise RequestError(
                        f"{path} only accepts POST",
                        code="method-not-allowed",
                        http_status=405,
                    )
                await self._handle_execute(request, kind, writer)
                return
        await self._send_error(
            writer,
            ErrorInfo(
                code="not-found",
                message=f"no route for {request.method} {request.path}",
                detail={"known": sorted(f"/v1/{k}" for k in REQUESTS)},
            ),
        )

    async def _handle_execute(
        self, request: _HttpRequest, kind: str, writer: asyncio.StreamWriter
    ) -> None:
        if request.body:
            try:
                data = json.loads(request.body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise RequestError(
                    f"payload is not valid JSON: {exc}"
                ) from None
            if not isinstance(data, dict):
                raise RequestError("payload must be a JSON object")
        else:
            data = {}
        data.setdefault("kind", kind)
        if data["kind"] != kind:
            raise RequestError(
                f"body kind {data['kind']!r} does not match endpoint "
                f"{kind!r}"
            )
        timeout_s = request.timeout_s()
        api_request = REQUESTS[kind].from_dict(data)
        if request.query.get("mode") == "async":
            try:
                job = self.store.submit(api_request, tenant=request.tenant)
            except QuotaExceeded as exc:
                await self._send_error(writer, exc.to_error())
                return
            await self._send_json(writer, 202, job.to_dict())
            return
        result = await self.store.run(
            api_request, tenant=request.tenant, timeout_s=timeout_s
        )
        if isinstance(result, ErrorInfo):
            await self._send_error(writer, result)
        else:
            await self._send_response(writer, result)

    async def _handle_jobs(
        self, request: _HttpRequest, path: str, writer: asyncio.StreamWriter
    ) -> None:
        if request.method != "GET":
            raise RequestError(
                "job endpoints only accept GET",
                code="method-not-allowed",
                http_status=405,
            )
        rest = path[len("/v1/jobs/") :]
        job_id, _, tail = rest.partition("/")
        job = self.store.get(job_id)
        if job is None:
            await self._send_error(
                writer,
                ErrorInfo(
                    code="not-found", message=f"no job {job_id!r}"
                ),
            )
            return
        if tail == "":
            await self._send_json(writer, 200, job.to_dict())
        elif tail == "events":
            await self._stream_events(job, writer, request.timeout_s())
        else:
            await self._send_error(
                writer,
                ErrorInfo(
                    code="not-found",
                    message=f"no job sub-resource {tail!r}",
                ),
            )

    # -- SSE ------------------------------------------------------------

    async def _stream_events(
        self,
        job: Job,
        writer: asyncio.StreamWriter,
        timeout_s: float | None,
    ) -> None:
        deadline = (
            timeout_s
            if timeout_s is not None
            else self.config.request_timeout_s
        )
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        queue = job.subscribe()
        loop = asyncio.get_running_loop()
        end = loop.time() + (deadline or 0.0)
        while True:
            remaining = end - loop.time() if deadline else None
            if remaining is not None and remaining <= 0.0:
                payload = timeout_sse(job, deadline or 0.0)
                writer.write(_sse("error", payload))
                break
            try:
                item = await asyncio.wait_for(queue.get(), remaining)
            except asyncio.TimeoutError:
                payload = timeout_sse(job, deadline or 0.0)
                writer.write(_sse("error", payload))
                break
            if item is None:
                writer.write(_sse("done", job.to_dict()))
                break
            writer.write(_sse("obs", item))
            await writer.drain()
        await writer.drain()

    # -- responses ------------------------------------------------------

    async def _send_response(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        await self._send_raw(writer, 200, response.to_json().encode())

    async def _send_error(
        self, writer: asyncio.StreamWriter, error: ErrorInfo
    ) -> None:
        await self._send_json(
            writer, error_status(error), error.to_dict()
        )

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: JsonDict
    ) -> None:
        body = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode()
        await self._send_raw(writer, status, body)

    async def _send_raw(
        self, writer: asyncio.StreamWriter, status: int, body: bytes
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


def timeout_sse(job: Job, deadline: float) -> JsonDict:
    """The SSE ``error`` payload when a stream outlives its deadline."""
    from repro.service.jobs import timeout_error

    return timeout_error(job.job_id, deadline).to_dict()


def _sse(event: str, payload: JsonDict) -> bytes:
    data = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return f"event: {event}\ndata: {data}\n\n".encode()


async def run_service(
    config: ServiceConfig | None = None,
) -> None:
    """Run the service until cancelled (``repro serve`` entry point)."""
    service = PlannerService(config)
    await service.start()
    try:
        await service.serve_forever()
    finally:
        await service.stop()


__all__ = [
    "ERROR_STATUS",
    "PlannerService",
    "error_status",
    "run_service",
]
