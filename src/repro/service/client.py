"""Stdlib client for the planner service (``repro client ...``).

A thin, dependency-free wrapper over :mod:`http.client` that speaks
the same typed dataclasses as the server: requests go out as
``to_dict`` payloads, responses come back through
:func:`repro.api.response_from_dict`, and structured errors surface as
:class:`ServiceError` carrying the :class:`repro.api.ErrorInfo`.
"""

from __future__ import annotations

import http.client
import json
from collections.abc import Iterator
from typing import Any
from urllib.parse import urlencode, urlsplit

from repro.api import (
    ErrorInfo,
    Request,
    RequestError,
    Response,
    response_from_dict,
)
from repro.api.types import JsonDict


class ServiceError(Exception):
    """The server answered with a structured error payload."""

    def __init__(self, status: int, error: ErrorInfo) -> None:
        super().__init__(f"[{status}] {error.code}: {error.message}")
        self.status = status
        self.error = error


class ServiceClient:
    """One planner-service endpoint, e.g. ``http://127.0.0.1:8731``."""

    def __init__(
        self,
        address: str,
        *,
        tenant: str | None = None,
        timeout_s: float | None = None,
    ) -> None:
        parts = urlsplit(address if "//" in address else f"http://{address}")
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parts.scheme!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.tenant = tenant
        #: Per-request deadline forwarded as ``?timeout=``; the socket
        #: timeout is set slightly above it so the server answers first.
        self.timeout_s = timeout_s

    # -- raw transport --------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        socket_timeout = (
            self.timeout_s + 5.0 if self.timeout_s is not None else None
        )
        return http.client.HTTPConnection(
            self.host, self.port, timeout=socket_timeout
        )

    def call(
        self,
        method: str,
        path: str,
        *,
        body: JsonDict | None = None,
        query: dict[str, Any] | None = None,
    ) -> tuple[int, JsonDict]:
        """One request/response exchange; returns (status, payload)."""
        params = dict(query or {})
        if self.timeout_s is not None:
            params.setdefault("timeout", self.timeout_s)
        if params:
            path = f"{path}?{urlencode(params)}"
        headers = {"Content-Type": "application/json"}
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        payload = (
            json.dumps(body, sort_keys=True).encode() if body is not None
            else None
        )
        conn = self._connect()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError as exc:
            raise RequestError(
                f"server sent invalid JSON: {exc}"
            ) from None
        if not isinstance(data, dict):
            raise RequestError("server payload was not a JSON object")
        return response.status, data

    @staticmethod
    def _raise_for_error(status: int, data: JsonDict) -> None:
        if data.get("kind") == "error":
            raise ServiceError(status, ErrorInfo.from_dict(data))
        if status >= 400:
            raise ServiceError(
                status,
                ErrorInfo(code="http-error", message=f"HTTP {status}"),
            )

    # -- typed endpoints ------------------------------------------------

    def request(self, request: Request) -> Response:
        """Execute synchronously; raises :class:`ServiceError` on a
        structured error (timeout, quota, malformed request)."""
        status, data = self.call(
            "POST", f"/v1/{request.KIND}", body=request.to_dict()
        )
        self._raise_for_error(status, data)
        return response_from_dict(data)

    def submit(self, request: Request) -> JsonDict:
        """Submit asynchronously; returns the 202 job descriptor."""
        status, data = self.call(
            "POST",
            f"/v1/{request.KIND}",
            body=request.to_dict(),
            query={"mode": "async"},
        )
        self._raise_for_error(status, data)
        return data

    def job(self, job_id: str) -> JsonDict:
        status, data = self.call("GET", f"/v1/jobs/{job_id}")
        self._raise_for_error(status, data)
        return data

    def health(self) -> JsonDict:
        status, data = self.call("GET", "/v1/healthz")
        self._raise_for_error(status, data)
        return data

    def wait(self, job_id: str, *, poll_s: float = 0.05) -> JsonDict:
        """Poll ``/v1/jobs/<id>`` until the job finishes."""
        import time

        while True:
            data = self.job(job_id)
            if data.get("status") in ("done", "error"):
                return data
            time.sleep(poll_s)

    def events(self, job_id: str) -> Iterator[tuple[str, JsonDict]]:
        """Stream the job's SSE feed as ``(event, payload)`` pairs.

        Yields until the server sends the terminal ``done`` (or
        ``error``) event and closes the stream.
        """
        params = (
            {"timeout": self.timeout_s} if self.timeout_s is not None
            else {}
        )
        path = f"/v1/jobs/{job_id}/events"
        if params:
            path = f"{path}?{urlencode(params)}"
        conn = self._connect()
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                data = json.loads(raw.decode("utf-8")) if raw else {}
                self._raise_for_error(response.status, data)
            event_name = "message"
            data_lines: list[str] = []
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith("event:"):
                    event_name = line[len("event:") :].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:") :].strip())
                elif line == "" and data_lines:
                    payload = json.loads("\n".join(data_lines))
                    yield event_name, payload
                    if event_name in ("done", "error"):
                        return
                    event_name = "message"
                    data_lines = []
        finally:
            conn.close()


__all__ = ["ServiceClient", "ServiceError"]
