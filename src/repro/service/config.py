"""Service configuration: sockets, quotas, and the deadline knob family.

Request deadlines resolve through one knob family shared with the
pipeline channel layer (documented in ``docs/observability.md``):

1. an explicit per-request deadline (``?timeout=`` on the HTTP call or
   the ``timeout_s`` argument to :meth:`JobStore.submit`), else
2. an explicit :attr:`ServiceConfig.request_timeout_s` (the
   ``repro serve --timeout`` flag), else
3. ``REPRO_REQUEST_TIMEOUT`` (seconds, positive float), else
4. ``REPRO_CHANNEL_TIMEOUT`` — the same knob that bounds every
   blocking pipeline-channel step, so one environment variable governs
   both channel and request deadlines, else
5. :data:`repro.pipeline.channels.DEFAULT_CHANNEL_TIMEOUT` (60 s).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.schedules.base import ScheduleError


def default_request_timeout() -> float:
    """Resolve the service-level request deadline (seconds).

    Honors ``REPRO_REQUEST_TIMEOUT`` first and falls back to the
    channel-timeout knob (``REPRO_CHANNEL_TIMEOUT``, then the 60 s
    default) so both deadline families move together.  Malformed or
    non-positive overrides raise :class:`ScheduleError`, mirroring
    :func:`repro.pipeline.channels.default_channel_timeout`.
    """
    raw = os.environ.get("REPRO_REQUEST_TIMEOUT")
    if raw is None:
        from repro.pipeline.channels import default_channel_timeout

        return default_channel_timeout()
    try:
        value = float(raw)
    except ValueError:
        raise ScheduleError(
            f"REPRO_REQUEST_TIMEOUT={raw!r} is not a number"
        ) from None
    if value <= 0.0:
        raise ScheduleError(
            f"REPRO_REQUEST_TIMEOUT must be a positive number of "
            f"seconds, got {raw!r}"
        )
    return value


def _default_quota() -> int:
    raw = os.environ.get("REPRO_TENANT_QUOTA")
    if raw is None:
        return 8
    try:
        value = int(raw)
    except ValueError:
        raise ScheduleError(
            f"REPRO_TENANT_QUOTA={raw!r} is not an integer"
        ) from None
    if value < 1:
        raise ScheduleError(
            f"REPRO_TENANT_QUOTA must be >= 1, got {raw!r}"
        )
    return value


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to run the planner service."""

    host: str = "127.0.0.1"
    port: int = 8731
    #: Worker processes each planner sweep may fan out to.
    jobs: int = 1
    #: Maximum concurrently active (queued or running) jobs per tenant;
    #: attaching to an in-flight deduplicated job is not charged.
    tenant_quota: int = field(default_factory=_default_quota)
    #: Default per-request deadline in seconds (knob family above);
    #: ``None`` resolves through the environment at construction.
    request_timeout_s: float | None = None
    #: Share one computation between identical in-flight requests.
    dedup: bool = True
    #: Reuse/persist the on-disk sweep cache across requests.
    use_cache: bool = True
    #: Threads executing request handlers (bounds true concurrency).
    max_workers: int = 8

    def __post_init__(self) -> None:
        if self.request_timeout_s is None:
            self.request_timeout_s = default_request_timeout()
        if self.request_timeout_s <= 0.0:
            raise ScheduleError(
                f"request timeout must be positive, got "
                f"{self.request_timeout_s!r}"
            )
        if self.tenant_quota < 1:
            raise ScheduleError(
                f"tenant quota must be >= 1, got {self.tenant_quota!r}"
            )
