"""Async job store: dedup, quotas, deadlines, and progress streams.

Every service request becomes a :class:`Job`.  The store

- **deduplicates** identical in-flight requests onto one computation,
  keyed by :meth:`repro.api.Request.fingerprint` (the same
  version-folding contract as the sweep cache's eval fingerprints), so
  two tenants asking the same question share one planner sweep;
- enforces **per-tenant quotas** on concurrently active jobs
  (attaching to a deduplicated job is free — it adds no load);
- runs handlers on a thread pool behind ``run_in_executor`` so the
  asyncio loop stays responsive (planner sweeps further fan out to the
  :mod:`repro.planner.parallel` process pool when ``jobs > 1``);
- bridges each handler's telemetry onto the asyncio side through a
  :class:`repro.obs.QueueSink` pump, feeding per-job subscriber queues
  that back the SSE progress stream; and
- surfaces **deadline expiry** as a structured ``timeout``
  :class:`repro.api.ErrorInfo` payload while the computation keeps
  running for any patient subscriber (threads are not cancellable).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.api import (
    SCHEMA_VERSION,
    ErrorInfo,
    Request,
    RequestError,
    Response,
    execute,
)
from repro.api.types import JsonDict
from repro.obs import Event, QueueSink
from repro.planner import SweepCache
from repro.service.config import ServiceConfig

#: Seconds between telemetry pump drains while a job runs.
PUMP_INTERVAL_S = 0.02

#: Queue sentinel telling an event subscriber the stream is over.
STREAM_END = None


class QuotaExceeded(Exception):
    """A tenant already has ``quota`` active jobs."""

    def __init__(self, tenant: str, quota: int) -> None:
        super().__init__(
            f"tenant {tenant!r} already has {quota} active job(s)"
        )
        self.tenant = tenant
        self.quota = quota

    def to_error(self) -> ErrorInfo:
        return ErrorInfo(
            code="quota-exceeded",
            message=str(self),
            detail={"tenant": self.tenant, "quota": self.quota},
        )


def timeout_error(job_id: str, timeout_s: float) -> ErrorInfo:
    """The structured payload for a request that outlived its deadline."""
    return ErrorInfo(
        code="timeout",
        message=(
            f"request exceeded its {timeout_s:g}s deadline; the job "
            f"keeps running — poll /v1/jobs/{job_id}"
        ),
        detail={"job_id": job_id, "timeout_s": timeout_s},
    )


@dataclass
class Job:
    """One deduplicated unit of work and its observable state."""

    job_id: str
    kind: str
    fingerprint: str
    tenant: str
    status: str = "queued"  # queued -> running -> done | error
    response: Response | None = None
    error: ErrorInfo | None = None
    #: How many requests were folded onto this computation (1 = no
    #: dedup; every extra attach proves a shared in-flight hit).
    attached: int = 1
    created_s: float = field(default_factory=time.monotonic)
    finished_s: float | None = None
    events: list[JsonDict] = field(default_factory=list)
    done: asyncio.Event = field(default_factory=asyncio.Event)
    _subscribers: list[asyncio.Queue[JsonDict | None]] = field(
        default_factory=list
    )

    @property
    def finished(self) -> bool:
        return self.status in ("done", "error")

    def subscribe(self) -> asyncio.Queue[JsonDict | None]:
        """A queue replaying all past events, then live ones, then
        :data:`STREAM_END` once the job finishes."""
        q: asyncio.Queue[JsonDict | None] = asyncio.Queue()
        for event in self.events:
            q.put_nowait(event)
        if self.finished:
            q.put_nowait(STREAM_END)
        else:
            self._subscribers.append(q)
        return q

    def publish(self, events: list[Event]) -> None:
        dicts = [e.to_dict() for e in events]
        self.events.extend(dicts)
        for q in self._subscribers:
            for d in dicts:
                q.put_nowait(d)

    def finish(
        self, response: Response | None, error: ErrorInfo | None
    ) -> None:
        self.response = response
        self.error = error
        self.status = "error" if error is not None else "done"
        self.finished_s = time.monotonic()
        for q in self._subscribers:
            q.put_nowait(STREAM_END)
        self._subscribers.clear()
        self.done.set()

    def result(self) -> Response | ErrorInfo:
        """The finished job's payload (response or structured error)."""
        if self.error is not None:
            return self.error
        assert self.response is not None
        return self.response

    def to_dict(self) -> JsonDict:
        """The polling (``GET /v1/jobs/<id>``) representation."""
        out: JsonDict = {
            "schema_version": SCHEMA_VERSION,
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "tenant": self.tenant,
            "fingerprint": self.fingerprint,
            "attached": self.attached,
            "num_events": len(self.events),
        }
        if self.response is not None:
            out["response"] = self.response.to_dict()
        if self.error is not None:
            out["error"] = self.error.to_dict()
        return out


class JobStore:
    """Owns every job, the dedup index, quotas, and the worker pool."""

    def __init__(
        self, config: ServiceConfig, *, cache: SweepCache | None = None
    ) -> None:
        self.config = config
        if cache is None and config.use_cache:
            cache = SweepCache()
        self.cache = cache
        self._executor = ThreadPoolExecutor(
            max_workers=config.max_workers, thread_name_prefix="repro-job"
        )
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._tenant_active: dict[str, int] = {}
        self._ids = itertools.count(1)
        self._tasks: set[asyncio.Task[None]] = set()
        #: Requests answered by attaching to an in-flight job.
        self.dedup_hits = 0
        #: Handler invocations actually executed.
        self.executed = 0

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def active_jobs(self, tenant: str) -> int:
        return self._tenant_active.get(tenant, 0)

    def submit(self, request: Request, *, tenant: str = "default") -> Job:
        """Start (or attach to) the job answering ``request``.

        Raises :class:`QuotaExceeded` when the tenant is at its
        concurrency quota and no in-flight job can be shared.
        """
        fingerprint = request.fingerprint()
        if self.config.dedup:
            existing = self._inflight.get(fingerprint)
            if existing is not None:
                existing.attached += 1
                self.dedup_hits += 1
                return existing
        active = self._tenant_active.get(tenant, 0)
        if active >= self.config.tenant_quota:
            raise QuotaExceeded(tenant, self.config.tenant_quota)
        job = Job(
            job_id=f"job-{next(self._ids)}",
            kind=request.KIND,
            fingerprint=fingerprint,
            tenant=tenant,
        )
        self._jobs[job.job_id] = job
        self._inflight[fingerprint] = job
        self._tenant_active[tenant] = active + 1
        task = asyncio.get_running_loop().create_task(
            self._run(job, request)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return job

    async def wait(
        self, job: Job, *, timeout_s: float | None = None
    ) -> Response | ErrorInfo:
        """Await ``job`` up to the resolved deadline.

        On expiry the job keeps running (executor threads cannot be
        cancelled) and the caller gets a structured ``timeout`` error
        naming the job id so it can switch to polling.
        """
        timeout = (
            timeout_s
            if timeout_s is not None
            else self.config.request_timeout_s
        )
        assert timeout is not None
        try:
            await asyncio.wait_for(
                asyncio.shield(job.done.wait()), timeout
            )
        except asyncio.TimeoutError:
            return timeout_error(job.job_id, timeout)
        return job.result()

    async def run(
        self,
        request: Request,
        *,
        tenant: str = "default",
        timeout_s: float | None = None,
    ) -> Response | ErrorInfo:
        """Submit-and-wait convenience for synchronous endpoints."""
        try:
            job = self.submit(request, tenant=tenant)
        except QuotaExceeded as exc:
            return exc.to_error()
        return await self.wait(job, timeout_s=timeout_s)

    def _execute(self, request: Request, sink: QueueSink) -> Response:
        # Runs on an executor thread; closing the sink delivers the
        # end-of-stream sentinel to the asyncio-side pump.
        try:
            self.executed += 1
            return execute(request, sink=sink, cache=self.cache)
        finally:
            sink.close()

    async def _run(self, job: Job, request: Request) -> None:
        loop = asyncio.get_running_loop()
        sink = QueueSink()
        job.status = "running"
        future = loop.run_in_executor(
            self._executor, self._execute, request, sink
        )
        response: Response | None = None
        error: ErrorInfo | None = None
        try:
            while True:
                job.publish(sink.drain())
                if future.done() and sink.finished:
                    break
                await asyncio.sleep(PUMP_INTERVAL_S)
            response = future.result()
        except RequestError as exc:
            error = exc.to_error()
        except Exception as exc:  # pragma: no cover - defensive
            error = ErrorInfo(
                code="internal",
                message=f"{type(exc).__name__}: {exc}",
            )
        finally:
            self._inflight.pop(job.fingerprint, None)
            remaining = self._tenant_active.get(job.tenant, 1) - 1
            if remaining > 0:
                self._tenant_active[job.tenant] = remaining
            else:
                self._tenant_active.pop(job.tenant, None)
            job.finish(response, error)

    async def close(self) -> None:
        """Wait for in-flight jobs, then release the worker pools.

        Shuts down the persistent planner process pool too, so stopping
        the service never leaves orphaned worker processes behind.
        """
        tasks = [t for t in self._tasks if not t.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
        from repro.planner import pool

        pool.shutdown()

    def stats(self) -> dict[str, Any]:
        """Healthz counters: job-store state plus grid-planner reuse.

        ``batch_size`` / ``topology_class_hits`` come from the planner's
        grid registry and ``worker_reuse`` from the persistent pool —
        process-wide sums, surfaced here because the service is the
        long-lived process in which cross-request reuse pays off.
        """
        from repro.planner import grid_stats, pool

        grid = grid_stats()
        return {
            "jobs": len(self._jobs),
            "inflight": len(self._inflight),
            "dedup_hits": self.dedup_hits,
            "executed": self.executed,
            "batch_size": grid["batch_size"],
            "topology_class_hits": grid["topology_class_hits"],
            "worker_reuse": pool.stats()["worker_reuse"],
        }
