"""Planner-as-a-service: async HTTP + job-queue layer over ``repro.api``.

The service exposes the typed request/response facade
(:mod:`repro.api.types`) over HTTP — ``plan``, ``verify``,
``check-model``, ``evaluate``, ``capacity``, ``simulate`` — with
in-flight deduplication onto request fingerprints, per-tenant
concurrency quotas, structured timeout errors, and per-job progress
streamed from the :mod:`repro.obs` event bus over Server-Sent Events.
See ``docs/service.md`` for endpoints and wire formats.

Start it with ``repro serve``; talk to it with ``repro client`` or
:class:`ServiceClient`.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig, default_request_timeout
from repro.service.http import (
    ERROR_STATUS,
    PlannerService,
    error_status,
    run_service,
)
from repro.service.jobs import (
    Job,
    JobStore,
    QuotaExceeded,
    timeout_error,
)

__all__ = [
    "ERROR_STATUS",
    "Job",
    "JobStore",
    "PlannerService",
    "QuotaExceeded",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "default_request_timeout",
    "error_status",
    "run_service",
    "timeout_error",
]
