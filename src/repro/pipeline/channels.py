"""Zero-copy shared-memory ring channels between pipeline workers.

One :class:`ChannelProtocol` exists per directed cross-stage edge
``(src_stage, dst_stage, payload kind)`` — the exact channel model the
static FIFO verifier (``repro.schedules.verify.channels``, rule CH001)
proves schedules safe for: sends happen in the sender's program order,
receives block in the receiver's program order, and the two orders
agree.  That proof is what lets the transport be a plain
single-producer / single-consumer ring: the receiver simply takes the
next message and it is always the one its program needs (the header
carries the producing op's coordinates so the invariant is asserted,
not assumed).

The ring lives in one :class:`multiprocessing.shared_memory
.SharedMemory` segment — the sender writes the tensor directly into a
slot and the receiver reads it out of the same pages; no pickling, no
pipe traffic.  Slot hand-off uses two semaphores (``free``/``used``),
the classic SPSC protocol; both ends keep their own local slot index
so no shared counter is needed.  The protocol object is ``spawn``-safe:
it is pickled into each worker via ``Process`` args (semaphores cannot
travel over queues), and workers re-attach to the segment by name.

Every blocking operation takes a timeout (default
:data:`DEFAULT_CHANNEL_TIMEOUT`, overridable via the
``REPRO_CHANNEL_TIMEOUT`` environment variable) and raises
:class:`~repro.schedules.base.ScheduleError` on expiry, so a dead peer
surfaces as a diagnosable error instead of a hang.  Ring sizes are
chosen by the capacity analyzer (:mod:`repro.analysis.capacity`): the
parallel runtime allocates each ring at its certified minimal
deadlock-free capacity by default, falling back to one-slot-per-message
(``capacity_mode="full"``) which makes sends non-blocking.  Bounded
rings can deadlock a schedule the unbounded verifier accepts — rule
CP001 proves per-configuration that they do not.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing.shared_memory import SharedMemory
from typing import Any

import numpy as np

from repro.schedules.base import OpId, ScheduleError

Array = np.ndarray[Any, np.dtype[Any]]

#: Default seconds any single blocking pipeline step (channel send or
#: recv, start barrier, result collection) may take before the run is
#: aborted with a :class:`ScheduleError`.  Override per-process with
#: the ``REPRO_CHANNEL_TIMEOUT`` environment variable (positive float,
#: in seconds) — e.g. raise it on heavily oversubscribed CI machines.
DEFAULT_CHANNEL_TIMEOUT: float = 60.0


def default_channel_timeout() -> float:
    """The blocking-step timeout, honoring ``REPRO_CHANNEL_TIMEOUT``.

    Raises :class:`ScheduleError` on a malformed or non-positive
    override so a typo'd knob fails loudly instead of silently running
    with the default.
    """
    raw = os.environ.get("REPRO_CHANNEL_TIMEOUT")
    if raw is None:
        return DEFAULT_CHANNEL_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        raise ScheduleError(
            f"REPRO_CHANNEL_TIMEOUT={raw!r} is not a number"
        ) from None
    if value <= 0.0:
        raise ScheduleError(
            f"REPRO_CHANNEL_TIMEOUT must be a positive number of "
            f"seconds, got {raw!r}"
        )
    return value

#: Per-slot header: (microbatch, slice, chunk, ndim, d0, d1, d2, d3,
#: dtype code, payload nbytes) as int64 — 80 bytes, padded to 128.
_HEADER_INTS = 10
_HEADER_BYTES = 128
_MAX_DIMS = 4

#: Supported payload dtypes (cross-chunk tensors are float activations
#: or gradients; the table is extensible).
_DTYPES: tuple[np.dtype[Any], ...] = (
    np.dtype(np.float64),
    np.dtype(np.float32),
)


def _dtype_code(dtype: np.dtype[Any]) -> int:
    for i, d in enumerate(_DTYPES):
        if d == dtype:
            return i
    raise ScheduleError(f"unsupported channel payload dtype {dtype}")


@dataclass(frozen=True)
class ChannelKey:
    """Identity of one directed cross-stage channel."""

    src_stage: int
    dst_stage: int
    kind: str  #: "F" (forward activations) or "B" (activation grads)

    def __str__(self) -> str:
        return f"stage {self.src_stage} -> stage {self.dst_stage} ({self.kind})"


class ChannelProtocol:
    """Picklable descriptor + synchronization of one ring channel.

    Created by the parent (which owns the shared-memory segment and
    unlinks it after the run); shipped to exactly two workers via
    ``Process`` args.  Call :meth:`attach` in the worker to get a
    usable endpoint, and :meth:`close` when done.
    """

    def __init__(
        self,
        key: ChannelKey,
        shm_name: str,
        slots: int,
        slot_payload_bytes: int,
        ctx: Any,
    ) -> None:
        self.key = key
        self.shm_name = shm_name
        self.slots = slots
        self.slot_payload_bytes = slot_payload_bytes
        self.free = ctx.Semaphore(slots)
        self.used = ctx.Semaphore(0)
        self._shm: SharedMemory | None = None
        self._index = 0  # local slot cursor (SPSC: one per endpoint)

    # -- pickling: drop the attached segment, keep name + semaphores ----
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state["_shm"] = None
        state["_index"] = 0
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Map the segment into this process.

        Worker processes inherit the parent's ``resource_tracker``, so
        the attach-time registration collapses into the parent's own
        (the tracker keys by name) and the parent's ``unlink`` after
        the run is the single deregistration point — workers must not
        unregister themselves or they race it.
        """
        if self._shm is not None:
            return
        self._shm = SharedMemory(name=self.shm_name)

    def close(self) -> None:
        """Unmap the segment from this process (no unlink)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    # ------------------------------------------------------------------
    def _slot(self, index: int) -> tuple[Any, Any]:
        assert self._shm is not None, "channel endpoint not attached"
        slot_bytes = _HEADER_BYTES + self.slot_payload_bytes
        base = (index % self.slots) * slot_bytes
        buf = self._shm.buf
        header = np.frombuffer(
            buf, dtype=np.int64, count=_HEADER_INTS, offset=base
        )
        payload = buf[base + _HEADER_BYTES : base + slot_bytes]
        return header, payload

    def send(self, op: OpId, tensor: Array, timeout: float) -> None:
        """Write one message; blocks only when the ring is full."""
        if tensor.nbytes > self.slot_payload_bytes:
            raise ScheduleError(
                f"channel {self.key}: payload of {op} is {tensor.nbytes} "
                f"bytes, slot capacity {self.slot_payload_bytes}")
        if not self.free.acquire(True, timeout):
            raise ScheduleError(
                f"channel {self.key}: send of {op} timed out after "
                f"{timeout:.1f}s (receiver stalled or dead)")
        header, payload = self._slot(self._index)
        arr = np.ascontiguousarray(tensor)
        shape = list(arr.shape) + [0] * (_MAX_DIMS - arr.ndim)
        if arr.ndim > _MAX_DIMS:
            raise ScheduleError(f"channel payload rank {arr.ndim} > {_MAX_DIMS}")
        header[0], header[1], header[2] = op.microbatch, op.slice_idx, op.chunk
        header[3] = arr.ndim
        header[4:4 + _MAX_DIMS] = shape
        header[8] = _dtype_code(arr.dtype)
        header[9] = arr.nbytes
        dst = np.frombuffer(payload, dtype=arr.dtype, count=arr.size)
        np.copyto(dst.reshape(arr.shape), arr)
        self._index += 1
        self.used.release()

    def try_recv(self, expect: OpId) -> Array | None:
        """Non-blocking receive; ``None`` when no message is ready."""
        if not self.used.acquire(False):
            return None
        return self._take(expect)

    def recv_wait(self, expect: OpId, timeout: float) -> Array | None:
        """Blocking receive for up to ``timeout`` seconds."""
        if not self.used.acquire(True, timeout):
            return None
        return self._take(expect)

    def _take(self, expect: OpId) -> Array:
        header, payload = self._slot(self._index)
        mb, sl, chunk = int(header[0]), int(header[1]), int(header[2])
        if (mb, sl, chunk) != (
            expect.microbatch, expect.slice_idx, expect.chunk,
        ):
            raise ScheduleError(
                f"channel {self.key}: FIFO violation — received message "
                f"from op ({mb}, {sl}, c{chunk}) while waiting for "
                f"{expect}; the schedule passed CH001 so this indicates "
                f"a transport bug")
        ndim = int(header[3])
        shape = tuple(int(d) for d in header[4:4 + ndim])
        dtype = _DTYPES[int(header[8])]
        nbytes = int(header[9])
        view = np.frombuffer(payload, dtype=dtype, count=nbytes // dtype.itemsize)
        out: Array = view.reshape(shape).copy()  # copy out before slot reuse
        self._index += 1
        self.free.release()
        return out


def create_channel(
    key: ChannelKey,
    slots: int,
    slot_payload_bytes: int,
    ctx: Any,
    name_prefix: str,
    serial: int,
) -> tuple[ChannelProtocol, SharedMemory]:
    """Allocate one ring channel's segment and protocol object.

    Returns the protocol (to ship to the two endpoint workers) and the
    parent-owned :class:`SharedMemory` handle — the caller must
    ``close()`` and ``unlink()`` it when the run ends, success or not.
    """
    slot_bytes = _HEADER_BYTES + slot_payload_bytes
    shm = SharedMemory(
        create=True, size=max(slots * slot_bytes, 1),
        name=f"{name_prefix}c{serial}",
    )
    protocol = ChannelProtocol(key, shm.name, slots, slot_payload_bytes, ctx)
    return protocol, shm
