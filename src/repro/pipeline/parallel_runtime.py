"""True multi-process pipeline execution with measured comm/wgrad overlap.

:class:`ParallelPipelineRuntime` launches one worker **process per
pipeline stage** (``spawn`` start method), ships each stage only its
partition chunks, and moves boundary tensors through the shared-memory
ring channels of :mod:`repro.pipeline.channels`.  Where the serial
:class:`~repro.pipeline.runtime.PipelineRuntime` merely *interleaves*
stage programs in one process, here every stage runs on its own clock:
per-stage busy/idle time, channel wait time, and the bubble ratio
become measured wall-clock quantities.

The runtime realizes MEPipe's central mechanism for real: while a
worker is blocked on a channel receive it drains **deferred
weight-gradient ops** whose inputs are ready, so W compute overlaps
communication wait (Section 5).  Overlap is measured per stage
(``StageStats.overlap_w_seconds``) and rendered in traces as W spans
filling the gaps between F/B spans.

Bit-exactness contract — parallel results equal the serial golden
reference **bit for bit**:

* Each parameter's gradient adds all happen on the one stage hosting
  its chunk.  A worker executes W ops in program order *relative to
  each other* (run-ahead never reorders W vs W, it only moves W
  earlier relative to blocked F/B ops), so every parameter sees the
  exact reduction order the serial runtime uses.
* Loss terms arise only from F ops on the final chunk, accumulated in
  that one worker's program order; other workers contribute exact
  ``0.0``.
* F and B ops execute in per-stage program order, so activations,
  boundary tensors, and wgrad closures are computed from identical
  inputs in identical order.

Ring sizing is capacity-certified: before any worker spawns, the
schedule's per-channel slot counts pass through
:mod:`repro.analysis.capacity` (``capacity_mode="auto"`` allocates the
inferred minimal deadlock-free capacities; ``"full"`` restores
one-slot-per-message non-blocking sends) and a CP001/CP002 failure
aborts the run with the analyzer's minimal-cycle witness instead of
wedging live processes on saturated rings.

Failure handling: every blocking primitive carries a timeout, workers
report exceptions (with traceback) through the result queue, and the
parent converts a dead/stalled worker into a :class:`ScheduleError`
after terminating the remaining workers and unlinking every
shared-memory segment — no hangs, no orphans, no leaked ``/dev/shm``
entries.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import secrets
import time
import traceback
from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.nn.layers import Component
from repro.nn.model import TransformerModel
from repro.obs.events import NULL_SINK, EventSink
from repro.obs.metrics import CommLog
from repro.pipeline.channels import (
    _HEADER_BYTES,
    ChannelKey,
    ChannelProtocol,
    create_channel,
    default_channel_timeout,
)
from repro.pipeline.runtime import RunResult, StageStats, _preflight
from repro.pipeline.stage import StageExecutor
from repro.schedules.base import OpId, OpKind, PipelineProblem, Schedule, ScheduleError
from repro.sim.executor import OpRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.context import SpawnContext
    from multiprocessing.shared_memory import SharedMemory

__all__ = ["FaultSpec", "ParallelPipelineRuntime"]

Array = np.ndarray[Any, np.dtype[Any]]

#: Slice of blocking recv waits between deferred-W drain attempts.
_POLL_SECONDS = 0.002


@dataclass(frozen=True)
class FaultSpec:
    """Test-only fault injection: fail one worker at one program point.

    Attributes:
        stage: Worker to sabotage.
        op_index: Program position at which the fault fires.
        mode: ``"raise"`` raises a RuntimeError (reported with
            traceback); ``"exit"`` hard-kills the process with
            ``os._exit`` (no report — the parent must detect the
            death); ``"hang"`` sleeps past every timeout.
    """

    stage: int
    op_index: int
    mode: str = "raise"


@dataclass
class _WorkerConfig:
    """Everything one stage worker needs, shipped via ``Process`` args."""

    stage: int
    problem: PipelineProblem
    program: list[OpId]
    chunk_components: dict[int, list[Component]]
    component_indices: dict[int, list[int]]  #: chunk -> global comp ids
    tokens: Array
    targets: Array
    send_channels: dict[ChannelKey, ChannelProtocol]
    recv_channels: dict[ChannelKey, ChannelProtocol]
    barrier: Any
    results: Any
    timeout: float
    fault: FaultSpec | None = None


@dataclass
class _WorkerReport:
    """One stage's execution outcome, shipped back to the parent."""

    stage: int
    t0: float  #: perf_counter at the start barrier (shared clock)
    wall: float  #: seconds from barrier to program completion
    loss: float
    stats: StageStats
    records: list[OpRecord]  #: times relative to this worker's t0
    grads: dict[int, dict[str, Array]]  #: global comp id -> grads
    comms: CommLog


def _worker_main(cfg: _WorkerConfig) -> None:
    """Entry point of one stage worker (top level for ``spawn``)."""
    channels = list(cfg.send_channels.values()) + list(cfg.recv_channels.values())
    try:
        for ch in channels:
            ch.attach()
        report = _execute_stage(cfg)
        cfg.results.put(("ok", cfg.stage, report))
    except BaseException as exc:  # noqa: B036 - report, then die
        cfg.results.put(
            ("error", cfg.stage, f"{exc}\n{traceback.format_exc()}")
        )
    finally:
        for ch in channels:
            ch.close()


def _execute_stage(cfg: _WorkerConfig) -> _WorkerReport:
    """Run one stage's program; the heart of the parallel executor."""
    problem = cfg.problem
    stats = StageStats(stage=cfg.stage)
    executor = StageExecutor(
        cfg.stage, problem, cfg.chunk_components, cfg.tokens, cfg.targets, stats
    )
    program = cfg.program
    # Positions of W ops, in program order: the run-ahead cursor walks
    # this list and never skips, so W-relative order equals program
    # order (the bit-exactness invariant).
    w_positions = [i for i, op in enumerate(program) if op.kind is OpKind.W]
    w_cursor = 0
    executed_early: set[int] = set()
    records: list[OpRecord] = []
    comms = CommLog()
    loss = 0.0

    # Local mailbox for boundary tensors between chunks on this stage.
    local: dict[tuple[OpKind, int, int, int], Array] = {}

    def run_op(op: OpId, payload: Array | None, t_start: float) -> None:
        nonlocal loss
        outcome = executor.execute(op, payload)
        t_end = time.perf_counter() - t0
        loss += outcome.loss
        stats.busy_seconds += t_end - t_start
        records.append(
            OpRecord(op=op, stage=cfg.stage, start=t_start, end=t_end)
        )
        if outcome.payload is not None:
            dst = problem.stage_of_chunk(outcome.dst_chunk)
            if dst == cfg.stage:
                local[(op.kind, op.microbatch, op.slice_idx, op.chunk)] = (
                    outcome.payload
                )
            else:
                key = ChannelKey(cfg.stage, dst, op.kind.value)
                cfg.send_channels[key].send(
                    op, outcome.payload, cfg.timeout
                )
                comms.note(cfg.stage, dst, outcome.payload.nbytes)

    def drain_one_wgrad() -> bool:
        """Run the next ready deferred W op (program order); False if none."""
        nonlocal w_cursor
        while w_cursor < len(w_positions) and (
            w_positions[w_cursor] in executed_early
        ):
            w_cursor += 1
        if w_cursor >= len(w_positions):
            return False
        index = w_positions[w_cursor]
        op = program[index]
        if not executor.wgrad_ready(op):
            return False  # its B has not run; cannot skip ahead
        t_start = time.perf_counter() - t0
        run_op(op, None, t_start)
        executed_early.add(index)
        w_cursor += 1
        return True

    def recv(op: OpId, src_stage: int, producer: OpId) -> Array:
        """Blocking receive that drains deferred W ops while waiting."""
        channel = cfg.recv_channels[ChannelKey(src_stage, cfg.stage, op.kind.value)]
        deadline = time.perf_counter() + cfg.timeout
        while True:
            payload = channel.try_recv(producer)
            if payload is not None:
                return payload
            t_w = time.perf_counter()
            if drain_one_wgrad():
                stats.overlap_w_seconds += time.perf_counter() - t_w
                continue
            t_block = time.perf_counter()
            payload = channel.recv_wait(producer, _POLL_SECONDS)
            stats.wait_seconds += time.perf_counter() - t_block
            if payload is not None:
                return payload
            if time.perf_counter() > deadline:
                raise ScheduleError(
                    f"stage {cfg.stage}: recv of {producer} for {op} timed "
                    f"out after {cfg.timeout:.1f}s — upstream stage "
                    f"{src_stage} stalled or dead")

    cfg.barrier.wait(cfg.timeout)
    t0 = time.perf_counter()

    for head, op in enumerate(program):
        if head in executed_early:
            continue
        if cfg.fault is not None and cfg.fault.op_index == head:
            if cfg.fault.mode == "raise":
                raise RuntimeError(
                    f"injected fault on stage {cfg.stage} at op {op}")
            if cfg.fault.mode == "exit":
                os._exit(17)
            time.sleep(cfg.timeout * 100.0)  # "hang"
        payload: Array | None = None
        source = executor.recv_source(op)
        if source is not None:
            payload = recv(op, source[0], source[1])
        elif op.kind is OpKind.F and op.chunk > 0:
            payload = local.pop((OpKind.F, op.microbatch, op.slice_idx, op.chunk - 1))
        elif op.kind is OpKind.B and op.chunk < problem.num_chunks - 1:
            payload = local.pop((OpKind.B, op.microbatch, op.slice_idx, op.chunk + 1))
        t_start = time.perf_counter() - t0
        run_op(op, payload, t_start)
        if op.kind is OpKind.W:
            # Mark for the run-ahead cursor so the drain never revisits
            # a W op the head already executed.
            executed_early.add(head)

    wall = time.perf_counter() - t0
    if local:
        raise ScheduleError(
            f"stage {cfg.stage}: unconsumed local boundary tensors remain")
    executor.assert_drained()
    grads = {
        index: dict(comp.grads)
        for chunk, comps in cfg.chunk_components.items()
        for index, comp in zip(cfg.component_indices[chunk], comps)
    }
    return _WorkerReport(
        stage=cfg.stage,
        t0=t0,
        wall=wall,
        loss=loss,
        stats=stats,
        records=records,
        grads=grads,
        comms=comms,
    )


class ParallelPipelineRuntime:
    """Multi-process counterpart of :class:`~repro.pipeline.runtime
    .PipelineRuntime` — same constructor, same :class:`RunResult`, same
    gradients bit for bit, but stages really run concurrently.

    Args:
        model: The model to train; partitioned into
            ``schedule.problem.num_chunks`` contiguous chunks, each
            shipped only to the stage that hosts it.
        tokens: ``(n, B, T)`` token ids.
        targets: ``(n, B, T)`` labels.
        timeout: Seconds any single blocking step (channel send/recv,
            start barrier, result collection) may take before the run
            is aborted with a :class:`ScheduleError`.  Defaults to
            :func:`~repro.pipeline.channels.default_channel_timeout`,
            which honors the ``REPRO_CHANNEL_TIMEOUT`` env knob.
    """

    def __init__(
        self,
        model: TransformerModel,
        tokens: Array,
        targets: Array,
        *,
        timeout: float | None = None,
    ):
        self.model = model
        self.tokens = tokens
        self.targets = targets
        self.timeout = default_channel_timeout() if timeout is None else timeout
        n, batch, seqlen = tokens.shape
        self.num_microbatches = int(n)
        self.batch = int(batch)
        self.seq_length = int(seqlen)
        model.head.loss_scale = 1.0 / (n * batch * seqlen)

    # ------------------------------------------------------------------
    def _payload_bytes(self, problem: PipelineProblem) -> int:
        """Bytes of one ring slot's payload — a ``(B, T/s, hidden)``
        float64 boundary tensor."""
        return int(
            self.batch
            * (self.seq_length // problem.num_slices)
            * self.model.spec.hidden_size
            * np.dtype(np.float64).itemsize
        )

    def resolve_capacities(
        self,
        schedule: Schedule,
        capacity_mode: str | Mapping[Any, int] = "auto",
    ) -> dict[tuple[int, int, str], int]:
        """Resolve and certify per-channel ring capacities — the spawn gate.

        ``capacity_mode`` is ``"auto"`` (the analyzer's minimal
        deadlock-free capacities), ``"full"`` (one slot per message:
        sends never block, the pre-capacity-analysis sizing), or an
        explicit ``{(src, dst, kind): slots}`` mapping (``ChannelKey``
        keys accepted).  Whatever the source, the result is certified
        by :func:`repro.analysis.capacity.check_capacities`; the
        runtime refuses to spawn workers under capacities that are not
        provably deadlock-free (CP001/CP002).
        """
        from repro.analysis.capacity import (
            check_capacities,
            infer_capacities,
            normalize_capacities,
        )

        if isinstance(capacity_mode, str):
            plan = infer_capacities(schedule)
            if capacity_mode == "auto":
                caps = plan.capacities("deadlock-free")
            elif capacity_mode == "full":
                caps = plan.capacities("full")
            else:
                raise ScheduleError(
                    f"unknown capacity_mode {capacity_mode!r} "
                    "(expected 'auto', 'full', or a capacity mapping)"
                )
        else:
            caps = normalize_capacities(capacity_mode)
        report = check_capacities(schedule, capacities=caps)
        if not report.ok:
            raise ScheduleError(
                "parallel pipeline runtime refused to spawn: ring "
                "capacities are not certified deadlock-free\n"
                + report.render_text()
            )
        return caps

    def plan_channels(
        self,
        schedule: Schedule,
        *,
        capacity_mode: str | Mapping[Any, int] = "auto",
    ) -> tuple[dict[ChannelKey, int], int]:
        """Certified ring sizing without spawning anything.

        Returns ``({channel: slots}, total shared-memory bytes)`` —
        the exact segments :meth:`run` would allocate under
        ``capacity_mode``, each slot costing header + payload bytes.
        """
        caps = self.resolve_capacities(schedule, capacity_mode)
        slot_bytes = _HEADER_BYTES + self._payload_bytes(schedule.problem)
        slots = {
            ChannelKey(src, dst, kind): k
            for (src, dst, kind), k in sorted(caps.items())
        }
        return slots, sum(k * slot_bytes for k in slots.values())

    def _build_channels(
        self,
        problem: PipelineProblem,
        ctx: "SpawnContext",
        slots: dict[ChannelKey, int],
    ) -> tuple[dict[ChannelKey, ChannelProtocol], list["SharedMemory"]]:
        """One ring per directed cross-stage ``(src, dst, kind)`` edge,
        sized to the certified slot counts from
        :meth:`resolve_capacities`; the slot payload is one boundary
        tensor — ``(B, T/s, hidden)`` float64."""
        payload_bytes = self._payload_bytes(problem)
        prefix = f"repro{os.getpid() % 100000}x{secrets.token_hex(2)}"
        channels: dict[ChannelKey, ChannelProtocol] = {}
        segments: list[SharedMemory] = []
        for serial, (key, count) in enumerate(sorted(
            slots.items(),
            key=lambda kv: (kv[0].src_stage, kv[0].dst_stage, kv[0].kind),
        )):
            protocol, shm = create_channel(
                key, count, payload_bytes, ctx, prefix, serial
            )
            channels[key] = protocol
            segments.append(shm)
        return channels, segments

    # ------------------------------------------------------------------
    def run(
        self,
        schedule: Schedule,
        sink: EventSink = NULL_SINK,
        *,
        fault: FaultSpec | None = None,
        capacity_mode: str | Mapping[Any, int] = "auto",
    ) -> RunResult:
        """Execute one iteration under ``schedule`` across worker
        processes; returns a :class:`RunResult` with
        ``executor="parallel"`` and measured per-stage wait/overlap.

        Gradients accumulate into the model exactly as the serial
        runtime's do (workers start from the model's current gradient
        buffers and the merged results replace them).

        ``capacity_mode`` selects ring sizing (see
        :meth:`resolve_capacities`); workers only spawn once the
        chosen capacities are certified deadlock-free, and each
        stage's pinned ring bytes land in
        ``StageStats.channel_buffer_bytes``.

        ``fault`` is a test hook — see :class:`FaultSpec`.
        """
        problem = _preflight(self, schedule, "parallel pipeline runtime")
        slots, _ = self.plan_channels(schedule, capacity_mode=capacity_mode)
        num_stages = problem.num_stages
        chunks = self.model.partition(problem.num_chunks)
        component_index: dict[int, list[int]] = {}
        offset = 0
        for c, comps in enumerate(chunks):
            component_index[c] = list(range(offset, offset + len(comps)))
            offset += len(comps)

        ctx = mp.get_context("spawn")
        channels, segments = self._build_channels(problem, ctx, slots)
        barrier = ctx.Barrier(num_stages)
        results: Any = ctx.Queue()
        workers: list[Any] = []
        try:
            for stage in range(num_stages):
                cfg = _WorkerConfig(
                    stage=stage,
                    problem=problem,
                    program=schedule.stage_ops(stage),
                    chunk_components={
                        c: chunks[c] for c in problem.chunks_of_stage(stage)
                    },
                    component_indices={
                        c: component_index[c]
                        for c in problem.chunks_of_stage(stage)
                    },
                    tokens=self.tokens,
                    targets=self.targets,
                    send_channels={
                        k: ch for k, ch in channels.items()
                        if k.src_stage == stage
                    },
                    recv_channels={
                        k: ch for k, ch in channels.items()
                        if k.dst_stage == stage
                    },
                    barrier=barrier,
                    results=results,
                    timeout=self.timeout,
                    fault=fault if fault is not None and fault.stage == stage
                    else None,
                )
                proc = ctx.Process(
                    target=_worker_main, args=(cfg,),
                    name=f"repro-stage-{stage}", daemon=True,
                )
                proc.start()
                workers.append(proc)
            reports = self._collect(workers, results, num_stages)
        finally:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
                proc.join(timeout=10.0)
            for shm in segments:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            results.close()
            results.join_thread()

        # Charge each stage the ring bytes it pins as a consumer — the
        # shm footprint the capacity plan bought (or saved).
        from repro.analysis.capacity import ring_bytes_per_stage

        slot_bytes = _HEADER_BYTES + self._payload_bytes(problem)
        ring_bytes = ring_bytes_per_stage(
            {(k.src_stage, k.dst_stage, k.kind): n for k, n in slots.items()},
            num_stages,
            slot_bytes,
        )
        for report in reports:
            report.stats.channel_buffer_bytes = ring_bytes[report.stage]

        return self._merge(schedule, problem, reports, sink)

    # ------------------------------------------------------------------
    def _collect(
        self, workers: list[Any], results: Any, num_stages: int
    ) -> list[_WorkerReport]:
        """Gather one report per stage, converting any worker failure
        (reported exception, abrupt death, stall) into a
        :class:`ScheduleError`."""
        reports: dict[int, _WorkerReport] = {}
        # The deadline is generous: each blocking step inside a worker
        # already times out at ``self.timeout``, so a healthy run ends
        # far earlier; this bound only backstops a wedged worker.
        deadline = time.monotonic() + self.timeout * (num_stages + 2)
        while len(reports) < num_stages:
            try:
                status, stage, payload = results.get(timeout=0.2)
            except queue_mod.Empty:
                dead = [
                    p for p in workers
                    if not p.is_alive() and p.exitcode not in (0, None)
                ]
                if dead and len(reports) < num_stages:
                    names = ", ".join(
                        f"{p.name} (exit {p.exitcode})" for p in dead
                    )
                    raise ScheduleError(
                        f"pipeline worker died without reporting: {names}"
                    ) from None
                if time.monotonic() > deadline:
                    raise ScheduleError(
                        "parallel pipeline runtime timed out waiting for "
                        f"worker results ({len(reports)}/{num_stages} done)"
                    ) from None
                continue
            if status == "error":
                raise ScheduleError(
                    f"pipeline worker for stage {stage} failed:\n{payload}")
            reports[stage] = payload
        return [reports[s] for s in range(num_stages)]

    # ------------------------------------------------------------------
    def _merge(
        self,
        schedule: Schedule,
        problem: PipelineProblem,
        reports: list[_WorkerReport],
        sink: EventSink,
    ) -> RunResult:
        """Fuse per-worker reports into one :class:`RunResult` on a
        common clock (`perf_counter` is system-wide on the platforms we
        run on, so worker timestamps are directly comparable)."""
        global_t0 = min(r.t0 for r in reports)
        record_lists: list[list[OpRecord]] = []
        for r in reports:
            shift = r.t0 - global_t0
            record_lists.append([
                OpRecord(
                    op=rec.op, stage=rec.stage,
                    start=rec.start + shift, end=rec.end + shift,
                )
                for rec in r.records
            ])
        comms = CommLog()
        for r in reports:
            for (src, dst), count in r.comms.messages.items():
                comms.messages[(src, dst)] = (
                    comms.messages.get((src, dst), 0) + count
                )
            comms.bytes_total += r.comms.bytes_total
        for r in reports:
            for index, grads in r.grads.items():
                self.model.components[index].grads = grads
        loss = 0.0
        for r in reports:
            loss += r.loss
        result = RunResult(
            loss=loss,
            stage_stats=[r.stats for r in reports],
            ops_executed=sum(r.stats.ops_executed for r in reports),
            comms=comms,
            schedule_name=schedule.name,
            problem=problem,
            wall_seconds=max(r.t0 - global_t0 + r.wall for r in reports),
            stage_record_lists=record_lists,
            executor="parallel",
        )
        if sink.enabled:
            from repro.obs.record import record_iteration

            record_iteration(result, sink)
        return result
