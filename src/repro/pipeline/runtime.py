"""Execute a pipeline schedule numerically on a partitioned model.

This is the functional-correctness substrate (artifact experiment E0):
the model's components are partitioned into ``v * p`` chunks, each
pipeline stage executes its ordered op program, and tensors flow through
explicit channels.  Any valid schedule — DAPPLE, TeraPipe, VPP, SVPP,
MEPipe with deferred weight-gradient GEMMs — must produce gradients
identical to sequential execution; the test suite asserts exactly that.

Every op is wall-clock timed (relative to iteration start), so a
:class:`RunResult` satisfies the same :class:`~repro.obs.metrics
.PipelineResult` protocol as a simulated iteration and feeds the same
telemetry bus (``repro.obs``): pass a sink to :meth:`PipelineRuntime
.run` and the executed iteration renders row-for-row next to its
simulated counterpart in a trace viewer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.nn.layers import Component, LossHead
from repro.nn.model import TransformerModel
from repro.obs.events import NULL_SINK, EventSink
from repro.obs.metrics import CommLog
from repro.schedules.base import OpId, OpKind, PipelineProblem, Schedule, ScheduleError
from repro.sim.executor import OpRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import IterationMetrics

__all__ = [
    "CommLog",  # moved to repro.obs.metrics; re-exported for back-compat
    "PipelineRuntime",
    "RunResult",
    "StageStats",
]

Array = np.ndarray


@dataclass
class StageStats:
    """Execution statistics of one pipeline stage."""

    stage: int
    ops_executed: int = 0
    peak_live_contexts: int = 0
    peak_live_bytes: int = 0
    wgrad_tasks_run: int = 0
    busy_seconds: float = 0.0


@dataclass
class RunResult:
    """Outcome of one pipelined training iteration.

    Satisfies the :class:`~repro.obs.metrics.PipelineResult` protocol:
    ``bubble_ratio`` / ``stage_peak_bytes`` / ``comm_volume`` /
    ``stage_records`` / ``metrics()`` mirror the simulator's accessors,
    with wall-clock seconds as the time base.
    """

    loss: float
    stage_stats: list[StageStats]
    ops_executed: int
    comms: CommLog = field(default_factory=CommLog)
    schedule_name: str = "unnamed"
    problem: PipelineProblem | None = None
    wall_seconds: float = 0.0
    stage_record_lists: list[list[OpRecord]] = field(default_factory=list)

    @property
    def peak_live_contexts(self) -> int:
        """Largest number of live slice-contexts on any stage."""
        return max(s.peak_live_contexts for s in self.stage_stats)

    @property
    def peak_live_bytes(self) -> int:
        """Largest live activation footprint on any stage, in bytes."""
        return max(s.peak_live_bytes for s in self.stage_stats)

    # -- PipelineResult protocol ---------------------------------------
    @property
    def stage_peak_bytes(self) -> tuple[int, ...]:
        """Per-stage peak live activation bytes (measured)."""
        return tuple(s.peak_live_bytes for s in self.stage_stats)

    @property
    def comm_volume(self) -> CommLog:
        """Cross-stage traffic (alias of ``comms``)."""
        return self.comms

    @property
    def bubble_ratio(self) -> float:
        """Wall-clock idle fraction ``1 - busy / (p * wall)``.

        The runtime executes all stages in one process, so stage "idle"
        here includes time spent running other stages' ops — useful for
        comparing schedules against each other on this substrate, not
        as an absolute device-utilization figure.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        busy = sum(s.busy_seconds for s in self.stage_stats)
        return 1.0 - busy / (len(self.stage_stats) * self.wall_seconds)

    def stage_records(self, stage: int) -> list[OpRecord]:
        """Wall-clock op records of one stage, in start order."""
        if not self.stage_record_lists:
            return []
        return self.stage_record_lists[stage]

    def metrics(self) -> "IterationMetrics":
        """Uniform :class:`~repro.obs.metrics.IterationMetrics` summary."""
        from repro.obs.metrics import iteration_metrics

        return iteration_metrics(
            self,
            source="runtime",
            time_unit="seconds",
            num_stages=len(self.stage_stats),
        )


@dataclass
class _Channels:
    """Tensor mailboxes between chunks."""

    forward: dict[tuple[int, int, int], Array] = field(default_factory=dict)
    backward: dict[tuple[int, int, int], Array] = field(default_factory=dict)


class PipelineRuntime:
    """Runs schedules over a chunk-partitioned :class:`TransformerModel`.

    Args:
        model: The model to train; it is partitioned into
            ``schedule.problem.num_chunks`` contiguous chunks.
        tokens: ``(n, B, T)`` token ids.
        targets: ``(n, B, T)`` labels.
    """

    def __init__(self, model: TransformerModel, tokens: Array, targets: Array):
        self.model = model
        self.tokens = tokens
        self.targets = targets
        n, batch, seqlen = tokens.shape
        self.num_microbatches = n
        self.seq_length = seqlen
        model.head.loss_scale = 1.0 / (n * batch * seqlen)

    # ------------------------------------------------------------------
    def run(self, schedule: Schedule, sink: EventSink = NULL_SINK) -> RunResult:
        """Execute one iteration under ``schedule``.

        Gradients accumulate into the model; call ``model.init_grads()``
        between iterations (or use :class:`repro.nn.Adam`, which does).

        When ``sink`` is enabled, the iteration's telemetry (per-op
        spans, channel send/recv instants, per-stage counters) is
        emitted after execution via :func:`repro.obs.record
        .record_iteration`.
        """
        from repro.analysis import ensure_model_verified
        from repro.schedules.verify import ensure_verified

        ensure_verified(schedule, context="pipeline runtime")
        ensure_model_verified(self.model, schedule, context="pipeline runtime")
        problem = schedule.problem
        if problem.num_microbatches != self.num_microbatches:
            raise ScheduleError(
                f"schedule expects {problem.num_microbatches} micro-batches, "
                f"data has {self.num_microbatches}")
        if self.seq_length % problem.num_slices != 0:
            raise ScheduleError("sequence not divisible into slices")

        chunks = self.model.partition(problem.num_chunks)
        stage_components = [
            [comp for c in problem.chunks_of_stage(s) for comp in chunks[c]]
            for s in range(problem.num_stages)
        ]
        programs = [schedule.stage_ops(s) for s in range(problem.num_stages)]
        channels = _Channels()
        stats = [StageStats(stage=s) for s in range(problem.num_stages)]
        records: list[list[OpRecord]] = [[] for _ in range(problem.num_stages)]
        wgrad_groups: dict[tuple[int, int, int], list[list]] = {}
        comms = CommLog()
        loss = 0.0

        # Token-passing execution: stages advance their program heads
        # whenever the next op's inputs are available.  This realizes
        # any dependency-consistent interleaving; numerics cannot depend
        # on which one the wall clock would pick.
        heads = [0] * problem.num_stages
        done: set[OpId] = set()
        total = schedule.op_count()
        t0 = time.perf_counter()
        while len(done) < total:
            progressed = False
            for stage in range(problem.num_stages):
                program = programs[stage]
                while heads[stage] < len(program):
                    op = program[heads[stage]]
                    if any(d not in done for d in problem.deps(op)):
                        break
                    op_start = time.perf_counter() - t0
                    loss += self._execute(
                        op, problem, chunks, channels, wgrad_groups,
                        stats[stage], stage_components[stage], comms)
                    op_end = time.perf_counter() - t0
                    stats[stage].busy_seconds += op_end - op_start
                    records[stage].append(
                        OpRecord(op=op, stage=stage, start=op_start, end=op_end)
                    )
                    done.add(op)
                    heads[stage] += 1
                    progressed = True
            if not progressed:
                raise ScheduleError("pipeline runtime deadlock")
        wall = time.perf_counter() - t0

        if channels.forward or channels.backward:
            raise ScheduleError("unconsumed channel tensors at iteration end")
        if wgrad_groups and any(any(g) for g in wgrad_groups.values()):
            raise ScheduleError("unexecuted weight-gradient tasks remain")
        result = RunResult(
            loss=loss,
            stage_stats=stats,
            ops_executed=sum(s.ops_executed for s in stats),
            comms=comms,
            schedule_name=schedule.name,
            problem=problem,
            wall_seconds=wall,
            stage_record_lists=records,
        )
        if sink.enabled:
            from repro.obs.record import record_iteration

            record_iteration(result, sink)
        return result

    # ------------------------------------------------------------------
    def _slice_tokens(self, source: Array, mb: int, sl: int, s: int) -> Array:
        t = self.seq_length // s
        return source[mb, :, sl * t : (sl + 1) * t]

    def _execute(
        self, op, problem, chunks, channels, wgrad_groups, stat,
        stage_components, comms,
    ) -> float:
        mb, sl, c = op.microbatch, op.slice_idx, op.chunk
        components: list[Component] = chunks[c]
        loss_out = 0.0
        if op.kind is OpKind.F:
            if c == 0:
                x: object = self._slice_tokens(self.tokens, mb, sl,
                                               problem.num_slices)
            else:
                x = channels.forward.pop((mb, sl, c - 1))
            for comp in components:
                if isinstance(comp, LossHead):
                    comp.set_targets(
                        mb, sl,
                        self._slice_tokens(self.targets, mb, sl,
                                           problem.num_slices))
                x = comp.forward(mb, sl, x)
            if c == problem.num_chunks - 1:
                loss_out = float(x)  # LossHead output
            else:
                channels.forward[(mb, sl, c)] = x
                src, dst = problem.stage_of_chunk(c), problem.stage_of_chunk(c + 1)
                if src != dst:
                    comms.note(src, dst, x.nbytes)
        elif op.kind is OpKind.B:
            if c == problem.num_chunks - 1:
                dy: object = None
            else:
                dy = channels.backward.pop((mb, sl, c + 1))
            tasks = []
            for comp in reversed(components):
                dy = comp.backward(mb, sl, dy)
                tasks.extend(comp.pop_wgrad_tasks(mb, sl))
            if dy is not None and c > 0:
                channels.backward[(mb, sl, c)] = dy
                src, dst = problem.stage_of_chunk(c), problem.stage_of_chunk(c - 1)
                if src != dst:
                    comms.note(src, dst, dy.nbytes)
            if problem.split_backward:
                g = problem.wgrad_gemms
                groups = [tasks[i::g] for i in range(g)]
                wgrad_groups[(mb, sl, c)] = groups
            else:
                for task in tasks:
                    task()
                stat.wgrad_tasks_run += len(tasks)
        else:
            groups = wgrad_groups[(mb, sl, c)]
            tasks = groups[op.gemm]
            groups[op.gemm] = []
            for task in tasks:
                task()
            stat.wgrad_tasks_run += len(tasks)

        stat.ops_executed += 1
        live = sum(comp.live_contexts for comp in stage_components)
        stat.peak_live_contexts = max(stat.peak_live_contexts, live)
        live_bytes = sum(comp.live_bytes() for comp in stage_components)
        stat.peak_live_bytes = max(stat.peak_live_bytes, live_bytes)
        return loss_out
