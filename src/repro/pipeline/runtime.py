"""Execute a pipeline schedule numerically on a partitioned model.

This is the functional-correctness substrate (artifact experiment E0)
and the repository's **golden reference**: the model's components are
partitioned into ``v * p`` chunks, each pipeline stage executes its
ordered op program, and tensors flow through explicit channels.  Any
valid schedule — DAPPLE, TeraPipe, VPP, SVPP, MEPipe with deferred
weight-gradient GEMMs — must produce gradients identical to sequential
execution; the test suite asserts exactly that, and the multi-process
:class:`~repro.pipeline.parallel_runtime.ParallelPipelineRuntime` is
in turn held bit-for-bit to this runtime.

Every op is wall-clock timed (relative to iteration start), so a
:class:`RunResult` satisfies the same :class:`~repro.obs.metrics
.PipelineResult` protocol as a simulated iteration and feeds the same
telemetry bus (``repro.obs``): pass a sink to :meth:`PipelineRuntime
.run` and the executed iteration renders row-for-row next to its
simulated counterpart in a trace viewer.

The per-op numerical semantics live in :class:`~repro.pipeline.stage
.StageExecutor`, shared with the parallel runtime; this module only
supplies the single-process scheduling loop and in-process mailboxes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol

import numpy as np

from repro.nn.model import TransformerModel
from repro.obs.events import NULL_SINK, EventSink
from repro.obs.metrics import CommLog
from repro.pipeline.stage import StageExecutor
from repro.schedules.base import OpId, OpKind, PipelineProblem, Schedule, ScheduleError
from repro.sim.executor import OpRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import IterationMetrics

__all__ = [
    "CommLog",  # moved to repro.obs.metrics; re-exported for back-compat
    "PipelineRuntime",
    "RunResult",
    "StageStats",
]

Array = np.ndarray[Any, np.dtype[Any]]


@dataclass
class StageStats:
    """Execution statistics of one pipeline stage.

    ``wait_seconds`` and ``overlap_w_seconds`` are measured only by the
    parallel runtime (a single-process execution never blocks on a
    channel): the former is time spent blocked on a channel receive,
    the latter is W-op compute performed *while* such a receive was
    pending — the paper's comm/wgrad overlap, as a wall-clock quantity.

    ``channel_buffer_bytes`` is the shared-memory ring footprint this
    stage pins as a *consumer* (slots × (header + payload) summed over
    its incoming channels), stamped by the parallel runtime from the
    capacity plan it allocated rings under; zero for serial runs,
    which use in-process mailboxes.
    """

    stage: int
    ops_executed: int = 0
    peak_live_contexts: int = 0
    peak_live_bytes: int = 0
    wgrad_tasks_run: int = 0
    busy_seconds: float = 0.0
    wait_seconds: float = 0.0
    overlap_w_seconds: float = 0.0
    channel_buffer_bytes: int = 0


@dataclass
class RunResult:
    """Outcome of one pipelined training iteration.

    Satisfies the :class:`~repro.obs.metrics.PipelineResult` protocol:
    ``bubble_ratio`` / ``stage_peak_bytes`` / ``comm_volume`` /
    ``stage_records`` / ``metrics()`` mirror the simulator's accessors,
    with wall-clock seconds as the time base.  ``executor`` records
    which runtime produced the result (``"serial"`` or ``"parallel"``)
    — the interpretation of :attr:`bubble_ratio` depends on it.
    """

    loss: float
    stage_stats: list[StageStats]
    ops_executed: int
    comms: CommLog = field(default_factory=CommLog)
    schedule_name: str = "unnamed"
    problem: PipelineProblem | None = None
    wall_seconds: float = 0.0
    stage_record_lists: list[list[OpRecord]] = field(default_factory=list)
    executor: str = "serial"

    @property
    def peak_live_contexts(self) -> int:
        """Largest number of live slice-contexts on any stage."""
        return max(s.peak_live_contexts for s in self.stage_stats)

    @property
    def peak_live_bytes(self) -> int:
        """Largest live activation footprint on any stage, in bytes."""
        return max(s.peak_live_bytes for s in self.stage_stats)

    @property
    def overlap_w_seconds(self) -> float:
        """Total W-op compute performed while a channel recv was pending.

        Nonzero only for parallel executions: it is the measured
        comm/wgrad overlap MEPipe's deferred weight-gradient GEMMs
        exist to create (Section 5).
        """
        return sum(s.overlap_w_seconds for s in self.stage_stats)

    # -- PipelineResult protocol ---------------------------------------
    @property
    def stage_peak_bytes(self) -> tuple[int, ...]:
        """Per-stage peak live activation bytes (measured)."""
        return tuple(s.peak_live_bytes for s in self.stage_stats)

    @property
    def comm_volume(self) -> CommLog:
        """Cross-stage traffic (alias of ``comms``)."""
        return self.comms

    @property
    def bubble_ratio(self) -> float:
        """Wall-clock idle fraction ``1 - busy / (p * wall)``.

        For a **parallel** result (``executor == "parallel"``) every
        stage is its own process, so this is a true measured
        device-idle fraction: per-stage idle is real wall-clock time
        the worker spent blocked on channels (``StageStats
        .wait_seconds``) or out of work.

        For a **serial** result the runtime executes all stages in one
        process, so stage "idle" includes time spent running other
        stages' ops — useful for comparing schedules against each other
        on this substrate, not as an absolute utilization figure.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        busy = sum(s.busy_seconds for s in self.stage_stats)
        return 1.0 - busy / (len(self.stage_stats) * self.wall_seconds)

    def stage_records(self, stage: int) -> list[OpRecord]:
        """Wall-clock op records of one stage, in start order."""
        if not self.stage_record_lists:
            return []
        return self.stage_record_lists[stage]

    def metrics(self) -> "IterationMetrics":
        """Uniform :class:`~repro.obs.metrics.IterationMetrics` summary."""
        from repro.obs.metrics import iteration_metrics

        return iteration_metrics(
            self,
            source="runtime",
            time_unit="seconds",
            num_stages=len(self.stage_stats),
        )


class _RuntimeLike(Protocol):
    """What :func:`_preflight` needs from either runtime."""

    model: TransformerModel
    num_microbatches: int
    seq_length: int


def _preflight(
    runtime: _RuntimeLike, schedule: Schedule, context: str
) -> PipelineProblem:
    """Shared entry checks of both runtimes: static verification plus
    data/problem shape agreement."""
    from repro.analysis import ensure_model_verified
    from repro.schedules.verify import ensure_verified

    ensure_verified(schedule, context=context)
    ensure_model_verified(runtime.model, schedule, context=context)
    problem = schedule.problem
    if problem.num_microbatches != runtime.num_microbatches:
        raise ScheduleError(
            f"schedule expects {problem.num_microbatches} micro-batches, "
            f"data has {runtime.num_microbatches}")
    if runtime.seq_length % problem.num_slices != 0:
        raise ScheduleError("sequence not divisible into slices")
    return problem


class PipelineRuntime:
    """Runs schedules over a chunk-partitioned :class:`TransformerModel`.

    Args:
        model: The model to train; it is partitioned into
            ``schedule.problem.num_chunks`` contiguous chunks.
        tokens: ``(n, B, T)`` token ids.
        targets: ``(n, B, T)`` labels.
    """

    def __init__(self, model: TransformerModel, tokens: Array, targets: Array):
        self.model = model
        self.tokens = tokens
        self.targets = targets
        n, batch, seqlen = tokens.shape
        self.num_microbatches = int(n)
        self.seq_length = int(seqlen)
        model.head.loss_scale = 1.0 / (n * batch * seqlen)

    # ------------------------------------------------------------------
    def run(self, schedule: Schedule, sink: EventSink = NULL_SINK) -> RunResult:
        """Execute one iteration under ``schedule``.

        Gradients accumulate into the model; call ``model.init_grads()``
        between iterations (or use :class:`repro.nn.Adam`, which does).

        When ``sink`` is enabled, the iteration's telemetry (per-op
        spans, channel send/recv instants, per-stage counters) is
        emitted after execution via :func:`repro.obs.record
        .record_iteration`.
        """
        problem = _preflight(self, schedule, "pipeline runtime")

        chunks = self.model.partition(problem.num_chunks)
        stats = [StageStats(stage=s) for s in range(problem.num_stages)]
        executors = [
            StageExecutor(
                s,
                problem,
                {c: chunks[c] for c in problem.chunks_of_stage(s)},
                self.tokens,
                self.targets,
                stats[s],
            )
            for s in range(problem.num_stages)
        ]
        programs = [schedule.stage_ops(s) for s in range(problem.num_stages)]
        records: list[list[OpRecord]] = [[] for _ in range(problem.num_stages)]
        # In-process mailboxes: (mb, sl, chunk) -> boundary tensor.
        forward: dict[tuple[int, int, int], Array] = {}
        backward: dict[tuple[int, int, int], Array] = {}
        comms = CommLog()
        loss = 0.0

        # Token-passing execution: stages advance their program heads
        # whenever the next op's inputs are available.  This realizes
        # any dependency-consistent interleaving; numerics cannot depend
        # on which one the wall clock would pick.
        heads = [0] * problem.num_stages
        done: set[OpId] = set()
        total = schedule.op_count()
        t0 = time.perf_counter()
        while len(done) < total:
            progressed = False
            for stage in range(problem.num_stages):
                program = programs[stage]
                executor = executors[stage]
                while heads[stage] < len(program):
                    op = program[heads[stage]]
                    if any(d not in done for d in problem.deps(op)):
                        break
                    mb, sl, c = op.microbatch, op.slice_idx, op.chunk
                    payload: Array | None = None
                    if op.kind is OpKind.F and c > 0:
                        payload = forward.pop((mb, sl, c - 1))
                    elif op.kind is OpKind.B and c < problem.num_chunks - 1:
                        payload = backward.pop((mb, sl, c + 1))
                    op_start = time.perf_counter() - t0
                    outcome = executor.execute(op, payload)
                    op_end = time.perf_counter() - t0
                    loss += outcome.loss
                    if outcome.payload is not None:
                        mailbox = forward if op.kind is OpKind.F else backward
                        mailbox[(mb, sl, c)] = outcome.payload
                        dst = problem.stage_of_chunk(outcome.dst_chunk)
                        if dst != stage:
                            comms.note(stage, dst, outcome.payload.nbytes)
                    stats[stage].busy_seconds += op_end - op_start
                    records[stage].append(
                        OpRecord(op=op, stage=stage, start=op_start, end=op_end)
                    )
                    done.add(op)
                    heads[stage] += 1
                    progressed = True
            if not progressed:
                raise ScheduleError("pipeline runtime deadlock")
        wall = time.perf_counter() - t0

        if forward or backward:
            raise ScheduleError("unconsumed channel tensors at iteration end")
        for executor in executors:
            executor.assert_drained()
        result = RunResult(
            loss=loss,
            stage_stats=stats,
            ops_executed=sum(s.ops_executed for s in stats),
            comms=comms,
            schedule_name=schedule.name,
            problem=problem,
            wall_seconds=wall,
            stage_record_lists=records,
            executor="serial",
        )
        if sink.enabled:
            from repro.obs.record import record_iteration

            record_iteration(result, sink)
        return result
