"""Numerical pipeline runtimes executing schedules on the NumPy model.

Two executors share one op semantics (:mod:`repro.pipeline.stage`):

* :class:`PipelineRuntime` — single-process golden reference.
* :class:`ParallelPipelineRuntime` — one worker process per stage,
  shared-memory channels, measured comm/wgrad overlap; bit-for-bit
  equal gradients and loss.
"""

from repro.pipeline.parallel_runtime import FaultSpec, ParallelPipelineRuntime
from repro.pipeline.runtime import CommLog, PipelineRuntime, RunResult, StageStats
from repro.pipeline.stage import StageExecutor

__all__ = [
    "CommLog",
    "FaultSpec",
    "ParallelPipelineRuntime",
    "PipelineRuntime",
    "RunResult",
    "StageExecutor",
    "StageStats",
]
