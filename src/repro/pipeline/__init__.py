"""Numerical pipeline runtime executing schedules on the NumPy model."""

from repro.pipeline.runtime import CommLog, PipelineRuntime, RunResult, StageStats

__all__ = ["CommLog", "PipelineRuntime", "RunResult", "StageStats"]
