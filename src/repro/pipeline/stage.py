"""Per-stage op semantics shared by the serial and parallel runtimes.

A :class:`StageExecutor` owns everything one pipeline stage needs to
execute its ordered op program: the model chunks the stage hosts, the
per-(micro-batch, slice) token/target slices, the deferred
weight-gradient queues of split-backward schedules, and the stage's
execution statistics.  The transport of boundary tensors is the
*caller's* job — the serial :class:`~repro.pipeline.runtime
.PipelineRuntime` moves them through in-process dicts, the parallel
:class:`~repro.pipeline.parallel_runtime.ParallelPipelineRuntime`
through shared-memory ring channels — so the numerical semantics of an
op live in exactly one place and the two runtimes cannot drift.

Live-memory accounting is **incremental**: an op only mutates the
forward state of the components of its own chunk, so the executor
re-scans just those components before and after the op and applies the
delta to the stage totals.  The old per-op full re-sum over every
stage component (O(ops x components) across an iteration) is kept as
:meth:`StageExecutor.full_live_scan` for tests to assert equality
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.nn.layers import Component, LossHead
from repro.schedules.base import OpId, OpKind, PipelineProblem, ScheduleError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.runtime import StageStats

Array = np.ndarray[Any, np.dtype[Any]]

#: One queued weight-gradient GEMM (see repro.nn.layers.WgradTask).
_TaskGroups = list[list[Any]]


@dataclass
class StepOutcome:
    """What executing one op produced.

    Attributes:
        loss: This op's loss contribution (nonzero only for F ops on
            the final chunk).
        payload: Boundary tensor the op emits toward another chunk
            (``None`` when the op has no outgoing boundary tensor).
        dst_chunk: The chunk that consumes ``payload``.
    """

    loss: float = 0.0
    payload: Array | None = None
    dst_chunk: int = -1


class StageExecutor:
    """Executes one stage's ops over its model chunks.

    Args:
        stage: The pipeline stage this executor embodies.
        problem: The schedule's :class:`PipelineProblem`.
        chunk_components: The model chunks hosted by this stage, keyed
            by global chunk index.
        tokens: ``(n, B, T)`` token ids (only read when the stage hosts
            chunk 0 or the loss head's chunk).
        targets: ``(n, B, T)`` labels.
        stats: The :class:`~repro.pipeline.runtime.StageStats` to
            update in place.
    """

    def __init__(
        self,
        stage: int,
        problem: PipelineProblem,
        chunk_components: dict[int, list[Component]],
        tokens: Array,
        targets: Array,
        stats: "StageStats",
    ) -> None:
        self.stage = stage
        self.problem = problem
        self.chunk_components = chunk_components
        self.tokens = tokens
        self.targets = targets
        self.stats = stats
        self.seq_length = int(tokens.shape[2])
        self._wgrad_groups: dict[tuple[int, int, int], _TaskGroups] = {}
        # Incremental live accounting, seeded with one full scan (all
        # component state is empty between iterations, so this is
        # normally zero; the scan keeps the invariant even if not).
        self._live_contexts, self._live_bytes = self.full_live_scan()
        self._sync_peaks()

    # ------------------------------------------------------------------
    # Live accounting
    # ------------------------------------------------------------------
    def full_live_scan(self) -> tuple[int, int]:
        """O(components) re-sum of live contexts/bytes (test oracle)."""
        contexts = 0
        nbytes = 0
        for comps in self.chunk_components.values():
            for comp in comps:
                contexts += comp.live_contexts
                nbytes += comp.live_bytes()
        return contexts, nbytes

    def _chunk_live(self, chunk: int) -> tuple[int, int]:
        contexts = 0
        nbytes = 0
        for comp in self.chunk_components[chunk]:
            contexts += comp.live_contexts
            nbytes += comp.live_bytes()
        return contexts, nbytes

    def _sync_peaks(self) -> None:
        if self._live_contexts > self.stats.peak_live_contexts:
            self.stats.peak_live_contexts = self._live_contexts
        if self._live_bytes > self.stats.peak_live_bytes:
            self.stats.peak_live_bytes = self._live_bytes

    # ------------------------------------------------------------------
    # Op protocol helpers
    # ------------------------------------------------------------------
    def recv_source(self, op: OpId) -> tuple[int, OpId] | None:
        """The cross-stage producer feeding ``op``, if any.

        Returns ``(src_stage, producer_op)`` when ``op`` consumes a
        boundary tensor produced on another stage, else ``None``.
        """
        problem = self.problem
        mb, sl, c = op.microbatch, op.slice_idx, op.chunk
        if op.kind is OpKind.F and c > 0:
            src = problem.stage_of_chunk(c - 1)
            if src != self.stage:
                return src, OpId(OpKind.F, mb, sl, c - 1)
        elif op.kind is OpKind.B and c < problem.num_chunks - 1:
            src = problem.stage_of_chunk(c + 1)
            if src != self.stage:
                return src, OpId(OpKind.B, mb, sl, c + 1)
        return None

    def wgrad_ready(self, op: OpId) -> bool:
        """Whether a W op's deferred GEMM group exists (its B ran)."""
        return (op.microbatch, op.slice_idx, op.chunk) in self._wgrad_groups

    def assert_drained(self) -> None:
        """Raise unless every deferred weight-gradient task executed."""
        if any(any(g) for groups in self._wgrad_groups.values() for g in groups):
            raise ScheduleError("unexecuted weight-gradient tasks remain")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _slice_of(self, source: Array, mb: int, sl: int) -> Array:
        t = self.seq_length // self.problem.num_slices
        return source[mb, :, sl * t : (sl + 1) * t]

    def execute(self, op: OpId, payload: Array | None = None) -> StepOutcome:
        """Run one op; ``payload`` is its incoming boundary tensor.

        For F ops on chunk 0 the input is the stage's own token slice
        and ``payload`` must be ``None``; likewise for B ops on the
        final chunk (the loss head starts the gradient chain).
        """
        problem = self.problem
        mb, sl, c = op.microbatch, op.slice_idx, op.chunk
        components = self.chunk_components[c]
        ctx_before, bytes_before = self._chunk_live(c)
        outcome = StepOutcome()

        if op.kind is OpKind.F:
            if c == 0:
                x: Any = self._slice_of(self.tokens, mb, sl)
            else:
                assert payload is not None
                x = payload
            for comp in components:
                if isinstance(comp, LossHead):
                    comp.set_targets(mb, sl, self._slice_of(self.targets, mb, sl))
                x = comp.forward(mb, sl, x)
            if c == problem.num_chunks - 1:
                outcome.loss = float(x)  # LossHead output
            else:
                outcome.payload = x
                outcome.dst_chunk = c + 1
        elif op.kind is OpKind.B:
            dy: Array | None = payload
            tasks: list[Any] = []
            for comp in reversed(components):
                dy = comp.backward(mb, sl, dy)
                tasks.extend(comp.pop_wgrad_tasks(mb, sl))
            if dy is not None and c > 0:
                outcome.payload = dy
                outcome.dst_chunk = c - 1
            if problem.split_backward:
                g = problem.wgrad_gemms
                self._wgrad_groups[(mb, sl, c)] = [tasks[i::g] for i in range(g)]
            else:
                for task in tasks:
                    task()
                self.stats.wgrad_tasks_run += len(tasks)
        else:
            groups = self._wgrad_groups[(mb, sl, c)]
            tasks = groups[op.gemm]
            groups[op.gemm] = []
            for task in tasks:
                task()
            self.stats.wgrad_tasks_run += len(tasks)

        self.stats.ops_executed += 1
        ctx_after, bytes_after = self._chunk_live(c)
        self._live_contexts += ctx_after - ctx_before
        self._live_bytes += bytes_after - bytes_before
        self._sync_peaks()
        return outcome
