"""The MEPipe profiler (Section 6, component 1 of 3).

MEPipe's implementation "includes a profiler that measures the
computation time and memory consumption for each forward and backward
pass"; the SVPP scheduler then plans with those measurements.  Here the
profiler runs the NumPy training substrate and times every op kind per
(slice, chunk), producing a :class:`ProfiledCost` the greedy scheduler
consumes exactly like the analytical models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.data.synthetic import token_batches
from repro.model.spec import ModelSpec
from repro.nn.layers import LossHead
from repro.nn.model import build_model
from repro.obs.events import NULL_SINK, EventSink
from repro.obs.sinks import MemorySink, TeeSink
from repro.schedules.base import OpId, OpKind, PipelineProblem


@dataclass
class OpProfile:
    """Measured statistics of one (kind, slice, chunk) op class."""

    total_seconds: float = 0.0
    samples: int = 0
    peak_bytes: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / max(self.samples, 1)


@dataclass
class ProfiledCost:
    """A cost model backed by measured per-op times.

    Implements the executor's ``CostModel`` protocol; communication is
    taken from an optional ``comm_seconds`` constant per cross-stage
    edge (the profiler measures computation; transfers are modeled).
    """

    problem: PipelineProblem
    measurements: dict[tuple[OpKind, int, int], OpProfile]
    comm_seconds: float = 0.0

    def duration(self, op: OpId) -> float:
        profile = self.measurements.get((op.kind, op.slice_idx, op.chunk))
        if profile is None or profile.samples == 0:
            raise KeyError(f"no profile for {op}")
        if op.kind is OpKind.W:
            return profile.mean_seconds / self.problem.wgrad_gemms
        return profile.mean_seconds

    def comm_time(self, dep: OpId, op: OpId) -> float:
        if self.problem.is_cross_stage(dep, op):
            return self.comm_seconds
        return 0.0

    def act_units(self, op: OpId) -> float:
        return self.problem.activation_units_per_op

    def imbalance_ratio(self, chunk: int = 0) -> float:
        """Measured forward-time ratio of slice 0 to the last slice."""
        s = self.problem.num_slices
        first = self.measurements[(OpKind.F, 0, chunk)].mean_seconds
        last = self.measurements[(OpKind.F, s - 1, chunk)].mean_seconds
        return first / last


@dataclass
class Profiler:
    """Times the NumPy substrate's ops for one pipeline problem.

    Args:
        spec: Model to instantiate (use :func:`repro.model.tiny_spec`
            scales; this runs real matmuls).
        problem: Shapes the (slice, chunk) grid being profiled.
        batch_size: Samples per micro-batch during profiling.
        warmup: Untimed runs before measurement (cache warming).
        repeats: Timed runs to average over.
    """

    spec: ModelSpec
    problem: PipelineProblem
    batch_size: int = 2
    warmup: int = 1
    repeats: int = 3
    seed: int = 0

    def profile(self, sink: EventSink = NULL_SINK) -> ProfiledCost:
        """Measure every (kind, slice, chunk) class and build the cost.

        All timing flows through the telemetry bus: every measured pass
        is a span (``tid`` = hosting stage, ``cat`` = op kind, args
        carry ``slice``/``chunk``/``round``/``warmup``), and the
        :class:`OpProfile` table is aggregated from the span stream.
        Pass an enabled ``sink`` to watch the profiler live; warmup
        rounds are emitted too, flagged ``warmup=True``, and excluded
        from the aggregate.
        """
        capture = MemorySink()
        bus: EventSink = TeeSink(capture, sink) if sink.enabled else capture
        t0 = time.perf_counter()
        for round_idx in range(self.warmup + self.repeats):
            self._run_once(bus, round_idx, warmup=round_idx < self.warmup, t0=t0)
        measurements: dict[tuple[OpKind, int, int], OpProfile] = {}
        for event in capture.spans():
            if event.arg("warmup"):
                continue
            sl, c = event.arg("slice"), event.arg("chunk")
            assert isinstance(sl, int) and isinstance(c, int)
            key = (OpKind(event.cat), sl, c)
            profile = measurements.setdefault(key, OpProfile())
            profile.total_seconds += event.dur
            profile.samples += 1
        return ProfiledCost(problem=self.problem, measurements=measurements)

    # ------------------------------------------------------------------
    def _run_once(
        self, bus: EventSink, round_idx: int, *, warmup: bool, t0: float
    ) -> None:
        spec, problem = self.spec, self.problem
        model = build_model(spec, seed=self.seed)
        chunks = model.partition(problem.num_chunks)
        tokens, targets = token_batches(
            spec.vocab_size, 1, self.batch_size, spec.seq_length, seed=self.seed)
        model.head.loss_scale = 1.0 / tokens.size
        s = problem.num_slices
        t = spec.seq_length // s

        def note(kind: OpKind, sl: int, c: int, start: float, end: float) -> None:
            bus.span(
                f"{kind.value}?.{sl} c{c}",
                ts=start - t0,
                dur=end - start,
                tid=problem.stage_of_chunk(c),
                cat=kind.value,
                args={
                    "slice": sl,
                    "chunk": c,
                    "round": round_idx,
                    "warmup": warmup,
                },
            )

        # Forward, slice-major (the dependency-legal order).
        outputs: dict[tuple[int, int], object] = {}
        for sl in range(s):
            x: object = tokens[0, :, sl * t : (sl + 1) * t]
            for c, components in enumerate(chunks):
                start = time.perf_counter()
                for comp in components:
                    if isinstance(comp, LossHead):
                        comp.set_targets(0, sl, targets[0, :, sl * t : (sl + 1) * t])
                    x = comp.forward(0, sl, x)
                note(OpKind.F, sl, c, start, time.perf_counter())
            outputs[(sl, problem.num_chunks - 1)] = x

        # Backward (reverse slice order), timing dgrad and wgrad apart.
        wgrad_tasks: dict[tuple[int, int], list] = {}
        for sl in reversed(range(s)):
            dy: object = None
            for c in reversed(range(problem.num_chunks)):
                start = time.perf_counter()
                tasks = []
                for comp in reversed(chunks[c]):
                    dy = comp.backward(0, sl, dy)
                    tasks.extend(comp.pop_wgrad_tasks(0, sl))
                note(OpKind.B, sl, c, start, time.perf_counter())
                wgrad_tasks[(sl, c)] = tasks
        for (sl, c), tasks in wgrad_tasks.items():
            start = time.perf_counter()
            for task in tasks:
                task()
            note(OpKind.W, sl, c, start, time.perf_counter())


def profile_and_schedule(
    spec: ModelSpec,
    problem: PipelineProblem,
    batch_size: int = 2,
    seed: int = 0,
):
    """End-to-end Section 6 flow: profile, then schedule with the data.

    Returns ``(cost, schedule)`` where the schedule was generated by the
    greedy SVPP/MEPipe engine using the *measured* op times.
    """
    from repro.schedules.svpp import mepipe_schedule, svpp_schedule

    cost = Profiler(
        spec=spec, problem=problem, batch_size=batch_size, seed=seed
    ).profile()
    if problem.split_backward:
        schedule = mepipe_schedule(problem, cost=cost)
    else:
        schedule = svpp_schedule(problem, cost=cost)
    return cost, schedule
