"""Profiler measuring the NumPy substrate's op times (Section 6)."""

from repro.profiler.core import OpProfile, ProfiledCost, Profiler, profile_and_schedule

__all__ = ["OpProfile", "ProfiledCost", "Profiler", "profile_and_schedule"]
