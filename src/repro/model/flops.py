"""Analytical FLOP counts for decoder-only transformers.

These drive both the performance model of the cluster simulator and the
MFU numbers reported for Table 9.  The key property for MEPipe is the
*imbalance* across slices of one sample: with causal attention, tokens in
a later slice attend to all preceding slices' keys/values, so the
attention-score FLOPs grow with the slice's context offset while every
GEMM is proportional to the slice's own token count only (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.spec import ModelSpec


def gemm_forward_flops_per_token(spec: ModelSpec) -> int:
    """Forward FLOPs per token for the GEMMs of one transformer layer.

    Counts QKV projection, output projection and the SwiGLU MLP; each
    GEMM of shape ``(t, a) @ (a, b)`` costs ``2*t*a*b`` FLOPs.
    """
    h = spec.hidden_size
    qkv = 2 * h * (h + 2 * spec.kv_hidden_size)
    out = 2 * h * h
    mlp = 3 * 2 * h * spec.ffn_hidden_size
    return qkv + out + mlp


def attention_score_flops(spec: ModelSpec, tokens: int, offset: int) -> int:
    """Forward attention-score FLOPs for a slice of ``tokens`` tokens.

    Token at absolute position ``pos`` attends to ``pos + 1`` keys; both
    the ``Q @ K^T`` and the ``A @ V`` products cost
    ``2 * num_heads * head_dim = 2 * hidden`` FLOPs per (query, key) pair.
    """
    if tokens <= 0:
        return 0
    last = offset + tokens - 1
    attended = (offset + 1 + last + 1) * tokens // 2  # arithmetic series
    return 4 * spec.hidden_size * attended


@dataclass(frozen=True)
class SliceFlops:
    """FLOPs of one pipeline op for a slice of one sample on one layer.

    ``forward`` is the full forward pass; the backward pass is split the
    way zero-bubble/MEPipe split it: ``backward_dgrad`` produces the
    activation gradients (including the attention backward, which carries
    the slice imbalance) and ``backward_wgrad`` is the weight-gradient
    GEMMs only (balanced across slices).
    """

    forward: int
    backward_dgrad: int
    backward_wgrad: int

    @property
    def backward_total(self) -> int:
        """Combined backward FLOPs (classic un-split backward pass)."""
        return self.backward_dgrad + self.backward_wgrad


def layer_slice_flops(spec: ModelSpec, tokens: int, offset: int) -> SliceFlops:
    """FLOPs of one transformer layer for a slice at ``offset``.

    The weight-gradient GEMMs mirror the forward GEMMs (``dW = X^T dY``),
    so ``backward_wgrad == gemm_forward``.  The activation-gradient pass
    mirrors the forward GEMMs (``dX = dY W^T``) plus roughly twice the
    forward attention-score work (gradients of both ``QK^T`` and ``AV``).
    """
    gemm = gemm_forward_flops_per_token(spec) * tokens
    attn = attention_score_flops(spec, tokens, offset)
    return SliceFlops(
        forward=gemm + attn,
        backward_dgrad=gemm + 2 * attn,
        backward_wgrad=gemm,
    )


def head_slice_flops(spec: ModelSpec, tokens: int) -> SliceFlops:
    """FLOPs of the LM head (logits GEMM) for ``tokens`` tokens."""
    gemm = 2 * spec.hidden_size * spec.vocab_size * tokens
    return SliceFlops(forward=gemm, backward_dgrad=gemm, backward_wgrad=gemm)


def slice_imbalance_ratio(spec: ModelSpec, num_slices: int, index: int) -> float:
    """Forward-time ratio of slice ``index`` to slice ``num_slices - 1``.

    Used to reproduce the Figure 7 setup ("forward time for slice 0 is
    75% of that for slice 1").
    """
    t = spec.seq_length // num_slices
    last = layer_slice_flops(spec, t, (num_slices - 1) * t).forward
    this = layer_slice_flops(spec, t, index * t).forward
    return this / last


def attention_score_share(spec: ModelSpec) -> float:
    """Share of total forward FLOPs spent on attention scores.

    Section 4.4 notes this is below 10% for a 7B model at context 4096,
    which bounds the impact of slice imbalance.
    """
    full = layer_slice_flops(spec, spec.seq_length, 0)
    attn = attention_score_flops(spec, spec.seq_length, 0)
    return attn / full.forward


def model_forward_flops(spec: ModelSpec, tokens: int) -> int:
    """Forward FLOPs for ``tokens`` tokens through the whole model."""
    layer = layer_slice_flops(spec, tokens, 0).forward
    head = head_slice_flops(spec, tokens).forward
    return spec.num_layers * layer + head


def model_train_flops(spec: ModelSpec, tokens: int) -> int:
    """Training FLOPs (forward + full backward) for ``tokens`` tokens.

    This is the numerator of Model FLOPS Utilization (MFU): the useful
    FLOPs of the model itself, with no recomputation and no parallelism
    overheads counted.
    """
    layer = layer_slice_flops(spec, tokens, 0)
    head = head_slice_flops(spec, tokens)
    per_layer = layer.forward + layer.backward_total
    per_head = head.forward + head.backward_total
    return spec.num_layers * per_layer + per_head
