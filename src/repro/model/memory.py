"""Memory model for LLM training (Section 4.5).

Three components, exactly as the paper structures them:

1. **Static memory** — parameters, gradients, optimizer state.  With
   half-precision training and the Megatron-LM mixed-precision Adam
   optimizer this is 2 bytes (FP16 params) + 2 bytes (FP16 grads) per
   parameter on each pipeline stage, plus 12 bytes per parameter
   (FP32 master copy + Adam moments) distributed over all devices by
   ZeRO-1.  Section 7.4 confirms the 12-byte figure: the optimizer holds
   ~6.375 GB per worker for a 34B model on 64 devices
   (34e9 * 12 / 64 = 6.375 GB).

2. **Temporary memory** — transient buffers (the logits/loss buffer being
   the largest); treated as static during an iteration.

3. **Activation memory** — the schedule-dependent component that MEPipe's
   slice-level scheduling reduces; ``A`` in the paper is the activation
   footprint of *one full sample* across the whole model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.spec import ModelSpec

GiB = 1024**3

#: FP16/BF16 element size in bytes.
HALF = 2
#: FP32 element size in bytes.
FULL = 4


def activation_bytes_per_token_per_layer(
    spec: ModelSpec, recompute: bool = False
) -> int:
    """Activation bytes stored per token for one transformer layer.

    Assumes FlashAttention (no materialized attention matrix) and FP16
    activations.  The stored tensors are the inputs each backward GEMM
    needs: the two norm inputs, the QKV input, Q/K/V, the attention
    output, the MLP input, the SwiGLU gate/up outputs, and the product
    fed to the down projection.

    With full recomputation (``recompute=True``) only the layer input is
    kept, which is the ~90% reduction quoted in Section 7.3.
    """
    h = spec.hidden_size
    if recompute:
        return HALF * h
    f = spec.ffn_hidden_size
    kv = spec.kv_hidden_size
    stored = (
        2 * h  # RMSNorm inputs (attention + MLP branches)
        + h  # QKV GEMM input (norm output)
        + (h + 2 * kv)  # Q, K, V
        + h  # attention output (proj GEMM input)
        + h  # MLP norm output (gate/up GEMM input)
        + 2 * f  # gate and up outputs
        + f  # silu(gate) * up, input of down projection
    )
    return HALF * stored


def sample_activation_bytes(spec: ModelSpec, recompute: bool = False) -> int:
    """``A``: activation bytes of one full sample over all layers."""
    per_token = activation_bytes_per_token_per_layer(spec, recompute=recompute)
    return spec.num_layers * spec.seq_length * per_token


def static_bytes_per_device(
    spec: ModelSpec,
    pipeline_stages: int,
    total_devices: int,
    fp32_grad_accum: bool = False,
) -> int:
    """Static memory per device: FP16 params+grads per stage + ZeRO-1 Adam.

    ``fp32_grad_accum`` adds an FP32 gradient buffer per stage, which some
    Megatron-LM configurations maintain (Section 4.5 mentions frameworks
    may keep FP32 copies; we default to the leaner layout the paper's
    34B arithmetic implies).
    """
    m = spec.total_params()
    per_stage = m // pipeline_stages
    grad_bytes = (HALF + FULL) if fp32_grad_accum else HALF
    stage_bytes = per_stage * (HALF + grad_bytes)
    optimizer_bytes = m * 12 // total_devices
    return stage_bytes + optimizer_bytes


def temporary_bytes(
    spec: ModelSpec, micro_batch_tokens: int, is_last_stage: bool = True
) -> int:
    """Transient buffer high-water mark, dominated by the logits buffer.

    The last pipeline stage materializes FP16 logits plus an FP32
    softmax/loss workspace for each micro-batch slice it processes;
    other stages only need communication and GEMM workspaces, modeled
    as a flat 256 MiB reserve.
    """
    workspace = 256 * 1024 * 1024
    if not is_last_stage:
        return workspace
    logits = micro_batch_tokens * spec.vocab_size * (HALF + FULL)
    return workspace + logits


#: CUDA context + NCCL channel buffers + cuDNN/cuBLAS workspaces that a
#: Megatron-LM rank pins outside the PyTorch allocator.
FRAMEWORK_OVERHEAD_BYTES = int(1.25 * GiB)


@dataclass(frozen=True)
class MemoryBudget:
    """Breakdown of a device's memory budget in bytes."""

    capacity: int
    static: int
    temporary: int
    allocator_reserve: int
    framework_overhead: int = FRAMEWORK_OVERHEAD_BYTES

    @property
    def available_for_activations(self) -> int:
        """Bytes left for schedule-managed activations (may be <= 0)."""
        return (
            self.capacity
            - self.static
            - self.temporary
            - self.allocator_reserve
            - self.framework_overhead
        )


def budget_for(
    spec: ModelSpec,
    capacity_bytes: int,
    pipeline_stages: int,
    total_devices: int,
    micro_batch_tokens: int,
    allocator_reserve_fraction: float = 0.06,
    is_last_stage: bool = True,
) -> MemoryBudget:
    """Assemble the Section 4.5 memory budget for one device.

    ``allocator_reserve_fraction`` models memory the PyTorch caching
    allocator keeps reserved but unusable (fragmentation); Section 7.2
    observed this pushing ZB out of memory, so schedulers that hold both
    activations and activation gradients are charged a larger reserve by
    the planner.
    """
    static = static_bytes_per_device(spec, pipeline_stages, total_devices)
    temp = temporary_bytes(spec, micro_batch_tokens, is_last_stage=is_last_stage)
    reserve = int(capacity_bytes * allocator_reserve_fraction)
    return MemoryBudget(
        capacity=capacity_bytes,
        static=static,
        temporary=temp,
        allocator_reserve=reserve,
    )
