"""Model specifications and analytical FLOP/memory models."""

from repro.model.flops import (
    SliceFlops,
    attention_score_flops,
    attention_score_share,
    gemm_forward_flops_per_token,
    head_slice_flops,
    layer_slice_flops,
    model_forward_flops,
    model_train_flops,
    slice_imbalance_ratio,
)
from repro.model.memory import (
    GiB,
    MemoryBudget,
    activation_bytes_per_token_per_layer,
    budget_for,
    sample_activation_bytes,
    static_bytes_per_device,
    temporary_bytes,
)
from repro.model.spec import (
    LLAMA_7B,
    LLAMA_13B,
    LLAMA_34B,
    MODELS,
    ModelSpec,
    get_model,
    tiny_spec,
)

__all__ = [
    "GiB",
    "LLAMA_13B",
    "LLAMA_34B",
    "LLAMA_7B",
    "MODELS",
    "MemoryBudget",
    "ModelSpec",
    "SliceFlops",
    "activation_bytes_per_token_per_layer",
    "attention_score_flops",
    "attention_score_share",
    "budget_for",
    "gemm_forward_flops_per_token",
    "get_model",
    "head_slice_flops",
    "layer_slice_flops",
    "model_forward_flops",
    "model_train_flops",
    "sample_activation_bytes",
    "slice_imbalance_ratio",
    "static_bytes_per_device",
    "temporary_bytes",
    "tiny_spec",
]
