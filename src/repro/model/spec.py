"""Transformer model specifications used throughout the reproduction.

The paper evaluates Llama 2 models with 7B, 13B, and 34B parameters
(Table 4), with two transformer layers removed so the embedding and head
layers can be balanced against transformer layers when partitioning the
pipeline (Section 7.1).  The presets here mirror those configurations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelSpec:
    """Architecture of a decoder-only transformer.

    Attributes:
        name: Human-readable identifier, e.g. ``"llama-13b"``.
        hidden_size: Model (embedding) dimension ``h``.
        num_layers: Number of transformer decoder layers.
        num_heads: Number of attention heads.
        num_kv_heads: Number of key/value heads (GQA); equals ``num_heads``
            for classic multi-head attention.
        ffn_hidden_size: Inner dimension of the (SwiGLU) MLP.
        vocab_size: Vocabulary size of the tokenizer.
        seq_length: Training context length in tokens.
        tied_embeddings: Whether input embedding and LM head share weights.
    """

    name: str
    hidden_size: int
    num_layers: int
    num_heads: int
    ffn_hidden_size: int
    vocab_size: int = 32000
    seq_length: int = 4096
    num_kv_heads: int | None = None
    tied_embeddings: bool = False

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.num_kv_heads is None:
            object.__setattr__(self, "num_kv_heads", self.num_heads)
        if self.num_heads % self.kv_heads != 0:
            raise ValueError("num_heads must be a multiple of num_kv_heads")

    @property
    def kv_heads(self) -> int:
        """Key/value head count with the MHA default applied."""
        return self.num_kv_heads if self.num_kv_heads is not None else self.num_heads

    @property
    def head_dim(self) -> int:
        """Dimension of a single attention head."""
        return self.hidden_size // self.num_heads

    @property
    def kv_hidden_size(self) -> int:
        """Total width of the K (or V) projection output."""
        return self.kv_heads * self.head_dim

    # ------------------------------------------------------------------
    # Parameter counting
    # ------------------------------------------------------------------
    def layer_params(self) -> int:
        """Parameters in one transformer layer (attention + MLP + norms)."""
        h = self.hidden_size
        attn = h * h + 2 * h * self.kv_hidden_size + h * h  # Q, K, V, out
        mlp = 3 * h * self.ffn_hidden_size  # SwiGLU: gate, up, down
        norms = 2 * h  # two RMSNorm weight vectors
        return attn + mlp + norms

    def embedding_params(self) -> int:
        """Parameters of the token-embedding table."""
        return self.vocab_size * self.hidden_size

    def head_params(self) -> int:
        """Parameters of the LM head (0 when tied with the embedding)."""
        return 0 if self.tied_embeddings else self.vocab_size * self.hidden_size

    def total_params(self) -> int:
        """Total parameter count of the full model."""
        final_norm = self.hidden_size
        return (
            self.embedding_params()
            + self.num_layers * self.layer_params()
            + final_norm
            + self.head_params()
        )

    # ------------------------------------------------------------------
    # Pipeline partitioning helpers
    # ------------------------------------------------------------------
    def balanced_layer_count(self) -> int:
        """Number of schedulable layers when embedding/head count as layers.

        Section 7.1: two transformer layers are removed so the embedding
        layer and the head layer each occupy one layer slot, keeping the
        per-stage workload balanced.  Llama 13B thus has 38 transformer
        layers + embedding + head = 40 slots.
        """
        return self.num_layers + 2

    def max_pipeline_stages(self, virtual_pipeline_size: int = 1) -> int:
        """Largest even pipeline split for a given virtual pipeline size."""
        slots = self.balanced_layer_count()
        v = virtual_pipeline_size
        best = 1
        for p in range(1, slots + 1):
            if slots % (p * v) == 0:
                best = p
        return best


def _preset(**kwargs: object) -> ModelSpec:
    return ModelSpec(**kwargs)  # type: ignore[arg-type]


#: Llama 2 7B with two layers removed (30 instead of 32), per Section 7.1.
LLAMA_7B = _preset(
    name="llama-7b",
    hidden_size=4096,
    num_layers=30,
    num_heads=32,
    ffn_hidden_size=11008,
)

#: Llama 2 13B with two layers removed (38 instead of 40).
LLAMA_13B = _preset(
    name="llama-13b",
    hidden_size=5120,
    num_layers=38,
    num_heads=40,
    ffn_hidden_size=13824,
)

#: Llama 34B (Code-Llama-34B geometry) with two layers removed (46 of 48).
LLAMA_34B = _preset(
    name="llama-34b",
    hidden_size=8192,
    num_layers=46,
    num_heads=64,
    num_kv_heads=8,
    ffn_hidden_size=22016,
)

#: All evaluation models keyed by short name.
MODELS: dict[str, ModelSpec] = {
    "7b": LLAMA_7B,
    "13b": LLAMA_13B,
    "34b": LLAMA_34B,
}


def get_model(name: str) -> ModelSpec:
    """Look up a preset by short ("13b") or full ("llama-13b") name."""
    key = name.lower()
    if key in MODELS:
        return MODELS[key]
    for spec in MODELS.values():
        if spec.name == key:
            return spec
    raise KeyError(f"unknown model {name!r}; known: {sorted(MODELS)}")


def tiny_spec(
    hidden_size: int = 64,
    num_layers: int = 4,
    num_heads: int = 4,
    ffn_hidden_size: int = 128,
    vocab_size: int = 97,
    seq_length: int = 32,
) -> ModelSpec:
    """A miniature spec for the NumPy training substrate and tests."""
    return ModelSpec(
        name="tiny",
        hidden_size=hidden_size,
        num_layers=num_layers,
        num_heads=num_heads,
        ffn_hidden_size=ffn_hidden_size,
        vocab_size=vocab_size,
        seq_length=seq_length,
    )
