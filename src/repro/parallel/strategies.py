"""Parallel-strategy configurations and their communication footprints.

This encodes Table 2 of the paper: how DP (with ZeRO), TP, CP, PP, and
SPP partition parameters / activations / optimizer state and how much
communication each strategy needs per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.model.memory import HALF
from repro.model.spec import ModelSpec


@dataclass(frozen=True)
class ParallelConfig:
    """A complete parallelization of one training job.

    ``dp * tp * cp * pp`` must equal the device count.  ``spp`` (sequence
    pipeline size: slices per sample) and ``vp`` (virtual pipeline size:
    model chunks per stage) refine the pipeline schedule without using
    extra devices.

    Attributes:
        dp: Data-parallel size (ZeRO-1 optimizer partitioning assumed).
        pp: Pipeline-parallel size (number of stages).
        cp: Context-parallel size.
        tp: Tensor-parallel size.
        vp: Virtual pipeline size (chunks per stage).
        spp: Sequence-pipeline size (slices per sample), >= 1.
        recompute: Whether full activation recomputation is enabled.
        micro_batch_size: Samples per micro-batch (1 throughout Section 7).
    """

    dp: int = 1
    pp: int = 1
    cp: int = 1
    tp: int = 1
    vp: int = 1
    spp: int = 1
    recompute: bool = False
    micro_batch_size: int = 1

    def __post_init__(self) -> None:
        for name in ("dp", "pp", "cp", "tp", "vp", "spp", "micro_batch_size"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if self.vp > 1 and self.pp == 1:
            raise ValueError("virtual pipeline requires pp > 1")

    @property
    def num_devices(self) -> int:
        """Devices consumed by this configuration."""
        return self.dp * self.pp * self.cp * self.tp

    def micro_batches(self, global_batch_size: int) -> int:
        """Micro-batches ``n`` each pipeline processes per iteration.

        CP splits each sample across its group rather than consuming
        samples, so only DP and the micro-batch size divide the global
        batch (Section 7.3, Table 7 discussion).
        """
        per_pipeline = global_batch_size // self.dp
        if per_pipeline * self.dp != global_batch_size:
            raise ValueError(
                f"global batch {global_batch_size} not divisible by dp={self.dp}"
            )
        n = per_pipeline // self.micro_batch_size
        if n * self.micro_batch_size != per_pipeline:
            raise ValueError("per-pipeline batch not divisible by micro_batch_size")
        return n

    def tokens_per_worker_slice(self, spec: ModelSpec) -> int:
        """Tokens a worker processes in one pipeline op.

        CP divides the sample across devices; SPP divides it in time.
        Both shrink the per-op token count, which is what degrades GEMM
        and FlashAttention efficiency (Figure 9).
        """
        return spec.seq_length // (self.cp * self.spp)

    def describe(self) -> str:
        """Short human-readable summary like ``(PP=8, SPP=4, VP=1)``."""
        parts = [f"DP={self.dp}", f"PP={self.pp}"]
        if self.tp > 1:
            parts.append(f"TP={self.tp}")
        if self.cp > 1:
            parts.append(f"CP={self.cp}")
        if self.spp > 1:
            parts.append(f"SPP={self.spp}")
        if self.vp > 1:
            parts.append(f"VP={self.vp}")
        if self.recompute:
            parts.append("recompute")
        return "(" + ", ".join(parts) + ")"

    def with_(self, **changes: object) -> "ParallelConfig":
        """Return a modified copy (thin wrapper over ``dataclasses.replace``)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def sort_key(self) -> tuple[int, int, int, int, int, int, int, int]:
        """Total order over configurations, for deterministic tie-breaks.

        The planner's parallel sweeps merge worker results with
        ``(iteration_time, config.sort_key())`` so the selected optimum
        is independent of worker count and completion order.
        """
        return (
            self.dp, self.pp, self.cp, self.tp, self.vp, self.spp,
            int(self.recompute), self.micro_batch_size,
        )


def validate_for_cluster(
    config: ParallelConfig, num_devices: int, spec: ModelSpec
) -> list[str]:
    """Return a list of constraint violations (empty when valid)."""
    problems: list[str] = []
    if config.num_devices != num_devices:
        problems.append(
            f"dp*tp*cp*pp = {config.num_devices} != cluster size {num_devices}"
        )
    slots = spec.balanced_layer_count()
    chunks = config.pp * config.vp
    if slots % chunks != 0:
        problems.append(
            f"{slots} layer slots not divisible into {chunks} chunks "
            f"(pp={config.pp} x vp={config.vp})"
        )
    tokens = spec.seq_length
    if tokens % (config.cp * config.spp) != 0:
        problems.append(
            f"sequence {tokens} not divisible by cp*spp = {config.cp * config.spp}"
        )
    if config.spp > 1 and config.recompute:
        # MEPipe's slice scheduling replaces recomputation; combining them
        # is never selected and the execution engine does not support it.
        problems.append("spp > 1 with recomputation is not supported")
    return problems


# ----------------------------------------------------------------------
# Per-iteration communication volumes (bytes per device), Table 2.
# ----------------------------------------------------------------------
def dp_grad_sync_bytes(spec: ModelSpec, config: ParallelConfig) -> int:
    """FP16 gradient all-reduce volume per device per iteration.

    ZeRO-1 partitions optimizer state only, so gradients are still
    reduced across the ``dp * cp`` replica group (CP ranks hold full
    parameter replicas, Section 2.2).
    """
    group = config.dp * config.cp
    if group <= 1:
        return 0
    stage_params = spec.total_params() // config.pp
    return HALF * stage_params


def cp_layer_comm_bytes(spec: ModelSpec, config: ParallelConfig) -> int:
    """CP wire bytes per transformer layer per micro-batch per device.

    Forward: all-gather of K and V over the CP group; backward: the
    matching reduce-scatter of dK/dV plus a second all-gather of KV for
    the attention backward.  Ring collectives move ``(g-1)/g`` of the
    full-sample KV footprint per device per collective.
    """
    g = config.cp
    if g <= 1:
        return 0
    kv_bytes = 2 * HALF * spec.seq_length * spec.kv_hidden_size
    return int(3 * (g - 1) / g * kv_bytes)


def tp_layer_comm_bytes(spec: ModelSpec, config: ParallelConfig) -> int:
    """TP wire bytes per layer per micro-batch per device.

    Megatron TP needs two activation all-reduces in forward and two in
    backward; a ring all-reduce moves ``2*(g-1)/g`` of the payload per
    device, so TP tops Table 2's communication ranking.
    """
    g = config.tp
    if g <= 1:
        return 0
    tokens = spec.seq_length // (config.cp * config.spp)
    act = HALF * tokens * spec.hidden_size
    return int(4 * 2 * (g - 1) / g * act)


def pp_boundary_bytes(spec: ModelSpec, config: ParallelConfig) -> int:
    """Bytes crossing one pipeline boundary per forward op.

    One activation tensor of the op's tokens; the backward pass sends
    the same volume of activation gradients.
    """
    tokens = config.micro_batch_size * spec.seq_length // (config.cp * config.spp)
    return HALF * tokens * spec.hidden_size


COMM_RANKING = ("TP", "CP", "DP", "PP", "SPP")
"""Strategies ordered from most to least communication (Table 2)."""
