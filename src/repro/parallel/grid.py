"""Enumeration of candidate parallel configurations for grid search.

Section 7.3: the paper finds the optimal strategy per method by grid
search over (PP, DP, CP or SPP, VP, recomputation); TP is excluded on
the 4090 cluster because PCIe cannot sustain its traffic.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.model.spec import ModelSpec
from repro.parallel.strategies import ParallelConfig, validate_for_cluster


def _divisors(x: int) -> list[int]:
    return [d for d in range(1, x + 1) if x % d == 0]


def _powers_of_two_up_to(x: int) -> list[int]:
    out = [1]
    while out[-1] * 2 <= x:
        out.append(out[-1] * 2)
    return out


def enumerate_configs(
    spec: ModelSpec,
    num_devices: int,
    global_batch_size: int,
    use_cp: bool = False,
    use_spp: bool = False,
    use_vp: bool = False,
    use_recompute: bool = False,
    use_tp: bool = False,
    min_dp: int = 2,
    max_spp: int = 16,
    max_vp: int = 4,
) -> Iterator[ParallelConfig]:
    """Yield all valid configurations for one scheduling method.

    ``min_dp`` defaults to 2 per Section 7.1 ("We set the minimal data
    parallel size to 2 to simulate realistic training on large
    clusters").
    """
    seq = spec.seq_length
    for pp in _powers_of_two_up_to(num_devices):
        for tp in _powers_of_two_up_to(num_devices) if use_tp else [1]:
            cps = (
                [c for c in _powers_of_two_up_to(num_devices) if seq % c == 0]
                if use_cp
                else [1]
            )
            for cp in cps:
                rest = num_devices // (pp * tp * cp)
                if rest * pp * tp * cp != num_devices or rest < min_dp:
                    continue
                dp = rest
                if global_batch_size % dp != 0:
                    continue
                vps = range(1, max_vp + 1) if (use_vp and pp > 1) else [1]
                for vp in vps:
                    spps = (
                        [s for s in _powers_of_two_up_to(max_spp) if seq % s == 0]
                        if use_spp
                        else [1]
                    )
                    for spp in spps:
                        for recompute in ([False, True] if use_recompute else [False]):
                            if spp > 1 and recompute:
                                continue
                            config = ParallelConfig(
                                dp=dp,
                                pp=pp,
                                cp=cp,
                                tp=tp,
                                vp=vp,
                                spp=spp,
                                recompute=recompute,
                            )
                            if validate_for_cluster(config, num_devices, spec):
                                continue
                            yield config
