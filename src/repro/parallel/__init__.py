"""Parallel-strategy configuration, validation, and communication models."""

from repro.parallel.grid import enumerate_configs
from repro.parallel.strategies import (
    COMM_RANKING,
    ParallelConfig,
    cp_layer_comm_bytes,
    dp_grad_sync_bytes,
    pp_boundary_bytes,
    tp_layer_comm_bytes,
    validate_for_cluster,
)

__all__ = [
    "COMM_RANKING",
    "ParallelConfig",
    "cp_layer_comm_bytes",
    "dp_grad_sync_bytes",
    "enumerate_configs",
    "pp_boundary_bytes",
    "tp_layer_comm_bytes",
    "validate_for_cluster",
]
