"""Discrete-event pipeline simulator and cost models."""

from repro.sim.cost import ClusterCost, CostModel, UniformCost
from repro.sim.executor import OpRecord, SimResult, StageMetrics, simulate
from repro.sim.network import Link, NetworkModel, simulate_with_network

__all__ = [
    "ClusterCost",
    "CostModel",
    "Link",
    "NetworkModel",
    "OpRecord",
    "SimResult",
    "StageMetrics",
    "UniformCost",
    "simulate",
    "simulate_with_network",
]
