"""Cross-validation of the analytic evaluator against the event sim.

The evaluator's certificates are *machine-checkable*: this harness
replays the same schedule through the discrete-event simulator and
verifies every obligation, filing ``EV001``–``EV004`` findings into the
shared diagnostics catalogue when one breaks.

* ``EV001`` — an exactness certificate must be bit-for-bit: every op
  start/end, per-stage busy time and peak ledger units, the makespan,
  and the bubble ratio must equal the simulator's floats exactly.
* ``EV002`` — a bounded certificate (and the build-free
  :class:`~repro.analysis.evaluate.bounds.TimeBounds`) must contain the
  simulated iteration time.
* ``EV003`` — certificates must be internally consistent (ordered
  interval, exact ⇒ degenerate, certified value inside its interval).
* ``EV004`` — each stage's warmup/steady/cooldown boundaries must be
  ordered and tile the stage's busy window.

The harness is the proof side of ``docs/evaluation.md``'s taxonomy and
backs the property tests in ``tests/test_evaluate.py``.
"""

from __future__ import annotations

from repro.analysis.evaluate.bounds import TimeBounds
from repro.analysis.evaluate.core import (
    AnalyticEvaluation,
    evaluate_schedule,
)
from repro.analysis.evaluate.rules import EVALUATE_RULES
from repro.schedules.base import Schedule
from repro.schedules.graph import compiled_graph
from repro.schedules.verify.diagnostics import Finding, Report
from repro.sim.cost import CostModel
from repro.sim.executor import SimResult, simulate


def _check_exactness(
    schedule: Schedule,
    evaluation: AnalyticEvaluation,
    sim: SimResult,
    findings: list[Finding],
) -> None:
    """EV001: every exact-certified quantity matches bit for bit."""

    def mismatch(what: str, analytic: float, simulated: float,
                 stage: int | None = None) -> None:
        findings.append(
            Finding(
                "EV001",
                f"{what}: analytic {analytic!r} != sim {simulated!r}",
                stage=stage,
                witness=(
                    f"analytic:  {analytic!r}",
                    f"simulated: {simulated!r}",
                    f"delta:     {analytic - simulated!r}",
                ),
            )
        )

    if evaluation.makespan != sim.makespan:
        mismatch("makespan", evaluation.makespan, sim.makespan)
    if evaluation.bubble_ratio != sim.bubble_ratio:
        mismatch("bubble ratio", evaluation.bubble_ratio, sim.bubble_ratio)
    for s, metrics in enumerate(sim.stages):
        if evaluation.stage_busy[s] != metrics.busy_time:
            mismatch(
                "stage busy time", evaluation.stage_busy[s],
                metrics.busy_time, stage=s,
            )
        if evaluation.stage_peak_units[s] != metrics.peak_activation_units:
            mismatch(
                "stage peak ledger units", evaluation.stage_peak_units[s],
                metrics.peak_activation_units, stage=s,
            )

    times = evaluation.times
    if times is not None:
        graph = compiled_graph(schedule)
        for i, op in enumerate(graph.ops):
            record = sim.records[op]
            if (
                record.start != times.start[i]
                or record.end != times.end[i]
            ):
                findings.append(
                    Finding(
                        "EV001",
                        "op timing diverges from the event replay",
                        stage=record.stage,
                        op=op,
                        witness=(
                            f"analytic:  [{times.start[i]!r}, "
                            f"{times.end[i]!r}]",
                            f"simulated: [{record.start!r}, "
                            f"{record.end!r}]",
                        ),
                    )
                )
                break  # one witness op is enough; the grid test reruns all


def cross_validate(
    schedule: Schedule,
    cost: CostModel,
    overhead_time: float = 0.0,
    actgrad_factor: float = 1.0,
    engine: str = "event",
    evaluation: AnalyticEvaluation | None = None,
    bounds: TimeBounds | None = None,
) -> Report:
    """Check the evaluator's certificates against the event simulator.

    ``evaluation`` defaults to a fresh :func:`evaluate_schedule` run;
    pass ``bounds`` to additionally check a build-free certificate
    against the same replay.  Returns a diagnostics
    :class:`~repro.schedules.verify.diagnostics.Report` whose
    ``checked_rules`` cover the whole ``EV`` family.
    """
    if evaluation is None:
        evaluation = evaluate_schedule(
            schedule,
            cost,
            overhead_time=overhead_time,
            actgrad_factor=actgrad_factor,
        )
    sim = simulate(
        schedule,
        cost,
        overhead_time=overhead_time,
        actgrad_factor=actgrad_factor,
        engine=engine,
    )
    findings: list[Finding] = []

    # EV003: internal consistency before comparing against the sim.
    cert = evaluation.certificate
    if not cert.consistent():
        findings.append(
            Finding(
                "EV003",
                f"{cert.kind!r} certificate is not internally consistent",
                witness=(
                    f"interval: [{cert.lower!r}, {cert.upper!r}]",
                    f"basis: {cert.basis}",
                ),
            )
        )
    elif not cert.contains(evaluation.iteration_time):
        findings.append(
            Finding(
                "EV003",
                "certified value lies outside its own interval",
                witness=(
                    f"iteration time: {evaluation.iteration_time!r}",
                    f"interval: [{cert.lower!r}, {cert.upper!r}]",
                ),
            )
        )
    if bounds is not None and bounds.lower > bounds.upper:
        findings.append(
            Finding(
                "EV003",
                "bounds certificate has lower > upper",
                witness=(
                    f"interval: [{bounds.lower!r}, {bounds.upper!r}]",
                ),
            )
        )

    # EV001: exactness obligations, bit for bit.
    if cert.kind == "exact":
        _check_exactness(schedule, evaluation, sim, findings)

    # EV002: bound obligations against the simulated iteration time.
    simulated = sim.iteration_time
    for name, lower, upper in (
        ("evaluation certificate", cert.lower, cert.upper),
        *(
            (("time bounds", bounds.lower, bounds.upper),)
            if bounds is not None
            else ()
        ),
    ):
        if not lower <= simulated <= upper:
            findings.append(
                Finding(
                    "EV002",
                    f"{name} does not contain the simulated iteration time",
                    witness=(
                        f"simulated: {simulated!r}",
                        f"certified: [{lower!r}, {upper!r}]",
                    ),
                )
            )

    # EV004: phase boundaries tile each stage's busy window.
    for phases in evaluation.phases:
        stage_end = evaluation.stage_ends[phases.stage]
        if not phases.ordered() or phases.end != stage_end:
            findings.append(
                Finding(
                    "EV004",
                    "phase boundaries do not tile the stage window",
                    stage=phases.stage,
                    witness=(
                        f"warmup_end: {phases.warmup_end!r}",
                        f"steady_end: {phases.steady_end!r}",
                        f"end: {phases.end!r} "
                        f"(stage end {stage_end!r})",
                    ),
                )
            )

    return Report(
        schedule_name=schedule.name,
        findings=findings,
        checked_rules=EVALUATE_RULES,
    )
