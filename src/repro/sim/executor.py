"""Discrete-event replay of a pipeline schedule.

Given a :class:`~repro.schedules.base.Schedule` and a cost model, the
executor computes when every op runs, how long each stage idles
(bubbles), and the peak activation memory each stage pins — the three
quantities the paper's analysis and evaluation revolve around.

Three engines produce identical results:

* ``"event"`` (default) — the ready-queue recurrence evaluated as NumPy
  wavefronts over the compiled
  :class:`~repro.schedules.graph.ScheduleGraph`'s dense CSR arrays
  (:mod:`repro.analysis.evaluate.dense`): each Kahn level's starts are
  one gather + segmented-``maximum`` instead of a per-op Python loop.
  O(V + E) array work across ~dependency-height levels.
* ``"heap"`` — the event-driven scalar replay this vectorization grew
  out of: per-op durations and comm times in flat arrays, indegree
  counting makes each op ready exactly once, and a heap keyed on ready
  time drains the queue chronologically.  O((V + E) log V), no
  ``OpId`` hashing in the replay loop.
* ``"fixed-point"`` — the original round-robin blocked-head scan, kept
  as the golden reference.

An op's start time is a pure function of its dependencies' end times
(IEEE ``max`` is exact and order-independent, and every add uses
identical operands), and all engines accumulate per-stage busy time and
the activation ledger in program order, so the equivalence is
bit-for-bit, not approximate — ``tests/test_engine_golden.py`` asserts
it across the acceptance grid.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any

from repro.obs.events import NULL_SINK, EventSink
from repro.obs.metrics import CommLog, IterationMetrics, schedule_comm_log
from repro.schedules.base import (
    OpId,
    OpKind,
    PipelineProblem,
    Schedule,
    ScheduleError,
)
from repro.schedules.graph import compiled_graph
from repro.sim.cost import CostModel, op_cost_fns


@dataclass(frozen=True)
class OpRecord:
    """Timing of one executed op."""

    op: OpId
    stage: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class StageMetrics:
    """Per-stage outcome of one simulated iteration."""

    stage: int
    busy_time: float = 0.0
    peak_activation_units: float = 0.0
    op_count: int = 0


@dataclass
class SimResult:
    """Complete outcome of simulating one training iteration."""

    schedule_name: str
    problem: PipelineProblem
    records: dict[OpId, OpRecord]
    stages: list[StageMetrics]
    makespan: float
    overhead_time: float = 0.0
    #: Per-stage records in start-time order, filled during replay by
    #: the event engine (or lazily on first ``stage_records`` call) so
    #: repeated queries never rescan/re-sort the records dict.
    stage_record_lists: list[list[OpRecord]] | None = field(
        default=None, repr=False
    )
    #: Bytes of one ledger unit of A on this worker, stamped by
    #: :func:`simulate` when the cost model knows it
    #: (``activation_bytes_per_unit()``); 0 keeps byte metrics at zero.
    activation_bytes_per_unit: float = 0.0
    #: Bytes of one cross-stage boundary message, stamped by
    #: :func:`simulate` when the cost model knows it
    #: (``boundary_message_bytes()``).
    comm_bytes_per_message: float = 0.0
    _comm_volume: CommLog | None = field(default=None, repr=False, compare=False)

    @property
    def iteration_time(self) -> float:
        """Schedule makespan plus iteration-level overheads (DP sync...)."""
        return self.makespan + self.overhead_time

    @property
    def bubble_ratio(self) -> float:
        """Aggregate idle fraction: ``1 - busy / (p * makespan)``."""
        if self.makespan <= 0:
            return 0.0
        busy = sum(s.busy_time for s in self.stages)
        return 1.0 - busy / (len(self.stages) * self.makespan)

    def stage_bubble_ratio(self, stage: int) -> float:
        """Idle fraction of one stage over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return 1.0 - self.stages[stage].busy_time / self.makespan

    @property
    def peak_activation_units(self) -> float:
        """Maximum over stages of pinned activation memory, in units of A."""
        return max(s.peak_activation_units for s in self.stages)

    def stage_records(self, stage: int) -> list[OpRecord]:
        """Records of one stage in start-time order.

        Returns the cached per-stage list (built once); treat it as
        read-only.
        """
        lists = self.stage_record_lists
        if lists is None:
            lists = [[] for _ in self.stages]
            for record in self.records.values():
                lists[record.stage].append(record)
            for records in lists:
                records.sort(key=lambda r: r.start)
            self.stage_record_lists = lists
        return lists[stage]

    # -- PipelineResult protocol (shared with RunResult) ----------------
    @property
    def stage_peak_bytes(self) -> tuple[int, ...]:
        """Per-stage peak activation bytes (ledger units x bytes/unit)."""
        bpu = self.activation_bytes_per_unit
        return tuple(
            int(round(s.peak_activation_units * bpu)) for s in self.stages
        )

    @property
    def peak_live_bytes(self) -> int:
        """Largest per-stage peak activation footprint, in bytes."""
        return max(self.stage_peak_bytes, default=0)

    @property
    def comm_volume(self) -> CommLog:
        """Cross-stage traffic the schedule incurs (counts are exact;
        bytes require the cost model to have sized the boundary
        messages)."""
        if self._comm_volume is None:
            self._comm_volume = schedule_comm_log(
                self.problem, self.comm_bytes_per_message
            )
        return self._comm_volume

    def metrics(self) -> IterationMetrics:
        """The uniform per-iteration summary (see `repro.obs.metrics`)."""
        from repro.obs.metrics import iteration_metrics

        return iteration_metrics(
            self,
            source="sim",
            time_unit="model",
            num_stages=self.problem.num_stages,
        )


@dataclass
class _Ledger:
    """Tracks pinned activation (and activation-gradient) memory.

    An F op pins its activations until they are consumed: at B
    completion for fused backward, or gradually over the op's W GEMMs
    when the backward pass is split (each retired W GEMM releases its
    share of both the activations and the activation gradients that B
    materialized, sized ``actgrad_factor`` relative to the activations).
    """

    problem: PipelineProblem
    actgrad_factor: float = 1.0
    current: float = 0.0
    peak: float = 0.0

    def apply(self, op: OpId, units: float) -> None:
        p = self.problem
        if op.kind is OpKind.F:
            self.current += units
        elif op.kind is OpKind.B:
            if p.split_backward:
                self.current += units * self.actgrad_factor
            else:
                self.current -= units
        else:
            release = units * (1.0 + self.actgrad_factor) / p.wgrad_gemms
            self.current -= release
        self.peak = max(self.peak, self.current)


def simulate(
    schedule: Schedule,
    cost: CostModel,
    overhead_time: float = 0.0,
    actgrad_factor: float = 1.0,
    engine: str = "event",
    sink: EventSink = NULL_SINK,
    channel_capacities: Mapping[Any, int] | None = None,
) -> SimResult:
    """Replay ``schedule`` under ``cost`` and collect metrics.

    Each stage executes its program strictly in order; an op starts when
    the stage is free and every dependency has completed (plus transfer
    time for cross-stage edges).  The schedule is statically verified on
    entry (placement, coverage, deadlock-freedom — cached if the builder
    already checked it), so a malformed schedule raises
    :class:`ScheduleError` with a diagnostic report instead of wedging
    the replay.

    ``engine`` selects the replay implementation (see module
    docstring); both produce identical results.

    ``sink`` receives the iteration's telemetry — per-op spans (one
    track per stage), channel send/recv instants, and bubble/overlap/
    memory-high-water counters.  The default null sink keeps the replay
    loop untouched: recording happens post-replay and only when the
    sink is enabled.

    ``channel_capacities`` switches on the bounded-channel mode: each
    cross-stage ``(src, dst, kind)`` channel holds at most K in-flight
    messages, so a producer's #i-th send additionally waits for the
    consumer to finish message #(i-K).  This mode has a single scalar
    heap engine (``engine`` is ignored) and raises
    :class:`ScheduleError` if the capacities deadlock the schedule —
    ``repro.analysis.capacity`` turns the same situation into a
    minimal-cycle CP001 witness.
    """
    from repro.schedules.verify import ensure_verified

    ensure_verified(schedule, context="simulate")
    if channel_capacities is not None:
        result = _simulate_bounded(
            schedule, cost, overhead_time, actgrad_factor, channel_capacities
        )
    elif engine == "event":
        result = _simulate_dense(schedule, cost, overhead_time, actgrad_factor)
    elif engine == "heap":
        result = _simulate_event(schedule, cost, overhead_time, actgrad_factor)
    elif engine == "fixed-point":
        result = _simulate_fixed_point(
            schedule, cost, overhead_time, actgrad_factor
        )
    else:
        raise ValueError(f"unknown simulation engine {engine!r}")

    # Stamp byte conversions when the cost model knows them, so the
    # result's IterationMetrics carry real bytes instead of zeros.
    act_bytes = getattr(cost, "activation_bytes_per_unit", None)
    if callable(act_bytes):
        result.activation_bytes_per_unit = float(act_bytes())
    msg_bytes = getattr(cost, "boundary_message_bytes", None)
    if callable(msg_bytes):
        result.comm_bytes_per_message = float(msg_bytes())

    if sink.enabled:
        from repro.obs.record import record_iteration, record_sim_comm

        record_iteration(result, sink)
        record_sim_comm(result, cost, sink)
    return result


def _simulate_dense(
    schedule: Schedule,
    cost: CostModel,
    overhead_time: float,
    actgrad_factor: float,
) -> SimResult:
    """Vectorized wavefront replay over the compiled graph's CSR arrays.

    The times come from :func:`repro.analysis.evaluate.dense.
    wavefront_times` (imported lazily — ``repro.analysis`` imports sim
    modules for its own checks); the per-stage accumulation below is the
    same program-order loop as the heap engine, so busy time and ledger
    peaks sum in the identical float order.
    """
    from repro.analysis.evaluate.dense import dense_schedule_times

    problem = schedule.problem
    graph = compiled_graph(schedule)
    times = dense_schedule_times(graph, cost)
    ops = graph.ops
    # tolist() round-trips exactly: the records carry Python floats with
    # the same bits the wavefront computed.
    start = times.start.tolist()
    end = times.end.tolist()
    duration = times.duration.tolist()
    act_units = times.act_units.tolist()

    records: dict[OpId, OpRecord] = {}
    rec_lists: list[list[OpRecord]] = []
    metrics: list[StageMetrics] = []
    stage_ends: list[float] = []
    for s, (lo, hi) in enumerate(graph.stage_bounds):
        m = StageMetrics(stage=s)
        ledger = _Ledger(problem=problem, actgrad_factor=actgrad_factor)
        stage_list: list[OpRecord] = []
        for i in range(lo, hi):
            op = ops[i]
            record = OpRecord(op=op, stage=s, start=start[i], end=end[i])
            records[op] = record
            stage_list.append(record)
            m.busy_time += duration[i]
            m.op_count += 1
            ledger.apply(op, act_units[i])
        m.peak_activation_units = ledger.peak
        metrics.append(m)
        rec_lists.append(stage_list)
        stage_ends.append(end[hi - 1] if hi > lo else 0.0)
    makespan = max(stage_ends) if stage_ends else 0.0
    return SimResult(
        schedule_name=schedule.name,
        problem=problem,
        records=records,
        stages=metrics,
        makespan=makespan,
        overhead_time=overhead_time,
        stage_record_lists=rec_lists,
    )


def _simulate_event(
    schedule: Schedule,
    cost: CostModel,
    overhead_time: float,
    actgrad_factor: float,
) -> SimResult:
    """Event-driven heap replay over the compiled graph (``"heap"``)."""
    problem = schedule.problem
    graph = compiled_graph(schedule)
    num_ops = graph.num_ops
    ops = graph.ops
    stage_arr = graph.stage
    pos = graph.pos
    pred_indptr, pred = graph.pred_indptr, graph.pred
    succ_indptr, succ = graph.succ_indptr, graph.succ

    # Flat per-op/per-edge cost tables.  comm is evaluated for every
    # dependency edge, exactly as the fixed-point engine probes it, so
    # cost models that charge same-stage transfers behave identically.
    # Models declaring microbatch invariance are probed once per op
    # shape and the value replayed across micro-batches (same floats).
    dur_fn, comm_fn, act_fn = op_cost_fns(cost)
    duration = [dur_fn(op) for op in ops]
    act_units = [act_fn(op) for op in ops]
    comm = [0.0] * len(pred)
    for i in range(num_ops):
        op = ops[i]
        for e in range(pred_indptr[i], pred_indptr[i + 1]):
            comm[e] = comm_fn(ops[pred[e]], op)

    # Indegree = dependency edges + the implicit program-order edge.
    indeg = [0] * num_ops
    for i in range(num_ops):
        indeg[i] = (
            pred_indptr[i + 1] - pred_indptr[i] + (1 if pos[i] > 0 else 0)
        )

    # When an op's last constraint resolves, its start time is final:
    # the max of its program predecessor's end and each dependency's
    # end + comm (float max is exact and order-independent, which is
    # what makes the engines bit-for-bit equal).
    start = [0.0] * num_ops
    end = [0.0] * num_ops
    heap: list[tuple[float, int]] = []
    for i in range(num_ops):
        if indeg[i] == 0:
            start[i] = 0.0
            end[i] = duration[i]
            heappush(heap, (0.0, i))

    processed = 0
    while heap:
        _, i = heappop(heap)
        processed += 1
        for e in range(succ_indptr[i], succ_indptr[i + 1]):
            j = succ[e]
            indeg[j] -= 1
            if indeg[j] == 0:
                _schedule_ready(
                    j, pos, pred_indptr, pred, comm, end, start, duration,
                    heap,
                )
        j = i + 1
        if j < num_ops and stage_arr[j] == stage_arr[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                _schedule_ready(
                    j, pos, pred_indptr, pred, comm, end, start, duration,
                    heap,
                )
    if processed != num_ops:
        # Unreachable after ensure_verified; defensive guard.
        stuck = [str(ops[i]) for i in range(num_ops) if indeg[i] > 0][:8]
        raise ScheduleError(f"simulation deadlock; blocked ops: {stuck}")

    # Per-stage accumulation in program order, matching the fixed-point
    # engine's float summation order for busy time and the ledger.
    records: dict[OpId, OpRecord] = {}
    rec_lists: list[list[OpRecord]] = []
    metrics: list[StageMetrics] = []
    stage_ends: list[float] = []
    for s, (lo, hi) in enumerate(graph.stage_bounds):
        m = StageMetrics(stage=s)
        ledger = _Ledger(problem=problem, actgrad_factor=actgrad_factor)
        stage_list: list[OpRecord] = []
        for i in range(lo, hi):
            op = ops[i]
            record = OpRecord(op=op, stage=s, start=start[i], end=end[i])
            records[op] = record
            stage_list.append(record)
            m.busy_time += duration[i]
            m.op_count += 1
            ledger.apply(op, act_units[i])
        m.peak_activation_units = ledger.peak
        metrics.append(m)
        rec_lists.append(stage_list)
        stage_ends.append(end[hi - 1] if hi > lo else 0.0)
    makespan = max(stage_ends) if stage_ends else 0.0
    return SimResult(
        schedule_name=schedule.name,
        problem=problem,
        records=records,
        stages=metrics,
        makespan=makespan,
        overhead_time=overhead_time,
        stage_record_lists=rec_lists,
    )


def _schedule_ready(
    j: int,
    pos: tuple[int, ...],
    pred_indptr: tuple[int, ...],
    pred: tuple[int, ...],
    comm: list[float],
    end: list[float],
    start: list[float],
    duration: list[float],
    heap: list[tuple[float, int]],
) -> None:
    """Finalize op ``j``'s start/end now that its last constraint resolved."""
    t = end[j - 1] if pos[j] > 0 else 0.0
    for e in range(pred_indptr[j], pred_indptr[j + 1]):
        ready = end[pred[e]] + comm[e]
        if ready > t:
            t = ready
    start[j] = t
    end[j] = t + duration[j]
    heappush(heap, (t, j))


def _simulate_bounded(
    schedule: Schedule,
    cost: CostModel,
    overhead_time: float,
    actgrad_factor: float,
    channel_capacities: Mapping[Any, int],
) -> SimResult:
    """Event-driven heap replay with finite channel capacities.

    Mirrors :func:`_simulate_event` with one extra constraint family:
    under capacity K on channel ``(src, dst, kind)``, the producer of
    message #i also waits for the consumer of message #(i-K) to finish
    (slot reuse; no transfer time is charged for reclaiming a slot).
    IEEE ``max`` is exact and order-independent, so the times match the
    analytic :func:`repro.analysis.capacity.bounded_dense_times` replay
    bit-for-bit — the cross-check behind CP004 certificates.
    """
    from repro.analysis.capacity.core import (
        _slot_edges,
        channel_messages,
        normalize_capacities,
    )

    problem = schedule.problem
    graph = compiled_graph(schedule)
    num_ops = graph.num_ops
    ops = graph.ops
    stage_arr = graph.stage
    pos = graph.pos
    pred_indptr, pred = graph.pred_indptr, graph.pred
    succ_indptr, succ = graph.succ_indptr, graph.succ

    caps = normalize_capacities(channel_capacities)
    channels = channel_messages(graph)
    bad = sorted(key for key in channels if caps.get(key, 0) < 1)
    if bad:
        listed = ", ".join(
            f"stage {a} -> stage {b} ({kind})" for a, b, kind in bad
        )
        raise ScheduleError(
            f"missing or sub-1 capacity for channel(s): {listed}"
        )
    slot_pred: dict[int, list[int]] = {}
    slot_succ: dict[int, list[int]] = {}
    for tail, head, _key in _slot_edges(channels, caps):
        slot_pred.setdefault(head, []).append(tail)
        slot_succ.setdefault(tail, []).append(head)

    dur_fn, comm_fn, act_fn = op_cost_fns(cost)
    duration = [dur_fn(op) for op in ops]
    act_units = [act_fn(op) for op in ops]
    comm = [0.0] * len(pred)
    for i in range(num_ops):
        op = ops[i]
        for e in range(pred_indptr[i], pred_indptr[i + 1]):
            comm[e] = comm_fn(ops[pred[e]], op)

    # Indegree = dependency edges + implicit program-order edge + slot
    # reclaims.
    indeg = [0] * num_ops
    for i in range(num_ops):
        indeg[i] = (
            pred_indptr[i + 1]
            - pred_indptr[i]
            + (1 if pos[i] > 0 else 0)
            + len(slot_pred.get(i, ()))
        )

    start = [0.0] * num_ops
    end = [0.0] * num_ops
    heap: list[tuple[float, int]] = []

    def finalize(j: int) -> None:
        t = end[j - 1] if pos[j] > 0 else 0.0
        for e in range(pred_indptr[j], pred_indptr[j + 1]):
            ready = end[pred[e]] + comm[e]
            if ready > t:
                t = ready
        for tail in slot_pred.get(j, ()):
            freed = end[tail]
            if freed > t:
                t = freed
        start[j] = t
        end[j] = t + duration[j]
        heappush(heap, (t, j))

    for i in range(num_ops):
        if indeg[i] == 0:
            start[i] = 0.0
            end[i] = duration[i]
            heappush(heap, (0.0, i))

    processed = 0
    while heap:
        _, i = heappop(heap)
        processed += 1
        for e in range(succ_indptr[i], succ_indptr[i + 1]):
            j = succ[e]
            indeg[j] -= 1
            if indeg[j] == 0:
                finalize(j)
        j = i + 1
        if j < num_ops and stage_arr[j] == stage_arr[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                finalize(j)
        for j in slot_succ.get(i, ()):
            indeg[j] -= 1
            if indeg[j] == 0:
                finalize(j)
    if processed != num_ops:
        stuck = [str(ops[i]) for i in range(num_ops) if indeg[i] > 0][:8]
        raise ScheduleError(
            "bounded-channel deadlock; blocked ops: "
            f"{stuck} (run `repro capacity` for a minimal-cycle witness)"
        )

    records: dict[OpId, OpRecord] = {}
    rec_lists: list[list[OpRecord]] = []
    metrics: list[StageMetrics] = []
    stage_ends: list[float] = []
    for s, (lo, hi) in enumerate(graph.stage_bounds):
        m = StageMetrics(stage=s)
        ledger = _Ledger(problem=problem, actgrad_factor=actgrad_factor)
        stage_list: list[OpRecord] = []
        for i in range(lo, hi):
            op = ops[i]
            record = OpRecord(op=op, stage=s, start=start[i], end=end[i])
            records[op] = record
            stage_list.append(record)
            m.busy_time += duration[i]
            m.op_count += 1
            ledger.apply(op, act_units[i])
        m.peak_activation_units = ledger.peak
        metrics.append(m)
        rec_lists.append(stage_list)
        stage_ends.append(end[hi - 1] if hi > lo else 0.0)
    makespan = max(stage_ends) if stage_ends else 0.0
    return SimResult(
        schedule_name=schedule.name,
        problem=problem,
        records=records,
        stages=metrics,
        makespan=makespan,
        overhead_time=overhead_time,
        stage_record_lists=rec_lists,
    )


def _simulate_fixed_point(
    schedule: Schedule,
    cost: CostModel,
    overhead_time: float,
    actgrad_factor: float,
) -> SimResult:
    """The original list-scheduling fixed point (golden reference)."""
    problem = schedule.problem
    num_stages = problem.num_stages
    programs = [schedule.stage_ops(s) for s in range(num_stages)]
    heads = [0] * num_stages
    stage_time = [0.0] * num_stages
    end_time: dict[OpId, float] = {}
    records: dict[OpId, OpRecord] = {}
    metrics = [StageMetrics(stage=s) for s in range(num_stages)]
    ledgers = [
        _Ledger(problem=problem, actgrad_factor=actgrad_factor)
        for _ in range(num_stages)
    ]

    remaining = sum(len(p) for p in programs)
    while remaining:
        progressed = False
        for stage in range(num_stages):
            ops = programs[stage]
            while heads[stage] < len(ops):
                op = ops[heads[stage]]
                deps = problem.deps(op)
                if any(d not in end_time for d in deps):
                    break
                ready = 0.0
                for d in deps:
                    ready = max(ready, end_time[d] + cost.comm_time(d, op))
                start = max(stage_time[stage], ready)
                dur = cost.duration(op)
                end = start + dur
                records[op] = OpRecord(op=op, stage=stage, start=start, end=end)
                end_time[op] = end
                stage_time[stage] = end
                m = metrics[stage]
                m.busy_time += dur
                m.op_count += 1
                ledgers[stage].apply(op, cost.act_units(op))
                heads[stage] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            stuck = [
                str(programs[s][heads[s]])
                for s in range(num_stages)
                if heads[s] < len(programs[s])
            ]
            raise ScheduleError(f"simulation deadlock; blocked heads: {stuck}")

    for stage in range(num_stages):
        metrics[stage].peak_activation_units = ledgers[stage].peak
    makespan = max(stage_time) if stage_time else 0.0
    return SimResult(
        schedule_name=schedule.name,
        problem=problem,
        records=records,
        stages=metrics,
        makespan=makespan,
        overhead_time=overhead_time,
    )
