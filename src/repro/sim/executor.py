"""Discrete-event replay of a pipeline schedule.

Given a :class:`~repro.schedules.base.Schedule` and a cost model, the
executor computes when every op runs, how long each stage idles
(bubbles), and the peak activation memory each stage pins — the three
quantities the paper's analysis and evaluation revolve around.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedules.base import (
    OpId,
    OpKind,
    PipelineProblem,
    Schedule,
    ScheduleError,
)
from repro.sim.cost import CostModel


@dataclass(frozen=True)
class OpRecord:
    """Timing of one executed op."""

    op: OpId
    stage: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class StageMetrics:
    """Per-stage outcome of one simulated iteration."""

    stage: int
    busy_time: float = 0.0
    peak_activation_units: float = 0.0
    op_count: int = 0


@dataclass
class SimResult:
    """Complete outcome of simulating one training iteration."""

    schedule_name: str
    problem: PipelineProblem
    records: dict[OpId, OpRecord]
    stages: list[StageMetrics]
    makespan: float
    overhead_time: float = 0.0

    @property
    def iteration_time(self) -> float:
        """Schedule makespan plus iteration-level overheads (DP sync...)."""
        return self.makespan + self.overhead_time

    @property
    def bubble_ratio(self) -> float:
        """Aggregate idle fraction: ``1 - busy / (p * makespan)``."""
        if self.makespan <= 0:
            return 0.0
        busy = sum(s.busy_time for s in self.stages)
        return 1.0 - busy / (len(self.stages) * self.makespan)

    def stage_bubble_ratio(self, stage: int) -> float:
        """Idle fraction of one stage over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return 1.0 - self.stages[stage].busy_time / self.makespan

    @property
    def peak_activation_units(self) -> float:
        """Maximum over stages of pinned activation memory, in units of A."""
        return max(s.peak_activation_units for s in self.stages)

    def stage_records(self, stage: int) -> list[OpRecord]:
        """Records of one stage in start-time order."""
        out = [r for r in self.records.values() if r.stage == stage]
        out.sort(key=lambda r: r.start)
        return out


@dataclass
class _Ledger:
    """Tracks pinned activation (and activation-gradient) memory.

    An F op pins its activations until they are consumed: at B
    completion for fused backward, or gradually over the op's W GEMMs
    when the backward pass is split (each retired W GEMM releases its
    share of both the activations and the activation gradients that B
    materialized, sized ``actgrad_factor`` relative to the activations).
    """

    problem: PipelineProblem
    actgrad_factor: float = 1.0
    current: float = 0.0
    peak: float = 0.0

    def apply(self, op: OpId, units: float) -> None:
        p = self.problem
        if op.kind is OpKind.F:
            self.current += units
        elif op.kind is OpKind.B:
            if p.split_backward:
                self.current += units * self.actgrad_factor
            else:
                self.current -= units
        else:
            release = units * (1.0 + self.actgrad_factor) / p.wgrad_gemms
            self.current -= release
        self.peak = max(self.peak, self.current)


def simulate(
    schedule: Schedule,
    cost: CostModel,
    overhead_time: float = 0.0,
    actgrad_factor: float = 1.0,
) -> SimResult:
    """Replay ``schedule`` under ``cost`` and collect metrics.

    The replay is a list-scheduling fixed point: each stage executes its
    program strictly in order; an op starts when the stage is free and
    every dependency has completed (plus transfer time for cross-stage
    edges).  The schedule is statically verified on entry (placement,
    coverage, deadlock-freedom — cached if the builder already checked
    it), so a malformed schedule raises :class:`ScheduleError` with a
    diagnostic report instead of wedging the replay.
    """
    from repro.schedules.verify import ensure_verified

    ensure_verified(schedule, context="simulate")
    problem = schedule.problem
    num_stages = problem.num_stages
    programs = [schedule.stage_ops(s) for s in range(num_stages)]
    heads = [0] * num_stages
    stage_time = [0.0] * num_stages
    end_time: dict[OpId, float] = {}
    records: dict[OpId, OpRecord] = {}
    metrics = [StageMetrics(stage=s) for s in range(num_stages)]
    ledgers = [
        _Ledger(problem=problem, actgrad_factor=actgrad_factor)
        for _ in range(num_stages)
    ]

    remaining = sum(len(p) for p in programs)
    while remaining:
        progressed = False
        for stage in range(num_stages):
            ops = programs[stage]
            while heads[stage] < len(ops):
                op = ops[heads[stage]]
                deps = problem.deps(op)
                if any(d not in end_time for d in deps):
                    break
                ready = 0.0
                for d in deps:
                    ready = max(ready, end_time[d] + cost.comm_time(d, op))
                start = max(stage_time[stage], ready)
                dur = cost.duration(op)
                end = start + dur
                records[op] = OpRecord(op=op, stage=stage, start=start, end=end)
                end_time[op] = end
                stage_time[stage] = end
                m = metrics[stage]
                m.busy_time += dur
                m.op_count += 1
                ledgers[stage].apply(op, cost.act_units(op))
                heads[stage] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            stuck = [
                str(programs[s][heads[s]])
                for s in range(num_stages)
                if heads[s] < len(programs[s])
            ]
            raise ScheduleError(f"simulation deadlock; blocked heads: {stuck}")

    for stage in range(num_stages):
        metrics[stage].peak_activation_units = ledgers[stage].peak
    makespan = max(stage_time) if stage_time else 0.0
    return SimResult(
        schedule_name=schedule.name,
        problem=problem,
        records=records,
        stages=metrics,
        makespan=makespan,
        overhead_time=overhead_time,
    )
