"""Chronological pipeline replay with queued link contention.

The default executor charges each cross-stage edge a fixed transfer
time (bandwidth derated by a static sharing factor).  This module
replays a schedule *chronologically* with links as first-class
resources: every cross-stage tensor becomes a transfer that queues
FIFO on its link, so bursts of boundary messages — e.g. all slices of a
micro-batch finishing close together — serialize the way a real NIC
serializes them.

Used to sanity-check the static model: the experiments' headline
numbers hold under both (see ``tests/test_network_sim.py``).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.schedules.base import OpId, Schedule, ScheduleError
from repro.schedules.greedy import ARRIVAL_EPS
from repro.sim.executor import OpRecord, SimResult, StageMetrics, _Ledger


@dataclass
class Link:
    """A serializing transfer resource between two stages.

    Attributes:
        bandwidth_bytes_per_s: Payload bandwidth available to this
            pipeline's traffic (already divided by any sharing).
        latency_s: Per-message latency.
    """

    bandwidth_bytes_per_s: float
    latency_s: float = 10e-6
    free_at: float = 0.0
    bytes_carried: int = 0
    transfers: int = 0
    queue_delay: float = 0.0

    def transfer(self, nbytes: int, ready: float) -> float:
        """Schedule a transfer; returns its arrival time."""
        start = max(ready, self.free_at)
        self.queue_delay += start - ready
        duration = self.latency_s + nbytes / self.bandwidth_bytes_per_s
        self.free_at = start + duration
        self.bytes_carried += nbytes
        self.transfers += 1
        return self.free_at


@dataclass
class NetworkModel:
    """Links per directed stage pair plus per-edge payload sizes."""

    links: dict[tuple[int, int], Link]
    edge_bytes: float

    @classmethod
    def uniform(
        cls,
        num_stages: int,
        bandwidth_bytes_per_s: float,
        edge_bytes: float,
        latency_s: float = 10e-6,
        ring: bool = True,
    ) -> "NetworkModel":
        """One dedicated link per adjacent stage pair, both directions."""
        links = {}
        for a in range(num_stages):
            for b in (a - 1, a + 1):
                bb = b % num_stages if ring else b
                if 0 <= bb < num_stages and bb != a:
                    links[(a, bb)] = Link(bandwidth_bytes_per_s, latency_s)
        return cls(links=links, edge_bytes=edge_bytes)

    def link_for(self, src: int, dst: int) -> Link:
        key = (src, dst)
        if key not in self.links:
            self.links[key] = Link(
                next(iter(self.links.values())).bandwidth_bytes_per_s)
        return self.links[key]

    @property
    def total_queue_delay(self) -> float:
        return sum(link.queue_delay for link in self.links.values())


def simulate_with_network(
    schedule: Schedule,
    cost,
    network: NetworkModel,
    overhead_time: float = 0.0,
    actgrad_factor: float = 1.0,
) -> SimResult:
    """Replay ``schedule`` chronologically with queued transfers.

    ``cost.duration`` provides compute times; cross-stage edges are
    carried by ``network``'s links (``cost.comm_time`` is ignored).
    Event order is strictly chronological, so link occupancy is
    consistent.  Like the static-cost executor, the schedule is
    verified (placement, coverage, deadlock) on entry.
    """
    from repro.schedules.verify import ensure_verified

    ensure_verified(schedule, context="simulate_with_network")
    problem = schedule.problem
    num_stages = problem.num_stages
    programs = [schedule.stage_ops(s) for s in range(num_stages)]
    heads = [0] * num_stages
    stage_free = [0.0] * num_stages
    arrival: dict[tuple[OpId, OpId], float] = {}
    end_time: dict[OpId, float] = {}
    records: dict[OpId, OpRecord] = {}
    metrics = [StageMetrics(stage=s) for s in range(num_stages)]
    ledgers = [
        _Ledger(problem=problem, actgrad_factor=actgrad_factor)
        for _ in range(num_stages)
    ]
    dependents: dict[OpId, list[OpId]] = {}
    for op in problem.all_ops():
        for dep in problem.deps(op):
            dependents.setdefault(dep, []).append(op)

    counter = itertools.count()
    events: list[tuple[float, int, int]] = [
        (0.0, next(counter), s) for s in range(num_stages)
    ]
    remaining = sum(len(p) for p in programs)

    def ready_time(op: OpId) -> float | None:
        t = 0.0
        for dep in problem.deps(op):
            if dep not in end_time:
                return None
            if problem.is_cross_stage(dep, op):
                key = (dep, op)
                if key not in arrival:
                    return None
                t = max(t, arrival[key])
            else:
                t = max(t, end_time[dep])
        return t

    while remaining:
        if not events:
            raise ScheduleError("network replay deadlock")
        now, _tie, stage = heapq.heappop(events)
        # Same arrival/busy tolerance as the greedy generator's event
        # loop (see the ARRIVAL_EPS invariant note in schedules.greedy).
        if now + ARRIVAL_EPS < stage_free[stage]:
            continue
        if heads[stage] >= len(programs[stage]):
            continue
        op = programs[stage][heads[stage]]
        t = ready_time(op)
        if t is None or t > now + ARRIVAL_EPS:
            continue  # a later event will retry
        start = max(stage_free[stage], t)
        dur = cost.duration(op)
        end = start + dur
        end_time[op] = end
        records[op] = OpRecord(op=op, stage=stage, start=start, end=end)
        stage_free[stage] = end
        metrics[stage].busy_time += dur
        metrics[stage].op_count += 1
        ledgers[stage].apply(op, cost.act_units(op))
        heads[stage] += 1
        remaining -= 1
        heapq.heappush(events, (end, next(counter), stage))
        for dependent in dependents.get(op, ()):
            dst = problem.stage_of(dependent)
            if dst == stage:
                heapq.heappush(events, (end, next(counter), stage))
                continue
            link = network.link_for(stage, dst)
            when = link.transfer(int(network.edge_bytes), end)
            arrival[(op, dependent)] = when
            heapq.heappush(events, (when, next(counter), dst))

    for stage in range(num_stages):
        metrics[stage].peak_activation_units = ledgers[stage].peak
    makespan = max(stage_free)
    return SimResult(
        schedule_name=schedule.name + "+network",
        problem=problem,
        records=records,
        stages=metrics,
        makespan=makespan,
        overhead_time=overhead_time,
    )
