"""Cost models: how long each pipeline op takes and what communication costs.

Two implementations:

* :class:`UniformCost` — abstract unit times, used to verify schedules
  against the closed-form bubble/memory expressions of Table 3.
* :class:`ClusterCost` — calibrated per-op times for a concrete model,
  parallel configuration, and cluster, used by every end-to-end
  experiment (Figures 8/10, Tables 5-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Protocol

from repro.hardware.cluster import ClusterSpec
from repro.hardware.comm import ring_all_gather_time, ring_all_reduce_time
from repro.hardware.efficiency import DEFAULT_EFFICIENCY, EfficiencyModel
from repro.model.flops import head_slice_flops, layer_slice_flops
from repro.model.memory import HALF, sample_activation_bytes
from repro.model.spec import ModelSpec
from repro.parallel.strategies import ParallelConfig
from repro.schedules.base import OpId, OpKind, PipelineProblem


class CostModel(Protocol):
    """Per-op timing interface consumed by the executor.

    Implementations may additionally set a class attribute
    ``microbatch_invariant = True`` to declare that ``duration``,
    ``comm_time``, and ``act_units`` do not depend on the micro-batch
    index of their arguments; the executor and the greedy generator
    then memoize per-op costs across micro-batches (see
    :func:`op_cost_fns`).  Both built-in models qualify.
    """

    def duration(self, op: OpId) -> float:
        """Execution time of ``op`` in seconds (or abstract units)."""
        ...

    def comm_time(self, dep: OpId, op: OpId) -> float:
        """Transfer time of the tensor satisfying the edge ``dep -> op``."""
        ...

    def act_units(self, op: OpId) -> float:
        """Activation memory an F op pins, as a fraction of ``A``."""
        ...


def op_cost_fns(
    cost: CostModel,
) -> tuple[
    Callable[[OpId], float],
    Callable[[OpId, OpId], float],
    Callable[[OpId], float],
]:
    """``(duration, comm_time, act_units)`` callables for ``cost``.

    When the model declares ``microbatch_invariant``, each callable
    memoizes on the op coordinates *minus* the micro-batch index, so a
    replay touches the underlying model O(kinds × slices × chunks)
    times instead of once per op/edge.  Values are identical to direct
    calls — the memo only removes repeated evaluation — so simulation
    results are unchanged bit for bit.
    """
    if not getattr(cost, "microbatch_invariant", False):
        return cost.duration, cost.comm_time, cost.act_units

    # Keys use interned kind tags (C-level string hash) rather than the
    # enum member's ``.value``, whose descriptor protocol would dominate
    # the probe cost; the identity-keyed table turns the tag lookup into
    # one dict probe.
    tag = {OpKind.F: "F", OpKind.B: "B", OpKind.W: "W"}
    dur_memo: dict[tuple[str, int, int, int], float] = {}
    comm_memo: dict[tuple, float] = {}
    act_memo: dict[tuple[str, int, int, int], float] = {}

    def duration(op: OpId) -> float:
        key = (tag[op.kind], op.slice_idx, op.chunk, op.gemm)
        v = dur_memo.get(key)
        if v is None:
            v = dur_memo[key] = cost.duration(op)
        return v

    def comm_time(dep: OpId, op: OpId) -> float:
        key = (
            tag[dep.kind], dep.slice_idx, dep.chunk, dep.gemm,
            tag[op.kind], op.slice_idx, op.chunk, op.gemm,
        )
        v = comm_memo.get(key)
        if v is None:
            v = comm_memo[key] = cost.comm_time(dep, op)
        return v

    def act_units(op: OpId) -> float:
        key = (tag[op.kind], op.slice_idx, op.chunk, op.gemm)
        v = act_memo.get(key)
        if v is None:
            v = act_memo[key] = cost.act_units(op)
        return v

    return duration, comm_time, act_units


def cost_key_table_fingerprint(
    problem: PipelineProblem, cost: CostModel
) -> tuple[float, ...] | None:
    """The cost *key tables* the greedy generator reads, as a flat tuple.

    The generator's output is a deterministic function of the problem,
    the policy, and the duration/comm values it probes.  For a
    micro-batch-invariant model those values are fully described by a
    table over (kind, slice, chunk[, gemm]) plus one comm value per
    intra-micro-batch dependency edge shape — this function probes
    exactly that set, in a fixed order, so two cost models with equal
    fingerprints are indistinguishable *to the generator* (they may
    still differ on ``act_units``, which the generator never reads —
    callers caring about activation accounting must not key on this).
    Returns ``None`` for models that are not micro-batch-invariant:
    their per-op values cannot be summarized this way, so callers (the
    generation cache) must decline to share constructions.
    """
    if not getattr(cost, "microbatch_invariant", False):
        return None
    dur_fn, comm_fn, _act_fn = op_cost_fns(cost)
    s = problem.num_slices
    chunks = problem.num_chunks
    split = problem.split_backward
    gemms = problem.wgrad_gemms
    out: list[float] = []
    for sl in range(s):
        for c in range(chunks):
            f = OpId(OpKind.F, 0, sl, c)
            b = OpId(OpKind.B, 0, sl, c)
            out.append(dur_fn(f))
            out.append(dur_fn(b))
            # Comm values per dependency edge of this cell, in
            # PipelineProblem.deps order (every edge the generator can
            # probe is intra-micro-batch).
            if c > 0:
                out.append(comm_fn(OpId(OpKind.F, 0, sl, c - 1), f))
            if sl > 0:
                out.append(comm_fn(OpId(OpKind.F, 0, sl - 1, c), f))
            out.append(comm_fn(f, b))
            if c < chunks - 1:
                out.append(comm_fn(OpId(OpKind.B, 0, sl, c + 1), b))
            if sl < s - 1:
                out.append(comm_fn(OpId(OpKind.B, 0, sl + 1, c), b))
            if split:
                for g in range(gemms):
                    w = OpId(OpKind.W, 0, sl, c, g)
                    out.append(dur_fn(w))
                    out.append(comm_fn(b, w))
    return tuple(out)


@dataclass(frozen=True)
class UniformCost:
    """Unit-time cost model for schedule-structure analysis.

    ``tf``/``tb``/``tw`` are the times of a *full-chunk, full-sample*
    forward, backward, and weight-gradient pass; slice/chunk granularity
    divides them evenly, and communication is free.  An optional
    ``imbalance`` maps a slice index to a forward-time multiplier, used
    to study the attention-score imbalance in isolation (Figure 7).
    """

    problem: PipelineProblem
    tf: float = 1.0
    tb: float = 2.0
    tw: float = 0.0
    imbalance: tuple[float, ...] = ()

    microbatch_invariant = True

    def _scale(self, op: OpId) -> float:
        s = 1.0 / self.problem.num_slices
        if self.imbalance:
            total = sum(self.imbalance)
            s = self.imbalance[op.slice_idx] / total
        return s / self.problem.virtual_size

    def duration(self, op: OpId) -> float:
        if op.kind is OpKind.F:
            return self.tf * self._scale(op)
        if op.kind is OpKind.B:
            return self.tb * self._scale(op)
        per_chunk = self.tw / (self.problem.num_slices * self.problem.virtual_size)
        return per_chunk / self.problem.wgrad_gemms

    def comm_time(self, dep: OpId, op: OpId) -> float:
        return 0.0

    def act_units(self, op: OpId) -> float:
        return self.problem.activation_units_per_op


@dataclass(frozen=True)
class ClusterCost:
    """Calibrated cost model for one (model, config, cluster) triple.

    Per-op compute times come from the analytical FLOP counts and the
    kernel-efficiency curves; context parallelism inflates op times with
    its partially-overlapped per-layer collectives; pipeline edges pay
    point-to-point time on the link between the two stages, derated by
    the number of pipeline groups sharing each NIC.

    Attributes:
        spec: Model being trained.
        config: Parallel configuration (``config.spp`` must equal the
            problem's ``num_slices`` and ``config.vp`` its
            ``virtual_size``).
        cluster: Hardware the job runs on.
        problem: The pipeline problem sized for this config.
        cp_overlap: Fraction of CP collective time hidden under compute.
        recompute_factor: Extra backward compute when full recomputation
            is on (Section 7.3: ~33% more computation overall, i.e. the
            full forward is replayed before backward).
    """

    spec: ModelSpec
    config: ParallelConfig
    cluster: ClusterSpec
    problem: PipelineProblem
    eff: EfficiencyModel = DEFAULT_EFFICIENCY
    # Ring-attention KV exchange overlaps poorly with compute on PCIe
    # hosts (no copy engines to spare, host-bridge contention).
    cp_overlap: float = 0.25
    dp_overlap: float = 0.5
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    microbatch_invariant = True

    def __post_init__(self) -> None:
        # Every @lru_cache probe below hashes `self`; the generated
        # dataclass hash recurses through the model/cluster/problem
        # dataclasses each time, which profiles as the hottest call of a
        # planner sweep.  Freeze it at construction.
        object.__setattr__(
            self,
            "_hash",
            hash((
                self.spec, self.config, self.cluster, self.problem,
                self.eff, self.cp_overlap, self.dp_overlap,
            )),
        )

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    @property
    def tokens_per_op(self) -> int:
        """Tokens one pipeline op processes on this worker."""
        return self.spec.seq_length // (self.config.cp * self.config.spp)

    @property
    def efficiency_tokens(self) -> int:
        """Kernel-shape token count for the efficiency curves.

        Megatron's context parallelism cuts each sample into ``2*CP``
        chunks and gives every worker two symmetric ones to balance the
        causal workload (Section 7.3), so CP kernels see *half* the
        tokens the worker processes per op — the reason CP degrades
        operator performance faster than SPP in Figure 9.
        """
        tokens = self.tokens_per_op
        return tokens // 2 if self.config.cp > 1 else tokens

    def _slice_offset(self, slice_idx: int) -> int:
        """Context offset of a slice, for attention-imbalance FLOPs.

        With CP, each worker holds an even share of every context
        region (Megatron's symmetric placement), so the effective
        offset is the slice offset within the full sample.
        """
        return slice_idx * (self.spec.seq_length // self.config.spp)

    @lru_cache(maxsize=None)
    def _chunk_layers(self, chunk: int) -> tuple[int, bool, bool]:
        """(transformer layers, has_embedding, has_head) of a chunk.

        Slots that do not divide evenly are spread over the leading
        chunks, mirroring how Megatron balances uneven stage splits.
        """
        slots = self.spec.balanced_layer_count()
        chunks = self.problem.num_chunks
        per_chunk, rem = divmod(slots, chunks)
        my_slots = per_chunk + (1 if chunk < rem else 0)
        first = chunk == 0
        last = chunk == chunks - 1
        layers = my_slots - (1 if first else 0) - (1 if last else 0)
        return max(layers, 0), first, last

    # ------------------------------------------------------------------
    # Per-op compute time
    # ------------------------------------------------------------------
    def _gemm_seconds(self, flops: float) -> float:
        peak = self.cluster.gpu.effective_tflops * 1e12
        return flops / (peak * self.eff.gemm(self.efficiency_tokens))

    def _attn_seconds(self, flops: float) -> float:
        peak = self.cluster.gpu.effective_tflops * 1e12
        return flops / (peak * self.eff.attention(self.efficiency_tokens))

    @lru_cache(maxsize=None)
    def _compute_seconds(self, kind: OpKind, slice_idx: int, chunk: int) -> float:
        tokens = self.tokens_per_op * self.config.cp  # per-slice tokens
        offset = self._slice_offset(slice_idx)
        per_layer = layer_slice_flops(self.spec, tokens, offset)
        head = head_slice_flops(self.spec, tokens)
        # CP splits every op's FLOPs across its group; TP splits every
        # GEMM and every attention head across its group.
        share = self.config.micro_batch_size / (self.config.cp * self.config.tp)
        layers, has_emb, has_head = self._chunk_layers(chunk)

        from repro.model.flops import attention_score_flops

        attn_f = attention_score_flops(self.spec, tokens, offset)
        gemm_f = per_layer.forward - attn_f
        if kind is OpKind.F:
            t = layers * (self._gemm_seconds(gemm_f) + self._attn_seconds(attn_f))
            if has_head:
                t += self._gemm_seconds(head.forward)
            base = t * share
            if self.config.recompute:
                return base  # forward unchanged; replay charged to B
            return base
        if kind is OpKind.B:
            attn_b = 2 * attn_f
            gemm_b = per_layer.backward_dgrad - attn_b
            t = layers * (self._gemm_seconds(gemm_b) + self._attn_seconds(attn_b))
            if has_head:
                t += self._gemm_seconds(head.backward_dgrad)
            if not self.problem.split_backward:
                t += self._wgrad_chunk_seconds(slice_idx, chunk)
            if self.config.recompute:
                # Replay the chunk's forward before its backward.
                t += layers * (self._gemm_seconds(gemm_f) + self._attn_seconds(attn_f))
            return t * share
        return self._wgrad_chunk_seconds(slice_idx, chunk) * share

    def _wgrad_chunk_seconds(self, slice_idx: int, chunk: int) -> float:
        tokens = self.tokens_per_op * self.config.cp
        offset = self._slice_offset(slice_idx)
        per_layer = layer_slice_flops(self.spec, tokens, offset)
        layers, _unused, has_head = self._chunk_layers(chunk)
        t = layers * self._gemm_seconds(per_layer.backward_wgrad)
        if has_head:
            t += self._gemm_seconds(head_slice_flops(self.spec, tokens).backward_wgrad)
        return t

    @lru_cache(maxsize=None)
    def _tp_layer_overhead(self) -> float:
        """Exposed per-layer TP all-reduce time (forward direction).

        Megatron TP needs two activation all-reduces per layer per
        direction; they sit on the critical path (barely overlappable).
        """
        tp = self.config.tp
        if tp <= 1:
            return 0.0
        ranks = list(range(tp))  # TP groups always within a node
        link = self.cluster.group_link(ranks)
        act = HALF * self.tokens_per_op * self.spec.hidden_size
        act *= self.config.micro_batch_size
        return 2 * ring_all_reduce_time(act, tp, link)

    @lru_cache(maxsize=None)
    def _cp_layer_overhead(self) -> float:
        """Exposed per-layer CP collective time (forward direction)."""
        cp = self.config.cp
        if cp <= 1:
            return 0.0
        ranks = list(range(cp))  # CP groups are placed within a node
        link = self.cluster.group_link(ranks)
        from dataclasses import replace

        link = replace(link, bandwidth_gbps=link.collective_bandwidth_gbps)
        kv = 2 * HALF * self.spec.seq_length * self.spec.kv_hidden_size
        kv //= self.config.spp
        t = ring_all_gather_time(kv, cp, link)
        return t * (1.0 - self.cp_overlap)

    # ------------------------------------------------------------------
    # CostModel interface
    # ------------------------------------------------------------------
    def duration(self, op: OpId) -> float:
        base = self._compute_seconds(op.kind, op.slice_idx, op.chunk)
        if op.kind is OpKind.W:
            return base / self.problem.wgrad_gemms
        layers, _unused, _unused2 = self._chunk_layers(op.chunk)
        extra = layers * (self._cp_layer_overhead() + self._tp_layer_overhead())
        if op.kind is OpKind.B:
            extra *= 2.0  # backward needs the mirrored collectives
        return base + extra

    def comm_time(self, dep: OpId, op: OpId) -> float:
        stage_a = self.problem.stage_of_chunk(dep.chunk)
        stage_b = self.problem.stage_of_chunk(op.chunk)
        if stage_a == stage_b:
            return 0.0
        return self._boundary_seconds(stage_a, stage_b)

    @lru_cache(maxsize=None)
    def _boundary_seconds(self, stage_a: int, stage_b: int) -> float:
        """Transfer time of one boundary tensor between two stages.

        Identical for every edge on the same stage pair, so the replay
        loop pays one dict probe per edge instead of recomputing the
        payload/link/sharing arithmetic.
        """
        nbytes = (
            HALF
            * self.config.micro_batch_size
            * self.tokens_per_op
            * self.spec.hidden_size
        )
        link = self._pp_link(stage_a, stage_b)
        # Every co-located pipeline group sends its boundary tensor at
        # roughly the same moment; an inter-node NIC is shared by all of
        # them, an intra-node fabric is point-to-point.
        groups = self.config.dp * self.config.cp * self.config.tp
        sharing = min(groups, self.cluster.gpus_per_node)
        if link is self.cluster.inter_node_link:
            return link.latency_s + (nbytes * sharing) / (link.bandwidth_gbps * 1e9)
        return link.p2p_time(nbytes)

    def _pp_link(self, stage_a: int, stage_b: int):
        """Link between two pipeline stages under Megatron placement.

        Ranks are ordered (tp, cp, dp, pp): pipeline stages are the
        outermost dimension, so with ``p >= num_nodes`` consecutive
        stages land on different nodes whenever the per-stage group
        spans a full node.
        """
        group = self.config.dp * self.config.cp * self.config.tp
        rank_a = stage_a * group
        rank_b = stage_b * group
        rank_a %= self.cluster.num_devices
        rank_b %= self.cluster.num_devices
        return self.cluster.link_between(rank_a, rank_b)

    def act_units(self, op: OpId) -> float:
        return self.problem.activation_units_per_op

    # ------------------------------------------------------------------
    # Iteration-level extras
    # ------------------------------------------------------------------
    def boundary_message_bytes(self) -> float:
        """Payload of one cross-stage boundary tensor (one micro-batch slice)."""
        return float(
            HALF
            * self.config.micro_batch_size
            * self.tokens_per_op
            * self.spec.hidden_size
        )

    def activation_bytes_per_unit(self) -> float:
        """Bytes of one ``A`` unit on this worker.

        CP divides the tokens; TP divides (almost all of) the stored
        tensors.
        """
        per = sample_activation_bytes(self.spec, recompute=self.config.recompute)
        return per * self.config.micro_batch_size / (self.config.cp * self.config.tp)

    def _replica_group(self) -> tuple[int, bool]:
        """(size, spans_nodes) of the DP*CP parameter-replica group."""
        group = self.config.dp * self.config.cp
        spans = group * self.config.tp > self.cluster.gpus_per_node
        return group, spans

    def dp_sync_seconds(self) -> float:
        """Exposed gradient all-reduce time at the end of the iteration.

        NCCL runs the all-reduce hierarchically: ranks reduce inside
        each node over the fast fabric, then a node-level ring moves
        ~2x the payload once through each NIC.  Megatron additionally
        overlaps the reduction with the tail of the backward pass
        (``dp_overlap``).
        """
        group, spans = self._replica_group()
        if group <= 1:
            return 0.0
        stage_params = self.spec.total_params() // self.config.pp
        nbytes = HALF * stage_params
        if not spans:
            t = ring_all_reduce_time(nbytes, group, self.cluster.intra_node_link)
        else:
            nic = self.cluster.inter_node_link
            t = 2 * nbytes / (nic.bandwidth_gbps * 1e9) + ring_all_reduce_time(
                nbytes, self.cluster.gpus_per_node, self.cluster.intra_node_link
            )
        return t * (1.0 - self.dp_overlap)

    def optimizer_seconds(self) -> float:
        """Adam step + ZeRO-1 parameter all-gather (hierarchical)."""
        params = self.spec.total_params() // self.config.pp
        nbytes = HALF * params
        group, spans = self._replica_group()
        if group <= 1:
            return 0.002
        if not spans:
            return 0.002 + ring_all_gather_time(
                nbytes, group, self.cluster.intra_node_link)
        nic = self.cluster.inter_node_link
        return 0.002 + nbytes / (nic.bandwidth_gbps * 1e9)
