"""Stable facade over the library's blessed entry points.

Downstream code (notebooks, experiment drivers, external tooling)
should import from here; internal module paths may move between
releases, but these names will not.  One import gives the full
pipeline-research loop::

    from repro import api

    problem = api.build_problem("mepipe", 4, 8, num_slices=4,
                                wgrad_gemms=3)
    schedule = api.build_schedule("mepipe", problem)
    api.verify(schedule).ok                  # static safety tier
    sim = api.simulate(schedule, cost)       # discrete-event replay
    print(sim.metrics().render_text())       # uniform result API

Everything observable rides the telemetry bus — pass any sink
(:class:`MemorySink`, :class:`JsonlSink`, :class:`ChromeTraceSink`) to
:func:`simulate`, :meth:`PipelineRuntime.run`, or :func:`plan`;
the default :data:`NULL_SINK` keeps uninstrumented runs free.
"""

from __future__ import annotations

from repro.analysis import analyze_spec as check_model
from repro.analysis.capacity import (
    CapacityCertificate,
    CapacityPlan,
    certify_capacities,
    check_capacities,
    cross_validate_capacities,
    infer_capacities,
)
from repro.analysis.evaluate import (
    AnalyticEvaluation,
    TimeBounds,
    evaluate_schedule,
    iteration_time_bounds,
)
from repro.hardware import ClusterSpec, GPUSpec, get_cluster
from repro.model import ModelSpec, get_model, tiny_spec
from repro.nn import build_model
from repro.obs import (
    NULL_SINK,
    ChromeTraceSink,
    Event,
    EventSink,
    IterationMetrics,
    JsonlSink,
    MemorySink,
    NullSink,
    PipelineResult,
    TeeSink,
    chrome_trace,
    iteration_metrics,
    record_iteration,
)
from repro.parallel import ParallelConfig
from repro.pipeline import PipelineRuntime, RunResult
from repro.planner import SearchResult, SweepCache, evaluate_config
from repro.planner import search_method as plan
from repro.profiler import Profiler
from repro.schedules import (
    PipelineProblem,
    Schedule,
    ScheduleError,
    build_problem,
    build_schedule,
)
from repro.schedules.verify import verify_schedule as verify
from repro.sim import ClusterCost, SimResult, UniformCost, simulate
from repro.sim.crossval import cross_validate

__all__ = [
    "AnalyticEvaluation",
    "CapacityCertificate",
    "CapacityPlan",
    "ChromeTraceSink",
    "ClusterCost",
    "ClusterSpec",
    "Event",
    "EventSink",
    "GPUSpec",
    "IterationMetrics",
    "JsonlSink",
    "MemorySink",
    "ModelSpec",
    "NULL_SINK",
    "NullSink",
    "ParallelConfig",
    "PipelineProblem",
    "PipelineResult",
    "PipelineRuntime",
    "Profiler",
    "RunResult",
    "Schedule",
    "ScheduleError",
    "SearchResult",
    "SimResult",
    "SweepCache",
    "TeeSink",
    "TimeBounds",
    "UniformCost",
    "build_model",
    "build_problem",
    "build_schedule",
    "certify_capacities",
    "check_capacities",
    "check_model",
    "chrome_trace",
    "cross_validate",
    "cross_validate_capacities",
    "evaluate_config",
    "evaluate_schedule",
    "get_cluster",
    "get_model",
    "infer_capacities",
    "iteration_metrics",
    "iteration_time_bounds",
    "plan",
    "record_iteration",
    "simulate",
    "tiny_spec",
    "verify",
]
