"""Policy-driven greedy schedule generation.

MEPipe's scheduler (Sections 4.3 and 5) is reproduced here as an
event-driven greedy construction: each stage, whenever it is free,
chooses its next op under a policy of

* **forward-first under a memory cap** — a stage runs a ready F op
  while its live activation count stays below the cap; each backward
  frees one slot, which yields exactly the one-forward-one-backward
  alternation at slice granularity.  The cap of the first stage is the
  paper's ``f`` parameter (forwards before the first backward), so
  sweeping it yields the Figure 5 variants;
* **front-micro-batch reservation** — an F op may not consume the cap
  slots that the earliest unfinished micro-batch's remaining forwards
  will need (the first backward of a sample depends on *all* of its
  forwards, Section 4.2), which keeps every variant deadlock-free;
* **weight-gradient gap filling** — when neither an F nor a B op is
  runnable (waiting on communication, or F is capped), the stage pops a
  deferred W GEMM from its queue (Section 5, Figure 7); stages defer at
  most what their memory slack allows, so later stages postpone more.

The same engine generates the zero-bubble (ZB/ZBV) and Hanayo baselines
with micro-batch-granular problems and the corresponding caps.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.schedules.base import (
    OpId,
    OpKind,
    PipelineProblem,
    Schedule,
    ScheduleError,
    StageProgram,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.sim.cost import CostModel


@dataclass(frozen=True)
class GreedyPolicy:
    """Knobs of the greedy generator.

    Attributes:
        first_stage_cap: Max live F ops on stage 0 — the paper's ``f``.
            ``None`` means the method's memory-optimal default,
            ``v*max(p, s) + min(p, s) - 1`` (Section 4.4).
        cap_slope: How much smaller each subsequent stage's cap is;
            1 reproduces 1F1B-style staircases, 0 the uniform caps of
            wave (V-shaped) schedules.
        backward_priority: ``"children"`` picks the ready B with the
            most descendants first (the Section 4.3 rescheduling
            optimization); ``"fifo"`` processes B ops in arrival order
            (the unoptimized variant, for ablation).
        fill_with_wgrad: Whether idle gaps may run deferred W GEMMs
            (Section 5); False reproduces "W immediately after B".
        wgrad_units: Activation-gradient units a deferred W pins,
            relative to the activations of one F op.
        wgrad_defer_samples: How many *samples'* worth of deferred
            weight-gradient state (activations + activation gradients)
            every stage may pin beyond its structural slack of
            ``cap_slope * k`` units.  Expressed in samples so the slack
            scales with the slice count (Section 5: later stages hold
            fewer activations and can postpone more weight gradients).
        strong_reserve: Reserve cap slots for the earliest micro-batch
            with *pending forwards* instead of pending backwards.  This
            is a stricter admission rule that guarantees progress for
            every (f, v) variant at the price of a slightly larger
            bubble; :func:`greedy_schedule` falls back to it
            automatically if the fast rule wedges.
    """

    first_stage_cap: int | None = None
    cap_slope: int = 1
    backward_priority: str = "children"
    forward_priority: str = "round_desc"
    fill_with_wgrad: bool = True
    wgrad_units: float = 1.0
    wgrad_defer_samples: float = 0.5
    strong_reserve: bool = False

    def __post_init__(self) -> None:
        if self.backward_priority not in ("children", "fifo"):
            raise ValueError(f"unknown backward_priority {self.backward_priority!r}")
        if self.forward_priority not in _FORWARD_KEYS:
            raise ValueError(f"unknown forward_priority {self.forward_priority!r}")


#: Selection keys for ready forward ops (smaller tuple wins).
_FORWARD_KEYS = {
    # Finish later chunk rounds first (drives each sample toward its
    # first backward); micro-batch order breaks ties.
    "round_desc": lambda op, p: (-(op.chunk // p), op.microbatch,
                                 op.slice_idx, op.chunk),
    # Strict micro-batch-major order with later rounds preferred within
    # a micro-batch; keeps consecutive samples from overtaking.
    "mb_major": lambda op, p: (op.microbatch, -(op.chunk // p),
                               op.slice_idx, op.chunk),
    # Plain lexicographic order.
    "plain": lambda op, p: (op.microbatch, op.slice_idx, op.chunk),
}


def default_first_stage_cap(problem: PipelineProblem) -> int:
    """Memory-optimal ``f``: ``v*max(p,s) + min(p,s) - 1`` (Table 3)."""
    p, s, v = problem.num_stages, problem.num_slices, problem.virtual_size
    return v * max(p, s) + min(p, s) - 1


def min_first_stage_cap(problem: PipelineProblem) -> int:
    """Smallest feasible ``f``: all ``v*s`` forwards of one sample
    (Section 4.2)."""
    return problem.virtual_size * problem.num_slices


def stage_cap(problem: PipelineProblem, policy: GreedyPolicy, stage: int) -> int:
    """Live-F cap for one stage."""
    f = policy.first_stage_cap
    if f is None:
        f = default_first_stage_cap(problem)
    floor = min_first_stage_cap(problem)
    if f < floor:
        raise ScheduleError(
            f"first_stage_cap {f} below the feasible minimum {floor} (= v*s)"
        )
    return max(f - policy.cap_slope * stage, floor)


def _b_children(op: OpId) -> int:
    """Number of B descendants within the same micro-batch (Section 4.3)."""
    return (op.slice_idx + 1) * (op.chunk + 1) - 1


@dataclass
class _StageState:
    stage: int
    cap: int
    free_at: float = 0.0
    live_f: float = 0.0
    deferred_units: float = 0.0
    #: Ops whose dependencies have all been scheduled but which have not
    #: themselves run yet, with their arrival times.
    avail_f: dict[OpId, float] = field(default_factory=dict)
    avail_b: dict[OpId, float] = field(default_factory=dict)
    wgrad_queue: list[OpId] = field(default_factory=list)
    #: Remaining (not yet run) F op count per micro-batch, for the
    #: front-micro-batch cap reservation.
    pending_f_by_mb: list[int] = field(default_factory=list)
    pending_b_by_mb: list[int] = field(default_factory=list)
    front_b_mb: int = 0
    front_f_mb: int = 0
    #: Kind of the last committed F/B op, for 1F1B alternation.
    last_main: OpKind = OpKind.B
    program: list[OpId] = field(default_factory=list)

    def front_mb(self) -> int | None:
        """Earliest micro-batch with backwards still pending here."""
        counts = self.pending_b_by_mb
        while self.front_b_mb < len(counts) and counts[self.front_b_mb] == 0:
            self.front_b_mb += 1
        if self.front_b_mb >= len(counts):
            return None
        return self.front_b_mb

    def front_f(self) -> int | None:
        """Earliest micro-batch with forwards still pending here."""
        counts = self.pending_f_by_mb
        while self.front_f_mb < len(counts) and counts[self.front_f_mb] == 0:
            self.front_f_mb += 1
        if self.front_f_mb >= len(counts):
            return None
        return self.front_f_mb


def greedy_schedule(
    problem: PipelineProblem,
    policy: GreedyPolicy | None = None,
    cost: CostModel | None = None,
    name: str = "greedy",
) -> Schedule:
    """Generate a schedule with the greedy policy engine.

    ``cost`` provides the op durations the scheduler plans with; MEPipe
    uses its profiler's measurements here, and we default to the uniform
    model (the generated *order* is then re-timed by the executor with
    whatever cost model an experiment uses).

    If the fast cap-reservation rule wedges (possible for small ``f``
    with multiple chunk rounds), the generation is retried once with the
    strong reservation rule, which is deadlock-free.
    """
    policy = policy or GreedyPolicy()
    try:
        return _greedy_once(problem, policy, cost, name)
    except ScheduleError:
        if policy.strong_reserve:
            raise
        from dataclasses import replace

        return _greedy_once(
            problem, replace(policy, strong_reserve=True), cost, name
        )


def _greedy_once(
    problem: PipelineProblem,
    policy: GreedyPolicy,
    cost: CostModel | None,
    name: str,
) -> Schedule:
    from repro.sim.cost import UniformCost

    cost = cost or UniformCost(problem)
    num_stages = problem.num_stages
    n = problem.num_microbatches

    states = [
        _StageState(
            stage=s,
            cap=stage_cap(problem, policy, s),
            pending_f_by_mb=[0] * n,
            pending_b_by_mb=[0] * n,
        )
        for s in range(num_stages)
    ]

    all_ops = problem.all_ops()
    deps_of: dict[OpId, list[OpId]] = {op: problem.deps(op) for op in all_ops}
    dependents: dict[OpId, list[OpId]] = {}
    unmet: dict[OpId, int] = {}
    arrival: dict[OpId, float] = {op: 0.0 for op in all_ops}
    stage_of: dict[OpId, int] = {op: problem.stage_of(op) for op in all_ops}
    for op, deps in deps_of.items():
        unmet[op] = len(deps)
        for dep in deps:
            dependents.setdefault(dep, []).append(op)

    wgrads: dict[tuple[int, int, int], list[OpId]] = {}
    for op in all_ops:
        if op.kind is OpKind.F:
            states[stage_of[op]].pending_f_by_mb[op.microbatch] += 1
        elif op.kind is OpKind.B:
            states[stage_of[op]].pending_b_by_mb[op.microbatch] += 1
        else:
            wgrads.setdefault((op.microbatch, op.slice_idx, op.chunk), []).append(op)

    def publish(op: OpId) -> None:
        """Move a zero-unmet F/B op into its stage's available set."""
        state = states[stage_of[op]]
        if op.kind is OpKind.F:
            state.avail_f[op] = arrival[op]
        elif op.kind is OpKind.B:
            state.avail_b[op] = arrival[op]
        # W ops are managed through the per-stage wgrad queues.

    for op in all_ops:
        if unmet[op] == 0 and op.kind is not OpKind.W:
            publish(op)

    counter = itertools.count()
    # Wake events: (time, tiebreak, stage).
    heap: list[tuple[float, int, int]] = [
        (0.0, next(counter), s) for s in range(num_stages)
    ]
    remaining = len(all_ops)
    end_time: dict[OpId, float] = {}

    def choose_b(state: _StageState, now: float) -> OpId | None:
        best: OpId | None = None
        best_key: tuple | None = None
        for op, arr in state.avail_b.items():
            if arr > now + 1e-12:
                continue
            if policy.backward_priority == "children":
                key = (-_b_children(op), op.microbatch, -op.slice_idx, -op.chunk)
            else:
                key = (op.microbatch, -op.slice_idx, -op.chunk)
            if best_key is None or key < best_key:
                best, best_key = op, key
        return best

    def choose_f(state: _StageState, now: float) -> OpId | None:
        # The stage's next backward transitively needs every still-
        # pending forward of the earliest unfinished micro-batch (the
        # "front").  An F op may not eat the cap slots those forwards
        # will need, or the pipeline wedges: the first backward could no
        # longer fit under the cap.  The strong rule protects the
        # earliest micro-batch with pending *forwards* instead, which is
        # strictly safer (see GreedyPolicy.strong_reserve).
        front = state.front_f() if policy.strong_reserve else state.front_mb()
        needed = state.pending_f_by_mb[front] if front is not None else 0
        p = problem.num_stages
        keyfn = _FORWARD_KEYS[policy.forward_priority]
        best: OpId | None = None
        best_key: tuple | None = None
        for op, arr in state.avail_f.items():
            if arr > now + 1e-12:
                continue
            reserve = needed - (1 if op.microbatch == front else 0)
            if state.live_f + 1.0 + reserve > state.cap + 1e-9:
                continue
            key = keyfn(op, p)
            if best_key is None or key < best_key:
                best, best_key = op, key
        return best

    def commit(state: _StageState, op: OpId, now: float) -> None:
        nonlocal remaining
        start = max(now, state.free_at)
        end = start + cost.duration(op)
        end_time[op] = end
        state.free_at = end
        state.program.append(op)
        remaining -= 1
        if op.kind is OpKind.F:
            del state.avail_f[op]
            state.live_f += 1.0
            state.pending_f_by_mb[op.microbatch] -= 1
            state.last_main = OpKind.F
        elif op.kind is OpKind.B:
            del state.avail_b[op]
            state.live_f -= 1.0
            state.pending_b_by_mb[op.microbatch] -= 1
            state.last_main = OpKind.B
            if problem.split_backward:
                key = (op.microbatch, op.slice_idx, op.chunk)
                state.wgrad_queue.extend(wgrads[key])
                state.deferred_units += 1.0 + policy.wgrad_units
        else:
            state.wgrad_queue.remove(op)
            state.deferred_units -= (1.0 + policy.wgrad_units) / problem.wgrad_gemms
        heapq.heappush(heap, (end, next(counter), state.stage))
        for dependent in dependents.get(op, ()):
            when = end + cost.comm_time(op, dependent)
            if when > arrival[dependent]:
                arrival[dependent] = when
            unmet[dependent] -= 1
            if unmet[dependent] == 0 and dependent.kind is not OpKind.W:
                publish(dependent)
            # Wake the consumer's stage at the arrival moment.
            heapq.heappush(heap, (when, next(counter), stage_of[dependent]))

    while remaining:
        if not heap:
            stuck = [
                str(op)
                for st in states
                for op in itertools.chain(st.avail_f, st.avail_b, st.wgrad_queue)
            ][:8]
            raise ScheduleError(f"greedy deadlock; runnable-but-unscheduled: {stuck}")
        now, _tie, stage = heapq.heappop(heap)
        state = states[stage]
        if now + 1e-12 < state.free_at:
            continue  # stage busy; its completion wake is already queued
        # Stage k holds ~cap_slope*k fewer live activations than stage
        # 0; that slack, plus the configured per-sample budget, is what
        # it may fill with deferred weight-gradient state.
        allowance = policy.cap_slope * stage + (
            policy.wgrad_defer_samples
            * problem.virtual_size
            * problem.num_slices
            * (1.0 + policy.wgrad_units)
        )
        if not policy.fill_with_wgrad and state.wgrad_queue:
            # "W immediately after B": drain weight gradients before
            # anything else (the unoptimized Figure 11 behavior).
            op: OpId | None = state.wgrad_queue[0]
        elif state.wgrad_queue and state.deferred_units > allowance + 1e-9:
            # Deferred weight gradients exceed this stage's memory
            # slack; retire one before advancing the pipeline.
            op = state.wgrad_queue[0]
        else:
            # Steady state is one-forward-one-backward alternation, the
            # rhythm of every published interleaved schedule: after an F
            # prefer the next B, after a B refill the freed slot with an
            # F (the cap bounds the warm-up depth).  Whichever kind is
            # not ready yet falls back to the other.
            if state.last_main is OpKind.F:
                op = choose_b(state, now) or choose_f(state, now)
            else:
                op = choose_f(state, now) or choose_b(state, now)
            if op is None and state.wgrad_queue:
                # Gap filling (Section 5) — but only when no F/B is
                # about to arrive within the GEMM's runtime, otherwise
                # the non-preemptive W would push the critical path.
                w = state.wgrad_queue[0]
                horizon = now + 0.5 * cost.duration(w)
                imminent = any(
                    arr <= horizon
                    for arr in itertools.chain(
                        state.avail_f.values(), state.avail_b.values())
                )
                if not imminent:
                    op = w
        if op is not None:
            commit(state, op, now)

    return Schedule(
        problem=problem,
        programs=[StageProgram(stage=s.stage, ops=s.program) for s in states],
        name=name,
    )
