"""Policy-driven greedy schedule generation.

MEPipe's scheduler (Sections 4.3 and 5) is reproduced here as an
event-driven greedy construction: each stage, whenever it is free,
chooses its next op under a policy of

* **forward-first under a memory cap** — a stage runs a ready F op
  while its live activation count stays below the cap; each backward
  frees one slot, which yields exactly the one-forward-one-backward
  alternation at slice granularity.  The cap of the first stage is the
  paper's ``f`` parameter (forwards before the first backward), so
  sweeping it yields the Figure 5 variants;
* **front-micro-batch reservation** — an F op may not consume the cap
  slots that the earliest unfinished micro-batch's remaining forwards
  will need (the first backward of a sample depends on *all* of its
  forwards, Section 4.2), which keeps every variant deadlock-free;
* **weight-gradient gap filling** — when neither an F nor a B op is
  runnable (waiting on communication, or F is capped), the stage pops a
  deferred W GEMM from its queue (Section 5, Figure 7); stages defer at
  most what their memory slack allows, so later stages postpone more.

The same engine generates the zero-bubble (ZB/ZBV) and Hanayo baselines
with micro-batch-granular problems and the corresponding caps.

The hot loop is **array-native**: ops are canonical integer codes (the
compiled :class:`~repro.schedules.graph.ScheduleGraph` layout), the
policy's selection keys are packed into single integers whose order
matches the original priority tuples, and each stage keeps sorted ready
structures (heaps over packed keys) instead of scanning dicts of
``OpId``.  The result is proven byte-identical to the pre-rewrite
engine — preserved verbatim in :mod:`repro.schedules.greedy_reference`
— by ``tests/test_greedy_golden.py`` across the full acceptance grid.
Generated schedules carry their compiled graph (built directly from the
generator's dense tables, see :func:`repro.schedules.graph
.graph_from_codes`) and materialize their ``OpId`` programs lazily.
Repeated builds over identical (problem, policy, cost key tables) are
served from :mod:`repro.schedules.gencache`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from functools import lru_cache
from itertools import accumulate
from typing import TYPE_CHECKING, Callable

from repro.schedules.base import (
    OpId,
    OpKind,
    PipelineProblem,
    Schedule,
    ScheduleError,
    StageProgram,
)
from repro.schedules.graph import ScheduleGraph, graph_from_codes

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.sim.cost import CostModel

#: Tolerance for "has this op's input arrived by now?" comparisons.
#:
#: Invariant protected: an op whose arrival time differs from the
#: current wake event's timestamp only by accumulated float rounding
#: (sums of the same durations/comm times taken in different orders)
#: must be treated as *already arrived*, never as "arriving later" —
#: otherwise the greedy loop would idle (or gap-fill a W op) on a stage
#: that is semantically ready, and the emitted order would depend on
#: rounding noise.  The epsilon must stay far below any real op
#: duration and is shared with the sim executor's network replay
#: (:mod:`repro.sim.network`), which makes the same ready-by-now and
#: stage-busy comparisons against event timestamps.
ARRIVAL_EPS: float = 1e-12

#: Slack on the integer cap/allowance comparisons (``live_f`` and
#: ``deferred_units`` are float accumulators of exact ±1-unit steps, so
#: this only guards against pathological float drift).
_CAP_EPS: float = 1e-9


@dataclass(frozen=True)
class GreedyPolicy:
    """Knobs of the greedy generator.

    Attributes:
        first_stage_cap: Max live F ops on stage 0 — the paper's ``f``.
            ``None`` means the method's memory-optimal default,
            ``v*max(p, s) + min(p, s) - 1`` (Section 4.4).
        cap_slope: How much smaller each subsequent stage's cap is;
            1 reproduces 1F1B-style staircases, 0 the uniform caps of
            wave (V-shaped) schedules.
        backward_priority: ``"children"`` picks the ready B with the
            most descendants first (the Section 4.3 rescheduling
            optimization); ``"fifo"`` processes B ops in arrival order
            (the unoptimized variant, for ablation).
        fill_with_wgrad: Whether idle gaps may run deferred W GEMMs
            (Section 5); False reproduces "W immediately after B".
        wgrad_units: Activation-gradient units a deferred W pins,
            relative to the activations of one F op.
        wgrad_defer_samples: How many *samples'* worth of deferred
            weight-gradient state (activations + activation gradients)
            every stage may pin beyond its structural slack of
            ``cap_slope * k`` units.  Expressed in samples so the slack
            scales with the slice count (Section 5: later stages hold
            fewer activations and can postpone more weight gradients).
        strong_reserve: Reserve cap slots for the earliest micro-batch
            with *pending forwards* instead of pending backwards.  This
            is a stricter admission rule that guarantees progress for
            every (f, v) variant at the price of a slightly larger
            bubble; :func:`greedy_schedule` falls back to it
            automatically if the fast rule wedges.
    """

    first_stage_cap: int | None = None
    cap_slope: int = 1
    backward_priority: str = "children"
    forward_priority: str = "round_desc"
    fill_with_wgrad: bool = True
    wgrad_units: float = 1.0
    wgrad_defer_samples: float = 0.5
    strong_reserve: bool = False

    def __post_init__(self) -> None:
        if self.backward_priority not in ("children", "fifo"):
            raise ValueError(f"unknown backward_priority {self.backward_priority!r}")
        if self.forward_priority not in _FORWARD_KEYS:
            raise ValueError(f"unknown forward_priority {self.forward_priority!r}")


#: Selection keys for ready forward ops (smaller tuple wins).  The
#: array engine runs on the packed-integer form below
#: (:data:`_PACKED_FORWARD_KEYS`); these tuple keys remain the
#: specification, and the golden reference engine still selects with
#: them directly.
_FORWARD_KEYS = {
    # Finish later chunk rounds first (drives each sample toward its
    # first backward); micro-batch order breaks ties.
    "round_desc": lambda op, p: (-(op.chunk // p), op.microbatch,
                                 op.slice_idx, op.chunk),
    # Strict micro-batch-major order with later rounds preferred within
    # a micro-batch; keeps consecutive samples from overtaking.
    "mb_major": lambda op, p: (op.microbatch, -(op.chunk // p),
                               op.slice_idx, op.chunk),
    # Plain lexicographic order.
    "plain": lambda op, p: (op.microbatch, op.slice_idx, op.chunk),
}


def default_first_stage_cap(problem: PipelineProblem) -> int:
    """Memory-optimal ``f``: ``v*max(p,s) + min(p,s) - 1`` (Table 3)."""
    p, s, v = problem.num_stages, problem.num_slices, problem.virtual_size
    return v * max(p, s) + min(p, s) - 1


def min_first_stage_cap(problem: PipelineProblem) -> int:
    """Smallest feasible ``f``: all ``v*s`` forwards of one sample
    (Section 4.2)."""
    return problem.virtual_size * problem.num_slices


def stage_cap(problem: PipelineProblem, policy: GreedyPolicy, stage: int) -> int:
    """Live-F cap for one stage."""
    f = policy.first_stage_cap
    if f is None:
        f = default_first_stage_cap(problem)
    floor = min_first_stage_cap(problem)
    if f < floor:
        raise ScheduleError(
            f"first_stage_cap {f} below the feasible minimum {floor} (= v*s)"
        )
    return max(f - policy.cap_slope * stage, floor)


def _b_children(op: OpId) -> int:
    """Number of B descendants within the same micro-batch (Section 4.3)."""
    return (op.slice_idx + 1) * (op.chunk + 1) - 1


# ----------------------------------------------------------------------
# Packed selection keys
# ----------------------------------------------------------------------
#
# The array engine compares single integers instead of the priority
# tuples above.  Each builder returns one key per *cell* (canonical
# ``base = (mb*s + sl)*chunks + c`` index), packed mixed-radix so that
# integer order is exactly the lexicographic order of the corresponding
# tuple: descending components are stored as ``max - x``, and every
# component is strictly smaller than its radix.  Keys are unique per op
# (every tuple contains the full (mb, sl, c) coordinate), so "smallest
# key" needs no tie-break — which is also why the reference engine's
# first-wins dict scan and the heap below agree op for op.


@lru_cache(maxsize=64)
def _fkeys_round_desc(problem: PipelineProblem) -> list[int]:
    n, s = problem.num_microbatches, problem.num_slices
    chunks, p, v = problem.num_chunks, problem.num_stages, problem.virtual_size
    return [
        (((v - 1 - c // p) * n + mb) * s + sl) * chunks + c
        for mb in range(n)
        for sl in range(s)
        for c in range(chunks)
    ]


@lru_cache(maxsize=64)
def _fkeys_mb_major(problem: PipelineProblem) -> list[int]:
    n, s = problem.num_microbatches, problem.num_slices
    chunks, p, v = problem.num_chunks, problem.num_stages, problem.virtual_size
    return [
        ((mb * v + (v - 1 - c // p)) * s + sl) * chunks + c
        for mb in range(n)
        for sl in range(s)
        for c in range(chunks)
    ]


@lru_cache(maxsize=64)
def _fkeys_plain(problem: PipelineProblem) -> list[int]:
    # (mb, sl, c) is the canonical cell index itself.
    return list(range(problem.num_microbatches * problem.num_slices
                      * problem.num_chunks))


@lru_cache(maxsize=64)
def _bkeys_children(problem: PipelineProblem) -> list[int]:
    # (-children, mb, -sl, -c) with children = (sl+1)*(c+1) - 1.
    n, s, chunks = problem.num_microbatches, problem.num_slices, problem.num_chunks
    maxch = s * chunks - 1
    return [
        (((maxch - ((sl + 1) * (c + 1) - 1)) * n + mb) * s + (s - 1 - sl))
        * chunks
        + (chunks - 1 - c)
        for mb in range(n)
        for sl in range(s)
        for c in range(chunks)
    ]


@lru_cache(maxsize=64)
def _bkeys_fifo(problem: PipelineProblem) -> list[int]:
    # (mb, -sl, -c).
    n, s, chunks = problem.num_microbatches, problem.num_slices, problem.num_chunks
    return [
        (mb * s + (s - 1 - sl)) * chunks + (chunks - 1 - c)
        for mb in range(n)
        for sl in range(s)
        for c in range(chunks)
    ]


#: Packed-key builders by policy mode.  Module-level (rather than
#: closed over) so the seeded mutation tests can swap one in and assert
#: the golden-equivalence harness catches the perturbed tiebreaks.
_PACKED_FORWARD_KEYS: dict[str, Callable[[PipelineProblem], list[int]]] = {
    "round_desc": _fkeys_round_desc,
    "mb_major": _fkeys_mb_major,
    "plain": _fkeys_plain,
}

_PACKED_BACKWARD_KEYS: dict[str, Callable[[PipelineProblem], list[int]]] = {
    "children": _bkeys_children,
    "fifo": _bkeys_fifo,
}


@lru_cache(maxsize=32)
def _op_hashes(
    n: int, s: int, chunks: int, split: bool, gemms: int
) -> list[int]:
    """Per-code op hashes for the content fingerprint.

    Identical to ``[op._hash for op in ops_by_code]``: ``OpId`` freezes
    ``hash((kind.value, mb, sl, c, gemm))`` at construction, so hashing
    the raw tuples reproduces the per-op values without building an
    object per op.  Pure function of the problem structure, memoized
    across generations.  Callers only read the list.
    """
    fv, bv = OpKind.F.value, OpKind.B.value
    hashes = [
        hash((fv, mb, sl, c, -1))
        for mb in range(n)
        for sl in range(s)
        for c in range(chunks)
    ]
    hashes += [
        hash((bv, mb, sl, c, -1))
        for mb in range(n)
        for sl in range(s)
        for c in range(chunks)
    ]
    if split:
        wv = OpKind.W.value
        hashes += [
            hash((wv, mb, sl, c, g))
            for mb in range(n)
            for sl in range(s)
            for c in range(chunks)
            for g in range(gemms)
        ]
    return hashes


@lru_cache(maxsize=64)
def _structure_tables(
    problem: PipelineProblem,
) -> tuple[
    list[int],
    list[int],
    list[int],
    list[list[int]],
    list[list[int]],
    list[int],
    list[int],
    list[list[int]],
]:
    """Pure-structure tables shared by every generation of ``problem``.

    Everything here depends only on the problem (not the policy or
    cost model), so it is memoized across generations like the cost
    memos in :func:`repro.sim.cost.op_cost_fns`.  Returns
    ``(stage_of_cell, stage_by_code, unmet0, f_blk, b_blk, sidx,
    sflat, pf0)``:

    * ``stage_of_cell`` / ``stage_by_code`` — home stage per cell/code;
    * ``unmet0`` — initial unmet-dependency count per code (edges never
      cross micro-batches, so the per-micro-batch pattern tiles);
    * ``f_blk`` / ``b_blk`` — mb=0 consumer codes of each F/B cell, in
      the dependency transpose's visit order;
    * ``sidx`` / ``sflat`` — the flattened successor table:
      ``sflat[sidx[code]:sidx[code+1]]`` are op ``code``'s consumer
      codes (F/B consumers shift per micro-batch by the cell-region
      offset, W consumers by the gemms-times-larger W-region offset);
    * ``pf0`` — per-stage, per-micro-batch cell counts (the initial
      pending-forward/backward counters).

    All returned lists are read-only to callers; the engine copies the
    ones it mutates.
    """
    n, s = problem.num_microbatches, problem.num_slices
    chunks = problem.num_chunks
    split = problem.split_backward
    gemms = problem.wgrad_gemms
    cells = n * s * chunks
    sc = s * chunks
    stage_of_chunk = problem._placement_tables[0]
    stage_of_cell = [stage_of_chunk[c] for c in range(chunks)] * (n * s)
    stage_by_code = stage_of_cell * 2
    if split:
        stage_by_code = stage_by_code + [
            st for st in stage_of_cell for _ in range(gemms)
        ]

    unmet0 = [
        int(b % chunks > 0) + int(b // chunks % s > 0) for b in range(sc)
    ] * n
    unmet0 += [
        1 + int(b % chunks < chunks - 1) + int(b // chunks % s < s - 1)
        for b in range(sc)
    ] * n
    if split:
        unmet0 += [1] * (cells * gemms)

    f_blk: list[list[int]] = []
    b_blk: list[list[int]] = []
    for b in range(sc):
        c = b % chunks
        sl = b // chunks
        fs: list[int] = []
        if c < chunks - 1:
            fs.append(b + 1)
        if sl < s - 1:
            fs.append(b + chunks)
        fs.append(cells + b)
        f_blk.append(fs)
        bs: list[int] = []
        if sl > 0:
            bs.append(cells + b - chunks)
        if c > 0:
            bs.append(cells + b - 1)
        if split:
            bs.extend(range(2 * cells + b * gemms, 2 * cells + (b + 1) * gemms))
        b_blk.append(bs)
    counts = [len(blk) for blk in f_blk] * n
    counts += [len(blk) for blk in b_blk] * n
    if split:
        counts += [0] * (cells * gemms)
    sidx = list(accumulate(counts, initial=0))

    import numpy as np

    offs = np.arange(n, dtype=np.int64)[:, None]
    dst0_f = np.asarray(
        [d for blk in f_blk for d in blk], dtype=np.int64
    ).reshape(1, -1)
    dst0_b = np.asarray(
        [d for blk in b_blk for d in blk], dtype=np.int64
    ).reshape(1, -1)
    shift_b = np.where(dst0_b >= 2 * cells, sc * gemms, sc)
    sflat: list[int] = np.concatenate(
        [
            (dst0_f + sc * offs).ravel(),
            (dst0_b + shift_b * offs).ravel(),
        ]
    ).tolist()

    pf0 = [[0] * n for _ in range(problem.num_stages)]
    for b, st in enumerate(stage_of_cell):
        pf0[st][b // sc] += 1

    return (
        stage_of_cell,
        stage_by_code,
        unmet0,
        f_blk,
        b_blk,
        sidx,
        sflat,
        pf0,
    )


def greedy_schedule(
    problem: PipelineProblem,
    policy: GreedyPolicy | None = None,
    cost: CostModel | None = None,
    name: str = "greedy",
) -> Schedule:
    """Generate a schedule with the greedy policy engine.

    ``cost`` provides the op durations the scheduler plans with; MEPipe
    uses its profiler's measurements here, and we default to the uniform
    model (the generated *order* is then re-timed by the executor with
    whatever cost model an experiment uses).

    If the fast cap-reservation rule wedges (possible for small ``f``
    with multiple chunk rounds), the generation is retried once with the
    strong reservation rule, which is deadlock-free.

    Generation is memoized in :mod:`repro.schedules.gencache`: two calls
    whose (problem, policy, name, cost *key tables*) coincide share one
    construction — safe because those inputs are everything the engine
    reads (see :func:`repro.sim.cost.cost_key_table_fingerprint`).
    """
    policy = policy or GreedyPolicy()
    from repro.schedules import gencache

    key = gencache.cache_key(problem, policy, name, cost)
    if key is not None:
        hit = gencache.get(key)
        if hit is not None:
            return hit
    schedule = _generate(problem, policy, cost, name)
    if key is not None:
        gencache.put(key, schedule)
    return schedule


def _generate(
    problem: PipelineProblem,
    policy: GreedyPolicy,
    cost: CostModel | None,
    name: str,
) -> Schedule:
    """One build with the automatic strong-reserve fallback."""
    try:
        return _greedy_once(problem, policy, cost, name)
    except ScheduleError as first_err:
        if policy.strong_reserve:
            raise
        try:
            return _greedy_once(
                problem, replace(policy, strong_reserve=True), cost, name
            )
        except ScheduleError as retry_err:
            # Keep the fast rule's deadlock witness in the chain: when
            # even the strong rule wedges, the first failure is usually
            # the diagnostic one.
            raise retry_err from first_err


class _DenseSchedule(Schedule):
    """A schedule emitted by the array engine.

    Carries the generator's dense tables (the per-stage canonical-code
    programs and the shared ``ops_by_code`` index) plus the compiled
    :class:`~repro.schedules.graph.ScheduleGraph`, pre-attached under
    the standard ``_graph_cache`` slot so the verifier and every
    evaluator get a compile-free cache hit.  The ``OpId``-based
    ``programs`` list is materialized on first access; until then the
    content fingerprint is served from the precomputed token (the
    object cannot have been mutated before anyone could reach its
    programs), after which :func:`repro.schedules.graph.fingerprint`
    recomputes it as usual so in-place mutation still invalidates.
    """

    def __init__(
        self,
        problem: PipelineProblem,
        name: str,
        build_ops: Callable[[], list[OpId]],
        stage_codes: list[list[int]],
        token: int,
        graph: ScheduleGraph,
    ) -> None:
        # No dataclass __init__: ``programs`` is a lazy property here.
        self.problem = problem
        self.name = name
        self._build_ops = build_ops
        self._stage_codes = stage_codes
        self._programs: list[StageProgram] | None = None
        self._dense_token = token
        self._graph_cache = (token, graph)

    @property
    def programs(self) -> list[StageProgram]:
        materialized = self._programs
        if materialized is None:
            ops = self._build_ops()
            materialized = [
                StageProgram(stage=st, ops=[ops[code] for code in codes])
                for st, codes in enumerate(self._stage_codes)
            ]
            self._programs = materialized
        return materialized

    @programs.setter
    def programs(self, value: list[StageProgram]) -> None:
        self._programs = value


def _greedy_once(
    problem: PipelineProblem,
    policy: GreedyPolicy,
    cost: CostModel | None,
    name: str,
) -> Schedule:
    """One generation attempt on the array-native engine.

    Byte-identical to :func:`repro.schedules.greedy_reference
    .greedy_reference` (the pre-rewrite dict engine): same program
    orders, same deadlock witnesses.  Equivalence rests on four facts,
    each exercised by the golden suite:

    * packed keys order exactly like the priority tuples, and are
      unique per op, so heap minima equal the reference's dict scans;
    * arrivals are final at publish time (an op is published only when
      its last predecessor commits), so the pending→ready transfer at
      ``arr <= now + ARRIVAL_EPS`` admits exactly the ops the
      reference's per-scan arrival filter admits;
    * the wake-event queue sees the same ``(time, counter, stage)``
      stream — one push per commit plus one per successor edge,
      W edges included — and its time-bucketed form (see the loop)
      drains in exactly the reference heap's (time, counter) order;
    * every float is produced by the same expression over the same
      memoized cost-table values (no reassociation).
    """
    from repro.sim.cost import UniformCost, op_cost_fns

    cost = cost or UniformCost(problem)
    # Memoized per-op-shape planning costs (identical values; see
    # op_cost_fns) — and, for micro-batch-invariant models, probed once
    # per shape and tiled across micro-batches below.
    dur_fn, comm_fn, _act_fn = op_cost_fns(cost)
    num_stages = problem.num_stages
    n = problem.num_microbatches
    s = problem.num_slices
    chunks = problem.num_chunks
    split = problem.split_backward
    gemms = problem.wgrad_gemms
    cells = n * s * chunks
    sc = s * chunks
    total = 2 * cells + (cells * gemms if split else 0)
    arrival_eps = ARRIVAL_EPS
    invariant = bool(getattr(cost, "microbatch_invariant", False))
    (
        stage_of_cell,
        stage_by_code,
        unmet0,
        f_blk,
        b_blk,
        sidx,
        sflat,
        pf0,
    ) = _structure_tables(problem)

    # Dense tables indexed by canonical op code (the compiled
    # ScheduleGraph's layout): F -> base, B -> cells + base,
    # W(g) -> 2*cells + base*gemms + g, with base=(mb*s+sl)*chunks+c.
    # The hot loop never touches OpId objects.  For micro-batch-
    # invariant cost models only the mb=0 probe blocks are built
    # eagerly (op_cost_fns drops the micro-batch from its memo keys, so
    # mb=0 probes return the exact floats any micro-batch would); the
    # full code -> OpId index is deferred until something materializes
    # programs, graph.ops, or a deadlock witness.
    ops_cache: list[OpId] | None = None

    def build_ops() -> list[OpId]:
        nonlocal ops_cache
        full = ops_cache
        if full is None:
            full = [
                OpId(OpKind.F, mb, sl, c)
                for mb in range(n)
                for sl in range(s)
                for c in range(chunks)
            ]
            full += [
                OpId(OpKind.B, mb, sl, c)
                for mb in range(n)
                for sl in range(s)
                for c in range(chunks)
            ]
            if split:
                full += [
                    OpId(OpKind.W, mb, sl, c, g)
                    for mb in range(n)
                    for sl in range(s)
                    for c in range(chunks)
                    for g in range(gemms)
                ]
            ops_cache = full
        return full

    if invariant:
        ops_f0 = [
            OpId(OpKind.F, 0, sl, c) for sl in range(s) for c in range(chunks)
        ]
        ops_b0 = [
            OpId(OpKind.B, 0, sl, c) for sl in range(s) for c in range(chunks)
        ]
        ops_w0 = (
            [
                OpId(OpKind.W, 0, sl, c, g)
                for sl in range(s)
                for c in range(chunks)
                for g in range(gemms)
            ]
            if split
            else []
        )
    else:
        # Per-micro-batch probes need every OpId anyway.
        full_ops = build_ops()
        ops_f0 = full_ops[:sc]
        ops_b0 = full_ops[cells : cells + sc]
        ops_w0 = full_ops[2 * cells : 2 * cells + sc * gemms] if split else []

    unmet = unmet0.copy()

    # Durations and per-edge comm times replicate per micro-batch for
    # micro-batch-invariant cost models: probe the mb=0 block once and
    # tile it.  Tiled floats are the exact memo values dur_fn/comm_fn
    # would return for any mb.
    if invariant:
        dur_by_code = [dur_fn(op) for op in ops_f0] * n
        dur_by_code += [dur_fn(op) for op in ops_b0] * n
        if split:
            dur_by_code += [dur_fn(op) for op in ops_w0] * n
    else:
        dur_by_code = [dur_fn(op) for op in full_ops]

    # Per-edge comm times, parallel to the structure tables' flattened
    # successor list ``sflat``.
    if invariant:

        def probe(code: int) -> OpId:
            # Probe-block lookup: every mb=0 edge endpoint by code.
            if code < cells:
                return ops_f0[code]
            if code < 2 * cells:
                return ops_b0[code - cells]
            return ops_w0[code - 2 * cells]

        comm0_f = [
            cm
            for b in range(sc)
            for cm in (comm_fn(ops_f0[b], probe(d)) for d in f_blk[b])
        ]
        comm0_b = [
            cm
            for b in range(sc)
            for cm in (comm_fn(ops_b0[b], probe(d)) for d in b_blk[b])
        ]
        scomm = comm0_f * n + comm0_b * n
    else:
        scomm = [
            comm_fn(full_ops[src], full_ops[dc])
            for src in range(2 * cells)
            for dc in sflat[sidx[src] : sidx[src + 1]]
        ]

    # Packed selection keys, one per cell (W ops are queue-ordered and
    # need none).  Read through the module-level builder tables so the
    # mutation tests can perturb them.
    fkeys = _PACKED_FORWARD_KEYS[policy.forward_priority](problem)
    bkeys = _PACKED_BACKWARD_KEYS[policy.backward_priority](problem)
    cap_eps = _CAP_EPS

    # Per-stage state, all indexed by stage.
    caps = [stage_cap(problem, policy, st) for st in range(num_stages)]
    cap_plus = [cap + cap_eps for cap in caps]
    wdefer = (
        policy.wgrad_defer_samples
        * problem.virtual_size
        * problem.num_slices
        * (1.0 + policy.wgrad_units)
    )
    allow_plus = [
        (policy.cap_slope * st + wdefer) + cap_eps for st in range(num_stages)
    ]
    w_add = 1.0 + policy.wgrad_units
    w_rel = (1.0 + policy.wgrad_units) / gemms
    fill_wgrad = policy.fill_with_wgrad
    strong = policy.strong_reserve

    free_at = [0.0] * num_stages
    live_f = [0.0] * num_stages
    deferred = [0.0] * num_stages
    last_f = [False] * num_stages  # last committed main op was an F
    programs: list[list[int]] = [[] for _ in range(num_stages)]
    wqs: list[list[int]] = [[] for _ in range(num_stages)]
    wq_head = [0] * num_stages  # popleft() as an index into wqs[st]
    pf_cnt = [row.copy() for row in pf0]
    pb_cnt = [row.copy() for row in pf0]
    front_f = [0] * num_stages
    front_b = [0] * num_stages

    # Ready structures.  Published-but-not-arrived ops wait in pend_*
    # heaps ordered by (arrival, packed entry); once the stage's clock
    # reaches an op's arrival it moves to the ready heaps, ordered by
    # packed entry alone (entry = key*total + code, so entry order is
    # key order and the code is recoverable).  minarr tracks every
    # published unrun F/B op's arrival for the gap-filling imminence
    # check; done[] marks committed ops so stale heap entries (an op
    # sits in both the global and the per-micro-batch forward heap) are
    # dropped lazily.
    pend_f: list[list[tuple[float, int]]] = [[] for _ in range(num_stages)]
    pend_b: list[list[tuple[float, int]]] = [[] for _ in range(num_stages)]
    ready_f: list[list[int]] = [[] for _ in range(num_stages)]
    ready_b: list[list[int]] = [[] for _ in range(num_stages)]
    ready_f_mb: list[list[list[int]]] = [
        [[] for _ in range(n)] for _ in range(num_stages)
    ]
    minarr: list[list[tuple[float, int]]] = [[] for _ in range(num_stages)]
    done = bytearray(total)
    arrival = [0.0] * total
    # Publish-order log per stage, for deadlock witnesses only: the
    # reference engine reports stuck ops in dict-insertion (= publish)
    # order, which the heaps do not preserve.
    pub_f: list[list[int]] = [[] for _ in range(num_stages)]
    pub_b: list[list[int]] = [[] for _ in range(num_stages)]

    heappush = heapq.heappush
    heappop = heapq.heappop

    # Only the F(mb, 0, 0) ops start with no dependencies.
    for mb in range(n):
        code = mb * sc
        st = stage_by_code[code]
        pend_f[st].append((0.0, fkeys[code] * total + code))
        minarr[st].append((0.0, code))
        pub_f[st].append(code)
    for st in range(num_stages):
        heapq.heapify(pend_f[st])
        heapq.heapify(minarr[st])

    # Wake-event queue.  The reference engine pops a heap of
    # (time, push-counter, stage) tuples; here same-time events are
    # coalesced into per-timestamp FIFO buckets under a heap of the
    # *distinct* timestamps.  Pushes happen in processing order, so each
    # bucket's list is already in push-counter order; a same-time push
    # made while its bucket is being drained opens a *fresh* bucket for
    # that timestamp (its entry was popped from ``buckets``), which the
    # times heap yields immediately after — again counter order.  The
    # drain order is therefore exactly the reference's (time, counter)
    # order, without a tuple allocation and three-way comparison per
    # event.  Relies on durations and comm times being non-negative
    # (wake times never precede ``now``), true of every cost model here.
    buckets: dict[float, list[int]] = {0.0: list(range(num_stages))}
    times: list[float] = [0.0]
    remaining = total

    while remaining:
        if not times:
            raise ScheduleError(
                "greedy deadlock; runnable-but-unscheduled: "
                f"{_stuck_witness(build_ops(), done, pub_f, pub_b, wqs, wq_head)}"
            )
        now = heappop(times)
        for stage in buckets.pop(now):
            if not remaining:
                break
            if now + arrival_eps < free_at[stage]:
                continue  # stage busy; its completion wake is queued
            # Move everything that arrived by now into the ready heaps.
            thresh = now + arrival_eps
            pend = pend_f[stage]
            if pend and pend[0][0] <= thresh:
                rf = ready_f[stage]
                rfm = ready_f_mb[stage]
                while pend and pend[0][0] <= thresh:
                    ent = heappop(pend)[1]
                    heappush(rf, ent)
                    heappush(rfm[ent % total // sc], ent)
            pend = pend_b[stage]
            if pend and pend[0][0] <= thresh:
                rb = ready_b[stage]
                while pend and pend[0][0] <= thresh:
                    heappush(rb, heappop(pend)[1])

            wq = wqs[stage]
            head = wq_head[stage]
            have_w = head < len(wq)
            code = -1
            if have_w and (
                not fill_wgrad or deferred[stage] > allow_plus[stage]
            ):
                # "W immediately after B" (the unoptimized Figure 11
                # behavior), or deferred weight gradients exceed this
                # stage's memory slack (~cap_slope*stage structural
                # slack plus the configured per-sample budget): retire
                # one before advancing the pipeline.
                code = wq[head]
                wq_head[stage] = head + 1
            else:
                # Steady state is one-forward-one-backward alternation,
                # the rhythm of every published interleaved schedule:
                # after an F prefer the next B, after a B refill the
                # freed slot with an F (the cap bounds the warm-up
                # depth).  Whichever kind is not ready yet falls back to
                # the other.
                want_b_first = last_f[stage]
                for _attempt in range(2):
                    if want_b_first:
                        rb = ready_b[stage]
                        if rb:
                            code = heappop(rb) % total
                            break
                    else:
                        # Forward admission under the cap.  The stage's
                        # next backward transitively needs every still-
                        # pending forward of the earliest unfinished
                        # micro-batch (the "front"); an F op may not eat
                        # the cap slots those forwards will need, or the
                        # pipeline wedges.  The strong rule protects the
                        # earliest micro-batch with pending *forwards*
                        # instead, which is strictly safer (see
                        # GreedyPolicy.strong_reserve).
                        rf = ready_f[stage]
                        while rf and done[rf[0] % total]:
                            heappop(rf)
                        if rf:
                            cnt = pf_cnt[stage] if strong else pb_cnt[stage]
                            fr = front_f[stage] if strong else front_b[stage]
                            while fr < n and cnt[fr] == 0:
                                fr += 1
                            if strong:
                                front_f[stage] = fr
                            else:
                                front_b[stage] = fr
                            needed = pf_cnt[stage][fr] if fr < n else 0
                            if (
                                not live_f[stage] + 1.0 + needed
                                > cap_plus[stage]
                            ):
                                code = heappop(rf) % total
                                break
                            if (
                                fr < n
                                and not live_f[stage] + 1.0 + (needed - 1)
                                > cap_plus[stage]
                            ):
                                rfm = ready_f_mb[stage][fr]
                                while rfm and done[rfm[0] % total]:
                                    heappop(rfm)
                                if rfm:
                                    code = heappop(rfm) % total
                                    break
                    want_b_first = not want_b_first
                if code < 0 and have_w:
                    # Gap filling (Section 5) — but only when no F/B is
                    # about to arrive within the GEMM's runtime,
                    # otherwise the non-preemptive W would push the
                    # critical path.
                    wcode = wq[head]
                    horizon = now + 0.5 * dur_by_code[wcode]
                    ma = minarr[stage]
                    while ma and done[ma[0][1]]:
                        heappop(ma)
                    if not (ma and ma[0][0] <= horizon):
                        code = wcode
                        wq_head[stage] = head + 1
            if code < 0:
                continue

            # Commit.
            free = free_at[stage]
            start = now if now > free else free
            end = start + dur_by_code[code]
            free_at[stage] = end
            programs[stage].append(code)
            remaining -= 1
            if code < cells:
                done[code] = 1
                live_f[stage] += 1.0
                pf_cnt[stage][code // sc] -= 1
                last_f[stage] = True
            elif code < 2 * cells:
                done[code] = 1
                live_f[stage] -= 1.0
                b = code - cells
                pb_cnt[stage][b // sc] -= 1
                last_f[stage] = False
                if split:
                    w0 = 2 * cells + b * gemms
                    wq.extend(range(w0, w0 + gemms))
                    deferred[stage] += w_add
            else:
                deferred[stage] -= w_rel
            last_b = buckets.get(end)
            if last_b is None:
                last_b = buckets[end] = [stage]
                heappush(times, end)
            else:
                last_b.append(stage)
            last_t = end
            lo = sidx[code]
            hi = sidx[code + 1]
            for dc, cm in zip(sflat[lo:hi], scomm[lo:hi]):
                when = end + cm
                if when > arrival[dc]:
                    arrival[dc] = when
                u = unmet[dc] - 1
                unmet[dc] = u
                dst = stage_by_code[dc]
                if u == 0 and dc < 2 * cells:
                    # Publish: the arrival is final here (this was the
                    # last predecessor), so the pend heaps order
                    # correctly.
                    arr = arrival[dc]
                    if dc < cells:
                        heappush(pend_f[dst], (arr, fkeys[dc] * total + dc))
                        pub_f[dst].append(dc)
                    else:
                        heappush(
                            pend_b[dst], (arr, bkeys[dc - cells] * total + dc)
                        )
                        pub_b[dst].append(dc)
                    heappush(minarr[dst], (arr, dc))
                # Wake the consumer's stage at the arrival moment (most
                # edges are same-stage zero-comm, so the commit wake's
                # bucket is cached and re-used).
                if when == last_t:
                    last_b.append(dst)
                else:
                    bkt = buckets.get(when)
                    if bkt is None:
                        bkt = buckets[when] = [dst]
                        heappush(times, when)
                    else:
                        bkt.append(dst)
                    last_t = when
                    last_b = bkt

    # Content fingerprint from the memoized per-code op hashes (equal
    # to hashing the materialized programs' OpIds, see _op_hashes).
    hashes = _op_hashes(n, s, chunks, split, gemms)
    token = hash(
        tuple(
            (st, tuple(map(hashes.__getitem__, codes)))
            for st, codes in enumerate(programs)
        )
    )

    def ops_dense() -> tuple[OpId, ...]:
        ops = build_ops()
        return tuple(ops[code] for codes in programs for code in codes)

    graph = graph_from_codes(problem, programs, token, ops_dense)
    return _DenseSchedule(problem, name, build_ops, programs, token, graph)


def _stuck_witness(
    ops_by_code: list[OpId],
    done: bytearray,
    pub_f: list[list[int]],
    pub_b: list[list[int]],
    wqs: list[list[int]],
    wq_head: list[int],
) -> list[str]:
    """Runnable-but-unscheduled ops in the reference engine's order:
    per stage, available forwards then backwards in publish order, then
    the deferred W queue."""
    stuck: list[str] = []
    for st in range(len(pub_f)):
        for code in pub_f[st]:
            if not done[code]:
                stuck.append(str(ops_by_code[code]))
        for code in pub_b[st]:
            if not done[code]:
                stuck.append(str(ops_by_code[code]))
        stuck.extend(str(ops_by_code[code]) for code in wqs[st][wq_head[st]:])
    return stuck[:8]
