"""Core data model for pipeline schedules.

Every scheduling method in this library — the baselines (GPipe, DAPPLE,
VPP, Hanayo, TeraPipe, zero-bubble) and MEPipe's SVPP — produces the
same artifact: an ordered list of typed operations per pipeline stage
over a shared dependency graph.  The simulator, the memory ledger, the
NumPy pipeline runtime, and the visualizer all consume this one
representation.

The dependency structure (Section 4.1 of the paper) is:

* ``F(mb, sl, c)`` — forward of slice ``sl`` of micro-batch ``mb`` on
  model chunk ``c`` — needs the previous chunk's output
  ``F(mb, sl, c-1)`` and, because causal attention consumes the keys and
  values of every preceding slice, ``F(mb, sl-1, c)``.
* ``B(mb, sl, c)`` — backward (activation gradients when the backward
  pass is split) — needs ``B(mb, sl, c+1)``, the later slice's backward
  ``B(mb, sl+1, c)`` (dK/dV contributions flow backward from later
  slices), and its own forward ``F(mb, sl, c)``.
* ``W(mb, sl, c, g)`` — weight-gradient GEMM ``g`` — needs only
  ``B(mb, sl, c)`` and can be deferred arbitrarily (Section 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator


class OpKind(enum.Enum):
    """Type of a pipeline operation."""

    F = "F"  #: forward pass of one slice on one chunk
    B = "B"  #: backward pass (activation gradients if split)
    W = "W"  #: weight-gradient computation (whole or one GEMM)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OpId:
    """Identity of one schedulable operation.

    Attributes:
        kind: F, B, or W.
        microbatch: Micro-batch index in ``[0, n)``.
        slice_idx: Slice index within the sample, ``[0, s)``.
        chunk: Global model-chunk index in ``[0, v*p)``; chunk 0 holds
            the first layers, chunk ``v*p - 1`` the head.
        gemm: For ``W`` ops with fine-grained decomposition, the GEMM
            index within the chunk; ``-1`` for a monolithic W op.
    """

    kind: OpKind
    microbatch: int
    slice_idx: int
    chunk: int
    gemm: int = -1
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        # OpIds key every dict in the verifier, simulator, and greedy
        # generator; the dataclass-generated hash re-hashes the OpKind
        # enum on each probe, which profiles as the single hottest call
        # in a planner sweep.  Freeze the hash at construction instead.
        object.__setattr__(
            self,
            "_hash",
            hash((self.kind.value, self.microbatch, self.slice_idx, self.chunk, self.gemm)),
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        tag = f"{self.kind.value}{self.microbatch}.{self.slice_idx}c{self.chunk}"
        if self.gemm >= 0:
            tag += f"g{self.gemm}"
        return tag

    def sort_key(self) -> tuple[str, int, int, int, int]:
        """Deterministic total order for reporting and diffing."""
        return (self.kind.value, self.microbatch, self.slice_idx, self.chunk, self.gemm)

    def __lt__(self, other: "OpId") -> bool:
        return self.sort_key() < other.sort_key()


@dataclass(frozen=True)
class PipelineProblem:
    """The static description one iteration of pipelined training.

    Attributes:
        num_stages: Pipeline-parallel size ``p``.
        num_microbatches: Micro-batches ``n`` per iteration.
        num_slices: Sequence-pipeline size ``s`` (slices per sample).
        virtual_size: Virtual-pipeline size ``v`` (chunks per stage).
        split_backward: Whether backward is split into B (activation
            grads) and W (weight grads) ops, as in zero-bubble / MEPipe.
        wgrad_gemms: Number of W GEMM fragments per (slice, chunk) when
            ``split_backward``; 1 keeps W monolithic, larger values are
            MEPipe's fine-grained decomposition (Section 5).
        chunk_placement: ``"interleaved"`` assigns chunk ``c`` to stage
            ``c % p`` (Megatron VPP and SVPP); ``"vshape"`` alternates
            direction each round (Hanayo / ZBV style).
    """

    num_stages: int
    num_microbatches: int
    num_slices: int = 1
    virtual_size: int = 1
    split_backward: bool = False
    wgrad_gemms: int = 1
    chunk_placement: str = "interleaved"

    def __post_init__(self) -> None:
        if self.num_stages < 1 or self.num_microbatches < 1:
            raise ValueError("num_stages and num_microbatches must be >= 1")
        if self.num_slices < 1 or self.virtual_size < 1:
            raise ValueError("num_slices and virtual_size must be >= 1")
        if self.wgrad_gemms < 1:
            raise ValueError("wgrad_gemms must be >= 1")
        if not self.split_backward and self.wgrad_gemms != 1:
            raise ValueError("wgrad_gemms > 1 requires split_backward")
        if self.chunk_placement not in ("interleaved", "vshape"):
            raise ValueError(f"unknown chunk placement {self.chunk_placement!r}")

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    @property
    def num_chunks(self) -> int:
        """Total model chunks ``v * p``."""
        return self.num_stages * self.virtual_size

    @cached_property
    def _placement_tables(self) -> tuple[tuple[int, ...], tuple[tuple[int, ...], ...]]:
        """``(stage_of_chunk, chunks_of_stage)`` computed once per problem.

        ``cached_property`` writes straight into the instance ``__dict__``
        so it composes with the frozen dataclass (no ``__setattr__``).
        """
        p = self.num_stages
        vshape = self.chunk_placement == "vshape"
        stage_of: list[int] = []
        chunks_of: list[list[int]] = [[] for _ in range(p)]
        for c in range(self.num_chunks):
            pos, rnd = c % p, c // p
            st = p - 1 - pos if vshape and rnd % 2 == 1 else pos
            stage_of.append(st)
            chunks_of[st].append(c)
        return tuple(stage_of), tuple(tuple(cs) for cs in chunks_of)

    def stage_of_chunk(self, chunk: int) -> int:
        """Pipeline stage hosting a model chunk."""
        if not 0 <= chunk < self.num_chunks:
            raise ValueError(f"chunk {chunk} out of range")
        return self._placement_tables[0][chunk]

    def chunks_of_stage(self, stage: int) -> list[int]:
        """Model chunks hosted by ``stage``, in ascending depth order."""
        return list(self._placement_tables[1][stage])

    @property
    def activation_units_per_op(self) -> float:
        """Activation share of one F op, as a fraction of ``A``.

        One F op covers ``1/v/p`` of the layers for ``1/s`` of the
        sample's tokens — the denominators of Section 4.1's arithmetic.
        """
        return 1.0 / (self.num_chunks * self.num_slices)

    # ------------------------------------------------------------------
    # Op enumeration and dependencies
    # ------------------------------------------------------------------
    def forward_ops(self) -> Iterator[OpId]:
        """All F ops, unordered semantics (iteration is deterministic)."""
        for mb in range(self.num_microbatches):
            for sl in range(self.num_slices):
                for c in range(self.num_chunks):
                    yield OpId(OpKind.F, mb, sl, c)

    def backward_ops(self) -> Iterator[OpId]:
        """All B ops."""
        for mb in range(self.num_microbatches):
            for sl in range(self.num_slices):
                for c in range(self.num_chunks):
                    yield OpId(OpKind.B, mb, sl, c)

    def wgrad_ops(self) -> Iterator[OpId]:
        """All W ops (empty unless the backward pass is split)."""
        if not self.split_backward:
            return
        for mb in range(self.num_microbatches):
            for sl in range(self.num_slices):
                for c in range(self.num_chunks):
                    for g in range(self.wgrad_gemms):
                        yield OpId(OpKind.W, mb, sl, c, g)

    def all_ops(self) -> list[OpId]:
        """Every op of one iteration."""
        return [*self.forward_ops(), *self.backward_ops(), *self.wgrad_ops()]

    def stage_of(self, op: OpId) -> int:
        """Stage that executes ``op``."""
        return self.stage_of_chunk(op.chunk)

    def deps(self, op: OpId) -> list[OpId]:
        """Direct dependencies of ``op`` (see module docstring)."""
        mb, sl, c = op.microbatch, op.slice_idx, op.chunk
        out: list[OpId] = []
        if op.kind is OpKind.F:
            if c > 0:
                out.append(OpId(OpKind.F, mb, sl, c - 1))
            if sl > 0:
                out.append(OpId(OpKind.F, mb, sl - 1, c))
        elif op.kind is OpKind.B:
            out.append(OpId(OpKind.F, mb, sl, c))
            if c < self.num_chunks - 1:
                out.append(OpId(OpKind.B, mb, sl, c + 1))
            if sl < self.num_slices - 1:
                out.append(OpId(OpKind.B, mb, sl + 1, c))
        else:
            out.append(OpId(OpKind.B, mb, sl, c))
        return out

    def is_cross_stage(self, dep: OpId, op: OpId) -> bool:
        """Whether satisfying ``dep -> op`` requires a stage-to-stage send."""
        return self.stage_of(dep) != self.stage_of(op)

    def first_backward_chunk(self) -> int:
        """The chunk on which each sample's first backward runs."""
        return self.num_chunks - 1


@dataclass
class StageProgram:
    """The ordered op list one stage executes."""

    stage: int
    ops: list[OpId] = field(default_factory=list)


@dataclass
class Schedule:
    """A complete schedule: one ordered program per stage.

    Invariants (checked by :func:`validate_schedule`): each op appears
    exactly once, on the stage that hosts its chunk, and the per-stage
    orders are consistent with the dependency graph (no deadlock).
    """

    problem: PipelineProblem
    programs: list[StageProgram]
    name: str = "unnamed"

    def stage_ops(self, stage: int) -> list[OpId]:
        """Ordered ops of ``stage``."""
        return self.programs[stage].ops

    def op_count(self) -> int:
        """Total ops across all stages."""
        return sum(len(pr.ops) for pr in self.programs)


class ScheduleError(Exception):
    """A schedule violates placement, completeness, or dependency rules."""


def validate_schedule(schedule: Schedule) -> None:
    """Raise :class:`ScheduleError` if the schedule is malformed.

    Checks op placement, exact coverage of the problem's op set, and
    that the per-stage orders admit a deadlock-free execution.

    Thin wrapper over the safety tier of
    :func:`repro.schedules.verify.ensure_verified` — a Kahn ready-queue
    pass (O(V+E), where the original token-passing loop was O(V^2))
    whose deadlock reports carry the per-stage blocked head positions
    and a minimal blocking-cycle witness.  The richer channel-order and
    liveness analyses live in :mod:`repro.schedules.verify`.
    """
    from repro.schedules.verify import ensure_verified

    ensure_verified(schedule)
