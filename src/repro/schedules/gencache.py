"""Process-wide memoization of greedy schedule generation.

Planner sweeps rebuild the same schedule many times: every
``(method, f)`` variant is generated once per sweep *per cost model*,
but distinct sweep configs frequently share the exact cost **key
tables** — the per-(slice, chunk) durations and per-edge comm times
that are everything the generator reads from a cost model (see
:func:`repro.sim.cost.cost_key_table_fingerprint`).  Two calls with
equal ``(problem, policy, name, key tables)`` are the same
deterministic computation, so they may share one construction.

The cache is a small process-wide LRU.  Worker processes of a planner
pool each hold their own (the parent merges their hit counters back
onto the telemetry bus, see ``repro.planner.parallel``).  Cached
:class:`~repro.schedules.base.Schedule` objects are shared between
callers — the same aliasing contract as the planner's per-process
``_cached_schedule`` memo, which sits above this cache.

Safety argument for the key: the greedy engine's output is a pure
function of (a) the problem structure, (b) the policy knobs, and
(c) the duration/comm values it probes, which for micro-batch-invariant
cost models are exactly the key tables fingerprinted above.  Cost
models that are *not* micro-batch-invariant decline a fingerprint
(``cost_key_table_fingerprint`` returns ``None``) and bypass the cache
entirely — no aliasing is possible.  ``GENERATOR_VERSION`` is folded
into the planner's on-disk ``SweepCache`` fingerprints so persisted
sweep results also invalidate when the generator changes.

Disable with ``REPRO_GEN_CACHE=0`` (or :func:`set_enabled`).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from repro.schedules.base import PipelineProblem, Schedule

if TYPE_CHECKING:  # circular with greedy (which consults this cache)
    from repro.schedules.greedy import GreedyPolicy
    from repro.sim.cost import CostModel

#: Version tag of the greedy generation engine.  Bump whenever the
#: engine's output could change for the same inputs; the planner folds
#: it into SweepCache eval fingerprints.
GENERATOR_VERSION = "greedy-dense-1"

#: LRU capacity.  One planner sweep touches a handful of (method, f)
#: variants per problem; 128 comfortably covers the figure grids while
#: bounding residency of the largest 13B schedules.
_MAXSIZE = 128

_lock = threading.Lock()
_store: OrderedDict[Hashable, Schedule] = OrderedDict()
_hits = 0
_misses = 0
_enabled: bool | None = None  # None -> consult the env on first use


def enabled() -> bool:
    """Whether generation caching is on (env knob ``REPRO_GEN_CACHE``)."""
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get("REPRO_GEN_CACHE", "1").lower() not in (
            "0",
            "false",
            "off",
        )
    return _enabled


def set_enabled(value: bool | None) -> None:
    """Force caching on/off; ``None`` re-reads the environment."""
    global _enabled
    _enabled = value


def cache_key(
    problem: PipelineProblem,
    policy: GreedyPolicy,
    name: str,
    cost: CostModel | None,
) -> Hashable | None:
    """Cache key for one generation, or ``None`` if uncacheable.

    ``None`` means the cache must be bypassed: caching is disabled, or
    the cost model declined a key-table fingerprint (it is not
    micro-batch-invariant, so its per-op values cannot be summarized
    by the tables the generator reads).
    """
    if not enabled():
        return None
    from repro.sim.cost import UniformCost, cost_key_table_fingerprint

    cost = cost or UniformCost(problem)
    tables = cost_key_table_fingerprint(problem, cost)
    if tables is None:
        return None
    return (problem, policy, name, tables)


def get(key: Hashable) -> Schedule | None:
    """Look up a prior construction; counts a hit or a miss."""
    global _hits, _misses
    with _lock:
        schedule = _store.get(key)
        if schedule is None:
            _misses += 1
            return None
        _store.move_to_end(key)
        _hits += 1
        return schedule


def put(key: Hashable, schedule: Schedule) -> None:
    """Store a construction, evicting the least recently used."""
    with _lock:
        _store[key] = schedule
        _store.move_to_end(key)
        while len(_store) > _MAXSIZE:
            _store.popitem(last=False)


def stats() -> dict[str, int]:
    """Current counters: hits, misses, size."""
    with _lock:
        return {"hits": _hits, "misses": _misses, "size": len(_store)}


def snapshot() -> tuple[int, int]:
    """``(hits, misses)`` — cheap deltas for per-task accounting."""
    with _lock:
        return _hits, _misses


def record_remote(hits: int, misses: int) -> None:
    """Fold hit/miss counts observed in a worker process into this
    process's counters (the pool workers each hold their own store)."""
    global _hits, _misses
    with _lock:
        _hits += hits
        _misses += misses


def clear() -> None:
    """Drop all entries and counters (tests)."""
    global _hits, _misses
    with _lock:
        _store.clear()
        _hits = 0
        _misses = 0
