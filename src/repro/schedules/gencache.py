"""Process-wide memoization of greedy schedule generation.

Planner sweeps rebuild the same schedule many times: every
``(method, f)`` variant is generated once per sweep *per cost model*,
but distinct sweep configs frequently share the exact cost **key
tables** — the per-(slice, chunk) durations and per-edge comm times
that are everything the generator reads from a cost model (see
:func:`repro.sim.cost.cost_key_table_fingerprint`).  Two calls with
equal ``(problem, policy, name, key tables)`` are the same
deterministic computation, so they may share one construction.

The cache is a small process-wide LRU.  Worker processes of a planner
pool each hold their own (the parent merges their hit counters back
onto the telemetry bus, see ``repro.planner.parallel``).  Cached
:class:`~repro.schedules.base.Schedule` objects are shared between
callers — the same aliasing contract as the planner's per-process
``_cached_schedule`` memo, which sits above this cache.

Safety argument for the key: the greedy engine's output is a pure
function of (a) the problem structure, (b) the policy knobs, and
(c) the duration/comm values it probes, which for micro-batch-invariant
cost models are exactly the key tables fingerprinted above.  Cost
models that are *not* micro-batch-invariant decline a fingerprint
(``cost_key_table_fingerprint`` returns ``None``) and bypass the cache
entirely — no aliasing is possible.  ``GENERATOR_VERSION`` is folded
into the planner's on-disk ``SweepCache`` fingerprints so persisted
sweep results also invalidate when the generator changes.

Disable with ``REPRO_GEN_CACHE=0`` (or :func:`set_enabled`).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from repro.schedules.base import PipelineProblem, Schedule

if TYPE_CHECKING:  # circular with greedy (which consults this cache)
    from repro.schedules.greedy import GreedyPolicy
    from repro.sim.cost import CostModel

#: Version tag of the greedy generation engine.  Bump whenever the
#: engine's output could change for the same inputs; the planner folds
#: it into SweepCache eval fingerprints.
GENERATOR_VERSION = "greedy-dense-1"

#: LRU capacity.  One planner sweep touches a handful of (method, f)
#: variants per problem; 128 comfortably covers the figure grids while
#: bounding residency of the largest 13B schedules.
_MAXSIZE = 128

#: Capacity of the structure-level store.  A structure entry (a
#: topological plan plus batch gather tables) is far smaller than a
#: schedule, and distinct structures are far rarer than distinct cost
#: tables, so a modest LRU covers whole figure grids.
_STRUCTURE_MAXSIZE = 64

_lock = threading.Lock()
_store: OrderedDict[Hashable, Schedule] = OrderedDict()
_hits = 0
_misses = 0
_structures: OrderedDict[Hashable, object] = OrderedDict()
_structure_hits = 0
_structure_misses = 0
_enabled: bool | None = None  # None -> consult the env on first use


def enabled() -> bool:
    """Whether generation caching is on (env knob ``REPRO_GEN_CACHE``)."""
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get("REPRO_GEN_CACHE", "1").lower() not in (
            "0",
            "false",
            "off",
        )
    return _enabled


def set_enabled(value: bool | None) -> None:
    """Force caching on/off; ``None`` re-reads the environment."""
    global _enabled
    _enabled = value


def cache_key(
    problem: PipelineProblem,
    policy: GreedyPolicy,
    name: str,
    cost: CostModel | None,
) -> Hashable | None:
    """Cache key for one generation, or ``None`` if uncacheable.

    ``None`` means the cache must be bypassed: caching is disabled, or
    the cost model declined a key-table fingerprint (it is not
    micro-batch-invariant, so its per-op values cannot be summarized
    by the tables the generator reads).
    """
    if not enabled():
        return None
    from repro.sim.cost import UniformCost, cost_key_table_fingerprint

    cost = cost or UniformCost(problem)
    tables = cost_key_table_fingerprint(problem, cost)
    if tables is None:
        return None
    return (problem, policy, name, tables)


def get(key: Hashable) -> Schedule | None:
    """Look up a prior construction; counts a hit or a miss."""
    global _hits, _misses
    with _lock:
        schedule = _store.get(key)
        if schedule is None:
            _misses += 1
            return None
        _store.move_to_end(key)
        _hits += 1
        return schedule


def put(key: Hashable, schedule: Schedule) -> None:
    """Store a construction, evicting the least recently used."""
    with _lock:
        _store[key] = schedule
        _store.move_to_end(key)
        while len(_store) > _MAXSIZE:
            _store.popitem(last=False)


def structure_key(
    problem: PipelineProblem,
    policy: GreedyPolicy,
    name: str,
) -> Hashable | None:
    """Structure-level cache key: :func:`cache_key` minus the cost tables.

    Every generation whose full keys agree on this prefix produces a
    schedule over the same problem under the same policy — candidates
    for one *topology class* whose compiled structures the planner
    verifies (exactly, via
    :meth:`repro.schedules.graph.ScheduleGraph.structure_key`) before
    sharing a topological plan between them.  ``None`` when caching is
    disabled, mirroring :func:`cache_key`.
    """
    if not enabled():
        return None
    return (problem, policy, name)


def get_structure(key: Hashable) -> object | None:
    """Look up a structure-derived artifact (plan, batch tables).

    The structure store shares compiled-topology artifacts *across*
    graphs whose :meth:`~repro.schedules.graph.ScheduleGraph
    .structure_key` agree — distinct cost tables, one topology.  Hits
    count as topology-class hits on the planner's telemetry.
    """
    global _structure_hits, _structure_misses
    with _lock:
        value = _structures.get(key)
        if value is None:
            _structure_misses += 1
            return None
        _structures.move_to_end(key)
        _structure_hits += 1
        return value


def put_structure(key: Hashable, value: object) -> None:
    """Store a structure-derived artifact, evicting the LRU entry."""
    with _lock:
        _structures[key] = value
        _structures.move_to_end(key)
        while len(_structures) > _STRUCTURE_MAXSIZE:
            _structures.popitem(last=False)


def structure_stats() -> dict[str, int]:
    """Structure-store counters: hits, misses, size."""
    with _lock:
        return {
            "hits": _structure_hits,
            "misses": _structure_misses,
            "size": len(_structures),
        }


def stats() -> dict[str, int]:
    """Current counters: hits, misses, size."""
    with _lock:
        return {"hits": _hits, "misses": _misses, "size": len(_store)}


def snapshot() -> tuple[int, int]:
    """``(hits, misses)`` — cheap deltas for per-task accounting."""
    with _lock:
        return _hits, _misses


def record_remote(hits: int, misses: int) -> None:
    """Fold hit/miss counts observed in a worker process into this
    process's counters (the pool workers each hold their own store)."""
    global _hits, _misses
    with _lock:
        _hits += hits
        _misses += misses


def record_remote_structure(hits: int, misses: int) -> None:
    """Fold a worker process's structure-store counters into ours."""
    global _structure_hits, _structure_misses
    with _lock:
        _structure_hits += hits
        _structure_misses += misses


def structure_snapshot() -> tuple[int, int]:
    """``(hits, misses)`` of the structure store, for per-task deltas."""
    with _lock:
        return _structure_hits, _structure_misses


def clear() -> None:
    """Drop all entries and counters (tests)."""
    global _hits, _misses, _structure_hits, _structure_misses
    with _lock:
        _store.clear()
        _hits = 0
        _misses = 0
        _structures.clear()
        _structure_hits = 0
        _structure_misses = 0
