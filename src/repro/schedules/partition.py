"""Slice partitioning strategies: uniform vs TeraPipe's non-uniform DP.

Section 5 discusses two ways to cut a sample into slices:

* **Uniform slices** (MEPipe): equal token counts, so every GEMM and
  FlashAttention call keeps power-of-two-friendly shapes; the residual
  compute imbalance from causal attention is absorbed by fine-grained
  weight-gradient scheduling.
* **Non-uniform slices** (TeraPipe): a dynamic program picks slice
  boundaries that equalize per-slice *compute time* — later slices get
  fewer tokens because they attend to more keys.  This trades kernel
  efficiency (irregular shapes) for balance, and the paper argues it
  only wins once attention dominates (contexts beyond ~128k tokens).

This module implements both, including the DP, so the trade-off can be
measured (see ``repro.experiments.partitioning``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.hardware.efficiency import DEFAULT_EFFICIENCY, EfficiencyModel
from repro.model.flops import attention_score_flops, gemm_forward_flops_per_token
from repro.model.spec import ModelSpec


@dataclass(frozen=True)
class SlicePlan:
    """A partitioning of one sample into contiguous slices.

    Attributes:
        boundaries: Token index where each slice starts, plus the
            sequence length as the final sentinel; ``len(boundaries) ==
            num_slices + 1``.
    """

    boundaries: tuple[int, ...]

    @property
    def num_slices(self) -> int:
        return len(self.boundaries) - 1

    def slice_tokens(self, index: int) -> int:
        """Token count of one slice."""
        return self.boundaries[index + 1] - self.boundaries[index]

    def slice_offset(self, index: int) -> int:
        """Context offset of one slice."""
        return self.boundaries[index]

    def sizes(self) -> list[int]:
        """All slice token counts."""
        return [self.slice_tokens(i) for i in range(self.num_slices)]


def uniform_plan(seq_length: int, num_slices: int) -> SlicePlan:
    """Equal-size slices (MEPipe's choice)."""
    if seq_length % num_slices != 0:
        raise ValueError(
            f"sequence {seq_length} not divisible into {num_slices} slices")
    step = seq_length // num_slices
    return SlicePlan(tuple(i * step for i in range(num_slices)) + (seq_length,))


def slice_forward_seconds(
    spec: ModelSpec,
    tokens: int,
    offset: int,
    effective_tflops: float = 165.0,
    eff: EfficiencyModel = DEFAULT_EFFICIENCY,
    irregular_penalty: float = 1.0,
) -> float:
    """Per-layer forward time of a slice, with a kernel-shape penalty.

    ``irregular_penalty > 1`` models the degraded GEMM/FlashAttention
    throughput of non-power-of-two shapes (Section 5: "operators ...
    exhibit optimal performance when the input dimensions are the
    powers of 2").
    """
    if tokens <= 0:
        return 0.0
    gemm = gemm_forward_flops_per_token(spec) * tokens
    attn = attention_score_flops(spec, tokens, offset)
    peak = effective_tflops * 1e12
    t = gemm / (peak * eff.gemm(tokens)) + attn / (peak * eff.attention(tokens))
    return t * irregular_penalty


def _is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def shape_penalty(tokens: int, penalty: float = 1.08) -> float:
    """Kernel penalty for a slice whose token count is not 2^k."""
    return 1.0 if _is_power_of_two(tokens) else penalty


def balanced_plan(
    spec: ModelSpec,
    num_slices: int,
    granularity: int = 128,
    effective_tflops: float = 165.0,
    eff: EfficiencyModel = DEFAULT_EFFICIENCY,
    irregular_penalty: float = 1.08,
) -> SlicePlan:
    """TeraPipe's DP: minimize the maximum per-slice forward time.

    Token boundaries are restricted to multiples of ``granularity``
    (tensor cores need *some* alignment even in TeraPipe).  The DP is
    the classic min-max linear partition: ``best[k][j]`` = minimal
    achievable bottleneck time cutting the first ``j`` blocks into
    ``k`` slices.
    """
    seq = spec.seq_length
    if seq % granularity != 0:
        raise ValueError("sequence not divisible by granularity")
    blocks = seq // granularity
    if num_slices > blocks:
        raise ValueError("more slices than granularity blocks")

    @lru_cache(maxsize=None)
    def segment_time(start_block: int, end_block: int) -> float:
        tokens = (end_block - start_block) * granularity
        offset = start_block * granularity
        return slice_forward_seconds(
            spec, tokens, offset, effective_tflops, eff,
            irregular_penalty=shape_penalty(tokens, irregular_penalty),
        )

    inf = float("inf")
    best = [[inf] * (blocks + 1) for _ in range(num_slices + 1)]
    cut = [[0] * (blocks + 1) for _ in range(num_slices + 1)]
    best[0][0] = 0.0
    for k in range(1, num_slices + 1):
        for j in range(k, blocks + 1):
            for i in range(k - 1, j):
                if best[k - 1][i] == inf:
                    continue
                bottleneck = max(best[k - 1][i], segment_time(i, j))
                if bottleneck < best[k][j]:
                    best[k][j] = bottleneck
                    cut[k][j] = i
    bounds = [blocks]
    j = blocks
    for k in range(num_slices, 0, -1):
        j = cut[k][j]
        bounds.append(j)
    bounds.reverse()
    return SlicePlan(tuple(b * granularity for b in bounds))


@dataclass(frozen=True)
class PlanComparison:
    """Bottleneck forward times of the two partitioning strategies."""

    uniform_bottleneck: float
    balanced_bottleneck: float
    uniform_sizes: tuple[int, ...]
    balanced_sizes: tuple[int, ...]

    @property
    def balanced_wins(self) -> bool:
        return self.balanced_bottleneck < self.uniform_bottleneck


def compare_plans(
    spec: ModelSpec,
    num_slices: int,
    granularity: int = 128,
    irregular_penalty: float = 1.08,
) -> PlanComparison:
    """Bottleneck slice time of uniform vs DP-balanced partitioning.

    In a slice pipeline the steady-state period is set by the slowest
    slice, so the bottleneck time is the figure of merit.  Uniform
    power-of-two slices pay imbalance; balanced slices pay the
    irregular-shape penalty.  The paper's claim: below ~128k context
    the imbalance is small enough that uniform wins.
    """
    uni = uniform_plan(spec.seq_length, num_slices)
    bal = balanced_plan(spec, num_slices, granularity,
                        irregular_penalty=irregular_penalty)

    def bottleneck(plan: SlicePlan) -> float:
        return max(
            slice_forward_seconds(
                spec,
                plan.slice_tokens(i),
                plan.slice_offset(i),
                irregular_penalty=shape_penalty(plan.slice_tokens(i),
                                                irregular_penalty),
            )
            for i in range(plan.num_slices)
        )

    return PlanComparison(
        uniform_bottleneck=bottleneck(uni),
        balanced_bottleneck=bottleneck(bal),
        uniform_sizes=tuple(uni.sizes()),
        balanced_sizes=tuple(bal.sizes()),
    )
