"""Megatron-LM-v2 interleaved virtual pipeline parallelism (VPP).

The model is cut into ``v * p`` chunks; stage ``k`` hosts chunks
``k, k+p, ..., k+(v-1)p``.  Micro-batches are processed in groups of
``p``: each group runs through chunk round 0 on all stages, then round
1, and so on.  The published algorithm (Narayanan et al., SC'21)
prescribes the warm-up length ``min((p - k - 1) * 2 + (v - 1) * p,
n*v)`` and the steady one-forward-one-backward alternation reproduced
here.
"""

from __future__ import annotations

from repro.schedules.base import (
    OpId,
    OpKind,
    PipelineProblem,
    Schedule,
    ScheduleError,
    StageProgram,
)


def _step_to_op(
    problem: PipelineProblem, stage: int, step: int, backward: bool
) -> OpId:
    """Map the i-th virtual micro-batch step of a stage to an op.

    Forward steps walk (group of ``p`` micro-batches) x (chunk rounds);
    backward steps walk the same pattern with chunk rounds reversed.
    """
    p, v = problem.num_stages, problem.virtual_size
    group, within = divmod(step, p * v)
    rnd, mb_in_group = divmod(within, p)
    if backward:
        rnd = v - 1 - rnd
    microbatch = group * p + mb_in_group
    chunk = rnd * p + stage
    kind = OpKind.B if backward else OpKind.F
    return OpId(kind, microbatch, 0, chunk)


def vpp_schedule(problem: PipelineProblem) -> Schedule:
    """Interleaved 1F1B over ``v`` chunks per stage.

    Requires ``n % p == 0`` (as Megatron-LM does) and whole-sample
    micro-batches (``s == 1``).  The bubble ratio shrinks to
    ``(p-1)/(p-1+n*v)`` but the first stage keeps roughly
    ``v*p + p - 1`` chunk-forwards alive — the Table 3 memory of
    ``(1 + (p-1)/(p*v)) * A``.
    """
    p, n, v = problem.num_stages, problem.num_microbatches, problem.virtual_size
    if problem.num_slices != 1:
        raise ScheduleError("VPP schedules whole micro-batches only")
    if problem.split_backward:
        raise ScheduleError("VPP uses a fused backward pass")
    if v < 2:
        raise ScheduleError("VPP requires virtual_size >= 2 (use DAPPLE for v=1)")
    if n % p != 0:
        raise ScheduleError(f"interleaved VPP requires n % p == 0, got n={n}, p={p}")
    if problem.chunk_placement != "interleaved":
        raise ScheduleError("VPP requires interleaved chunk placement")

    total = n * v
    programs = []
    for stage in range(p):
        warmup = min((p - stage - 1) * 2 + (v - 1) * p, total)
        ops: list[OpId] = []
        for i in range(warmup):
            ops.append(_step_to_op(problem, stage, i, backward=False))
        f_next, b_next = warmup, 0
        while f_next < total:
            ops.append(_step_to_op(problem, stage, f_next, backward=False))
            ops.append(_step_to_op(problem, stage, b_next, backward=True))
            f_next += 1
            b_next += 1
        while b_next < total:
            ops.append(_step_to_op(problem, stage, b_next, backward=True))
            b_next += 1
        programs.append(StageProgram(stage=stage, ops=ops))
    return Schedule(problem=problem, programs=programs, name="vpp")
