"""Zero-bubble pipeline baselines (ZB-1P and ZBV) and Hanayo.

Zero bubble pipeline parallelism (Qi et al., ICLR'24) splits the
backward pass into activation-gradient (B) and weight-gradient (W)
computation; the deferred W ops fill the drain-phase bubbles.  ZB-1P
extends DAPPLE this way; ZBV extends the wave-style (Hanayo) schedule
with a V-shaped chunk placement.  The paper treats both as its
strongest baselines (Section 7.1).

We generate both — and Hanayo itself — with the greedy engine: 1F1B
caps on a micro-batch-granular problem, split backward for the ZB
variants, and V-shaped chunk placement for the wave schedules.
"""

from __future__ import annotations

from repro.schedules.base import PipelineProblem, Schedule, ScheduleError
from repro.schedules.greedy import GreedyPolicy, greedy_schedule
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.sim.cost import CostModel


def zb_problem(
    num_stages: int, num_microbatches: int, wgrad_gemms: int = 1
) -> PipelineProblem:
    """Problem shape for ZB-1P (micro-batch granularity, split backward)."""
    return PipelineProblem(
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        split_backward=True,
        wgrad_gemms=wgrad_gemms,
    )


def zb_schedule(problem: PipelineProblem, cost: CostModel | None = None) -> Schedule:
    """ZB-1P: DAPPLE-like 1F1B with deferred, bubble-filling W ops.

    The live-activation cap matches DAPPLE (``p`` on the first stage),
    so memory stays comparable — modulo the activation gradients pinned
    while W is deferred, which is what pushed ZB over the memory edge in
    the paper's experiments (Section 7.2).
    """
    if not problem.split_backward or problem.num_slices != 1:
        raise ScheduleError("ZB-1P needs split backward and whole micro-batches")
    policy = GreedyPolicy(
        first_stage_cap=problem.num_stages,
        fill_with_wgrad=True,
        wgrad_defer_samples=0.5,  # ZB-1P keeps memory near 1F1B level
    )
    return greedy_schedule(problem, policy, cost, name="zb")


def zbv_problem(
    num_stages: int, num_microbatches: int, wgrad_gemms: int = 1
) -> PipelineProblem:
    """Problem shape for ZBV (two V-placed chunks per stage)."""
    return PipelineProblem(
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        virtual_size=2,
        split_backward=True,
        wgrad_gemms=wgrad_gemms,
        chunk_placement="vshape",
    )


def zbv_schedule(problem: PipelineProblem, cost: CostModel | None = None) -> Schedule:
    """ZBV: zero-bubble scheduling over a V-shaped two-chunk placement."""
    if problem.virtual_size != 2 or problem.chunk_placement != "vshape":
        raise ScheduleError("ZBV needs v=2 with vshape placement")
    # V-shaped placement balances activations across stages, so the cap
    # is uniform (slope 0) instead of the interleaved staircase, and
    # backwards retire in arrival order (the wave has no tail-reordering
    # freedom to exploit).
    p = problem.num_stages
    policy = GreedyPolicy(
        first_stage_cap=2 * p,
        cap_slope=0,
        fill_with_wgrad=True,
        backward_priority="fifo",
        wgrad_defer_samples=0.5,
    )
    return greedy_schedule(problem, policy, cost, name="zbv")


def hanayo_problem(
    num_stages: int, num_microbatches: int, waves: int = 2
) -> PipelineProblem:
    """Problem shape for Hanayo's wave schedule (``waves`` chunk rounds)."""
    return PipelineProblem(
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        virtual_size=waves,
        chunk_placement="vshape",
    )


def hanayo_schedule(
    problem: PipelineProblem, cost: CostModel | None = None
) -> Schedule:
    """Hanayo: wave-like scheduling, fused backward.

    Memory matches DAPPLE (Table 3: ``A`` on the first stage for
    ``n >= p``) while the extra waves cut the bubble to
    ``(p-1)/(p-1+n*v)``.
    """
    if problem.chunk_placement != "vshape" or problem.split_backward:
        raise ScheduleError("Hanayo needs vshape placement and fused backward")
    p, v = problem.num_stages, problem.virtual_size
    policy = GreedyPolicy(
        first_stage_cap=v * p,
        cap_slope=0,
        fill_with_wgrad=False,
        backward_priority="fifo",
    )
    return greedy_schedule(problem, policy, cost, name="hanayo")
