"""Golden reference for the greedy policy engine.

This module preserves the dict-of-``OpId`` implementation of the greedy
generator exactly as it stood before the array-native rewrite in
:mod:`repro.schedules.greedy`.  It plays the same role the fixed-point
engine plays for the simulator: a genuinely independent implementation
the golden-equivalence suite (``tests/test_greedy_golden.py``) compares
the fast engine against, byte for byte, across the full acceptance
grid.  It is **not** on any production path — ``greedy_schedule``
always runs the array engine — so its only consumers are tests.

Nothing here may be "improved": the whole value of the file is that it
computes the old answer the old way (same float expression order, same
heap tiebreak stream, same dict-iteration tie behavior).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.schedules.base import (
    OpId,
    OpKind,
    PipelineProblem,
    Schedule,
    ScheduleError,
    StageProgram,
)
from repro.schedules.greedy import (
    _FORWARD_KEYS,
    GreedyPolicy,
    _b_children,
    stage_cap,
)

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.sim.cost import CostModel


@dataclass
class _StageState:
    stage: int
    cap: int
    free_at: float = 0.0
    live_f: float = 0.0
    deferred_units: float = 0.0
    #: Ops whose dependencies have all been scheduled but which have not
    #: themselves run yet, with their arrival times.
    avail_f: dict[OpId, float] = field(default_factory=dict)
    avail_b: dict[OpId, float] = field(default_factory=dict)
    wgrad_queue: deque[OpId] = field(default_factory=deque)
    #: Remaining (not yet run) F op count per micro-batch, for the
    #: front-micro-batch cap reservation.
    pending_f_by_mb: list[int] = field(default_factory=list)
    pending_b_by_mb: list[int] = field(default_factory=list)
    front_b_mb: int = 0
    front_f_mb: int = 0
    #: Kind of the last committed F/B op, for 1F1B alternation.
    last_main: OpKind = OpKind.B
    program: list[OpId] = field(default_factory=list)

    def front_mb(self) -> int | None:
        """Earliest micro-batch with backwards still pending here."""
        counts = self.pending_b_by_mb
        while self.front_b_mb < len(counts) and counts[self.front_b_mb] == 0:
            self.front_b_mb += 1
        if self.front_b_mb >= len(counts):
            return None
        return self.front_b_mb

    def front_f(self) -> int | None:
        """Earliest micro-batch with forwards still pending here."""
        counts = self.pending_f_by_mb
        while self.front_f_mb < len(counts) and counts[self.front_f_mb] == 0:
            self.front_f_mb += 1
        if self.front_f_mb >= len(counts):
            return None
        return self.front_f_mb


def greedy_reference(
    problem: PipelineProblem,
    policy: GreedyPolicy,
    cost: CostModel | None,
    name: str,
) -> Schedule:
    """One generation attempt with the pre-rewrite engine (no fallback)."""
    from repro.sim.cost import UniformCost, op_cost_fns

    cost = cost or UniformCost(problem)
    # Memoized per-op-shape planning costs (identical values; see
    # op_cost_fns) — the generator probes durations and comm times for
    # every op and edge, which dominates sweep time otherwise.
    dur_fn, comm_fn, _act_fn = op_cost_fns(cost)
    num_stages = problem.num_stages
    n = problem.num_microbatches
    s = problem.num_slices
    chunks = problem.num_chunks
    split = problem.split_backward
    gemms = problem.wgrad_gemms
    cells = n * s * chunks
    total = 2 * cells + (cells * gemms if split else 0)
    stage_of_chunk = problem._placement_tables[0]

    states = [
        _StageState(
            stage=st,
            cap=stage_cap(problem, policy, st),
            pending_f_by_mb=[0] * n,
            pending_b_by_mb=[0] * n,
        )
        for st in range(num_stages)
    ]

    # Dense tables indexed by canonical op code (the compiled
    # ScheduleGraph's layout): F -> base, B -> cells + base,
    # W(g) -> 2*cells + base*gemms + g, with base=(mb*s+sl)*chunks+c.
    # Arithmetic codes keep the hot loop free of OpId hashing; the
    # OpId objects themselves are built once, for programs and cost
    # probes.
    ops_by_code: list[OpId] = [None] * total  # type: ignore[list-item]
    stage_by_code = [0] * total
    unmet = [0] * total
    arrival = [0.0] * total
    succ_by_code: list[list[int]] = [[] for _ in range(total)]

    for mb in range(n):
        for sl in range(s):
            row = (mb * s + sl) * chunks
            for c in range(chunks):
                base = row + c
                stage = stage_of_chunk[c]
                ops_by_code[base] = OpId(OpKind.F, mb, sl, c)
                ops_by_code[cells + base] = OpId(OpKind.B, mb, sl, c)
                stage_by_code[base] = stage
                stage_by_code[cells + base] = stage
                states[stage].pending_f_by_mb[mb] += 1
                states[stage].pending_b_by_mb[mb] += 1
                if split:
                    w0 = 2 * cells + base * gemms
                    for g in range(gemms):
                        ops_by_code[w0 + g] = OpId(OpKind.W, mb, sl, c, g)
                        stage_by_code[w0 + g] = stage

    # Dependency transpose, consumers visited in ascending code order so
    # successor lists (and therefore wake-event tiebreaks) match the
    # order a dict-of-OpId build over ``problem.all_ops()`` produces.
    for base in range(cells):
        c = base % chunks
        sl = (base // chunks) % s
        if c > 0:
            succ_by_code[base - 1].append(base)
            unmet[base] += 1
        if sl > 0:
            succ_by_code[base - chunks].append(base)
            unmet[base] += 1
    for base in range(cells):
        c = base % chunks
        sl = (base // chunks) % s
        code = cells + base
        succ_by_code[base].append(code)
        unmet[code] += 1
        if c < chunks - 1:
            succ_by_code[cells + base + 1].append(code)
            unmet[code] += 1
        if sl < s - 1:
            succ_by_code[cells + base + chunks].append(code)
            unmet[code] += 1
    if split:
        for base in range(cells):
            w0 = 2 * cells + base * gemms
            for g in range(gemms):
                succ_by_code[cells + base].append(w0 + g)
                unmet[w0 + g] = 1

    def publish(code: int, op: OpId) -> None:
        """Move a zero-unmet F/B op into its stage's available set."""
        state = states[stage_by_code[code]]
        if op.kind is OpKind.F:
            state.avail_f[op] = arrival[code]
        elif op.kind is OpKind.B:
            state.avail_b[op] = arrival[code]
        # W ops are managed through the per-stage wgrad queues.

    # Only the F(mb, 0, 0) ops start with no dependencies.
    for mb in range(n):
        code = mb * s * chunks
        publish(code, ops_by_code[code])

    counter = itertools.count()
    # Wake events: (time, tiebreak, stage).
    heap: list[tuple[float, int, int]] = [
        (0.0, next(counter), st) for st in range(num_stages)
    ]
    remaining = total

    def choose_b(state: _StageState, now: float) -> OpId | None:
        best: OpId | None = None
        best_key: tuple | None = None
        for op, arr in state.avail_b.items():
            if arr > now + 1e-12:
                continue
            if policy.backward_priority == "children":
                key = (-_b_children(op), op.microbatch, -op.slice_idx, -op.chunk)
            else:
                key = (op.microbatch, -op.slice_idx, -op.chunk)
            if best_key is None or key < best_key:
                best, best_key = op, key
        return best

    def choose_f(state: _StageState, now: float) -> OpId | None:
        # The stage's next backward transitively needs every still-
        # pending forward of the earliest unfinished micro-batch (the
        # "front").  An F op may not eat the cap slots those forwards
        # will need, or the pipeline wedges: the first backward could no
        # longer fit under the cap.  The strong rule protects the
        # earliest micro-batch with pending *forwards* instead, which is
        # strictly safer (see GreedyPolicy.strong_reserve).
        front = state.front_f() if policy.strong_reserve else state.front_mb()
        needed = state.pending_f_by_mb[front] if front is not None else 0
        p = problem.num_stages
        keyfn = _FORWARD_KEYS[policy.forward_priority]
        best: OpId | None = None
        best_key: tuple | None = None
        for op, arr in state.avail_f.items():
            if arr > now + 1e-12:
                continue
            reserve = needed - (1 if op.microbatch == front else 0)
            if state.live_f + 1.0 + reserve > state.cap + 1e-9:
                continue
            key = keyfn(op, p)
            if best_key is None or key < best_key:
                best, best_key = op, key
        return best

    def commit(state: _StageState, op: OpId, now: float) -> None:
        nonlocal remaining
        start = max(now, state.free_at)
        end = start + dur_fn(op)
        state.free_at = end
        state.program.append(op)
        remaining -= 1
        base = (op.microbatch * s + op.slice_idx) * chunks + op.chunk
        if op.kind is OpKind.F:
            code = base
            del state.avail_f[op]
            state.live_f += 1.0
            state.pending_f_by_mb[op.microbatch] -= 1
            state.last_main = OpKind.F
        elif op.kind is OpKind.B:
            code = cells + base
            del state.avail_b[op]
            state.live_f -= 1.0
            state.pending_b_by_mb[op.microbatch] -= 1
            state.last_main = OpKind.B
            if split:
                w0 = 2 * cells + base * gemms
                state.wgrad_queue.extend(
                    ops_by_code[w0 + g] for g in range(gemms)
                )
                state.deferred_units += 1.0 + policy.wgrad_units
        else:
            code = 2 * cells + base * gemms + op.gemm
            # W ops are only ever committed from the queue head.
            state.wgrad_queue.popleft()
            state.deferred_units -= (1.0 + policy.wgrad_units) / gemms
        heapq.heappush(heap, (end, next(counter), state.stage))
        for dc in succ_by_code[code]:
            dependent = ops_by_code[dc]
            when = end + comm_fn(op, dependent)
            if when > arrival[dc]:
                arrival[dc] = when
            unmet[dc] -= 1
            if unmet[dc] == 0 and dependent.kind is not OpKind.W:
                publish(dc, dependent)
            # Wake the consumer's stage at the arrival moment.
            heapq.heappush(heap, (when, next(counter), stage_by_code[dc]))

    while remaining:
        if not heap:
            stuck = [
                str(op)
                for st in states
                for op in itertools.chain(st.avail_f, st.avail_b, st.wgrad_queue)
            ][:8]
            raise ScheduleError(f"greedy deadlock; runnable-but-unscheduled: {stuck}")
        now, _tie, stage = heapq.heappop(heap)
        state = states[stage]
        if now + 1e-12 < state.free_at:
            continue  # stage busy; its completion wake is already queued
        # Stage k holds ~cap_slope*k fewer live activations than stage
        # 0; that slack, plus the configured per-sample budget, is what
        # it may fill with deferred weight-gradient state.
        allowance = policy.cap_slope * stage + (
            policy.wgrad_defer_samples
            * problem.virtual_size
            * problem.num_slices
            * (1.0 + policy.wgrad_units)
        )
        if not policy.fill_with_wgrad and state.wgrad_queue:
            # "W immediately after B": drain weight gradients before
            # anything else (the unoptimized Figure 11 behavior).
            op: OpId | None = state.wgrad_queue[0]
        elif state.wgrad_queue and state.deferred_units > allowance + 1e-9:
            # Deferred weight gradients exceed this stage's memory
            # slack; retire one before advancing the pipeline.
            op = state.wgrad_queue[0]
        else:
            # Steady state is one-forward-one-backward alternation, the
            # rhythm of every published interleaved schedule: after an F
            # prefer the next B, after a B refill the freed slot with an
            # F (the cap bounds the warm-up depth).  Whichever kind is
            # not ready yet falls back to the other.
            if state.last_main is OpKind.F:
                op = choose_b(state, now) or choose_f(state, now)
            else:
                op = choose_f(state, now) or choose_b(state, now)
            if op is None and state.wgrad_queue:
                # Gap filling (Section 5) — but only when no F/B is
                # about to arrive within the GEMM's runtime, otherwise
                # the non-preemptive W would push the critical path.
                w = state.wgrad_queue[0]
                horizon = now + 0.5 * dur_fn(w)
                imminent = any(
                    arr <= horizon
                    for arr in itertools.chain(
                        state.avail_f.values(), state.avail_b.values())
                )
                if not imminent:
                    op = w
        if op is not None:
            commit(state, op, now)

    return Schedule(
        problem=problem,
        programs=[StageProgram(stage=st.stage, ops=st.program) for st in states],
        name=name,
    )
