"""Explicit generators for the classic pipeline schedules.

These are the published, closed-form orderings the paper compares
against: GPipe (all-forward-then-all-backward), TeraPipe (GPipe at
slice granularity — sequence pipeline parallelism), and DAPPLE's 1F1B.
Interleaved virtual pipelining (Megatron-LM-v2) lives in
:mod:`repro.schedules.interleaved`.
"""

from __future__ import annotations

from repro.schedules.base import (
    OpId,
    OpKind,
    PipelineProblem,
    Schedule,
    ScheduleError,
    StageProgram,
)


def _require_flat(problem: PipelineProblem, method: str, allow_slices: bool) -> None:
    if problem.virtual_size != 1:
        raise ScheduleError(f"{method} does not support virtual pipelining")
    if problem.split_backward:
        raise ScheduleError(f"{method} uses a fused backward pass")
    if not allow_slices and problem.num_slices != 1:
        raise ScheduleError(f"{method} schedules whole micro-batches only")


def gpipe_schedule(problem: PipelineProblem) -> Schedule:
    """GPipe: every forward, then every backward (FIFO).

    Peak activation memory is all ``n`` micro-batches at once; the
    bubble ratio is ``(p-1)/(p-1+n)``.
    """
    _require_flat(problem, "GPipe", allow_slices=False)
    return _all_f_then_all_b(problem, name="gpipe")


def terapipe_schedule(problem: PipelineProblem) -> Schedule:
    """TeraPipe: GPipe-style scheduling at slice granularity (Figure 3).

    Slices shrink the bubble to ``(p-1)/(n*s+p-1)`` but every sample's
    activations stay live until the backward phase begins, so peak
    memory is still ``n/p * A`` per worker (Section 2.1).
    """
    _require_flat(problem, "TeraPipe", allow_slices=True)
    return _all_f_then_all_b(problem, name="terapipe")


def _all_f_then_all_b(problem: PipelineProblem, name: str) -> Schedule:
    programs = []
    for stage in range(problem.num_stages):
        ops: list[OpId] = []
        for mb in range(problem.num_microbatches):
            for sl in range(problem.num_slices):
                ops.append(OpId(OpKind.F, mb, sl, stage))
        for mb in reversed(range(problem.num_microbatches)):
            for sl in reversed(range(problem.num_slices)):
                ops.append(OpId(OpKind.B, mb, sl, stage))
        programs.append(StageProgram(stage=stage, ops=ops))
    return Schedule(problem=problem, programs=programs, name=name)


def dapple_schedule(problem: PipelineProblem) -> Schedule:
    """DAPPLE / PipeDream-Flush 1F1B (Figure 2).

    Stage ``k`` runs ``min(n, p-k-1)`` warm-up forwards, then alternates
    one-forward-one-backward, then drains the remaining backwards.  Peak
    live micro-batches on stage ``k`` is ``min(n, p-k)``, giving the
    Table 3 memory of ``A`` (first stage) when ``n >= p``.
    """
    _require_flat(problem, "DAPPLE", allow_slices=False)
    p, n = problem.num_stages, problem.num_microbatches
    programs = []
    for stage in range(p):
        warmup = min(n, p - stage - 1)
        ops: list[OpId] = []
        for mb in range(warmup):
            ops.append(OpId(OpKind.F, mb, 0, stage))
        f_next, b_next = warmup, 0
        while f_next < n:
            ops.append(OpId(OpKind.F, f_next, 0, stage))
            ops.append(OpId(OpKind.B, b_next, 0, stage))
            f_next += 1
            b_next += 1
        while b_next < n:
            ops.append(OpId(OpKind.B, b_next, 0, stage))
            b_next += 1
        programs.append(StageProgram(stage=stage, ops=ops))
    return Schedule(problem=problem, programs=programs, name="dapple")
