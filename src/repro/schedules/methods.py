"""Registry mapping scheduling-method names to problem/schedule builders.

The planner and the experiments address every method through this one
interface: ``build(method, p, n, spp, vp, ...)`` returns a validated
:class:`~repro.schedules.base.Schedule` ready for simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedules.base import PipelineProblem, Schedule, ScheduleError
from repro.schedules.classic import dapple_schedule, gpipe_schedule, terapipe_schedule
from repro.schedules.interleaved import vpp_schedule
from repro.schedules.svpp import (
    mepipe_problem,
    mepipe_schedule,
    svpp_problem,
    svpp_schedule,
)
from repro.schedules.zerobubble import (
    hanayo_problem,
    hanayo_schedule,
    zb_problem,
    zb_schedule,
    zbv_problem,
    zbv_schedule,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.sim.cost import CostModel


@dataclass(frozen=True)
class MethodTraits:
    """Capabilities of a scheduling method, used to shape grid searches."""

    name: str
    uses_spp: bool = False
    uses_vp: bool = False
    uses_cp: bool = True
    split_backward: bool = False
    supports_recompute: bool = True
    fixed_vp: int | None = None


METHODS: dict[str, MethodTraits] = {
    "gpipe": MethodTraits("gpipe"),
    "dapple": MethodTraits("dapple"),
    "vpp": MethodTraits("vpp", uses_vp=True),
    "hanayo": MethodTraits("hanayo", uses_vp=True),
    "terapipe": MethodTraits("terapipe", uses_spp=True, supports_recompute=False),
    # Recomputation is incompatible with deferred weight gradients
    # (Section 7.1): the W ops need the activations B already consumed.
    "zb": MethodTraits("zb", split_backward=True, supports_recompute=False),
    "zbv": MethodTraits(
        "zbv", split_backward=True, supports_recompute=False, fixed_vp=2
    ),
    "svpp": MethodTraits("svpp", uses_spp=True, uses_vp=True,
                         supports_recompute=False, uses_cp=False),
    "mepipe": MethodTraits(
        "mepipe",
        uses_spp=True,
        uses_vp=True,
        uses_cp=False,
        split_backward=True,
        supports_recompute=False,
    ),
}


def method_traits(method: str) -> MethodTraits:
    """Look up a method's traits."""
    key = method.lower()
    if key not in METHODS:
        raise KeyError(f"unknown scheduling method {method!r}; known: {sorted(METHODS)}")
    return METHODS[key]


def build_problem(
    method: str,
    num_stages: int,
    num_microbatches: int,
    num_slices: int = 1,
    virtual_size: int = 1,
    wgrad_gemms: int = 1,
) -> PipelineProblem:
    """Build the pipeline problem a method schedules."""
    key = method.lower()
    traits = method_traits(key)
    if num_slices > 1 and not traits.uses_spp:
        raise ScheduleError(f"{method} does not schedule slices (spp={num_slices})")
    if traits.fixed_vp is not None:
        virtual_size = traits.fixed_vp
    if key in ("gpipe", "dapple"):
        return PipelineProblem(num_stages=num_stages, num_microbatches=num_microbatches)
    if key == "terapipe":
        return PipelineProblem(
            num_stages=num_stages,
            num_microbatches=num_microbatches,
            num_slices=num_slices,
        )
    if key == "vpp":
        return PipelineProblem(
            num_stages=num_stages,
            num_microbatches=num_microbatches,
            virtual_size=virtual_size,
        )
    if key == "hanayo":
        return hanayo_problem(num_stages, num_microbatches, waves=max(2, virtual_size))
    if key == "zb":
        return zb_problem(num_stages, num_microbatches, wgrad_gemms=wgrad_gemms)
    if key == "zbv":
        return zbv_problem(num_stages, num_microbatches, wgrad_gemms=wgrad_gemms)
    if key == "svpp":
        return svpp_problem(
            num_stages, num_microbatches, num_slices, virtual_size=virtual_size
        )
    return mepipe_problem(
        num_stages,
        num_microbatches,
        num_slices,
        virtual_size=virtual_size,
        wgrad_gemms=wgrad_gemms,
    )


def build_schedule(
    method: str,
    problem: PipelineProblem,
    cost: CostModel | None = None,
    forwards_before_first_backward: int | None = None,
) -> Schedule:
    """Build a method's schedule over ``problem``.

    Every generated schedule passes through the static verifier's
    safety tier (placement, coverage, deadlock) before it is returned;
    a generation bug surfaces here as a :class:`ScheduleError` carrying
    the full diagnostic report rather than as a wedged simulation.
    """
    key = method.lower()
    method_traits(key)
    if key == "gpipe":
        schedule = gpipe_schedule(problem)
    elif key == "dapple":
        schedule = dapple_schedule(problem)
    elif key == "terapipe":
        schedule = terapipe_schedule(problem)
    elif key == "vpp":
        schedule = vpp_schedule(problem)
    elif key == "hanayo":
        schedule = hanayo_schedule(problem, cost)
    elif key == "zb":
        schedule = zb_schedule(problem, cost)
    elif key == "zbv":
        schedule = zbv_schedule(problem, cost)
    elif key == "svpp":
        schedule = svpp_schedule(
            problem,
            forwards_before_first_backward=forwards_before_first_backward,
            cost=cost,
        )
    else:
        schedule = mepipe_schedule(
            problem,
            forwards_before_first_backward=forwards_before_first_backward,
            cost=cost,
        )
    from repro.schedules.verify import ensure_verified

    ensure_verified(schedule, context=f"{key} generator")
    return schedule
