"""Sequence Virtual Pipeline Parallelism — MEPipe's core schedule.

SVPP (Section 4) schedules forward and backward passes at *slice*
granularity, interleaving them 1F1B-style so that the number of live
slice-activations is bounded by the ``f`` parameter (the forwards
executed before the first backward).  The memory-optimal variant uses
``f = v*max(p,s) + min(p,s) - 1``; smaller ``f`` (down to ``v*s``)
trades bubbles for memory — the Figure 5 variants.

``mepipe_schedule`` adds the paper's second technique on top: the
backward pass is split into activation-gradient (B) and per-GEMM
weight-gradient (W) ops, and W GEMMs are scheduled dynamically into
communication/imbalance gaps (Section 5).
"""

from __future__ import annotations

from repro.schedules.base import PipelineProblem, Schedule, ScheduleError
from repro.schedules.greedy import (
    GreedyPolicy,
    default_first_stage_cap,
    greedy_schedule,
    min_first_stage_cap,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.sim.cost import CostModel


def svpp_problem(
    num_stages: int,
    num_microbatches: int,
    num_slices: int,
    virtual_size: int = 1,
) -> PipelineProblem:
    """Problem shape for plain SVPP (fused backward)."""
    return PipelineProblem(
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        num_slices=num_slices,
        virtual_size=virtual_size,
    )


def svpp_schedule(
    problem: PipelineProblem,
    forwards_before_first_backward: int | None = None,
    cost: CostModel | None = None,
    optimize_backward_order: bool = True,
) -> Schedule:
    """Generate an SVPP schedule (Sections 4.1-4.3).

    Args:
        problem: The pipeline problem (any ``s``, ``v``).
        forwards_before_first_backward: The ``f`` variant parameter;
            ``None`` selects the memory-optimal maximum.  Must lie in
            ``[v*s, v*max(p,s) + min(p,s) - 1]``.
        cost: Durations the generator plans with (profiler stand-in).
        optimize_backward_order: Apply the child-count backward
            prioritization of Section 4.3; False keeps FIFO backwards,
            for the ablation.
    """
    f = forwards_before_first_backward
    if f is not None and f > default_first_stage_cap(problem):
        raise ScheduleError(
            f"f={f} exceeds the useful maximum "
            f"{default_first_stage_cap(problem)}; extra forwards cannot run"
        )
    # Uniform caps (slope 0): the peak lives on stage 0 either way, and
    # later stages need the full window to hide the chunk-round-trip
    # latency when v > 1.
    policy = GreedyPolicy(
        first_stage_cap=f,
        cap_slope=0,
        backward_priority="children" if optimize_backward_order else "fifo",
        fill_with_wgrad=False,
    )
    label = "svpp" if f is None else f"svpp(f={f})"
    return greedy_schedule(problem, policy, cost, name=label)


def svpp_variants(problem: PipelineProblem) -> list[int]:
    """All feasible ``f`` values, memory-hungriest first (Figure 5)."""
    return list(
        range(default_first_stage_cap(problem), min_first_stage_cap(problem) - 1, -1)
    )


def mepipe_problem(
    num_stages: int,
    num_microbatches: int,
    num_slices: int,
    virtual_size: int = 1,
    wgrad_gemms: int = 4,
) -> PipelineProblem:
    """Problem shape for full MEPipe (split backward, fine-grained W)."""
    return PipelineProblem(
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        num_slices=num_slices,
        virtual_size=virtual_size,
        split_backward=True,
        wgrad_gemms=wgrad_gemms,
    )


def mepipe_schedule(
    problem: PipelineProblem,
    forwards_before_first_backward: int | None = None,
    cost: CostModel | None = None,
    fine_grained_wgrad: bool = True,
) -> Schedule:
    """SVPP plus fine-grained weight-gradient computation (Section 5).

    With ``fine_grained_wgrad`` disabled, each stage computes weight
    gradients immediately after the corresponding backward pass — the
    Figure 11 baseline used by the Section 7.5 ablation.
    """
    if not problem.split_backward:
        raise ScheduleError("MEPipe needs a split backward pass")
    policy = GreedyPolicy(
        first_stage_cap=forwards_before_first_backward,
        cap_slope=0,
        fill_with_wgrad=fine_grained_wgrad,
    )
    name = "mepipe" if fine_grained_wgrad else "mepipe(w-immediate)"
    return greedy_schedule(problem, policy, cost, name=name)
