"""Compiled schedule graph IR.

A :class:`ScheduleGraph` is the dense, integer-indexed form of a
:class:`~repro.schedules.base.Schedule`: every op becomes one index in
``[0, num_ops)``, laid out stage-major in program order, with
CSR-style predecessor/successor arrays over the Section 4.1 dependency
edges and per-op ``kind``/``cell``/``stage``/``pos`` tables.  The
verifier's deadlock, channel, and liveness analyses and the simulator's
event-driven replay all walk these flat arrays instead of re-deriving
``PipelineProblem.deps`` (which allocates fresh ``OpId`` objects) per
probe.

Contract:

* The graph compiles only from *structurally clean* schedules — one
  program per stage in order, every op of the problem exactly once, on
  its home stage.  Anything else raises ``ScheduleError``; diagnosing
  malformed schedules stays with the legacy dict-of-``OpId`` walks in
  :mod:`repro.schedules.verify`, which produce the full witness output.
* Ops are numbered stage-major: ``stage_bounds[s] = (lo, hi)`` and the
  ops of stage ``s`` occupy ``[lo, hi)`` in program order, so the
  implicit program-order edge of op ``i`` (when ``pos[i] > 0``) is
  ``i - 1 -> i``.
* ``pred_indptr``/``pred`` list each op's dependency predecessors in
  the exact order ``PipelineProblem.deps`` returns them;
  ``pred_cross[e]`` flags edges that cross a stage boundary.
  ``succ_indptr``/``succ`` is the transpose.
* ``cell[i]`` is the canonical ``(mb * s + sl) * chunks + c`` index of
  op ``i``'s (micro-batch, slice, chunk) coordinate — the key the
  liveness ledger shares between an F op and its B/W counterparts.
* Graphs are cached on the schedule object keyed by the same content
  fingerprint the verifier uses, so one (schedule, analysis) lifetime
  compiles exactly once; mutating a program invalidates the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.schedules.base import (
    OpId,
    OpKind,
    PipelineProblem,
    Schedule,
    ScheduleError,
)

#: Integer op kinds used in :attr:`ScheduleGraph.kind` (array-friendly
#: stand-ins for the :class:`OpKind` enum).
KIND_F: int = 0
KIND_B: int = 1
KIND_W: int = 2

#: Structure-level identity of a compiled graph: the problem plus the
#: per-op kind/cell/gemm tables and the stage layout.  Everything else
#: on a :class:`ScheduleGraph` (edges, positions, plans) is derived
#: from exactly these tables, so equal keys imply equal topology.
StructureKey = tuple[
    PipelineProblem,
    tuple[int, ...],
    tuple[int, ...],
    tuple[int, ...],
    tuple[tuple[int, int], ...],
]


class ScheduleGraph:
    """Dense compiled form of one schedule (see module docstring)."""

    __slots__ = (
        "problem",
        "fingerprint",
        "_ops",
        "_ops_factory",
        "kind",
        "cell",
        "gemm",
        "stage",
        "pos",
        "stage_bounds",
        "pred_indptr",
        "pred",
        "pred_cross",
        "succ_indptr",
        "succ",
        "_dense_plan",
        "_capacity_tables",
    )

    def __init__(
        self,
        problem: PipelineProblem,
        fingerprint: int,
        ops: tuple[OpId, ...] | None,
        kind: tuple[int, ...],
        cell: tuple[int, ...],
        gemm: tuple[int, ...],
        stage: tuple[int, ...],
        pos: tuple[int, ...],
        stage_bounds: tuple[tuple[int, int], ...],
        pred_indptr: tuple[int, ...],
        pred: tuple[int, ...],
        pred_cross: tuple[bool, ...],
        succ_indptr: tuple[int, ...],
        succ: tuple[int, ...],
        ops_factory: Callable[[], tuple[OpId, ...]] | None = None,
    ) -> None:
        if ops is None and ops_factory is None:
            raise ValueError("ScheduleGraph needs ops or an ops_factory")
        self.problem = problem
        self.fingerprint = fingerprint
        self._ops = ops
        self._ops_factory = ops_factory
        self.kind = kind
        self.cell = cell
        self.gemm = gemm
        self.stage = stage
        self.pos = pos
        self.stage_bounds = stage_bounds
        self.pred_indptr = pred_indptr
        self.pred = pred
        self.pred_cross = pred_cross
        self.succ_indptr = succ_indptr
        self.succ = succ
        # Cost-independent evaluation plan, lazily built and cached by
        # repro.analysis.evaluate.dense (topological order + height
        # depend only on the graph, never on the cost model).
        self._dense_plan: object | None = None
        # Channel messages + minimal deadlock-free capacities, lazily
        # built and cached by repro.analysis.capacity (also purely
        # structural — cost models only affect backpressure analysis).
        self._capacity_tables: object | None = None

    @property
    def ops(self) -> tuple[OpId, ...]:
        """``OpId`` of each dense index.

        Graphs emitted directly by the greedy engine build this tuple
        lazily — the integer tables carry all structure, and many
        consumers (fingerprint checks, bounds evaluation) never touch
        the ``OpId`` objects at all.
        """
        materialized = self._ops
        if materialized is None:
            factory = self._ops_factory
            assert factory is not None  # enforced in __init__
            materialized = self._ops = factory()
        return materialized

    @property
    def num_ops(self) -> int:
        """Total ops in the compiled schedule."""
        return len(self.kind)

    def op_at(self, i: int) -> OpId:
        """The ``OpId`` of dense index ``i``.

        Decoded from the integer tables (``cell = (mb*s + sl)*chunks +
        c``) when the full ops tuple is not already materialized —
        field-for-field equal to ``self.ops[i]`` — so diagnostic paths
        that name a handful of ops do not force the whole tuple.
        """
        materialized = self._ops
        if materialized is not None:
            return materialized[i]
        problem = self.problem
        chunks = problem.num_chunks
        s = problem.num_slices
        kc, ce = self.kind[i], self.cell[i]
        kind = OpKind.F if kc == KIND_F else OpKind.W if kc == KIND_W else OpKind.B
        return OpId(
            kind,
            ce // (chunks * s),
            (ce // chunks) % s,
            ce % chunks,
            self.gemm[i],
        )

    def structure_key(self) -> StructureKey:
        """Exact structural identity of this graph, cost-free.

        Two graphs with equal structure keys have identical op
        numbering, kinds, cells, gemm tags, stage layout — and therefore
        identical dependency edges (the edge relation is pure code
        arithmetic over these tables) and identical topological plans.
        The key is a tuple of the graph's own integer tables, so the
        comparison is exact (no hashing collisions decide equality):
        this is what lets the planner's batched analytic tier group
        configurations into *topology classes* that share one compiled
        structure while only their cost key-tables differ, and what
        keys the process-wide structure cache in
        :mod:`repro.schedules.gencache`.
        """
        return (self.problem, self.kind, self.cell, self.gemm, self.stage_bounds)

    def preds_of(self, i: int) -> tuple[int, ...]:
        """Dependency predecessors of op ``i`` (dense indices)."""
        return self.pred[self.pred_indptr[i] : self.pred_indptr[i + 1]]

    def succs_of(self, i: int) -> tuple[int, ...]:
        """Dependency successors of op ``i`` (dense indices)."""
        return self.succ[self.succ_indptr[i] : self.succ_indptr[i + 1]]


def fingerprint(schedule: Schedule) -> int:
    """Cheap content hash of the per-stage op orders.

    Hashing every op is ~two orders of magnitude cheaper than
    re-verifying or re-compiling, and unlike an op count it also
    invalidates cached verdicts/graphs when a schedule is reordered in
    place.  Shared by :func:`compiled_graph` and the verifier's verdict
    cache so both invalidate together.  Hashes the ops' precomputed
    ``_hash`` values directly — same collision behavior as hashing the
    ``OpId`` tuples (tuple hashing combines element hashes either way)
    without a Python-level ``__hash__`` call per op.

    Dense-emitted schedules (the greedy engine's ``_DenseSchedule``)
    carry the token precomputed at generation under ``_dense_token``;
    while their ``OpId`` programs are still unmaterialized nothing
    observable could have been mutated, so the token *is* the content
    hash and the per-op walk is skipped.  The moment ``programs`` is
    materialized (or replaced) the fast path disarms and in-place
    mutation invalidates caches exactly as before.
    """
    token: int | None = getattr(schedule, "_dense_token", None)
    if token is not None and getattr(schedule, "_programs", None) is None:
        return token
    return hash(
        tuple(
            (program.stage, tuple(op._hash for op in program.ops))
            for program in schedule.programs
        )
    )


def compiled_graph(schedule: Schedule) -> ScheduleGraph:
    """The compiled graph of ``schedule``, cached by content fingerprint."""
    token = fingerprint(schedule)
    cached: tuple[int, ScheduleGraph] | None = getattr(
        schedule, "_graph_cache", None
    )
    if cached is not None and cached[0] == token:
        return cached[1]
    graph = _compile(schedule, token)
    schedule._graph_cache = (token, graph)  # type: ignore[attr-defined]
    return graph


@dataclass(frozen=True)
class TopoPlan:
    """Cost-independent topological plan of one compiled graph.

    ``order`` is a topological order of the op indices (dependency and
    program-order edges); ``levels`` is the dependency height, and
    ``level_indptr`` the Kahn wavefront boundaries within ``order``
    (``order[level_indptr[k]:level_indptr[k + 1]]`` is wavefront ``k``).
    One plan serves every structural consumer: the verifier's deadlock
    verdict (the plan exists iff the combined edge relation is acyclic),
    the analytic evaluator's replay order, and the batched evaluator's
    level-synchronous sweep — so the Kahn pass over a graph runs at most
    once, and via the structure store in
    :mod:`repro.schedules.gencache` at most once per *topology class*.
    """

    order: list[int]
    levels: int
    level_indptr: tuple[int, ...]


def build_topo_plan(graph: ScheduleGraph) -> TopoPlan:
    """Kahn's algorithm over dependency + program-order edges.

    Raises :class:`ScheduleError` if the combined edge relation has a
    cycle (the frontier stalls before covering every op) — the same
    deadlock the simulator's engines detect.
    """
    num_ops = graph.num_ops
    pred_indptr = graph.pred_indptr
    succ_indptr, succ = graph.succ_indptr, graph.succ
    pos = graph.pos
    indeg = [
        pred_indptr[i + 1] - pred_indptr[i] + (1 if pos[i] > 0 else 0)
        for i in range(num_ops)
    ]
    frontier = [i for i in range(num_ops) if indeg[i] == 0]
    order: list[int] = []
    level_indptr: list[int] = [0]
    levels = 0
    while frontier:
        levels += 1
        order.extend(frontier)
        level_indptr.append(len(order))
        nxt: list[int] = []
        for i in frontier:
            for e in range(succ_indptr[i], succ_indptr[i + 1]):
                j = succ[e]
                indeg[j] -= 1
                if indeg[j] == 0:
                    nxt.append(j)
            j = i + 1
            if j < num_ops and pos[j] > 0:
                indeg[j] -= 1
                if indeg[j] == 0:
                    nxt.append(j)
        frontier = nxt
    if len(order) != num_ops:
        stuck = [str(graph.ops[i]) for i in range(num_ops) if indeg[i] > 0][:8]
        raise ScheduleError(f"evaluation deadlock; blocked ops: {stuck}")
    return TopoPlan(order=order, levels=levels, level_indptr=tuple(level_indptr))


def toposort_plan(graph: ScheduleGraph) -> TopoPlan:
    """The graph's cached topological plan (built on first use).

    The plan depends only on the graph's structure, so before running
    Kahn it consults the process-wide structure store under the graph's
    :meth:`ScheduleGraph.structure_key` — two graphs differing only in
    cost tables (one topology class) build the plan once and share it,
    within a sweep and across sweeps.
    """
    plan = graph._dense_plan
    if isinstance(plan, TopoPlan):
        return plan
    from repro.schedules import gencache

    key = ("plan", graph.structure_key())
    shared = gencache.get_structure(key)
    if isinstance(shared, TopoPlan):
        built = shared
    else:
        built = build_topo_plan(graph)
        gencache.put_structure(key, built)
    graph._dense_plan = built
    return built


def _compile(schedule: Schedule, token: int) -> ScheduleGraph:
    problem = schedule.problem
    p = problem.num_stages
    if [program.stage for program in schedule.programs] != list(range(p)):
        raise ScheduleError(
            f"cannot compile {schedule.name!r}: expected one program per "
            f"stage in order 0..{p - 1}"
        )

    n, s = problem.num_microbatches, problem.num_slices
    chunks = problem.num_chunks
    split = problem.split_backward
    gemms = problem.wgrad_gemms
    cells = n * s * chunks
    # Canonical op codes: F -> cell, B -> cells + cell,
    # W(g) -> 2*cells + cell*gemms + g.
    total = cells * 2 + (cells * gemms if split else 0)
    stage_of_chunk = problem._placement_tables[0]

    dense_of = [-1] * total
    ops: list[OpId] = []
    kind_arr: list[int] = []
    cell_arr: list[int] = []
    gemm_arr: list[int] = []
    stage_arr: list[int] = []
    pos_arr: list[int] = []
    code_arr: list[int] = []
    stage_bounds: list[tuple[int, int]] = []

    for program in schedule.programs:
        lo = len(ops)
        for idx, op in enumerate(program.ops):
            mb, sl, c, g = op.microbatch, op.slice_idx, op.chunk, op.gemm
            if not (0 <= mb < n and 0 <= sl < s and 0 <= c < chunks):
                raise ScheduleError(
                    f"cannot compile {schedule.name!r}: op {op} is not "
                    f"part of the problem"
                )
            base = (mb * s + sl) * chunks + c
            if op.kind is OpKind.F:
                ok, code, kc = g == -1, base, KIND_F
            elif op.kind is OpKind.B:
                ok, code, kc = g == -1, cells + base, KIND_B
            else:
                ok = split and 0 <= g < gemms
                code, kc = 2 * cells + base * gemms + g, KIND_W
            if not ok:
                raise ScheduleError(
                    f"cannot compile {schedule.name!r}: op {op} is not "
                    f"part of the problem"
                )
            if dense_of[code] != -1:
                raise ScheduleError(
                    f"cannot compile {schedule.name!r}: duplicate op {op}"
                )
            if stage_of_chunk[c] != program.stage:
                raise ScheduleError(
                    f"cannot compile {schedule.name!r}: op {op} scheduled "
                    f"on stage {program.stage}, belongs to stage "
                    f"{stage_of_chunk[c]}"
                )
            dense_of[code] = len(ops)
            ops.append(op)
            kind_arr.append(kc)
            cell_arr.append(base)
            gemm_arr.append(g)
            stage_arr.append(program.stage)
            pos_arr.append(idx)
            code_arr.append(code)
        stage_bounds.append((lo, len(ops)))

    if len(ops) != total:
        raise ScheduleError(
            f"cannot compile {schedule.name!r}: {total - len(ops)} op(s) "
            f"missing from the schedule"
        )

    return _finish(
        problem, token, ops, kind_arr, cell_arr, gemm_arr, stage_arr,
        pos_arr, stage_bounds, dense_of, cells, chunks, s,
    )


def graph_from_codes(
    problem: PipelineProblem,
    stage_codes: list[list[int]],
    token: int,
    ops_factory: Callable[[], tuple[OpId, ...]],
) -> ScheduleGraph:
    """Compile directly from a generator's dense code tables.

    ``stage_codes[k]`` is stage ``k``'s program as canonical op codes.
    The caller (the array-native greedy engine, which schedules every
    code of the problem exactly once on its home stage) guarantees
    structural cleanliness, so :func:`_compile`'s validation — and the
    per-``OpId`` attribute walk it validates with — is skipped: every
    table derives from code arithmetic, vectorized, and the ``OpId``
    tuple itself is built lazily by ``ops_factory`` (which must return
    the ops in dense = stage-major program order).  The emitted tables
    are identical to compiling the materialized schedule, asserted by
    ``tests/test_greedy_golden.py``.
    """
    import numpy as np

    n, s = problem.num_microbatches, problem.num_slices
    chunks = problem.num_chunks
    gemms = problem.wgrad_gemms
    cells = n * s * chunks
    counts = [len(codes) for codes in stage_codes]
    total = sum(counts)

    code = np.concatenate(
        [np.asarray(codes, dtype=np.int64) for codes in stage_codes]
    )
    is_f = code < cells
    is_b = ~is_f & (code < 2 * cells)
    is_w = ~is_f & ~is_b
    wrem = code - 2 * cells
    kind = np.where(is_f, KIND_F, np.where(is_b, KIND_B, KIND_W))
    cell = np.where(is_f, code, np.where(is_b, code - cells, wrem // gemms))
    gemm = np.where(is_w, wrem % gemms, -1)
    stage = np.repeat(np.arange(len(stage_codes), dtype=np.int64), counts)
    pos = np.concatenate([np.arange(k, dtype=np.int64) for k in counts])
    dense_of = np.empty(total, dtype=np.int64)
    dense_of[code] = np.arange(total, dtype=np.int64)
    hi = np.cumsum(np.asarray(counts, dtype=np.int64))
    stage_bounds = tuple(zip((hi - counts).tolist(), hi.tolist()))

    # Dependency edges.  Each op has at most three predecessors; slot
    # order per kind reproduces ``PipelineProblem.deps`` order, and
    # row-major flattening keeps edges grouped by op in that order.
    c = cell % chunks
    sl = cell // chunks % s
    slots = np.full((total, 3), -1, dtype=np.int64)
    m = is_f & (c > 0)
    slots[m, 0] = cell[m] - 1
    m = is_f & (sl > 0)
    slots[m, 1] = cell[m] - chunks
    slots[is_b, 0] = cell[is_b]
    m = is_b & (c < chunks - 1)
    slots[m, 1] = cells + cell[m] + 1
    m = is_b & (sl < s - 1)
    slots[m, 2] = cells + cell[m] + chunks
    slots[is_w, 0] = cells + cell[is_w]

    flat = slots.ravel()
    active = flat >= 0
    pred_dense = dense_of[flat[active]]
    edge_src = np.repeat(np.arange(total, dtype=np.int64), 3)[active]
    pred_cross = stage[pred_dense] != stage[edge_src]
    pred_indptr = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(np.count_nonzero(slots >= 0, axis=1), out=pred_indptr[1:])

    # Successors = the transpose: stable sort of edges by target keeps
    # the source order ascending within each group, matching
    # ``_finish``'s ``succ_lists[j].append(i)`` with ``i`` ascending.
    order = np.argsort(pred_dense, kind="stable")
    succ = edge_src[order]
    succ_indptr = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(np.bincount(pred_dense, minlength=total), out=succ_indptr[1:])

    return ScheduleGraph(
        problem=problem,
        fingerprint=token,
        ops=None,
        kind=tuple(kind.tolist()),
        cell=tuple(cell.tolist()),
        gemm=tuple(gemm.tolist()),
        stage=tuple(stage.tolist()),
        pos=tuple(pos.tolist()),
        stage_bounds=stage_bounds,
        pred_indptr=tuple(pred_indptr.tolist()),
        pred=tuple(pred_dense.tolist()),
        pred_cross=tuple(pred_cross.tolist()),
        succ_indptr=tuple(succ_indptr.tolist()),
        succ=tuple(succ.tolist()),
        ops_factory=ops_factory,
    )


def _finish(
    problem: PipelineProblem,
    token: int,
    ops: list[OpId],
    kind_arr: list[int],
    cell_arr: list[int],
    gemm_arr: list[int],
    stage_arr: list[int],
    pos_arr: list[int],
    stage_bounds: list[tuple[int, int]],
    dense_of: list[int],
    cells: int,
    chunks: int,
    s: int,
) -> ScheduleGraph:
    """Edge tables + assembly shared by :func:`_compile` and
    :func:`graph_from_codes` (predecessor order matches
    ``PipelineProblem.deps``; successors are its transpose)."""
    num_ops = len(ops)
    pred_indptr: list[int] = [0]
    pred_list: list[int] = []
    cross_list: list[bool] = []
    succ_lists: list[list[int]] = [[] for _ in range(num_ops)]
    for i in range(num_ops):
        kc = kind_arr[i]
        base = cell_arr[i]
        c = base % chunks
        sl = (base // chunks) % s
        dep_codes: list[int] = []
        if kc == KIND_F:
            if c > 0:
                dep_codes.append(base - 1)
            if sl > 0:
                dep_codes.append(base - chunks)
        elif kc == KIND_B:
            dep_codes.append(base)
            if c < chunks - 1:
                dep_codes.append(cells + base + 1)
            if sl < s - 1:
                dep_codes.append(cells + base + chunks)
        else:
            dep_codes.append(cells + base)
        st = stage_arr[i]
        for code in dep_codes:
            j = dense_of[code]
            pred_list.append(j)
            cross_list.append(stage_arr[j] != st)
            succ_lists[j].append(i)
        pred_indptr.append(len(pred_list))

    succ_indptr: list[int] = [0]
    succ_list: list[int] = []
    for js in succ_lists:
        succ_list.extend(js)
        succ_indptr.append(len(succ_list))

    return ScheduleGraph(
        problem=problem,
        fingerprint=token,
        ops=tuple(ops),
        kind=tuple(kind_arr),
        cell=tuple(cell_arr),
        gemm=tuple(gemm_arr),
        stage=tuple(stage_arr),
        pos=tuple(pos_arr),
        stage_bounds=tuple(stage_bounds),
        pred_indptr=tuple(pred_indptr),
        pred=tuple(pred_list),
        pred_cross=tuple(cross_list),
        succ_indptr=tuple(succ_indptr),
        succ=tuple(succ_list),
    )
