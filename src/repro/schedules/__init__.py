"""Pipeline schedule generation: baselines, SVPP, and MEPipe."""

from repro.schedules.analysis import (
    MethodAnalysis,
    analyze,
    dapple_analysis,
    gpipe_analysis,
    hanayo_analysis,
    svpp_analysis,
    svpp_limit_analysis,
    terapipe_analysis,
    vpp_analysis,
)
from repro.schedules.base import (
    OpId,
    OpKind,
    PipelineProblem,
    Schedule,
    ScheduleError,
    StageProgram,
    validate_schedule,
)
from repro.schedules.classic import dapple_schedule, gpipe_schedule, terapipe_schedule
from repro.schedules.greedy import (
    GreedyPolicy,
    default_first_stage_cap,
    greedy_schedule,
    min_first_stage_cap,
    stage_cap,
)
from repro.schedules.interleaved import vpp_schedule
from repro.schedules.methods import (
    METHODS,
    MethodTraits,
    build_problem,
    build_schedule,
    method_traits,
)
from repro.schedules.svpp import (
    mepipe_problem,
    mepipe_schedule,
    svpp_problem,
    svpp_schedule,
    svpp_variants,
)
from repro.schedules.zerobubble import (
    hanayo_problem,
    hanayo_schedule,
    zb_problem,
    zb_schedule,
    zbv_problem,
    zbv_schedule,
)

__all__ = [
    "METHODS",
    "MethodAnalysis",
    "MethodTraits",
    "GreedyPolicy",
    "OpId",
    "OpKind",
    "PipelineProblem",
    "Schedule",
    "ScheduleError",
    "StageProgram",
    "analyze",
    "build_problem",
    "build_schedule",
    "dapple_analysis",
    "dapple_schedule",
    "default_first_stage_cap",
    "gpipe_analysis",
    "gpipe_schedule",
    "greedy_schedule",
    "hanayo_analysis",
    "hanayo_problem",
    "hanayo_schedule",
    "mepipe_problem",
    "mepipe_schedule",
    "method_traits",
    "min_first_stage_cap",
    "stage_cap",
    "svpp_analysis",
    "svpp_limit_analysis",
    "svpp_problem",
    "svpp_schedule",
    "svpp_variants",
    "terapipe_analysis",
    "terapipe_schedule",
    "validate_schedule",
    "vpp_analysis",
    "vpp_schedule",
    "zb_problem",
    "zb_schedule",
    "zbv_problem",
    "zbv_schedule",
]
