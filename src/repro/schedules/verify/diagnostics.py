"""Diagnostics framework for schedule verification.

Every check in :mod:`repro.schedules.verify` reports through the same
vocabulary: a :class:`Finding` names the violated rule, the stage and
op where the violation anchors, and a human-readable *witness* — the
concrete chain of ops/edges that proves the defect (a blocking cycle,
a reordered message pair, a leaked activation).  A :class:`Report`
aggregates the findings of one verification run and renders them as
text (CLI, exception messages) or JSON (tooling).

The rule catalogue is documented in ``docs/verification.md``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any

from repro.schedules.base import OpId


class Severity(enum.IntEnum):
    """How bad a finding is.

    ``ERROR`` findings make a schedule unusable (it would misplace
    work, lose gradients, or deadlock a real deployment); ``WARNING``
    findings are suspicious but executable; ``INFO`` findings are
    observations (e.g. a deliberate low-memory variant sitting below
    the closed-form bound).
    """

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One entry of the invariant catalogue."""

    rule_id: str
    title: str
    severity: Severity
    description: str


#: The invariant catalogue.  Rule ids are stable API: tests, the CLI,
#: and downstream tooling key on them.
RULES: dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "ST001",
            "misplaced op",
            Severity.ERROR,
            "An op is scheduled on a stage that does not host its model "
            "chunk.",
        ),
        Rule(
            "ST002",
            "missing op",
            Severity.ERROR,
            "An op of the problem's iteration is absent from every stage "
            "program.",
        ),
        Rule(
            "ST003",
            "duplicate op",
            Severity.ERROR,
            "An op appears more than once across the stage programs.",
        ),
        Rule(
            "ST004",
            "foreign op",
            Severity.ERROR,
            "A scheduled op is not part of the problem's op set "
            "(out-of-range microbatch/slice/chunk/gemm).",
        ),
        Rule(
            "ST005",
            "malformed program list",
            Severity.ERROR,
            "The schedule does not carry exactly one program per stage, "
            "in stage order.",
        ),
        Rule(
            "DL001",
            "order-induced deadlock",
            Severity.ERROR,
            "The per-stage orders are inconsistent with the dependency "
            "graph: a cycle of dependency and program-order edges blocks "
            "all progress.  The witness is a minimal blocking cycle.",
        ),
        Rule(
            "CH001",
            "channel reorder",
            Severity.WARNING,
            "Two messages on one stage-to-stage channel are received in "
            "the opposite order from which they are sent.  Benign under "
            "tagged/keyed transports (this repo's runtimes), but a "
            "deployment with one strict FIFO channel per stage pair and "
            "blocking in-order receives deadlocks: the receiver waits on "
            "the second message while the first holds the channel head.",
        ),
        Rule(
            "CH002",
            "receive without send",
            Severity.ERROR,
            "A scheduled op waits for a cross-stage tensor whose producer "
            "is not scheduled anywhere.",
        ),
        Rule(
            "CH003",
            "send never received",
            Severity.ERROR,
            "A scheduled op produces a cross-stage tensor whose consumer "
            "is not scheduled anywhere; the message would sit in the "
            "channel forever.",
        ),
        Rule(
            "LV001",
            "activation use-after-free",
            Severity.ERROR,
            "An op consumes an activation that is not live on its stage "
            "— already freed by an earlier consumer, or never "
            "materialized by the owning forward.",
        ),
        Rule(
            "LV002",
            "activation leak",
            Severity.ERROR,
            "Activation state is still pinned when the iteration ends; "
            "across iterations this is an unbounded memory leak.",
        ),
        Rule(
            "AN001",
            "closed-form memory divergence",
            Severity.ERROR,
            "The statically computed peak activation memory exceeds the "
            "method's Table 3 closed form.",
        ),
    )
}


def register_rules(*rules: Rule) -> None:
    """Add rules to the shared catalogue.

    Other analysis layers (:mod:`repro.analysis`) report through the
    same :class:`Finding`/:class:`Report` vocabulary; their rule ids
    must be registered here before a finding can default its severity.
    Re-registering an identical rule is a no-op; redefining an existing
    id differently is a programming error.
    """
    for rule in rules:
        existing = RULES.get(rule.rule_id)
        if existing is not None and existing != rule:
            raise ValueError(
                f"rule {rule.rule_id} already registered with a different "
                f"definition"
            )
        RULES[rule.rule_id] = rule


@dataclass(frozen=True)
class Finding:
    """One rule violation (or observation) with its evidence.

    Attributes:
        rule_id: Key into :data:`RULES`.
        message: One-line description of this specific violation.
        stage: Stage the finding anchors to, if any.
        op: Op the finding anchors to, if any.
        witness: Evidence lines — e.g. the edges of a blocking cycle —
            already rendered for display.
        severity: Defaults to the rule's catalogue severity.
    """

    rule_id: str
    message: str
    stage: int | None = None
    op: OpId | None = None
    witness: tuple[str, ...] = ()
    severity: Severity = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.severity is None:
            object.__setattr__(self, "severity", RULES[self.rule_id].severity)

    def render(self) -> str:
        """One finding as indented text."""
        where = []
        if self.stage is not None:
            where.append(f"stage {self.stage}")
        if self.op is not None:
            where.append(f"op {self.op}")
        loc = f" [{', '.join(where)}]" if where else ""
        head = f"{self.rule_id} {self.severity}: {self.message}{loc}"
        if not self.witness:
            return head
        return head + "\n" + "\n".join(f"    {line}" for line in self.witness)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "rule_id": self.rule_id,
            "rule": RULES[self.rule_id].title,
            "severity": str(self.severity),
            "message": self.message,
            "stage": self.stage,
            "op": str(self.op) if self.op is not None else None,
            "witness": list(self.witness),
        }


@dataclass
class Report:
    """The outcome of verifying one schedule."""

    schedule_name: str
    findings: list[Finding] = field(default_factory=list)
    checked_rules: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity finding was raised."""
        return not self.errors

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def by_rule(self, rule_id: str) -> list[Finding]:
        """Findings of one rule."""
        return [f for f in self.findings if f.rule_id == rule_id]

    def rule_ids(self) -> set[str]:
        """The distinct rules that fired."""
        return {f.rule_id for f in self.findings}

    def render_text(self) -> str:
        """Multi-line human-readable report."""
        if not self.ok:
            verdict = f"{len(self.errors)} error(s)"
            if self.warnings:
                verdict += f", {len(self.warnings)} warning(s)"
        elif self.warnings:
            verdict = f"clean, {len(self.warnings)} warning(s)"
        else:
            verdict = "clean"
        lines = [f"verify {self.schedule_name}: {verdict}"]
        for finding in sorted(
            self.findings, key=lambda f: (-int(f.severity), f.rule_id)
        ):
            lines.append("  " + finding.render().replace("\n", "\n  "))
        if not self.findings:
            lines.append(
                f"  all checks passed ({len(self.checked_rules)} rules)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "schedule": self.schedule_name,
            "ok": self.ok,
            "checked_rules": list(self.checked_rules),
            "findings": [f.to_dict() for f in self.findings],
        }

    def render_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)
