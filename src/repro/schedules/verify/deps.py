"""Structure and deadlock analysis of a schedule.

Two layers:

* :func:`check_structure` — placement, coverage, duplicates: is every
  op of the problem scheduled exactly once on the stage that hosts its
  chunk?
* :func:`check_deadlock` — a Kahn ready-queue pass over the combined
  graph (Section 4.1 dependency edges + per-stage program-order edges),
  O(V+E) where the old token-passing validator was O(V^2).  On failure
  it reports the per-stage blocked head positions and extracts a
  *minimal blocking cycle*: the shortest chain of dependency and
  program-order edges that closes on itself, rendered op by op.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.schedules.base import OpId, OpKind, Schedule, ScheduleError
from repro.schedules.graph import ScheduleGraph, toposort_plan
from repro.schedules.verify.diagnostics import Finding

#: BFS-per-node budget for cycle minimization; beyond this SCC size the
#: first discovered shortest cycle through one node is reported.
_MIN_CYCLE_BFS_CAP = 256


@dataclass
class ScheduleIndex:
    """Positions of each op's first occurrence, plus structure flags."""

    #: op -> (stage, index in that stage's program), first occurrence.
    positions: dict[OpId, tuple[int, int]] = field(default_factory=dict)
    has_duplicates: bool = False
    has_foreign: bool = False


def _dense_structure_clean(schedule: Schedule) -> bool | None:
    """ST001-ST004 verdict straight from a dense engine's code tables.

    Schedules emitted by the array-native greedy engine carry their
    per-stage programs as canonical op codes (``_stage_codes``) until
    something materializes ``OpId`` programs.  The ST rules are pure
    code arithmetic — in-range (ST004, and kind/gemm validity, since
    the canonical code space enumerates exactly the problem's ops),
    home-stage placement (ST001), no duplicates (ST003), full coverage
    (ST002) — so this path checks the codes with vectorized NumPy and
    never builds an ``OpId``.  Keeping the programs unmaterialized also
    keeps :func:`~repro.schedules.graph.fingerprint` on its precomputed
    token, so every later verdict/graph cache probe stays O(1).

    Returns ``None`` when not applicable (no code tables, or programs
    already materialized — then nothing is saved by the dense path),
    ``True`` when clean, ``False`` on any anomaly (the caller falls
    through to the detailed diagnostic pass).
    """
    codes_by_stage = getattr(schedule, "_stage_codes", None)
    if codes_by_stage is None or getattr(schedule, "_programs", 0) is not None:
        return None
    problem = schedule.problem
    # The dense programs property emits stages 0..len-1 in order, so
    # ST005 reduces to the stage count.
    if len(codes_by_stage) != problem.num_stages:
        return False
    n, s = problem.num_microbatches, problem.num_slices
    chunks = problem.num_chunks
    split = problem.split_backward
    gemms = problem.wgrad_gemms
    cells = n * s * chunks
    total = cells * 2 + (cells * gemms if split else 0)
    counts = [len(codes) for codes in codes_by_stage]
    if sum(counts) != total:
        return False  # ST002 missing / ST003 duplicate by count
    if total == 0:
        return True
    code = np.concatenate(
        [np.asarray(codes, dtype=np.int64) for codes in codes_by_stage]
    )
    if int(code.min()) < 0 or int(code.max()) >= total:
        return False  # ST004 foreign (out of the canonical code space)
    seen = np.zeros(total, dtype=bool)
    seen[code] = True
    if not seen.all():
        return False  # some code absent => another duplicated (ST002/ST003)
    g_div = gemms if gemms else 1  # np.where evaluates both branches
    base = np.where(
        code < cells,
        code,
        np.where(code < 2 * cells, code - cells, (code - 2 * cells) // g_div),
    )
    stage_of_chunk = np.asarray(problem._placement_tables[0], dtype=np.int64)
    stage = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    if not bool(np.all(stage_of_chunk[base % chunks] == stage)):
        return False  # ST001 misplaced
    return True


def _structure_clean_fast(schedule: Schedule) -> bool:
    """Whether the schedule passes ST001-ST004 — no diagnostics.

    Arithmetic membership over canonical op codes: each in-range op maps
    to a unique integer, a bytearray marks first occurrences, and a
    placement table replaces the per-op stage branch.  No ``OpId`` set
    is materialized and nothing is hashed; the detailed (and allocating)
    pass below runs only when this scan finds an anomaly.
    """
    problem = schedule.problem
    n, s = problem.num_microbatches, problem.num_slices
    chunks = problem.num_chunks
    split = problem.split_backward
    gemms = problem.wgrad_gemms
    cells = n * s * chunks
    total = cells * 2 + (cells * gemms if split else 0)
    stage_of_chunk = problem._placement_tables[0]
    seen = bytearray(total)
    count = 0
    for program in schedule.programs:
        stage = program.stage
        for op in program.ops:
            mb, sl, c, g = op.microbatch, op.slice_idx, op.chunk, op.gemm
            if not (0 <= mb < n and 0 <= sl < s and 0 <= c < chunks):
                return False  # ST004 foreign
            if stage_of_chunk[c] != stage:
                return False  # ST001 misplaced
            base = (mb * s + sl) * chunks + c
            kind = op.kind
            if kind is OpKind.F:
                if g != -1:
                    return False
                code = base
            elif kind is OpKind.B:
                if g != -1:
                    return False
                code = cells + base
            else:
                if not split or not 0 <= g < gemms:
                    return False
                code = 2 * cells + base * gemms + g
            if seen[code]:
                return False  # ST003 duplicate
            seen[code] = 1
            count += 1
    return count == total  # ST002 missing otherwise


def check_structure(schedule: Schedule) -> tuple[list[Finding], ScheduleIndex]:
    """Placement, coverage, and duplication invariants (ST rules).

    Clean schedules (the hot path) are recognized by a single
    allocation-free arithmetic scan and return an *empty*
    :class:`ScheduleIndex` — downstream analyses use the compiled
    :class:`~repro.schedules.graph.ScheduleGraph` instead of the
    positions dict.  Only anomalous schedules take the detailed pass
    that materializes positions and itemized findings.
    """
    problem = schedule.problem
    findings: list[Finding] = []
    index = ScheduleIndex()

    # Dense engines are verified from their code tables without ever
    # materializing OpId programs — materialization would disarm the
    # precomputed fingerprint token and re-hash every later cache probe.
    dense_verdict = _dense_structure_clean(schedule)
    if dense_verdict:
        return findings, index

    stages_seen = [program.stage for program in schedule.programs]
    if stages_seen != list(range(problem.num_stages)):
        findings.append(
            Finding(
                "ST005",
                f"expected one program per stage in order "
                f"0..{problem.num_stages - 1}, got stages {stages_seen}",
            )
        )
        return findings, index

    if dense_verdict is None and _structure_clean_fast(schedule):
        return findings, index

    expected = set(problem.all_ops())
    for program in schedule.programs:
        for idx, op in enumerate(program.ops):
            if op in index.positions:
                dup_stage, dup_idx = index.positions[op]
                index.has_duplicates = True
                findings.append(
                    Finding(
                        "ST003",
                        f"duplicate op {op}: first at stage {dup_stage}#"
                        f"{dup_idx}, again at stage {program.stage}#{idx}",
                        stage=program.stage,
                        op=op,
                    )
                )
                continue
            index.positions[op] = (program.stage, idx)
            if op not in expected:
                index.has_foreign = True
                findings.append(
                    Finding(
                        "ST004",
                        f"op {op} is not part of the problem "
                        f"(p={problem.num_stages}, n={problem.num_microbatches}, "
                        f"s={problem.num_slices}, v={problem.virtual_size}, "
                        f"split={problem.split_backward})",
                        stage=program.stage,
                        op=op,
                    )
                )
                continue
            home = problem.stage_of(op)
            if home != program.stage:
                findings.append(
                    Finding(
                        "ST001",
                        f"op {op} scheduled on stage {program.stage}, "
                        f"belongs to stage {home} (chunk {op.chunk})",
                        stage=program.stage,
                        op=op,
                    )
                )
    missing = expected - set(index.positions)
    if missing:
        sample = ", ".join(str(o) for o in sorted(missing)[:5])
        suffix = ", ..." if len(missing) > 5 else ""
        findings.append(
            Finding(
                "ST002",
                f"op set mismatch: {len(missing)} op(s) missing from the "
                f"schedule (e.g. {sample}{suffix})",
                op=min(missing),
            )
        )
    return findings, index


def _edge_label(problem, src: OpId, dst: OpId) -> str:
    """Human name of the dependency edge ``src -> dst``."""
    hop = " (cross-stage)" if problem.is_cross_stage(src, dst) else ""
    if src.kind is OpKind.F and dst.kind is OpKind.F:
        if dst.chunk == src.chunk + 1:
            return f"chunk input{hop}"
        return f"causal-attention KV of slice {src.slice_idx}{hop}"
    if src.kind is OpKind.F and dst.kind is OpKind.B:
        return "own forward activations"
    if src.kind is OpKind.B and dst.kind is OpKind.B:
        if dst.chunk == src.chunk - 1:
            return f"activation gradient{hop}"
        return f"dK/dV from slice {src.slice_idx}{hop}"
    return "backward output (weight-gradient input)"


def _deadlock_free_fast(graph: ScheduleGraph) -> bool:
    """Deadlock verdict from the graph's shared topological plan.

    :func:`~repro.schedules.graph.toposort_plan` runs one integer Kahn
    pass (no ``OpId`` is touched, nothing is hashed) and memoizes the
    resulting plan on the graph *and* in the structure store keyed by
    topology class — so the verdict here, the dense evaluator's replay
    order, and the batched evaluator's wavefront boundaries all come
    from the same single pass per class.  Deadlocked graphs raise
    inside the pass and nothing is cached.
    """
    try:
        toposort_plan(graph)
    except ScheduleError:
        return False
    return True


def _positions_of(schedule: Schedule) -> dict[OpId, tuple[int, int]]:
    """First-occurrence positions, for diagnostic paths that skipped the
    detailed structure pass."""
    positions: dict[OpId, tuple[int, int]] = {}
    for program in schedule.programs:
        for idx, op in enumerate(program.ops):
            if op not in positions:
                positions[op] = (program.stage, idx)
    return positions


def check_deadlock(
    schedule: Schedule,
    index: ScheduleIndex,
    graph: ScheduleGraph | None = None,
) -> list[Finding]:
    """Kahn ready-queue deadlock detection with a minimal-cycle witness.

    Operates on the ops present in the schedule (first occurrences);
    dependency edges whose producer is absent are ignored — coverage
    violations are :func:`check_structure`'s findings, and a real
    deployment would block on the *channel*, which
    :mod:`repro.schedules.verify.channels` reports separately.

    With a compiled ``graph`` (structurally clean schedule) the verdict
    comes from an integer Kahn pass; the ``OpId``-level walk below runs
    only to reconstruct blocked heads and the minimal-cycle witness
    after a failed verdict, or when no graph is available.
    """
    if graph is not None and _deadlock_free_fast(graph):
        return []
    problem = schedule.problem
    positions = index.positions or _positions_of(schedule)
    programs = [program.ops for program in schedule.programs]

    # Combined graph: successor lists and in-degrees over present ops.
    succ: dict[OpId, list[OpId]] = {op: [] for op in positions}
    indeg: dict[OpId, int] = {op: 0 for op in positions}
    for op in positions:
        for dep in problem.deps(op):
            if dep in positions:
                succ[dep].append(op)
                indeg[op] += 1
    for ops in programs:
        for prev, nxt in zip(ops, ops[1:]):
            succ[prev].append(nxt)
            indeg[nxt] += 1

    queue = deque(op for op, d in indeg.items() if d == 0)
    processed = 0
    total = len(positions)
    while queue:
        op = queue.popleft()
        processed += 1
        for nxt in succ[op]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                queue.append(nxt)
    if processed == total:
        return []

    # Blocked: reconstruct per-stage head positions (processed ops form
    # a prefix of each program because of the order edges).
    residual = {op for op, d in indeg.items() if d > 0}
    heads: list[str] = []
    for stage, ops in enumerate(programs):
        head = next(
            (i for i, op in enumerate(ops) if op in residual), None
        )
        if head is None:
            heads.append(f"stage {stage}: drained ({len(ops)} ops)")
        else:
            heads.append(
                f"stage {stage}: blocked at #{head}/{len(ops)} on "
                f"{ops[head]}"
            )

    cycle = _minimal_cycle(residual, succ)
    witness = ["blocked heads:"] + [f"  {line}" for line in heads]
    if cycle:
        witness.append(f"minimal blocking cycle ({len(cycle)} edges):")
        for i, op in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            stage, idx = positions[op]
            if op in problem.deps(nxt):
                # Dependency edge op -> nxt (op must complete first).
                label = _edge_label(problem, op, nxt)
            else:
                label = f"stage {stage} program order"
            witness.append(
                f"  {op} @ stage {stage}#{idx} -> {nxt}  [{label}]"
            )
    blocked = [h for h in heads if "blocked" in h]
    return [
        Finding(
            "DL001",
            f"deadlock: {len(residual)} op(s) can never run; "
            f"{len(blocked)} stage(s) blocked",
            witness=tuple(witness),
        )
    ]


def _minimal_cycle(
    residual: set[OpId], succ: dict[OpId, list[OpId]]
) -> list[OpId]:
    """Shortest cycle inside the blocked subgraph.

    Finds the strongly connected components of the residual graph
    (every Kahn residual contains at least one non-trivial SCC), takes
    the smallest, and BFSes within it for the shortest closed walk.
    """
    sccs = _tarjan_sccs(residual, succ)
    cyclic = [c for c in sccs if len(c) > 1]
    if not cyclic:
        return []
    scc = set(min(cyclic, key=len))
    starts = sorted(scc) if len(scc) <= _MIN_CYCLE_BFS_CAP else [min(scc)]
    best: list[OpId] = []
    for start in starts:
        cycle = _shortest_cycle_through(start, scc, succ)
        if cycle and (not best or len(cycle) < len(best)):
            best = cycle
            if len(best) == 2:
                break
    return best


def _shortest_cycle_through(
    start: OpId, scc: set[OpId], succ: dict[OpId, list[OpId]]
) -> list[OpId]:
    """BFS for the shortest path ``start -> ... -> start`` within ``scc``."""
    parent: dict[OpId, OpId] = {}
    frontier = deque([start])
    seen = {start}
    while frontier:
        op = frontier.popleft()
        for nxt in succ[op]:
            if nxt not in scc:
                continue
            if nxt == start:
                path = [op]
                while op != start:
                    op = parent[op]
                    path.append(op)
                path.reverse()
                return path
            if nxt not in seen:
                seen.add(nxt)
                parent[nxt] = op
                frontier.append(nxt)
    return []


def _tarjan_sccs(
    nodes: set[OpId], succ: dict[OpId, list[OpId]]
) -> list[list[OpId]]:
    """Iterative Tarjan restricted to ``nodes``."""
    index_of: dict[OpId, int] = {}
    lowlink: dict[OpId, int] = {}
    on_stack: set[OpId] = set()
    stack: list[OpId] = []
    sccs: list[list[OpId]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[OpId, int]] = [(root, 0)]
        while work:
            op, child_i = work[-1]
            if child_i == 0:
                index_of[op] = lowlink[op] = counter
                counter += 1
                stack.append(op)
                on_stack.add(op)
            advanced = False
            children = [w for w in succ[op] if w in nodes]
            while child_i < len(children):
                child = children[child_i]
                child_i += 1
                if child not in index_of:
                    work[-1] = (op, child_i)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[op] = min(lowlink[op], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[op] == index_of[op]:
                scc: list[OpId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == op:
                        break
                sccs.append(scc)
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[op])
    return sccs
