"""Structure and deadlock analysis of a schedule.

Two layers:

* :func:`check_structure` — placement, coverage, duplicates: is every
  op of the problem scheduled exactly once on the stage that hosts its
  chunk?
* :func:`check_deadlock` — a Kahn ready-queue pass over the combined
  graph (Section 4.1 dependency edges + per-stage program-order edges),
  O(V+E) where the old token-passing validator was O(V^2).  On failure
  it reports the per-stage blocked head positions and extracts a
  *minimal blocking cycle*: the shortest chain of dependency and
  program-order edges that closes on itself, rendered op by op.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.schedules.base import OpId, OpKind, Schedule
from repro.schedules.verify.diagnostics import Finding

#: BFS-per-node budget for cycle minimization; beyond this SCC size the
#: first discovered shortest cycle through one node is reported.
_MIN_CYCLE_BFS_CAP = 256


@dataclass
class ScheduleIndex:
    """Positions of each op's first occurrence, plus structure flags."""

    #: op -> (stage, index in that stage's program), first occurrence.
    positions: dict[OpId, tuple[int, int]] = field(default_factory=dict)
    has_duplicates: bool = False
    has_foreign: bool = False


def check_structure(schedule: Schedule) -> tuple[list[Finding], ScheduleIndex]:
    """Placement, coverage, and duplication invariants (ST rules)."""
    problem = schedule.problem
    findings: list[Finding] = []
    index = ScheduleIndex()

    stages_seen = [program.stage for program in schedule.programs]
    if stages_seen != list(range(problem.num_stages)):
        findings.append(
            Finding(
                "ST005",
                f"expected one program per stage in order "
                f"0..{problem.num_stages - 1}, got stages {stages_seen}",
            )
        )
        return findings, index

    expected = set(problem.all_ops())
    for program in schedule.programs:
        for idx, op in enumerate(program.ops):
            if op in index.positions:
                dup_stage, dup_idx = index.positions[op]
                index.has_duplicates = True
                findings.append(
                    Finding(
                        "ST003",
                        f"duplicate op {op}: first at stage {dup_stage}#"
                        f"{dup_idx}, again at stage {program.stage}#{idx}",
                        stage=program.stage,
                        op=op,
                    )
                )
                continue
            index.positions[op] = (program.stage, idx)
            if op not in expected:
                index.has_foreign = True
                findings.append(
                    Finding(
                        "ST004",
                        f"op {op} is not part of the problem "
                        f"(p={problem.num_stages}, n={problem.num_microbatches}, "
                        f"s={problem.num_slices}, v={problem.virtual_size}, "
                        f"split={problem.split_backward})",
                        stage=program.stage,
                        op=op,
                    )
                )
                continue
            home = problem.stage_of(op)
            if home != program.stage:
                findings.append(
                    Finding(
                        "ST001",
                        f"op {op} scheduled on stage {program.stage}, "
                        f"belongs to stage {home} (chunk {op.chunk})",
                        stage=program.stage,
                        op=op,
                    )
                )
    missing = expected - set(index.positions)
    if missing:
        sample = ", ".join(str(o) for o in sorted(missing)[:5])
        suffix = ", ..." if len(missing) > 5 else ""
        findings.append(
            Finding(
                "ST002",
                f"op set mismatch: {len(missing)} op(s) missing from the "
                f"schedule (e.g. {sample}{suffix})",
                op=min(missing),
            )
        )
    return findings, index


def _edge_label(problem, src: OpId, dst: OpId) -> str:
    """Human name of the dependency edge ``src -> dst``."""
    hop = " (cross-stage)" if problem.is_cross_stage(src, dst) else ""
    if src.kind is OpKind.F and dst.kind is OpKind.F:
        if dst.chunk == src.chunk + 1:
            return f"chunk input{hop}"
        return f"causal-attention KV of slice {src.slice_idx}{hop}"
    if src.kind is OpKind.F and dst.kind is OpKind.B:
        return "own forward activations"
    if src.kind is OpKind.B and dst.kind is OpKind.B:
        if dst.chunk == src.chunk - 1:
            return f"activation gradient{hop}"
        return f"dK/dV from slice {src.slice_idx}{hop}"
    return "backward output (weight-gradient input)"


def check_deadlock(
    schedule: Schedule, index: ScheduleIndex
) -> list[Finding]:
    """Kahn ready-queue deadlock detection with a minimal-cycle witness.

    Operates on the ops present in the schedule (first occurrences);
    dependency edges whose producer is absent are ignored — coverage
    violations are :func:`check_structure`'s findings, and a real
    deployment would block on the *channel*, which
    :mod:`repro.schedules.verify.channels` reports separately.
    """
    problem = schedule.problem
    positions = index.positions
    programs = [program.ops for program in schedule.programs]

    # Combined graph: successor lists and in-degrees over present ops.
    succ: dict[OpId, list[OpId]] = {op: [] for op in positions}
    indeg: dict[OpId, int] = {op: 0 for op in positions}
    for op in positions:
        for dep in problem.deps(op):
            if dep in positions:
                succ[dep].append(op)
                indeg[op] += 1
    for ops in programs:
        for prev, nxt in zip(ops, ops[1:]):
            succ[prev].append(nxt)
            indeg[nxt] += 1

    queue = deque(op for op, d in indeg.items() if d == 0)
    processed = 0
    total = len(positions)
    while queue:
        op = queue.popleft()
        processed += 1
        for nxt in succ[op]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                queue.append(nxt)
    if processed == total:
        return []

    # Blocked: reconstruct per-stage head positions (processed ops form
    # a prefix of each program because of the order edges).
    residual = {op for op, d in indeg.items() if d > 0}
    heads: list[str] = []
    for stage, ops in enumerate(programs):
        head = next(
            (i for i, op in enumerate(ops) if op in residual), None
        )
        if head is None:
            heads.append(f"stage {stage}: drained ({len(ops)} ops)")
        else:
            heads.append(
                f"stage {stage}: blocked at #{head}/{len(ops)} on "
                f"{ops[head]}"
            )

    cycle = _minimal_cycle(residual, succ)
    witness = ["blocked heads:"] + [f"  {line}" for line in heads]
    if cycle:
        witness.append(f"minimal blocking cycle ({len(cycle)} edges):")
        for i, op in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            stage, idx = positions[op]
            if op in problem.deps(nxt):
                # Dependency edge op -> nxt (op must complete first).
                label = _edge_label(problem, op, nxt)
            else:
                label = f"stage {stage} program order"
            witness.append(
                f"  {op} @ stage {stage}#{idx} -> {nxt}  [{label}]"
            )
    blocked = [h for h in heads if "blocked" in h]
    return [
        Finding(
            "DL001",
            f"deadlock: {len(residual)} op(s) can never run; "
            f"{len(blocked)} stage(s) blocked",
            witness=tuple(witness),
        )
    ]


def _minimal_cycle(
    residual: set[OpId], succ: dict[OpId, list[OpId]]
) -> list[OpId]:
    """Shortest cycle inside the blocked subgraph.

    Finds the strongly connected components of the residual graph
    (every Kahn residual contains at least one non-trivial SCC), takes
    the smallest, and BFSes within it for the shortest closed walk.
    """
    sccs = _tarjan_sccs(residual, succ)
    cyclic = [c for c in sccs if len(c) > 1]
    if not cyclic:
        return []
    scc = set(min(cyclic, key=len))
    starts = sorted(scc) if len(scc) <= _MIN_CYCLE_BFS_CAP else [min(scc)]
    best: list[OpId] = []
    for start in starts:
        cycle = _shortest_cycle_through(start, scc, succ)
        if cycle and (not best or len(cycle) < len(best)):
            best = cycle
            if len(best) == 2:
                break
    return best


def _shortest_cycle_through(
    start: OpId, scc: set[OpId], succ: dict[OpId, list[OpId]]
) -> list[OpId]:
    """BFS for the shortest path ``start -> ... -> start`` within ``scc``."""
    parent: dict[OpId, OpId] = {}
    frontier = deque([start])
    seen = {start}
    while frontier:
        op = frontier.popleft()
        for nxt in succ[op]:
            if nxt not in scc:
                continue
            if nxt == start:
                path = [op]
                while op != start:
                    op = parent[op]
                    path.append(op)
                path.reverse()
                return path
            if nxt not in seen:
                seen.add(nxt)
                parent[nxt] = op
                frontier.append(nxt)
    return []


def _tarjan_sccs(
    nodes: set[OpId], succ: dict[OpId, list[OpId]]
) -> list[list[OpId]]:
    """Iterative Tarjan restricted to ``nodes``."""
    index_of: dict[OpId, int] = {}
    lowlink: dict[OpId, int] = {}
    on_stack: set[OpId] = set()
    stack: list[OpId] = []
    sccs: list[list[OpId]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[OpId, int]] = [(root, 0)]
        while work:
            op, child_i = work[-1]
            if child_i == 0:
                index_of[op] = lowlink[op] = counter
                counter += 1
                stack.append(op)
                on_stack.add(op)
            advanced = False
            children = [w for w in succ[op] if w in nodes]
            while child_i < len(children):
                child = children[child_i]
                child_i += 1
                if child not in index_of:
                    work[-1] = (op, child_i)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[op] = min(lowlink[op], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[op] == index_of[op]:
                scc: list[OpId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == op:
                        break
                sccs.append(scc)
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[op])
    return sccs
