"""Static analysis of pipeline schedules.

Proves a schedule deadlock-free, channel-safe, and memory-correct
before it reaches the simulator or the numerical runtime — the role a
race detector / sanitizer plays in a training stack.  See
``docs/verification.md`` for the invariant catalogue and worked
examples, and ``python -m repro verify`` for the CLI.
"""

from repro.schedules.verify.core import (
    ALL_RULES,
    SAFETY_RULES,
    assert_clean,
    ensure_verified,
    verify_schedule,
)
from repro.schedules.verify.deps import ScheduleIndex, check_structure
from repro.schedules.verify.diagnostics import (
    RULES,
    Finding,
    Report,
    Rule,
    Severity,
)
from repro.schedules.verify.liveness import StagePeak, check_liveness

__all__ = [
    "ALL_RULES",
    "RULES",
    "SAFETY_RULES",
    "Finding",
    "Report",
    "Rule",
    "ScheduleIndex",
    "Severity",
    "StagePeak",
    "assert_clean",
    "check_liveness",
    "check_structure",
    "ensure_verified",
    "verify_schedule",
]
