"""Static activation liveness and memory lint (LV/AN rules).

Walks each stage's program under the Section 4.5 activation model —
the same accounting the discrete-event executor's ledger applies at
simulation time, but derived purely from the op table:

* ``F(mb, sl, c)`` materializes one slice-activation
  (``1/(v*p*s)`` of ``A``) on its stage, live until consumed;
* with a fused backward, ``B`` consumes and frees it;
* with a split backward, ``B`` additionally materializes the
  activation gradients and each of the ``g`` deferred ``W`` GEMMs
  releases a ``1/g`` share of both.

Because memory on a stage changes only at that stage's own ops, and a
stage executes its program strictly in order, the per-stage peak is a
*static* property of the program — no timing needed.  That is what
makes the closed-form cross-check (AN001) possible: the walked peak of
the peak stage must not exceed the method's Table 3 expression.

Defects reported:

* LV001 — an op consumes activation state that is not live (freed by
  an earlier consumer, or never materialized);
* LV002 — activation state still pinned at iteration end (a leak that
  compounds across iterations);
* AN001 — the walked peak exceeds the closed form, anchored at the
  first op that pushes memory past the bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedules.base import OpId, OpKind, Schedule
from repro.schedules.graph import KIND_B, KIND_F, ScheduleGraph
from repro.schedules.verify.diagnostics import Finding

#: Numerical slack for comparing sums of activation units against the
#: closed forms (both are exact in infinite precision).
_UNIT_TOL = 1e-6

#: Cap on individually reported leaked/violating ops per stage.
_MAX_DETAIL = 4


@dataclass
class StagePeak:
    """Outcome of walking one stage's program."""

    stage: int
    peak_units: float  #: peak pinned memory, activations + act-grads
    peak_activation_units: float  #: peak pinned activations only
    peak_op: OpId | None  #: first op at which ``peak_units`` is reached


def _check_liveness_graph(
    graph: ScheduleGraph, actgrad_factor: float
) -> tuple[list[Finding], list[StagePeak]]:
    """The same per-stage walk over the compiled graph.

    Keys the ``live``/``b_done`` state on the graph's integer cell
    index instead of ``(mb, sl, c)`` tuples — no tuple allocation or
    hashing per op — and accumulates in identical order, so peaks match
    the dict walk bit for bit.  Ints sort like the tuples they encode,
    so leak listings come out in the same order too.
    """
    problem = graph.problem
    unit = problem.activation_units_per_op
    gemms = problem.wgrad_gemms
    split = problem.split_backward
    s, chunks = problem.num_slices, problem.num_chunks
    ops, kind, cell = graph.ops, graph.kind, graph.cell
    findings: list[Finding] = []
    peaks: list[StagePeak] = []

    for stage, (lo, hi) in enumerate(graph.stage_bounds):
        live: dict[int, int] = {}
        b_done: set[int] = set()
        current = 0.0
        act_current = 0.0
        peak = 0.0
        act_peak = 0.0
        peak_op: OpId | None = None
        violations = 0

        def violation(op: OpId, message: str, stage: int = stage) -> None:
            nonlocal violations
            violations += 1
            if violations <= _MAX_DETAIL:
                findings.append(
                    Finding("LV001", message, stage=stage, op=op)
                )

        for i in range(lo, hi):
            key = cell[i]
            kc = kind[i]
            if kc == KIND_F:
                if key in live:
                    op = ops[i]
                    violation(
                        op,
                        f"{op} re-materializes an activation that is "
                        f"still live (earlier forward not yet consumed)",
                    )
                live[key] = gemms if split else 1
                current += unit
                act_current += unit
            elif kc == KIND_B:
                if key not in live:
                    op = ops[i]
                    violation(
                        op,
                        f"{op} consumes activations of F{op.microbatch}."
                        f"{op.slice_idx}c{op.chunk} that are not live on "
                        f"stage {stage} (freed or never materialized)",
                    )
                elif key in b_done:
                    op = ops[i]
                    violation(
                        op,
                        f"{op} re-runs a backward whose activations are "
                        f"already being drained by W GEMMs",
                    )
                if split:
                    b_done.add(key)
                    current += unit * actgrad_factor
                else:
                    live.pop(key, None)
                    current -= unit
                    act_current -= unit
            else:  # W
                if key not in b_done:
                    op = ops[i]
                    violation(
                        op,
                        f"{op} runs before its backward B{op.microbatch}."
                        f"{op.slice_idx}c{op.chunk} produced the "
                        f"activation gradients it consumes",
                    )
                elif key not in live or live[key] <= 0:
                    op = ops[i]
                    violation(
                        op,
                        f"{op} releases an activation share of "
                        f"F{op.microbatch}.{op.slice_idx}c{op.chunk} that "
                        f"was already freed (use-after-free)",
                    )
                else:
                    live[key] -= 1
                    if live[key] == 0:
                        del live[key]
                    current -= unit * (1.0 + actgrad_factor) / gemms
                    act_current -= unit / gemms
            if current > peak + 1e-12:
                peak = current
                peak_op = ops[i]
            if act_current > act_peak:
                act_peak = act_current

        if violations > _MAX_DETAIL:
            findings.append(
                Finding(
                    "LV001",
                    f"... and {violations - _MAX_DETAIL} more liveness "
                    f"violation(s) on stage {stage}",
                    stage=stage,
                )
            )
        if live:
            leaked = sorted(live)[:_MAX_DETAIL]
            detail = ", ".join(
                f"F{k // (s * chunks)}.{(k // chunks) % s}c{k % chunks}"
                for k in leaked
            )
            suffix = ", ..." if len(live) > _MAX_DETAIL else ""
            findings.append(
                Finding(
                    "LV002",
                    f"stage {stage} ends the iteration with {len(live)} "
                    f"activation(s) still pinned ({detail}{suffix}); "
                    f"~{len(live) * unit:.4f} A leaked per iteration",
                    stage=stage,
                    witness=tuple(
                        f"F{k // (s * chunks)}.{(k // chunks) % s}"
                        f"c{k % chunks}: materialized but never fully "
                        f"released"
                        for k in leaked
                    ),
                )
            )
        peaks.append(
            StagePeak(
                stage=stage,
                peak_units=peak,
                peak_activation_units=act_peak,
                peak_op=peak_op,
            )
        )
    return findings, peaks


def check_liveness(
    schedule: Schedule,
    actgrad_factor: float = 1.0,
    graph: ScheduleGraph | None = None,
) -> tuple[list[Finding], list[StagePeak]]:
    """Lint every stage program; returns findings and per-stage peaks."""
    if graph is not None:
        return _check_liveness_graph(graph, actgrad_factor)
    problem = schedule.problem
    unit = problem.activation_units_per_op
    gemms = problem.wgrad_gemms
    findings: list[Finding] = []
    peaks: list[StagePeak] = []

    for program in schedule.programs:
        stage = program.stage
        # (mb, sl, c) -> number of W GEMM shares still to release;
        # fused-backward activations use a single share.
        live: dict[tuple[int, int, int], int] = {}
        b_done: set[tuple[int, int, int]] = set()
        current = 0.0
        act_current = 0.0
        peak = 0.0
        act_peak = 0.0
        peak_op: OpId | None = None
        violations = 0

        def violation(op: OpId, message: str) -> None:
            nonlocal violations
            violations += 1
            if violations <= _MAX_DETAIL:
                findings.append(
                    Finding("LV001", message, stage=stage, op=op)
                )

        for op in program.ops:
            key = (op.microbatch, op.slice_idx, op.chunk)
            if op.kind is OpKind.F:
                if key in live:
                    violation(
                        op,
                        f"{op} re-materializes an activation that is "
                        f"still live (earlier forward not yet consumed)",
                    )
                live[key] = gemms if problem.split_backward else 1
                current += unit
                act_current += unit
            elif op.kind is OpKind.B:
                if key not in live:
                    violation(
                        op,
                        f"{op} consumes activations of F{op.microbatch}."
                        f"{op.slice_idx}c{op.chunk} that are not live on "
                        f"stage {stage} (freed or never materialized)",
                    )
                elif key in b_done:
                    violation(
                        op,
                        f"{op} re-runs a backward whose activations are "
                        f"already being drained by W GEMMs",
                    )
                if problem.split_backward:
                    b_done.add(key)
                    current += unit * actgrad_factor
                else:
                    live.pop(key, None)
                    current -= unit
                    act_current -= unit
            else:  # W
                if key not in b_done:
                    violation(
                        op,
                        f"{op} runs before its backward B{op.microbatch}."
                        f"{op.slice_idx}c{op.chunk} produced the "
                        f"activation gradients it consumes",
                    )
                elif key not in live or live[key] <= 0:
                    violation(
                        op,
                        f"{op} releases an activation share of "
                        f"F{op.microbatch}.{op.slice_idx}c{op.chunk} that "
                        f"was already freed (use-after-free)",
                    )
                else:
                    live[key] -= 1
                    if live[key] == 0:
                        del live[key]
                    current -= unit * (1.0 + actgrad_factor) / gemms
                    act_current -= unit / gemms
            if current > peak + 1e-12:
                peak = current
                peak_op = op
            act_peak = max(act_peak, act_current)

        if violations > _MAX_DETAIL:
            findings.append(
                Finding(
                    "LV001",
                    f"... and {violations - _MAX_DETAIL} more liveness "
                    f"violation(s) on stage {stage}",
                    stage=stage,
                )
            )
        if live:
            leaked = sorted(live)[:_MAX_DETAIL]
            detail = ", ".join(
                f"F{mb}.{sl}c{c}" for mb, sl, c in leaked
            )
            suffix = ", ..." if len(live) > _MAX_DETAIL else ""
            findings.append(
                Finding(
                    "LV002",
                    f"stage {stage} ends the iteration with {len(live)} "
                    f"activation(s) still pinned ({detail}{suffix}); "
                    f"~{len(live) * unit:.4f} A leaked per iteration",
                    stage=stage,
                    witness=tuple(
                        f"F{mb}.{sl}c{c}: materialized but never fully "
                        f"released"
                        for mb, sl, c in leaked
                    ),
                )
            )
        peaks.append(
            StagePeak(
                stage=stage,
                peak_units=peak,
                peak_activation_units=act_peak,
                peak_op=peak_op,
            )
        )
    return findings, peaks


def check_closed_form(
    schedule: Schedule, method: str, peaks: list[StagePeak]
) -> list[Finding]:
    """AN001: the walked peak must not exceed the Table 3 closed form.

    Applies to methods with a Table 3 activation-memory row and a fused
    backward (the closed forms model activations; split-backward
    methods additionally pin deferred activation gradients, which Table
    3 prices separately — see ``docs/verification.md``).  Deliberate
    low-memory variants (smaller ``f``) sit *below* the bound, so only
    an excess is a defect.
    """
    from repro.schedules.analysis import analyze

    problem = schedule.problem
    if problem.split_backward:
        return []
    try:
        expected = analyze(
            method,
            problem.num_stages,
            problem.num_microbatches,
            s=problem.num_slices,
            v=problem.virtual_size,
        )
    except (KeyError, ValueError):
        return []  # no closed form for this method/shape
    worst = max(peaks, key=lambda pk: pk.peak_activation_units)
    bound = expected.memory_units
    if worst.peak_activation_units <= bound + _UNIT_TOL:
        return []
    first = _first_excess_op(schedule, worst.stage, bound)
    return [
        Finding(
            "AN001",
            f"peak activation memory {worst.peak_activation_units:.4f} A "
            f"on stage {worst.stage} exceeds the {expected.method} closed "
            f"form {bound:.4f} A (Table 3)",
            stage=worst.stage,
            op=first,
            witness=(
                f"first op past the bound: {first}",
                f"closed form: {expected.method}(p={problem.num_stages}, "
                f"n={problem.num_microbatches}, s={problem.num_slices}, "
                f"v={problem.virtual_size}) = {bound:.4f} A",
            ),
        )
    ]


def _first_excess_op(
    schedule: Schedule, stage: int, bound: float
) -> OpId | None:
    """First op on ``stage`` whose execution pushes memory past ``bound``."""
    problem = schedule.problem
    unit = problem.activation_units_per_op
    current = 0.0
    for op in schedule.programs[stage].ops:
        if op.kind is OpKind.F:
            current += unit
        elif op.kind is OpKind.B:
            current -= unit
        if current > bound + _UNIT_TOL:
            return op
    return None
