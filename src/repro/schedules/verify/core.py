"""Verifier entry points: rule selection, orchestration, enforcement.

Two tiers of checking:

* **Safety rules** (:data:`SAFETY_RULES`) — placement, coverage,
  duplication, deadlock: violating any of these makes a schedule
  unexecutable.  :func:`ensure_verified` enforces exactly this tier on
  the hot paths (schedule construction, simulator entry, numerical
  runtime entry) and caches the verdict on the schedule object so a
  schedule built and then simulated is checked once.
* **Full rule set** (:data:`ALL_RULES`) — additionally the FIFO
  channel-order model, the activation liveness/leak lint, and the
  Table 3 closed-form cross-check.  :func:`verify_schedule` runs any
  subset and returns a structured :class:`Report` instead of raising.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.schedules.base import Schedule, ScheduleError
from repro.schedules.graph import ScheduleGraph, compiled_graph, fingerprint
from repro.schedules.verify.channels import check_channels
from repro.schedules.verify.deps import check_deadlock, check_structure
from repro.schedules.verify.diagnostics import Finding, Report, Severity
from repro.schedules.verify.liveness import check_closed_form, check_liveness

#: Rules whose violation makes a schedule unexecutable.
SAFETY_RULES: tuple[str, ...] = (
    "ST001", "ST002", "ST003", "ST004", "ST005", "DL001",
)

#: Everything the verifier knows how to check.
ALL_RULES: tuple[str, ...] = SAFETY_RULES + (
    "CH001", "CH002", "CH003", "LV001", "LV002", "AN001",
)


def verify_schedule(
    schedule: Schedule,
    method: str | None = None,
    rules: Iterable[str] | None = None,
    actgrad_factor: float = 1.0,
) -> Report:
    """Statically verify ``schedule`` and return a :class:`Report`.

    Args:
        schedule: The schedule to analyze.
        method: Scheduling-method name (``"dapple"``, ``"svpp"``, ...);
            enables the AN001 closed-form cross-check when the method
            has a Table 3 row.
        rules: Rule ids to check (default: :data:`ALL_RULES`).  Checks
            whose rules are all excluded are skipped entirely.
        actgrad_factor: Size of one op's activation gradients relative
            to its activations, for the liveness ledger (matches the
            simulator's parameter).
    """
    selected = tuple(rules) if rules is not None else ALL_RULES
    wanted = set(selected)
    report = Report(schedule_name=schedule.name, checked_rules=selected)

    structure, index = check_structure(schedule)
    report.findings.extend(structure)
    if any(f.rule_id == "ST005" for f in structure):
        return _filtered(report, wanted)

    # Order-sensitive analyses need well-defined op positions; with
    # duplicated or foreign ops the program order is ambiguous, and the
    # structure findings already explain why.
    orderable = not (index.has_duplicates or index.has_foreign)

    # Structurally clean schedules (the hot path) get the compiled graph
    # IR: the deadlock, channel, and liveness analyses all walk its flat
    # arrays, and the simulator reuses the same cached graph.  Schedules
    # with structure findings keep the legacy dict-of-OpId walks, whose
    # diagnostics tolerate missing/duplicated/misplaced ops.
    graph: ScheduleGraph | None = None
    if not structure:
        graph = compiled_graph(schedule)

    if "DL001" in wanted and orderable:
        report.findings.extend(check_deadlock(schedule, index, graph))
    deadlocked = any(f.rule_id == "DL001" for f in report.findings)

    if wanted & {"CH001", "CH002", "CH003"} and orderable:
        report.findings.extend(check_channels(schedule, index, graph))

    if wanted & {"LV001", "LV002", "AN001"}:
        liveness, peaks = check_liveness(schedule, actgrad_factor, graph)
        report.findings.extend(liveness)
        # A deadlocked schedule never reaches iteration end; its peak
        # is not comparable to the steady-state closed form.
        if "AN001" in wanted and method is not None and not deadlocked:
            report.findings.extend(
                check_closed_form(schedule, method, peaks)
            )
    return _filtered(report, wanted)


def _filtered(report: Report, wanted: set[str]) -> Report:
    """Drop findings of rules the caller did not select."""
    report.findings = [f for f in report.findings if f.rule_id in wanted]
    return report


# The verdict cache shares the compiled graph's content fingerprint so
# both invalidate together when a schedule is mutated in place.
_fingerprint = fingerprint


def ensure_verified(schedule: Schedule, context: str = "") -> None:
    """Assert the safety tier; raise :class:`ScheduleError` with the
    rendered report on failure.

    The clean verdict is cached on the schedule object, keyed by a
    content fingerprint, so construction-time verification makes
    simulator/runtime entry nearly free.
    """
    token = _fingerprint(schedule)
    if getattr(schedule, "_verify_token", None) == token:
        return
    report = verify_schedule(schedule, rules=SAFETY_RULES)
    if not report.ok:
        prefix = f"{context}: " if context else ""
        raise ScheduleError(prefix + report.render_text())
    schedule._verify_token = token  # type: ignore[attr-defined]


def assert_clean(
    schedule: Schedule,
    method: str | None = None,
    actgrad_factor: float = 1.0,
) -> Report:
    """Run the full rule set; raise :class:`ScheduleError` on errors.

    Returns the report (which may still carry warnings/infos) when the
    schedule is clean.  This is the planner's rejection gate: the
    exception message is the complete rendered report, witnesses
    included, so a misgenerated configuration is actionable from the
    error alone.
    """
    report = verify_schedule(
        schedule, method=method, actgrad_factor=actgrad_factor
    )
    if not report.ok:
        raise ScheduleError(report.render_text())
    schedule._verify_token = _fingerprint(schedule)  # type: ignore[attr-defined]
    return report


def findings_of(report: Report, severity: Severity) -> list[Finding]:
    """Convenience filter used by the CLI renderers."""
    return [f for f in report.findings if f.severity is severity]
