"""Static FIFO channel-order checking (CH rules).

The single-process runtimes in this repository deliver cross-stage
tensors through keyed mailboxes, so any dependency-consistent
interleaving executes.  A real multi-process deployment is stricter:
each directed stage pair is a FIFO channel (a CUDA stream feeding a
NIC queue, an MPI/NCCL point-to-point ordering), sends happen in the
sender's program order, and receives block in the receiver's program
order.  A schedule whose receive order inverts its send order then
deadlocks — or silently hands the wrong tensor to a kernel — even
though the op-level dependency graph is acyclic.  This is the schedule
analogue of a data race: invisible under one legal interleaving,
fatal under another.

The model: every cross-stage dependency edge ``dep -> op`` is one
message on the channel ``(stage(dep), stage(op), payload kind)``.
Forward activations and backward gradients travel on separate channels
(distinct tags/streams, as in the runtime's ``forward``/``backward``
mailboxes and in Megatron-style p2p communication).  Within one
channel the send sequence and the receive sequence must agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.schedules.base import OpId, OpKind, Schedule
from repro.schedules.graph import ScheduleGraph
from repro.schedules.verify.deps import ScheduleIndex, _positions_of
from repro.schedules.verify.diagnostics import Finding

#: Cap on reorder findings per channel, to keep reports readable when a
#: whole phase of a program is shifted.
_MAX_REORDERS_PER_CHANNEL = 3


@dataclass(frozen=True)
class _Message:
    """One cross-stage tensor transfer implied by a dependency edge."""

    src: OpId  #: producing op (the send happens when it completes)
    dst: OpId  #: consuming op (the receive blocks until it arrives)
    send_pos: int  #: index of ``src`` in the sender's program
    recv_pos: int  #: index of ``dst`` in the receiver's program


_KIND_OF_CODE = (OpKind.F, OpKind.B, OpKind.W)


def _channels_from_graph(
    graph: ScheduleGraph,
) -> dict[tuple[int, int, OpKind], list[_Message]]:
    """Message lists for exactly the channels holding a FIFO reorder.

    Vectorized over the compiled edge arrays: cross-stage edges are
    grouped by channel ``(src stage, dst stage, payload kind)`` with a
    stable sort — which preserves the dense receive order the
    positions-dict walk produces — and a channel is *dirty* iff some
    adjacent same-channel send-position pair decreases.  Clean channels
    contribute no CH001 findings, so omitting them leaves
    :func:`check_channels`'s output unchanged; only the (rare) dirty
    channels get their ``_Message`` lists built, with the few ``OpId``\\ s
    the findings name decoded on demand — the full ops tuple is never
    materialized.
    """
    channels: dict[tuple[int, int, OpKind], list[_Message]] = {}
    cross = np.asarray(graph.pred_cross, dtype=bool)
    if not cross.any():
        return channels
    pred = np.asarray(graph.pred, dtype=np.int64)
    pred_indptr = np.asarray(graph.pred_indptr, dtype=np.int64)
    edge_op = np.repeat(
        np.arange(graph.num_ops, dtype=np.int64), np.diff(pred_indptr)
    )
    src = pred[cross]
    dst = edge_op[cross]
    stage = np.asarray(graph.stage, dtype=np.int64)
    kind = np.asarray(graph.kind, dtype=np.int64)
    pos = np.asarray(graph.pos, dtype=np.int64)
    num_stages = int(graph.problem.num_stages)
    channel = (stage[src] * num_stages + stage[dst]) * 3 + kind[src]
    order = np.argsort(channel, kind="stable")
    chan_sorted = channel[order]
    send_sorted = pos[src][order]
    same = chan_sorted[1:] == chan_sorted[:-1]
    descent = same & (np.diff(send_sorted) < 0)
    if not bool(descent.any()):
        return channels
    dirty = set(chan_sorted[:-1][descent].tolist())
    for k in np.nonzero(np.isin(channel, np.asarray(sorted(dirty))))[0]:
        j, i = int(src[k]), int(dst[k])
        key = (int(stage[j]), int(stage[i]), _KIND_OF_CODE[int(kind[j])])
        channels.setdefault(key, []).append(
            _Message(graph.op_at(j), graph.op_at(i), int(pos[j]), int(pos[i]))
        )
    return channels


def check_channels(
    schedule: Schedule,
    index: ScheduleIndex,
    graph: ScheduleGraph | None = None,
) -> list[Finding]:
    """FIFO order and send/recv matching for every stage-pair channel.

    A compiled ``graph`` certifies every op is present exactly once, so
    the unmatched-endpoint rules (CH002/CH003) cannot fire and only the
    FIFO order (CH001) needs checking — over the flat edge arrays.
    """
    if graph is not None:
        findings: list[Finding] = []
        for (src_stage, dst_stage, kind), messages in sorted(
            _channels_from_graph(graph).items(),
            key=lambda kv: (kv[0][0], kv[0][1], kv[0][2].value),
        ):
            findings.extend(
                _check_fifo(src_stage, dst_stage, kind, messages)
            )
        return findings
    problem = schedule.problem
    positions = index.positions or _positions_of(schedule)
    findings: list[Finding] = []
    channels: dict[tuple[int, int, OpKind], list[_Message]] = {}

    # One pass over present ops: each cross-stage dependency edge is a
    # message; unmatched endpoints are reported immediately.
    for op, (op_stage, op_pos) in positions.items():
        for dep in problem.deps(op):
            if not problem.is_cross_stage(dep, op):
                continue
            if dep not in positions:
                findings.append(
                    Finding(
                        "CH002",
                        f"{op} waits for a tensor from {dep}, which is "
                        f"not scheduled anywhere; the receive blocks "
                        f"forever",
                        stage=op_stage,
                        op=op,
                    )
                )
                continue
            dep_stage, dep_pos = positions[dep]
            key = (dep_stage, op_stage, dep.kind)
            channels.setdefault(key, []).append(
                _Message(dep, op, dep_pos, op_pos)
            )

    # The reverse direction: a present producer whose cross-stage
    # consumer is absent leaves a message in the channel forever.
    for op, (op_stage, _) in positions.items():
        for consumer in _cross_stage_consumers(problem, op):
            if consumer not in positions:
                findings.append(
                    Finding(
                        "CH003",
                        f"{op} sends a tensor to {consumer}, which is "
                        f"not scheduled anywhere; the message is never "
                        f"consumed",
                        stage=op_stage,
                        op=op,
                    )
                )

    for (src_stage, dst_stage, kind), messages in sorted(
        channels.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2].value)
    ):
        findings.extend(
            _check_fifo(src_stage, dst_stage, kind, messages)
        )
    return findings


def _check_fifo(
    src_stage: int, dst_stage: int, kind: OpKind, messages: list[_Message]
) -> list[Finding]:
    """Receive order must match send order on one FIFO channel."""
    findings: list[Finding] = []
    by_recv = sorted(messages, key=lambda m: m.recv_pos)
    prev = by_recv[0]
    for msg in by_recv[1:]:
        if msg.send_pos < prev.send_pos:
            name = f"stage {src_stage} -> stage {dst_stage} ({kind.value})"
            findings.append(
                Finding(
                    "CH001",
                    f"FIFO reorder on channel {name}: {msg.src}->{msg.dst} "
                    f"is sent before {prev.src}->{prev.dst} but received "
                    f"after it",
                    stage=dst_stage,
                    op=msg.dst,
                    witness=(
                        f"send order on stage {src_stage}: "
                        f"{msg.src} (#{msg.send_pos}) before "
                        f"{prev.src} (#{prev.send_pos})",
                        f"recv order on stage {dst_stage}: "
                        f"{prev.dst} (#{prev.recv_pos}) before "
                        f"{msg.dst} (#{msg.recv_pos})",
                        "an in-order receiver blocks on the first message "
                        "while the channel head holds the second",
                    ),
                )
            )
            if len(findings) >= _MAX_REORDERS_PER_CHANNEL:
                break
        else:
            prev = msg
    return findings


def _cross_stage_consumers(problem, op: OpId):
    """Ops that receive a cross-stage tensor produced by ``op``.

    Mirrors :meth:`PipelineProblem.deps` from the producer side; only
    F and B ops ever feed a different stage (W output is local).
    """
    mb, sl, c = op.microbatch, op.slice_idx, op.chunk
    if op.kind is OpKind.F and c < problem.num_chunks - 1:
        nxt = OpId(OpKind.F, mb, sl, c + 1)
        if problem.is_cross_stage(op, nxt):
            yield nxt
    elif op.kind is OpKind.B and c > 0:
        nxt = OpId(OpKind.B, mb, sl, c - 1)
        if problem.is_cross_stage(op, nxt):
            yield nxt
