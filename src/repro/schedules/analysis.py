"""Closed-form bubble-ratio and activation-memory expressions (Table 3).

Every expression returns the paper's analytical value; the test suite
cross-validates them against the discrete-event simulation of the
corresponding generated schedules.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MethodAnalysis:
    """Analytical bubble ratio and peak activation memory (units of A)."""

    method: str
    bubble_ratio: float
    memory_units: float


def dapple_analysis(p: int, n: int) -> MethodAnalysis:
    """DAPPLE row of Table 3 (both regimes)."""
    bubble = (p - 1) / (p - 1 + n)
    memory = min(1.0, n / p)
    return MethodAnalysis("dapple", bubble, memory)


def gpipe_analysis(p: int, n: int) -> MethodAnalysis:
    """GPipe: same bubble as DAPPLE, all micro-batches live."""
    bubble = (p - 1) / (p - 1 + n)
    return MethodAnalysis("gpipe", bubble, n / p)


def vpp_analysis(p: int, n: int, v: int) -> MethodAnalysis:
    """VPP row; the paper marks n < p unsupported."""
    if n < p:
        raise ValueError("Table 3 marks VPP unsupported for n < p")
    bubble = (p - 1) / (p - 1 + n * v)
    # All n*v chunk-forwards of a stage bound the live set from above.
    memory = min(1.0 + (p - 1) / (p * v), n / p)
    return MethodAnalysis("vpp", bubble, memory)


def hanayo_analysis(p: int, n: int, v: int) -> MethodAnalysis:
    """Hanayo row (wave count ``v``)."""
    if n >= p:
        bubble = (p - 1) / (p - 1 + n * v)
        memory = 1.0
    else:
        bubble = (v * p + n - 1 - n * v) / (v * p + n - 1)
        memory = n / p
    return MethodAnalysis("hanayo", bubble, min(memory, n / p) if n < p else memory)


def terapipe_analysis(p: int, n: int, s: int) -> MethodAnalysis:
    """TeraPipe row: slice-level GPipe."""
    bubble = (p - 1) / (n * s + p - 1)
    return MethodAnalysis("terapipe", bubble, n / p)


def svpp_analysis(p: int, n: int, s: int, v: int = 1) -> MethodAnalysis:
    """SVPP row — MEPipe's schedule, memory-optimal variant."""
    units = (v * max(p, s) + min(p, s) - 1) / (v * s * p)
    if n >= p:
        bubble = (p - 1) / (n * s * v + p - 1)
        memory = units
    else:
        lead = p - 1 + (v - 1) * max(p - s * n, 0)
        bubble = lead / (lead + n * v * s)
        memory = min(units, n / p)
    return MethodAnalysis("svpp", bubble, memory)


def svpp_limit_analysis(p: int, n: int) -> MethodAnalysis:
    """The ``s -> infinity`` limit row: zero bubble, ``A/p`` memory."""
    return MethodAnalysis("svpp-limit", 0.0, 1.0 / p)


def analyze(method: str, p: int, n: int, s: int = 1, v: int = 1) -> MethodAnalysis:
    """Dispatch to the right Table 3 row by method name."""
    key = method.lower()
    if key == "dapple":
        return dapple_analysis(p, n)
    if key == "gpipe":
        return gpipe_analysis(p, n)
    if key == "vpp":
        return vpp_analysis(p, n, v)
    if key == "hanayo":
        return hanayo_analysis(p, n, v)
    if key == "terapipe":
        return terapipe_analysis(p, n, s)
    if key in ("svpp", "mepipe"):
        return svpp_analysis(p, n, s, v)
    raise KeyError(f"no Table 3 row for method {method!r}")
