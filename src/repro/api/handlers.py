"""Execute typed API requests — the one code path behind every transport.

:func:`execute` maps each request dataclass from
:mod:`repro.api.types` onto the library's blessed entry points and
returns the matching typed response.  The CLI subcommands, the
``repro.service`` HTTP endpoints, and direct library callers all route
through here, so the three transports cannot drift: same validation,
same error taxonomy (:class:`~repro.api.types.RequestError`), same
result schemas.

Handlers raise :class:`RequestError` for anything that cannot be
executed (unknown method or rule ids, out-of-range shapes, schedules
the safety tier rejects); successful-but-failing outcomes (a dirty
report, an all-OOM sweep) come back as a response with ``ok=False``.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import TYPE_CHECKING, Any, Callable

from repro.api.types import (
    CapacityRequest,
    CapacityResponse,
    CheckModelRequest,
    CheckModelResponse,
    EvaluateRequest,
    EvaluateResponse,
    JsonDict,
    PlanRequest,
    PlanResponse,
    Request,
    RequestError,
    Response,
    ShapeSpec,
    SimulateRequest,
    SimulateResponse,
    VerifyRequest,
    VerifyResponse,
)
from repro.obs.events import NULL_SINK, EventSink

if TYPE_CHECKING:
    from repro.planner.parallel import SweepCache
    from repro.schedules.base import Schedule
    from repro.schedules.verify.diagnostics import Report


def _build_schedule(method: str, shape: ShapeSpec) -> "Schedule":
    """Build (problem, schedule) for a request shape.

    Mirrors the CLI's historical error mapping: unknown methods and
    out-of-range shapes are malformed requests (exit 2 / HTTP 400),
    while a generator or safety-tier rejection is a well-formed request
    the library refuses (exit 1 / HTTP 422).
    """
    from repro.schedules import ScheduleError, build_problem, build_schedule

    try:
        problem = build_problem(
            method,
            shape.stages,
            shape.microbatches,
            num_slices=shape.slices,
            virtual_size=shape.virtual,
            wgrad_gemms=shape.wgrad_gemms,
        )
        return build_schedule(
            method, problem, forwards_before_first_backward=shape.forwards
        )
    except KeyError as exc:
        raise RequestError(
            exc.args[0] if exc.args else str(exc), code="unknown-method"
        ) from None
    except ValueError as exc:
        raise RequestError(str(exc), code="invalid-shape") from None
    except ScheduleError as exc:
        raise RequestError(
            str(exc), code="schedule-rejected", exit_status=1, http_status=422
        ) from None


def _check_rules(
    rules: tuple[str, ...] | None, known: tuple[str, ...]
) -> list[str] | None:
    """Validate a rule selector against a catalogue (``None`` = all)."""
    if rules is None:
        return None
    normalized = [r.strip().upper() for r in rules if r.strip()]
    unknown = [r for r in normalized if r not in known]
    if unknown:
        raise RequestError(
            f"unknown rule(s) {unknown}; known: {', '.join(known)}",
            code="unknown-rule",
        )
    return normalized


def _merge_capacity_findings(
    report: "Report", schedule: "Schedule", rules: list[str] | None
) -> None:
    """Fold the CP rule family into a verifier/analyzer report in place
    (same catalogue, so findings render and filter uniformly)."""
    from repro.analysis.capacity import check_capacities

    cp = check_capacities(schedule)
    report.findings.extend(
        f for f in cp.findings if rules is None or f.rule_id in rules
    )
    report.checked_rules = tuple(report.checked_rules) + tuple(
        r for r in cp.checked_rules if rules is None or r in rules
    )


def _handle_verify(
    request: VerifyRequest, sink: EventSink, cache: "SweepCache | None"
) -> VerifyResponse:
    from repro.analysis.capacity import CAPACITY_RULES
    from repro.schedules.verify import ALL_RULES, verify_schedule

    known = tuple(ALL_RULES)
    if request.capacity:
        known += tuple(CAPACITY_RULES)
    rules = _check_rules(request.rules, known)
    schedule = _build_schedule(request.method, request.shape)
    verify_rules = (
        None if rules is None else [r for r in rules if r in ALL_RULES]
    )
    report = verify_schedule(
        schedule, method=request.method, rules=verify_rules
    )
    if request.capacity:
        _merge_capacity_findings(report, schedule, rules)
    return VerifyResponse(
        ok=report.ok, reports=(report.to_dict(),), text=report.render_text()
    )


def _handle_check_model(
    request: CheckModelRequest, sink: EventSink, cache: "SweepCache | None"
) -> CheckModelResponse:
    from repro.analysis import MODEL_RULES, analyze_spec
    from repro.analysis.capacity import CAPACITY_RULES
    from repro.model import get_model
    from repro.model.spec import tiny_spec

    known = tuple(MODEL_RULES)
    if request.capacity:
        known += tuple(CAPACITY_RULES)
    rules = _check_rules(request.rules, known)
    if request.model == "tiny":
        # Enough decoder layers that embedding + head balance against
        # them under any p×v chunking the shape (or the grid's v=2
        # entries) requests — the Section 7.1 layout.
        v = max(request.shape.virtual, 2)
        spec = tiny_spec(num_layers=request.shape.stages * v - 2)
    else:
        try:
            spec = get_model(request.model)
        except KeyError as exc:
            raise RequestError(
                exc.args[0] if exc.args else str(exc), code="unknown-model"
            ) from None

    if request.method == "grid":
        # The E0 acceptance grid: every scheduling method in its
        # reference configuration.
        from repro.experiments.e0 import METHOD_SETUPS

        setups = [
            (method, dict(kwargs)) for method, kwargs in METHOD_SETUPS
        ]
    else:
        setups = [(request.method, {})]

    model_rules = (
        None if rules is None else [r for r in rules if r in MODEL_RULES]
    )
    reports = []
    for method, overrides in setups:
        shape = request.shape
        if overrides:
            shape = ShapeSpec(
                stages=shape.stages,
                microbatches=shape.microbatches,
                slices=int(overrides.get("num_slices", shape.slices)),
                virtual=int(overrides.get("virtual_size", shape.virtual)),
                forwards=shape.forwards,
                wgrad_gemms=int(
                    overrides.get("wgrad_gemms", shape.wgrad_gemms)
                ),
            )
        schedule = _build_schedule(method, shape)
        report = analyze_spec(spec, schedule, rules=model_rules)
        if request.capacity:
            _merge_capacity_findings(report, schedule, rules)
        reports.append(report)
    return CheckModelResponse(
        ok=all(r.ok for r in reports),
        reports=tuple(r.to_dict() for r in reports),
        text="\n".join(r.render_text() for r in reports),
    )


def _handle_evaluate(
    request: EvaluateRequest, sink: EventSink, cache: "SweepCache | None"
) -> EvaluateResponse:
    from repro.analysis.evaluate import (
        evaluate_schedule,
        iteration_time_bounds,
    )
    from repro.sim import UniformCost

    schedule = _build_schedule(request.method, request.shape)
    cost = UniformCost(schedule.problem, tw=request.tw)
    evaluation = evaluate_schedule(schedule, cost)
    bounds = iteration_time_bounds(schedule.problem, cost)
    bounds_dict = (
        None
        if bounds is None
        else {"lower_s": bounds.lower, "upper_s": bounds.upper}
    )
    if request.check:
        from repro.sim.crossval import cross_validate

        report = cross_validate(
            schedule, cost, evaluation=evaluation, bounds=bounds
        )
        return EvaluateResponse(
            ok=report.ok,
            evaluation=evaluation.to_dict(),
            bounds=bounds_dict,
            report=report.to_dict(),
            text=report.render_text(),
        )
    text = evaluation.render_text()
    if bounds is not None:
        text += (
            f"\nbuild-free bounds: [{bounds.lower:.6g}, "
            f"{bounds.upper:.6g}] s"
        )
    return EvaluateResponse(
        ok=True,
        evaluation=evaluation.to_dict(),
        bounds=bounds_dict,
        text=text,
    )


def _handle_capacity(
    request: CapacityRequest, sink: EventSink, cache: "SweepCache | None"
) -> CapacityResponse:
    from repro.analysis.capacity import (
        CAPACITY_RULES,
        certify_capacities,
        check_capacities,
        cross_validate_capacities,
        infer_capacities,
    )
    from repro.schedules import ScheduleError
    from repro.schedules.verify.diagnostics import Report
    from repro.sim import UniformCost

    if request.mode not in ("deadlock-free", "backpressure-free", "full"):
        raise RequestError(
            f"unknown capacity mode {request.mode!r}", code="unknown-mode"
        )
    rules = _check_rules(request.rules, tuple(CAPACITY_RULES))
    schedule = _build_schedule(request.method, request.shape)
    cost = UniformCost(schedule.problem, tw=request.tw)
    try:
        plan = infer_capacities(schedule, cost)
    except ScheduleError as exc:
        raise RequestError(
            str(exc), code="capacity-rejected", exit_status=1, http_status=422
        ) from None
    certificate = None
    if request.check:
        certificate = certify_capacities(schedule, cost, mode=request.mode)
        report = cross_validate_capacities(schedule, cost, certificate)
    else:
        report = check_capacities(
            schedule, capacities=plan.capacities(request.mode), cost=cost
        )
    if rules is not None:
        report = Report(
            schedule_name=report.schedule_name,
            findings=[f for f in report.findings if f.rule_id in rules],
            checked_rules=tuple(
                r for r in report.checked_rules if r in rules
            ),
        )
    lines = [f"capacity plan for {schedule.name} (mode: {request.mode}):"]
    for channel in plan.channels:
        lines.append(f"  {channel.describe()}")
    if plan.unbounded_makespan is not None:
        lines.append(f"  unbounded makespan: {plan.unbounded_makespan:.6g}")
    if certificate is not None:
        state = (
            "backpressure-free"
            if certificate.backpressure_free
            else "backpressured"
        )
        lines.append(
            f"  certificate: makespan {certificate.makespan:.6g} "
            f"({state}), cross-validated against the bounded simulator"
        )
    lines.append("")
    lines.append(report.render_text())
    return CapacityResponse(
        ok=report.ok,
        plan=plan.to_dict(),
        mode=request.mode,
        report=report.to_dict(),
        certificate=None if certificate is None else certificate.to_dict(),
        text="\n".join(lines),
    )


def _handle_simulate(
    request: SimulateRequest, sink: EventSink, cache: "SweepCache | None"
) -> SimulateResponse:
    from repro.sim import UniformCost, simulate

    schedule = _build_schedule(request.method, request.shape)
    result = simulate(
        schedule, UniformCost(schedule.problem, tw=request.tw), sink=sink
    )
    metrics = result.metrics()
    return SimulateResponse(
        ok=True,
        schedule=schedule.name,
        metrics=metrics.to_dict(),
        text=metrics.render_text(),
    )


def _json_safe_result(result: Any) -> JsonDict:
    """An ``EvalResult`` as a plain JSON dict (nested config included)."""
    data: JsonDict = asdict(result)
    return data


def _handle_plan(
    request: PlanRequest, sink: EventSink, cache: "SweepCache | None"
) -> PlanResponse:
    from repro.hardware import get_cluster
    from repro.model import get_model
    from repro.planner import SweepCache, search_method
    from repro.schedules import gencache

    if request.evaluator not in ("sim", "tiered", "grid"):
        raise RequestError(
            f"unknown search evaluator {request.evaluator!r}",
            code="unknown-evaluator",
        )
    try:
        spec = get_model(request.model)
        cluster = get_cluster(request.cluster)
    except KeyError as exc:
        raise RequestError(
            exc.args[0] if exc.args else str(exc), code="unknown-model"
        ) from None
    if cache is None and request.use_cache:
        cache = SweepCache()
    elif not request.use_cache:
        cache = None
    gen_before = gencache.snapshot()
    methods: list[JsonDict] = []
    for method in request.methods:
        try:
            result = search_method(
                method,
                spec,
                cluster,
                request.global_batch_size,
                max_spp=request.max_spp,
                max_vp=request.max_vp,
                min_dp=request.min_dp,
                jobs=request.jobs,
                cache=cache,
                sink=sink,
                evaluator=request.evaluator,
            )
        except KeyError as exc:
            raise RequestError(
                exc.args[0] if exc.args else str(exc), code="unknown-method"
            ) from None
        best = result.best
        methods.append(
            {
                "method": method,
                "best": None if best is None else _json_safe_result(best),
                "describe": None if best is None else best.describe(),
                "evaluated": len(result.evaluated),
                "skipped": [
                    {"config": s.config.describe(), "reason": s.reason}
                    for s in result.skipped
                ],
                "evaluator": result.evaluator,
            }
        )
    gen_after = gencache.snapshot()
    cache_stats = (
        None
        if cache is None
        else {"hits": cache.hits, "misses": cache.misses}
    )
    gen_stats = gencache.stats()
    gen_cache = {
        "hits": gen_after[0] - gen_before[0],
        "misses": gen_after[1] - gen_before[1],
        "size": int(gen_stats["size"]),
    }
    # An all-OOM sweep is still a successfully answered question — the
    # per-method entries say so; ``ok`` tracks executability, matching
    # the CLI's historical exit-0-on-OOM behavior.
    return PlanResponse(
        ok=True, methods=tuple(methods), cache=cache_stats,
        gen_cache=gen_cache,
    )


#: Handler per request type — the dispatch table behind every transport.
HANDLERS: dict[
    type[Request],
    Callable[[Request, EventSink, "SweepCache | None"], Response],
] = {
    PlanRequest: _handle_plan,  # type: ignore[dict-item]
    VerifyRequest: _handle_verify,  # type: ignore[dict-item]
    CheckModelRequest: _handle_check_model,  # type: ignore[dict-item]
    EvaluateRequest: _handle_evaluate,  # type: ignore[dict-item]
    CapacityRequest: _handle_capacity,  # type: ignore[dict-item]
    SimulateRequest: _handle_simulate,  # type: ignore[dict-item]
}


def execute(
    request: Request,
    *,
    sink: EventSink = NULL_SINK,
    cache: "SweepCache | None" = None,
) -> Response:
    """Execute one typed request and return its typed response.

    ``sink`` observes the execution on the telemetry bus (planner
    sweeps emit eval spans and cache counters; the service bridges
    this into per-job progress streams).  ``cache`` overrides the
    sweep cache for plan requests — the service passes its shared
    instance so concurrent tenants converge on one on-disk store.

    Raises :class:`RequestError` for unexecutable requests; responses
    with ``ok=False`` report executable-but-failing outcomes (dirty
    reports, all-OOM sweeps).
    """
    try:
        handler = HANDLERS[type(request)]
    except KeyError:
        raise RequestError(
            f"no handler for request type {type(request).__name__}",
            code="unknown-kind",
        ) from None
    return handler(request, sink, cache)
