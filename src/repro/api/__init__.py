"""Stable facade over the library's blessed entry points.

Downstream code (notebooks, experiment drivers, external tooling)
should import from here; internal module paths may move between
releases, but these names will not.  One import gives the full
pipeline-research loop::

    from repro import api

    problem = api.build_problem("mepipe", 4, 8, num_slices=4,
                                wgrad_gemms=3)
    schedule = api.build_schedule("mepipe", problem)
    api.verify(schedule).ok                  # static safety tier
    sim = api.simulate(schedule, cost)       # discrete-event replay
    print(sim.metrics().render_text())       # uniform result API

The facade is a package: :mod:`repro.api.types` defines the typed,
frozen request/response dataclasses that are the single wire and
programmatic surface (``PlanRequest``, ``VerifyRequest``, ... — each
with ``to_json``/``from_json`` round-trips and a dedup
``fingerprint()``), and :mod:`repro.api.handlers` executes them::

    response = api.execute(api.EvaluateRequest(
        method="mepipe", shape=api.ShapeSpec(slices=4, wgrad_gemms=3)))
    print(response.text)

The HTTP service (:mod:`repro.service`, ``repro serve``) and the CLI
subcommands consume exactly these dataclasses, so the three transports
cannot drift.

Everything observable rides the telemetry bus — pass any sink
(:class:`MemorySink`, :class:`JsonlSink`, :class:`ChromeTraceSink`,
:class:`QueueSink`) to :func:`simulate`, :meth:`PipelineRuntime.run`,
:func:`plan`, or :func:`execute`; the default :data:`NULL_SINK` keeps
uninstrumented runs free.

Renamed symbols stay importable through a ``DeprecationWarning`` shim
(module ``__getattr__``): e.g. ``api.cross_validate`` still resolves
but warns in favor of :func:`cross_validate_evaluation`.
"""

from __future__ import annotations

import warnings

from repro.analysis import analyze_spec as check_model
from repro.analysis.capacity import (
    CapacityCertificate,
    CapacityPlan,
    certify_capacities,
    check_capacities,
    cross_validate_capacities,
    infer_capacities,
)
from repro.analysis.evaluate import (
    AnalyticEvaluation,
    TimeBounds,
    evaluate_schedule,
    iteration_time_bounds,
)
from repro.api.handlers import execute
from repro.api.types import (
    SCHEMA_VERSION,
    CapacityRequest,
    CapacityResponse,
    CheckModelRequest,
    CheckModelResponse,
    ErrorInfo,
    EvaluateRequest,
    EvaluateResponse,
    PlanRequest,
    PlanResponse,
    Request,
    RequestError,
    Response,
    ShapeSpec,
    SimulateRequest,
    SimulateResponse,
    VerifyRequest,
    VerifyResponse,
    request_from_dict,
    response_from_dict,
)
from repro.hardware import ClusterSpec, GPUSpec, get_cluster
from repro.model import ModelSpec, get_model, tiny_spec
from repro.nn import build_model
from repro.obs import (
    NULL_SINK,
    ChromeTraceSink,
    Event,
    EventSink,
    IterationMetrics,
    JsonlSink,
    MemorySink,
    NullSink,
    PipelineResult,
    QueueSink,
    TeeSink,
    chrome_trace,
    iteration_metrics,
    record_iteration,
)
from repro.parallel import ParallelConfig
from repro.pipeline import PipelineRuntime, RunResult
from repro.planner import SearchResult, SweepCache, evaluate_config
from repro.planner import search_method as plan
from repro.profiler import Profiler
from repro.schedules import (
    PipelineProblem,
    Schedule,
    ScheduleError,
    build_problem,
    build_schedule,
)
from repro.schedules.verify import verify_schedule as verify
from repro.sim import ClusterCost, SimResult, UniformCost, simulate
from repro.sim.crossval import cross_validate as cross_validate_evaluation

__all__ = [
    "AnalyticEvaluation",
    "CapacityCertificate",
    "CapacityPlan",
    "CapacityRequest",
    "CapacityResponse",
    "CheckModelRequest",
    "CheckModelResponse",
    "ChromeTraceSink",
    "ClusterCost",
    "ClusterSpec",
    "ErrorInfo",
    "EvaluateRequest",
    "EvaluateResponse",
    "Event",
    "EventSink",
    "GPUSpec",
    "IterationMetrics",
    "JsonlSink",
    "MemorySink",
    "ModelSpec",
    "NULL_SINK",
    "NullSink",
    "ParallelConfig",
    "PipelineProblem",
    "PipelineResult",
    "PipelineRuntime",
    "PlanRequest",
    "PlanResponse",
    "Profiler",
    "QueueSink",
    "Request",
    "RequestError",
    "Response",
    "RunResult",
    "SCHEMA_VERSION",
    "Schedule",
    "ScheduleError",
    "SearchResult",
    "ShapeSpec",
    "SimResult",
    "SimulateRequest",
    "SimulateResponse",
    "SweepCache",
    "TeeSink",
    "TimeBounds",
    "UniformCost",
    "VerifyRequest",
    "VerifyResponse",
    "build_model",
    "build_problem",
    "build_schedule",
    "certify_capacities",
    "check_capacities",
    "check_model",
    "chrome_trace",
    "cross_validate_capacities",
    "cross_validate_evaluation",
    "evaluate_config",
    "evaluate_schedule",
    "execute",
    "get_cluster",
    "get_model",
    "infer_capacities",
    "iteration_metrics",
    "iteration_time_bounds",
    "plan",
    "record_iteration",
    "request_from_dict",
    "response_from_dict",
    "simulate",
    "tiny_spec",
    "verify",
]

#: Renamed facade symbols: old name -> canonical name.  Old imports
#: keep working through ``__getattr__`` below, with a
#: ``DeprecationWarning`` pointing at the caller.
_RENAMED = {
    "cross_validate": "cross_validate_evaluation",
}


def __getattr__(name: str) -> object:
    try:
        canonical = _RENAMED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"repro.api.{name} is deprecated; use repro.api.{canonical}",
        DeprecationWarning,
        stacklevel=2,
    )
    return globals()[canonical]
