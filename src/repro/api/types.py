"""Typed wire surface of the blessed API: request/response dataclasses.

Every operation the library exposes as a service endpoint, a CLI
subcommand, or a blessed programmatic call is described by one frozen
request dataclass (:class:`PlanRequest`, :class:`VerifyRequest`, ...)
and answered by one frozen response dataclass.  All of them round-trip
through JSON (``to_json`` / ``from_json``), carry the wire schema
version (:data:`SCHEMA_VERSION`), and are registered by ``kind`` so a
transport can dispatch on the payload alone
(:func:`request_from_dict` / :func:`response_from_dict`).

The dataclasses are the *single* surface: ``repro serve`` decodes them
off HTTP bodies, the CLI subcommands build them from argparse flags,
and library callers hand them to :func:`repro.api.execute` directly —
one code path, three transports.

Requests also expose a content :meth:`Request.fingerprint` — a stable
SHA-256 over everything that determines the result (including the
planner's cache-schema and analyzer version vector, mirroring
:func:`repro.planner.parallel.eval_fingerprint`), and excluding knobs
that are proven not to change results (worker count, cache reuse).
The service deduplicates concurrent identical requests on it: two
in-flight plans with equal fingerprints share one computation and one
byte-identical response.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from hashlib import sha256
from typing import Any, ClassVar, get_type_hints

#: Version of the wire schema spoken by every request/response payload
#: (and therefore by the HTTP service and ``repro client``).  Bump on
#: any incompatible change to the dataclasses below.
SCHEMA_VERSION = 1

#: JSON-shaped payload fragments (reports, plans, metrics) whose inner
#: schema is owned by the producing subsystem (``Report.to_dict`` etc.).
JsonDict = dict[str, Any]


class RequestError(Exception):
    """A request that cannot be executed, with transport-ready status.

    ``exit_status`` is the CLI exit code (2 for malformed requests —
    unknown method, bad rule id, out-of-range shape — and 1 for
    requests the safety tier rejects), ``http_status`` the matching
    HTTP status (400 / 422), and ``code`` a stable machine-readable
    tag for structured error payloads.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "bad-request",
        exit_status: int = 2,
        http_status: int = 400,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.code = code
        self.exit_status = exit_status
        self.http_status = http_status

    def to_error(self) -> ErrorInfo:
        """The structured wire form of this error."""
        return ErrorInfo(code=self.code, message=self.message)


@dataclass(frozen=True)
class ShapeSpec:
    """The (p, n, s, v, f, g) problem shape every schedule-shaped
    request shares — the typed form of the CLI's shape flags."""

    stages: int = 4
    microbatches: int = 4
    slices: int = 1
    virtual: int = 1
    forwards: int | None = None
    wgrad_gemms: int = 1

    def to_dict(self) -> JsonDict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: JsonDict) -> ShapeSpec:
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise RequestError(
                f"unknown shape field(s) {unknown}; known: {sorted(known)}"
            )
        return cls(**data)


#: Shared immutable default shape for request dataclasses.
DEFAULT_SHAPE = ShapeSpec()


def _decode_value(hint: Any, value: Any) -> Any:
    """Decode one JSON field into its dataclass-field shape.

    The wire types are deliberately small: scalars pass through,
    ``list`` becomes ``tuple`` (with per-element decoding), and nested
    :class:`ShapeSpec` blocks are revived.  Optional hints unwrap to
    their non-``None`` arm.
    """
    if value is None:
        return None
    origin = getattr(hint, "__origin__", None)
    args = getattr(hint, "__args__", ())
    if origin is None and hint is ShapeSpec:
        if not isinstance(value, dict):
            raise RequestError(f"shape must be an object, got {type(value).__name__}")
        return ShapeSpec.from_dict(value)
    # X | None and typing.Union both expose __args__.
    if args and type(None) in args:
        inner = [a for a in args if a is not type(None)]
        if len(inner) == 1:
            return _decode_value(inner[0], value)
    if origin is tuple:
        if not isinstance(value, (list, tuple)):
            raise RequestError(f"expected a list, got {type(value).__name__}")
        element = args[0] if args else Any
        return tuple(_decode_value(element, item) for item in value)
    return value


@dataclass(frozen=True)
class Message:
    """Base of every request/response: kind-tagged JSON round-trips."""

    #: Wire tag; unique across requests and across responses.
    KIND: ClassVar[str] = ""

    def to_dict(self) -> JsonDict:
        """JSON-serializable form, envelope fields first."""
        out: JsonDict = {"kind": self.KIND, "schema_version": SCHEMA_VERSION}
        out.update(asdict(self))
        return out

    def to_json(self) -> str:
        """Canonical JSON — sorted keys, compact separators — so equal
        messages serialize to identical bytes."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: JsonDict) -> Any:
        """Inverse of :meth:`to_dict`; rejects unknown fields, a
        mismatched ``kind``, and an incompatible ``schema_version``."""
        payload = dict(data)
        kind = payload.pop("kind", cls.KIND)
        if kind != cls.KIND:
            raise RequestError(
                f"kind {kind!r} does not match {cls.KIND!r}"
            )
        version = payload.pop("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise RequestError(
                f"schema_version {version!r} is not supported "
                f"(this build speaks {SCHEMA_VERSION})",
                code="schema-mismatch",
            )
        hints = get_type_hints(cls)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise RequestError(
                f"unknown field(s) {unknown} for {cls.KIND!r}; "
                f"known: {sorted(known)}"
            )
        kwargs = {
            name: _decode_value(hints[name], value)
            for name, value in payload.items()
        }
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise RequestError(f"invalid {cls.KIND!r} payload: {exc}") from None

    @classmethod
    def from_json(cls, text: str) -> Any:
        """Parse canonical (or any) JSON back into the dataclass."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise RequestError(f"payload is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise RequestError("payload must be a JSON object")
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Request(Message):
    """Base request: fingerprinting for in-flight deduplication."""

    #: Fields that never change the result (worker counts, cache
    #: reuse) and therefore stay out of the dedup fingerprint — the
    #: planner's determinism contract makes this sound.
    VOLATILE: ClassVar[tuple[str, ...]] = ("jobs", "use_cache")

    def fingerprint(self) -> str:
        """Stable content hash of everything that determines the result.

        Folds in the sweep-cache schema and the generator/evaluator/
        capacity analyzer versions so a request fingerprint can never
        alias across semantic changes — the same invalidation contract
        as :func:`repro.planner.parallel.eval_fingerprint`.
        """
        from repro.analysis.capacity.rules import CAPACITY_VERSION
        from repro.analysis.evaluate.rules import EVALUATOR_VERSION
        from repro.planner.parallel import CACHE_SCHEMA
        from repro.schedules.gencache import GENERATOR_VERSION

        payload = self.to_dict()
        for name in self.VOLATILE:
            payload.pop(name, None)
        payload["versions"] = {
            "cache_schema": CACHE_SCHEMA,
            "generator": GENERATOR_VERSION,
            "evaluator": EVALUATOR_VERSION,
            "capacity": CAPACITY_VERSION,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class PlanRequest(Request):
    """Grid-search the fastest non-OOM configuration per method —
    the typed form of ``repro plan`` / ``POST /v1/plan``."""

    KIND: ClassVar[str] = "plan"

    model: str = "13b"
    global_batch_size: int = 128
    cluster: str = "rtx4090-64"
    methods: tuple[str, ...] = ("dapple", "vpp", "zb", "zbv", "mepipe")
    max_spp: int = 16
    max_vp: int = 2
    min_dp: int = 2
    #: Evaluation pipeline: ``"grid"`` (batched topology classes),
    #: ``"tiered"`` (cell-at-a-time), or ``"sim"``; results identical.
    evaluator: str = "grid"
    #: Worker processes for the sweep; result-neutral (volatile).
    jobs: int = 1
    #: Reuse/persist the on-disk sweep cache; result-neutral (volatile).
    use_cache: bool = True


@dataclass(frozen=True)
class VerifyRequest(Request):
    """Statically verify a generated schedule (``repro verify``)."""

    KIND: ClassVar[str] = "verify"

    method: str = "mepipe"
    shape: ShapeSpec = DEFAULT_SHAPE
    rules: tuple[str, ...] | None = None
    capacity: bool = False


@dataclass(frozen=True)
class CheckModelRequest(Request):
    """Statically analyze the (model partition, schedule) pair
    (``repro check-model``); ``method="grid"`` runs the E0 grid."""

    KIND: ClassVar[str] = "check-model"

    method: str = "mepipe"
    model: str = "tiny"
    shape: ShapeSpec = DEFAULT_SHAPE
    rules: tuple[str, ...] | None = None
    capacity: bool = False


@dataclass(frozen=True)
class EvaluateRequest(Request):
    """Analytically evaluate a schedule with the certified closed
    forms (``repro evaluate``); ``check`` cross-validates (EV rules)."""

    KIND: ClassVar[str] = "evaluate"

    method: str = "mepipe"
    shape: ShapeSpec = DEFAULT_SHAPE
    tw: float = 1.0
    check: bool = False


@dataclass(frozen=True)
class CapacityRequest(Request):
    """Infer and certify bounded-channel ring capacities
    (``repro capacity``); ``check`` cross-validates (CP004)."""

    KIND: ClassVar[str] = "capacity"

    method: str = "mepipe"
    shape: ShapeSpec = DEFAULT_SHAPE
    tw: float = 1.0
    mode: str = "backpressure-free"
    rules: tuple[str, ...] | None = None
    check: bool = False


@dataclass(frozen=True)
class SimulateRequest(Request):
    """One discrete-event iteration under the uniform cost model,
    answered with the uniform :class:`~repro.obs.IterationMetrics`."""

    KIND: ClassVar[str] = "simulate"

    method: str = "mepipe"
    shape: ShapeSpec = DEFAULT_SHAPE
    tw: float = 1.0


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Response(Message):
    """Base response; ``ok`` is False when error-severity findings (or
    an OOM-only sweep) make the outcome a failure for exit purposes."""

    ok: bool = True


@dataclass(frozen=True)
class ErrorInfo(Response):
    """Structured error payload every transport surfaces uniformly.

    A response like any other (``ok`` is always False), so clients can
    revive it through :func:`response_from_dict` and branch on the
    stable ``code`` (``unknown-method``, ``timeout``,
    ``quota-exceeded``, ...)."""

    KIND: ClassVar[str] = "error"

    ok: bool = False
    code: str = "internal"
    message: str = ""
    detail: JsonDict = field(default_factory=dict)


@dataclass(frozen=True)
class PlanResponse(Response):
    """One entry per requested method plus sweep-wide cache stats.

    Each ``methods`` entry carries ``method``, ``best`` (the winning
    :class:`~repro.planner.evaluate.EvalResult` as a dict, or ``None``
    when every configuration OOMs), ``describe`` (its rendered one-line
    summary), ``evaluated``/``skipped`` trails, and ``evaluator``.
    """

    KIND: ClassVar[str] = "plan.result"

    methods: tuple[JsonDict, ...] = ()
    cache: JsonDict | None = None
    gen_cache: JsonDict | None = None


@dataclass(frozen=True)
class VerifyResponse(Response):
    """Diagnostics reports (``Report.to_dict`` schema) plus their
    rendered text — shared by verify and check-model."""

    KIND: ClassVar[str] = "verify.result"

    reports: tuple[JsonDict, ...] = ()
    text: str = ""


@dataclass(frozen=True)
class CheckModelResponse(VerifyResponse):
    KIND: ClassVar[str] = "check-model.result"


@dataclass(frozen=True)
class EvaluateResponse(Response):
    """The analytic evaluation (``AnalyticEvaluation.to_dict``), the
    build-free bounds when certified, and — in ``check`` mode — the
    EV-rule cross-validation report."""

    KIND: ClassVar[str] = "evaluate.result"

    evaluation: JsonDict | None = None
    bounds: JsonDict | None = None
    report: JsonDict | None = None
    text: str = ""


@dataclass(frozen=True)
class CapacityResponse(Response):
    """The capacity plan (``CapacityPlan.to_dict``), its CP report,
    and — in ``check`` mode — the certificate."""

    KIND: ClassVar[str] = "capacity.result"

    plan: JsonDict = field(default_factory=dict)
    mode: str = "backpressure-free"
    report: JsonDict = field(default_factory=dict)
    certificate: JsonDict | None = None
    text: str = ""


@dataclass(frozen=True)
class SimulateResponse(Response):
    """Uniform iteration metrics of one simulated iteration."""

    KIND: ClassVar[str] = "simulate.result"

    schedule: str = ""
    metrics: JsonDict = field(default_factory=dict)
    text: str = ""


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
#: Request types by wire kind — the service's endpoint table.
REQUESTS: dict[str, type[Request]] = {
    cls.KIND: cls
    for cls in (
        PlanRequest,
        VerifyRequest,
        CheckModelRequest,
        EvaluateRequest,
        CapacityRequest,
        SimulateRequest,
    )
}

#: Response types by wire kind (errors included — they are responses).
RESPONSES: dict[str, type[Response]] = {
    cls.KIND: cls
    for cls in (
        PlanResponse,
        VerifyResponse,
        CheckModelResponse,
        EvaluateResponse,
        CapacityResponse,
        SimulateResponse,
        ErrorInfo,
    )
}


def _from_registry(
    registry: dict[str, type[Any]], data: JsonDict, what: str
) -> Any:
    kind = data.get("kind")
    if not isinstance(kind, str) or kind not in registry:
        raise RequestError(
            f"unknown {what} kind {kind!r}; known: {sorted(registry)}"
        )
    return registry[kind].from_dict(data)


def request_from_dict(data: JsonDict) -> Request:
    """Revive any registered request from its ``to_dict`` form."""
    result: Request = _from_registry(REQUESTS, data, "request")
    return result


def response_from_dict(data: JsonDict) -> Response:
    """Revive any registered response from its ``to_dict`` form."""
    result: Response = _from_registry(RESPONSES, data, "response")
    return result
