"""Cluster topologies for the two evaluation testbeds (Section 7.1/7.6)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.comm import IB_100G, IB_800G, NVLINK, PCIE4, LinkSpec
from repro.hardware.gpu import A100_80GB, RTX_4090, GPUSpec


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster.

    Attributes:
        name: Identifier.
        gpu: Per-device accelerator spec.
        num_nodes: Number of servers.
        gpus_per_node: GPUs in each server.
        intra_node_link: GPU<->GPU link within one server.
        inter_node_link: NIC link between servers (shared per node).
    """

    name: str
    gpu: GPUSpec
    num_nodes: int
    gpus_per_node: int
    intra_node_link: LinkSpec
    inter_node_link: LinkSpec

    @property
    def num_devices(self) -> int:
        """Total GPU count."""
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting global rank ``rank``."""
        if not 0 <= rank < self.num_devices:
            raise ValueError(f"rank {rank} out of range for {self.num_devices} devices")
        return rank // self.gpus_per_node

    def link_between(self, rank_a: int, rank_b: int) -> LinkSpec:
        """The link used for traffic between two global ranks."""
        if self.node_of(rank_a) == self.node_of(rank_b):
            return self.intra_node_link
        return self.inter_node_link

    def group_link(self, ranks: list[int]) -> LinkSpec:
        """Bottleneck link for a collective over ``ranks``.

        A group confined to one node uses the intra-node fabric; any
        group spanning nodes is bottlenecked by the NIC.
        """
        nodes = {self.node_of(r) for r in ranks}
        return self.intra_node_link if len(nodes) <= 1 else self.inter_node_link

    @property
    def total_price_usd(self) -> float:
        """Purchase price of the cluster (per-server pricing, Table 9)."""
        return self.num_nodes * self.gpu.server_price_usd

    @property
    def total_power_watts(self) -> float:
        """Aggregate GPU board power."""
        return self.num_devices * self.gpu.power_watts


#: The paper's main testbed: 8 servers x 8 RTX 4090, PCIe 4.0 inside a
#: node, 100 Gbps InfiniBand between nodes.
RTX4090_CLUSTER = ClusterSpec(
    name="rtx4090-64",
    gpu=RTX_4090,
    num_nodes=8,
    gpus_per_node=8,
    intra_node_link=PCIE4,
    inter_node_link=IB_100G,
)

#: The comparison testbed: 4 servers x 8 A100 80GB with NVLink and
#: 800 Gbps InfiniBand (Section 7.6).
A100_CLUSTER = ClusterSpec(
    name="a100-32",
    gpu=A100_80GB,
    num_nodes=4,
    gpus_per_node=8,
    intra_node_link=NVLINK,
    inter_node_link=IB_800G,
)

CLUSTERS: dict[str, ClusterSpec] = {
    "rtx4090-64": RTX4090_CLUSTER,
    "a100-32": A100_CLUSTER,
}


def get_cluster(name: str) -> ClusterSpec:
    """Look up a cluster preset by name."""
    key = name.lower()
    if key not in CLUSTERS:
        raise KeyError(f"unknown cluster {name!r}; known: {sorted(CLUSTERS)}")
    return CLUSTERS[key]
