"""Accelerator specifications (Table 9 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.memory import GiB


@dataclass(frozen=True)
class GPUSpec:
    """A single accelerator.

    Attributes:
        name: Marketing name.
        memory_bytes: On-device memory capacity.
        peak_fp16_tflops: Nominal FP16 tensor-core throughput; the MFU
            denominator.
        matmul_derate: Fraction of the nominal throughput reachable by
            training GEMMs.  Section 7.6 explains that MEPipe uses FP32
            accumulation for convergence, which halves consumer-GPU
            (RTX 4090) tensor-core throughput; data-center parts
            accumulate in FP32 at full rate.
        intra_node_bw_gbps: Bidirectional GPU-to-GPU bandwidth within a
            server (NVLink or PCIe), in GB/s.
        server_price_usd: Price of an 8-GPU server.
        power_watts: Board power of one GPU.
    """

    name: str
    memory_bytes: int
    peak_fp16_tflops: float
    matmul_derate: float
    intra_node_bw_gbps: float
    server_price_usd: float
    power_watts: float

    @property
    def effective_tflops(self) -> float:
        """Achievable tensor throughput after the accumulation derate."""
        return self.peak_fp16_tflops * self.matmul_derate


#: NVIDIA RTX 4090: plentiful FLOPS, 24 GB, PCIe 4.0 only, and a 2x
#: penalty for FP32-accumulation GEMMs (Section 7.6).
RTX_4090 = GPUSpec(
    name="RTX 4090",
    memory_bytes=24 * GiB,
    peak_fp16_tflops=330.0,
    matmul_derate=0.5,
    intra_node_bw_gbps=64.0,
    server_price_usd=30_000.0,
    power_watts=450.0,
)

#: NVIDIA A100 80GB SXM: NVLink, full-rate FP32 accumulation.
A100_80GB = GPUSpec(
    name="A100 80GB",
    memory_bytes=80 * GiB,
    peak_fp16_tflops=312.0,
    matmul_derate=1.0,
    intra_node_bw_gbps=600.0,
    server_price_usd=150_000.0,
    power_watts=400.0,
)

#: NVIDIA A100 40GB PCIe, used by the artifact's functionality test (E0).
A100_40GB = GPUSpec(
    name="A100 40GB",
    memory_bytes=40 * GiB,
    peak_fp16_tflops=312.0,
    matmul_derate=1.0,
    intra_node_bw_gbps=64.0,
    server_price_usd=100_000.0,
    power_watts=300.0,
)

GPUS: dict[str, GPUSpec] = {
    "rtx4090": RTX_4090,
    "a100-80gb": A100_80GB,
    "a100-40gb": A100_40GB,
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by key (e.g. ``"rtx4090"``)."""
    key = name.lower()
    if key not in GPUS:
        raise KeyError(f"unknown GPU {name!r}; known: {sorted(GPUS)}")
    return GPUS[key]
