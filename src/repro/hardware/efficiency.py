"""Operator-efficiency model.

GEMM and FlashAttention kernels lose efficiency when their row dimension
(the number of tokens they process) shrinks — the effect behind
Figure 9's measured per-layer slowdown as CP/SPP sizes grow, and the
reason MEPipe prefers uniform power-of-two slice sizes over TeraPipe's
non-uniform partitioning (Section 5).

We model the efficiency of a kernel processing ``t`` tokens with a
saturating curve ``eff(t) = e_max * t / (t + t_half)``.  ``t_half`` is
calibrated so that slicing a 4096-token sample into 8 slices slows a
transformer layer down by ~12.6%, the figure reported in Section 7.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.flops import attention_score_flops, layer_slice_flops
from repro.model.spec import ModelSpec


@dataclass(frozen=True)
class EfficiencyModel:
    """Saturating kernel-efficiency curve.

    Attributes:
        max_gemm_efficiency: Fraction of the GPU's effective throughput a
            large GEMM achieves.
        max_attention_efficiency: Same for FlashAttention kernels, which
            run slightly below GEMM efficiency.
        half_saturation_tokens: Token count at which a kernel reaches
            half of its asymptotic efficiency.
    """

    max_gemm_efficiency: float = 0.88
    max_attention_efficiency: float = 0.76
    half_saturation_tokens: float = 75.0

    def gemm(self, tokens: int) -> float:
        """GEMM efficiency for an op over ``tokens`` tokens."""
        if tokens <= 0:
            return self.max_gemm_efficiency
        return self.max_gemm_efficiency * tokens / (tokens + self.half_saturation_tokens)

    def attention(self, tokens: int) -> float:
        """Attention-kernel efficiency for an op over ``tokens`` tokens."""
        if tokens <= 0:
            return self.max_attention_efficiency
        return (
            self.max_attention_efficiency
            * tokens
            / (tokens + self.half_saturation_tokens)
        )


#: Default curve used by all experiments.
DEFAULT_EFFICIENCY = EfficiencyModel()


def layer_forward_seconds(
    spec: ModelSpec,
    tokens: int,
    offset: int,
    effective_tflops: float,
    eff: EfficiencyModel = DEFAULT_EFFICIENCY,
) -> float:
    """Forward time of one transformer layer for one slice of a sample."""
    attn_flops = attention_score_flops(spec, tokens, offset)
    gemm_flops = layer_slice_flops(spec, tokens, offset).forward - attn_flops
    peak = effective_tflops * 1e12
    return gemm_flops / (peak * eff.gemm(tokens)) + attn_flops / (
        peak * eff.attention(tokens)
    )


def sliced_layer_slowdown(
    spec: ModelSpec,
    num_slices: int,
    effective_tflops: float = 165.0,
    eff: EfficiencyModel = DEFAULT_EFFICIENCY,
) -> float:
    """Per-layer slowdown factor when a sample is cut into equal slices.

    Returns the ratio (>= 1.0) of the summed per-slice forward time to
    the unsliced forward time, i.e. the pure kernel-efficiency cost of
    SPP without any communication (the SPP curve of Figure 9).
    """
    seq = spec.seq_length
    full = layer_forward_seconds(spec, seq, 0, effective_tflops, eff)
    t = seq // num_slices
    sliced = sum(
        layer_forward_seconds(spec, t, i * t, effective_tflops, eff)
        for i in range(num_slices)
    )
    return sliced / full
