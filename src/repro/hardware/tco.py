"""Total cost of ownership: purchase price vs power (Section 9).

The paper's third discussion point: two RTX 4090s match one A100's
effective compute but burn 900 W against 400 W, so A100 clusters win on
operating cost — yet at $0.1/kWh it takes ~24 years of that saving to
repay the 5x higher purchase price.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import A100_80GB, RTX_4090, GPUSpec

HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class TCOComparison:
    """Capex/opex comparison of two equal-compute GPU deployments."""

    cheap_gpus_per_expensive: float
    capex_cheap_usd: float
    capex_expensive_usd: float
    power_cheap_watts: float
    power_expensive_watts: float
    electricity_usd_per_kwh: float

    @property
    def capex_saving_usd(self) -> float:
        """Purchase saving per expensive-GPU-equivalent of compute."""
        return self.capex_expensive_usd - self.capex_cheap_usd

    @property
    def extra_power_watts(self) -> float:
        """Additional power draw of the cheap deployment."""
        return self.power_cheap_watts - self.power_expensive_watts

    @property
    def extra_power_cost_per_hour(self) -> float:
        return self.extra_power_watts / 1000.0 * self.electricity_usd_per_kwh

    @property
    def parity_years(self) -> float:
        """Years until the expensive cluster's power saving repays its
        purchase premium (infinite if it never does)."""
        if self.extra_power_cost_per_hour <= 0:
            return float("inf")
        hours = self.capex_saving_usd / self.extra_power_cost_per_hour
        return hours / HOURS_PER_YEAR


def compare_equal_compute(
    cheap: GPUSpec = RTX_4090,
    expensive: GPUSpec = A100_80GB,
    electricity_usd_per_kwh: float = 0.1,
    gpus_per_server: int = 8,
    compute_ratio: float | None = None,
) -> TCOComparison:
    """Compare deployments sized to equal effective training compute.

    ``compute_ratio`` (cheap GPUs per expensive one) defaults to the
    paper's round figure — "two RTX 4090 GPUs deliver computational
    performance comparable to a single A100" (Section 9); pass ``None``
    explicitly derived ratios via ``effective_tflops`` if preferred.
    """
    if compute_ratio is None:
        compute_ratio = 2.0 if (cheap is RTX_4090 and expensive is A100_80GB) \
            else expensive.effective_tflops / cheap.effective_tflops
    ratio = compute_ratio
    return TCOComparison(
        cheap_gpus_per_expensive=ratio,
        capex_cheap_usd=ratio * cheap.server_price_usd / gpus_per_server,
        capex_expensive_usd=expensive.server_price_usd / gpus_per_server,
        power_cheap_watts=ratio * cheap.power_watts,
        power_expensive_watts=expensive.power_watts,
        electricity_usd_per_kwh=electricity_usd_per_kwh,
    )
