"""Hardware specifications, efficiency curves, and communication models."""

from repro.hardware.cluster import (
    A100_CLUSTER,
    CLUSTERS,
    RTX4090_CLUSTER,
    ClusterSpec,
    get_cluster,
)
from repro.hardware.comm import (
    IB_100G,
    IB_800G,
    NVLINK,
    PCIE4,
    LinkSpec,
    ring_all_gather_time,
    ring_all_reduce_time,
    ring_reduce_scatter_time,
    send_recv_time,
)
from repro.hardware.efficiency import (
    DEFAULT_EFFICIENCY,
    EfficiencyModel,
    layer_forward_seconds,
    sliced_layer_slowdown,
)
from repro.hardware.gpu import (
    A100_40GB,
    A100_80GB,
    GPUS,
    RTX_4090,
    GPUSpec,
    get_gpu,
)

__all__ = [
    "A100_40GB",
    "A100_80GB",
    "A100_CLUSTER",
    "CLUSTERS",
    "DEFAULT_EFFICIENCY",
    "EfficiencyModel",
    "GPUS",
    "GPUSpec",
    "IB_100G",
    "IB_800G",
    "LinkSpec",
    "NVLINK",
    "PCIE4",
    "RTX4090_CLUSTER",
    "RTX_4090",
    "ClusterSpec",
    "get_cluster",
    "get_gpu",
    "layer_forward_seconds",
    "ring_all_gather_time",
    "ring_all_reduce_time",
    "ring_reduce_scatter_time",
    "send_recv_time",
    "sliced_layer_slowdown",
]
