"""Communication time models for links and collectives.

All bandwidths are effective payload bandwidths in GB/s (decimal);
latencies are per-message seconds.  Collectives use the standard ring
algorithm cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1e9


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link between two devices.

    Attributes:
        name: Identifier (e.g. ``"pcie4"``, ``"nvlink"``, ``"ib100"``).
        bandwidth_gbps: Effective unidirectional bandwidth in GB/s.
        latency_s: Per-message launch + wire latency.
        collective_bw_gbps: Per-GPU bandwidth when *all* devices on the
            fabric run a collective simultaneously.  On PCIe hosts the
            shared root complexes saturate well below the per-slot
            bandwidth; NVLink fabrics are non-blocking.
    """

    name: str
    bandwidth_gbps: float
    latency_s: float = 10e-6
    collective_bw_gbps: float | None = None

    @property
    def collective_bandwidth_gbps(self) -> float:
        """Bandwidth to assume for fabric-wide collectives."""
        if self.collective_bw_gbps is None:
            return self.bandwidth_gbps
        return self.collective_bw_gbps

    def p2p_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` point-to-point over this link."""
        if nbytes <= 0:
            return 0.0
        return self.latency_s + nbytes / (self.bandwidth_gbps * GB)


#: PCIe 4.0 x16: ~32 GB/s per direction; the paper quotes 64 GB/s
#: bidirectional for the 4090 servers.  Fabric-wide collectives see far
#: less: eight GPUs contend for two root complexes.
PCIE4 = LinkSpec("pcie4", bandwidth_gbps=25.0, latency_s=12e-6,
                 collective_bw_gbps=12.0)

#: NVLink on A100 SXM: 600 GB/s bidirectional, ~300 per direction.
NVLINK = LinkSpec("nvlink", bandwidth_gbps=250.0, latency_s=6e-6)

#: 100 Gbps InfiniBand NIC shared by the 8 GPUs of a 4090 server.
IB_100G = LinkSpec("ib100", bandwidth_gbps=12.0, latency_s=15e-6)

#: 800 Gbps InfiniBand on the A100 servers.
IB_800G = LinkSpec("ib800", bandwidth_gbps=90.0, latency_s=15e-6)


def ring_all_reduce_time(nbytes: int, group_size: int, link: LinkSpec) -> float:
    """Ring all-reduce: ``2*(g-1)/g`` traversals of the payload."""
    if group_size <= 1 or nbytes <= 0:
        return 0.0
    g = group_size
    steps = 2 * (g - 1)
    return steps * link.latency_s + (2 * (g - 1) / g) * nbytes / (
        link.bandwidth_gbps * GB
    )


def ring_all_gather_time(nbytes_total: int, group_size: int, link: LinkSpec) -> float:
    """Ring all-gather of a ``nbytes_total`` result across the group."""
    if group_size <= 1 or nbytes_total <= 0:
        return 0.0
    g = group_size
    return (g - 1) * link.latency_s + ((g - 1) / g) * nbytes_total / (
        link.bandwidth_gbps * GB
    )


def ring_reduce_scatter_time(
    nbytes_total: int, group_size: int, link: LinkSpec
) -> float:
    """Ring reduce-scatter; same wire cost as all-gather."""
    return ring_all_gather_time(nbytes_total, group_size, link)


def send_recv_time(nbytes: int, link: LinkSpec) -> float:
    """Point-to-point transfer time (alias of :meth:`LinkSpec.p2p_time`)."""
    return link.p2p_time(nbytes)
