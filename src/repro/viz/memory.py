"""Activation-memory-over-time rendering.

Plots (in ASCII) the pinned activation memory of one stage across a
simulated iteration — the picture behind Figure 4's 5/8 A and 9/16 A
arithmetic and Figure 5's variant trade-off.
"""

from __future__ import annotations

from repro.schedules.base import OpKind
from repro.sim.executor import SimResult


def activation_series(result: SimResult, stage: int,
                      actgrad_factor: float = 1.0) -> list[tuple[float, float]]:
    """(time, pinned units of A) steps for one stage.

    Mirrors the executor's ledger semantics: F pins at completion, a
    fused B releases, a split B pins activation gradients until the W
    fragments retire.
    """
    problem = result.problem
    units = problem.activation_units_per_op
    series: list[tuple[float, float]] = [(0.0, 0.0)]
    current = 0.0
    for record in result.stage_records(stage):
        kind = record.op.kind
        if kind is OpKind.F:
            current += units
        elif kind is OpKind.B:
            if problem.split_backward:
                current += units * actgrad_factor
            else:
                current -= units
        else:
            current -= units * (1.0 + actgrad_factor) / problem.wgrad_gemms
        series.append((record.end, current))
    return series


def render_memory_profile(
    result: SimResult, stage: int = 0, width: int = 100, height: int = 12
) -> str:
    """ASCII area chart of one stage's activation footprint over time."""
    series = activation_series(result, stage)
    if result.makespan <= 0:
        return "(empty)"
    peak = max(v for _t, v in series)
    if peak <= 0:
        return "(no activations pinned)"
    # Sample the step function on the grid.
    columns = []
    idx = 0
    for col in range(width):
        t = (col + 1) / width * result.makespan
        while idx + 1 < len(series) and series[idx + 1][0] <= t:
            idx += 1
        columns.append(series[idx][1])
    rows = []
    for level in range(height, 0, -1):
        threshold = peak * (level - 0.5) / height
        row = "".join("#" if v >= threshold else " " for v in columns)
        label = f"{peak * level / height:6.3f}A |"
        rows.append(label + row)
    rows.append(" " * 7 + "+" + "-" * width)
    rows.append(
        f"stage {stage}: peak {peak:.4f} A over makespan "
        f"{result.makespan:.3f}"
    )
    return "\n".join(rows)
