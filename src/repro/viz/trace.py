"""Chrome-trace (``chrome://tracing`` / Perfetto) export of simulations.

Produces the JSON event format the paper's own timeline figures (11-12)
were made with, so simulated iterations can be inspected in any trace
viewer: one row per pipeline stage, one duration event per op, colored
by op kind.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.schedules.base import OpKind
from repro.sim.executor import SimResult

#: Perfetto color names per op kind.
_COLORS = {
    OpKind.F: "thread_state_running",
    OpKind.B: "thread_state_iowait",
    OpKind.W: "thread_state_runnable",
}


def to_chrome_trace(result: SimResult, time_unit_us: float = 1e6) -> dict:
    """Convert a simulation into a Chrome-trace dictionary.

    Args:
        result: The simulated iteration.
        time_unit_us: Microseconds per simulated time unit (1e6 when the
            cost model is in seconds; pick anything for abstract units).
    """
    events: list[dict] = []
    for stage in range(result.problem.num_stages):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": stage,
                "args": {"name": f"stage {stage}"},
            }
        )
        for record in result.stage_records(stage):
            op = record.op
            events.append(
                {
                    "name": str(op),
                    "cat": op.kind.value,
                    "ph": "X",
                    "pid": 0,
                    "tid": stage,
                    "ts": record.start * time_unit_us,
                    "dur": max(record.duration * time_unit_us, 0.01),
                    "cname": _COLORS[op.kind],
                    "args": {
                        "microbatch": op.microbatch,
                        "slice": op.slice_idx,
                        "chunk": op.chunk,
                    },
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schedule": result.schedule_name,
            "bubble_ratio": round(result.bubble_ratio, 6),
            "peak_activation_units": round(result.peak_activation_units, 6),
        },
    }


def write_chrome_trace(
    result: SimResult, path: str | Path, time_unit_us: float = 1e6
) -> Path:
    """Write the trace JSON to ``path`` and return it."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(result, time_unit_us)))
    return path
