"""Deprecated Chrome-trace exporter — moved to :mod:`repro.obs.chrome`.

The simulator's trace export now rides the unified telemetry bus:
:func:`repro.obs.chrome.sim_chrome_trace` produces the identical
dictionary (same rows, events, colors, ``otherData``), and
:func:`repro.obs.chrome.chrome_trace` renders arbitrary event streams,
e.g. a simulated and an executed iteration side by side.  This module
remains as a thin shim; importing it works, calling it warns — with
``stacklevel=2`` so the warning points at the caller's line, not at
this shim.
"""

from __future__ import annotations

import warnings
from pathlib import Path

from repro.obs.chrome import sim_chrome_trace, write_sim_trace
from repro.sim.executor import SimResult

__all__ = ["to_chrome_trace", "write_chrome_trace"]


def to_chrome_trace(result: SimResult, time_unit_us: float = 1e6) -> dict:
    """Deprecated alias of :func:`repro.obs.chrome.sim_chrome_trace`."""
    warnings.warn(
        "repro.viz.trace.to_chrome_trace is deprecated; "
        "use repro.obs.chrome.sim_chrome_trace",
        DeprecationWarning,
        stacklevel=2,
    )
    return sim_chrome_trace(result, time_unit_us)


def write_chrome_trace(
    result: SimResult, path: str | Path, time_unit_us: float = 1e6
) -> Path:
    """Deprecated alias of :func:`repro.obs.chrome.write_sim_trace`."""
    warnings.warn(
        "repro.viz.trace.write_chrome_trace is deprecated; "
        "use repro.obs.chrome.write_sim_trace",
        DeprecationWarning,
        stacklevel=2,
    )
    return write_sim_trace(result, path, time_unit_us)
