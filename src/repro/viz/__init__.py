"""Visualization: ASCII timelines, memory profiles, Chrome traces."""

from repro.viz.memory import activation_series, render_memory_profile
from repro.viz.timeline import render_program, render_timeline
from repro.viz.trace import to_chrome_trace, write_chrome_trace

__all__ = [
    "activation_series",
    "render_memory_profile",
    "render_program",
    "render_timeline",
    "to_chrome_trace",
    "write_chrome_trace",
]
