"""ASCII rendering of simulated pipeline timelines.

Reproduces the style of the paper's scheduling figures (Figures 2-7,
11-12): one row per stage, time flowing right, forward ops in
uppercase, backward ops context-colored by micro-batch digit, weight
gradients as ``w``.
"""

from __future__ import annotations

from repro.schedules.base import OpKind
from repro.sim.executor import SimResult


def _glyph(kind: OpKind, microbatch: int, slice_idx: int) -> str:
    mb = str(microbatch % 10)
    if kind is OpKind.F:
        return mb
    if kind is OpKind.B:
        return "abcdefghij"[microbatch % 10]
    return "w"


def render_timeline(result: SimResult, width: int = 120) -> str:
    """Render a simulated iteration as fixed-width ASCII art.

    Each column is ``makespan / width`` seconds; idle time renders as
    ``.``; overlapping ops (impossible on a correct stage) render ``#``.
    """
    if result.makespan <= 0:
        return "(empty timeline)"
    scale = width / result.makespan
    lines = []
    for stage in range(result.problem.num_stages):
        row = ["."] * width
        for record in result.stage_records(stage):
            lo = int(record.start * scale)
            hi = max(lo + 1, int(record.end * scale))
            g = _glyph(record.op.kind, record.op.microbatch, record.op.slice_idx)
            for i in range(lo, min(hi, width)):
                row[i] = g if row[i] == "." else "#"
        lines.append(f"stage {stage}: " + "".join(row))
    lines.append(
        f"makespan={result.makespan:.3f}  bubble={result.bubble_ratio:.1%}  "
        f"peak-act={result.peak_activation_units:.3f}A"
    )
    return "\n".join(lines)


def render_program(result: SimResult, stage: int, limit: int = 64) -> str:
    """Render one stage's executed op sequence with start times."""
    parts = []
    for record in result.stage_records(stage)[:limit]:
        parts.append(f"{record.op}@{record.start:.2f}")
    return " ".join(parts)
