"""Pass 1: symbolic shape/dtype inference and interface checking.

Abstract-interprets the partitioned model on the
:class:`~repro.analysis.ir.SymTensor` domain: token ids enter the first
chunk, hidden states flow chunk to chunk, the loss scalar leaves the
last one.  No array is allocated; the pass proves

* every component's internal architecture is self-consistent (GQA head
  expansion/collapse divisibility, parameter shapes matching the
  declared widths) — SH004;
* every component receives the shape (SH001) and dtype (SH002) its
  forward expects, and the pipeline as a whole maps token ids to a
  loss scalar (SH001);
* every chunk boundary agrees: what chunk ``c`` emits is exactly what
  chunk ``c+1`` consumes (SH003).  For boundaries that cross a stage,
  this is the payload :class:`~repro.pipeline.runtime.PipelineRuntime`
  moves through its channels — the backward channel's ``dy`` payload
  mirrors the forward interface, so one check covers both directions.

Findings anchor to the earliest op that would execute the defect
(micro-batch 0, slice 0), giving each report a concrete witness in the
schedule's own vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ir import (
    LOSS,
    TOKENS,
    ChunkSpec,
    ComponentSpec,
    PartitionSpec,
    SymTensor,
    hidden_states,
)
# Register the SH/GC/HZ rules into the shared catalogue before any
# Finding is constructed (its severity defaults from the catalogue).
import repro.analysis.rules  # noqa: F401
from repro.schedules.base import OpId, OpKind, PipelineProblem
from repro.schedules.verify.diagnostics import Finding


@dataclass(frozen=True)
class ChunkIO:
    """The inferred input/output interface of one chunk."""

    index: int
    input: SymTensor
    output: SymTensor


def expected_input(comp: ComponentSpec) -> SymTensor:
    """The tensor type a component's forward consumes."""
    if comp.kind == "embedding":
        return TOKENS
    return hidden_states(comp.hidden)


def component_output(comp: ComponentSpec) -> SymTensor:
    """The tensor type a component's forward produces."""
    if comp.kind == "loss_head":
        return LOSS
    return hidden_states(comp.hidden)


def _expected_param_shapes(
    comp: ComponentSpec,
) -> dict[str, tuple[int, ...]]:
    h = comp.hidden
    if comp.kind == "embedding":
        return {"table": (comp.vocab_size, h)}
    if comp.kind == "loss_head":
        return {"gf": (h,), "wh": (h, comp.vocab_size)}
    kv_w = comp.num_kv_heads * comp.head_dim
    f = comp.ffn_hidden
    return {
        "wq": (h, h), "wk": (h, kv_w), "wv": (h, kv_w), "wo": (h, h),
        "wg": (h, f), "wu": (h, f), "wd": (f, h), "g1": (h,), "g2": (h,),
    }


def check_component_config(
    comp: ComponentSpec, anchor: OpId | None = None, stage: int | None = None
) -> list[Finding]:
    """SH004: prove a component's architecture is self-consistent."""
    findings: list[Finding] = []

    def bad(message: str, *witness: str) -> None:
        findings.append(
            Finding(
                "SH004",
                f"{comp.name}: {message}",
                stage=stage,
                op=anchor,
                witness=witness,
            )
        )

    if comp.kind == "decoder":
        if comp.num_heads <= 0 or comp.num_kv_heads <= 0:
            bad(
                "head counts must be positive",
                f"num_heads={comp.num_heads}, num_kv_heads={comp.num_kv_heads}",
            )
            return findings
        if comp.hidden % comp.num_heads != 0:
            bad(
                "hidden not divisible by num_heads",
                f"hidden={comp.hidden}, num_heads={comp.num_heads}",
            )
            return findings
        if comp.num_heads % comp.num_kv_heads != 0:
            bad(
                "GQA group is fractional: num_heads not a multiple of "
                "num_kv_heads, so head expansion/collapse cannot round-trip",
                f"num_heads={comp.num_heads}, num_kv_heads={comp.num_kv_heads}",
            )
            return findings
    expected = _expected_param_shapes(comp)
    for name, want in expected.items():
        got = comp.param_shape(name)
        if got is None:
            bad(
                f"parameter {name!r} is missing",
                f"expected shape {want}",
            )
        elif got != want:
            bad(
                f"parameter {name!r} has shape {got}, expected {want}",
                f"declared widths: hidden={comp.hidden}, "
                f"kv_width={comp.num_kv_heads * comp.head_dim}, "
                f"ffn={comp.ffn_hidden}, vocab={comp.vocab_size}",
            )
    return findings


def component_transfer(
    comp: ComponentSpec,
    x: SymTensor,
    anchor: OpId | None = None,
    stage: int | None = None,
) -> tuple[list[Finding], SymTensor]:
    """Abstractly run one component's forward on ``x``.

    Returns the findings plus the output type; after a mismatch the
    component's nominal output is returned so inference can continue
    without cascading one defect into many findings.
    """
    findings = check_component_config(comp, anchor=anchor, stage=stage)
    want = expected_input(comp)
    if x.dims != want.dims:
        findings.append(
            Finding(
                "SH001",
                f"{comp.name} expects {want.render()}, receives {x.render()}",
                stage=stage,
                op=anchor,
                witness=(
                    f"expected input: {want.render()}",
                    f"inferred input: {x.render()}",
                ),
            )
        )
    elif x.dtype != want.dtype:
        findings.append(
            Finding(
                "SH002",
                f"{comp.name} expects dtype {want.dtype}, receives {x.dtype}"
                f" ({x.render()})",
                stage=stage,
                op=anchor,
                witness=(
                    f"expected input: {want.render()}",
                    f"inferred input: {x.render()}",
                ),
            )
        )
    return findings, component_output(comp)


def _infer_chunk(
    chunk: ChunkSpec, x: SymTensor, stage: int | None
) -> tuple[list[Finding], SymTensor]:
    findings: list[Finding] = []
    anchor = OpId(OpKind.F, 0, 0, chunk.index)
    for comp in chunk.components:
        comp_findings, x = component_transfer(
            comp, x, anchor=anchor, stage=stage
        )
        findings.extend(comp_findings)
    return findings, x


def check_shapes(
    partition: PartitionSpec, problem: PipelineProblem | None = None
) -> tuple[list[Finding], list[ChunkIO]]:
    """Run shape/dtype inference over the whole partition.

    ``problem`` supplies chunk-to-stage placement for channel findings;
    without it the pass still runs, stage-anonymous.
    """
    findings: list[Finding] = []
    io: list[ChunkIO] = []

    if problem is not None and partition.num_chunks != problem.num_chunks:
        findings.append(
            Finding(
                "SH004",
                f"partition has {partition.num_chunks} chunk(s), problem "
                f"expects {problem.num_chunks}",
            )
        )
        return findings, io
    for chunk in partition.chunks:
        if not chunk.components:
            findings.append(
                Finding(
                    "SH004",
                    f"chunk {chunk.index} is empty",
                    op=OpId(OpKind.F, 0, 0, chunk.index),
                )
            )
            return findings, io

    def stage_of(c: int) -> int | None:
        return problem.stage_of_chunk(c) if problem is not None else None

    # Each chunk's expected input is defined by its own first component;
    # propagate within the chunk from there, then compare boundaries.
    for chunk in partition.chunks:
        chunk_in = expected_input(chunk.components[0])
        chunk_findings, chunk_out = _infer_chunk(
            chunk, chunk_in, stage_of(chunk.index)
        )
        findings.extend(chunk_findings)
        io.append(ChunkIO(index=chunk.index, input=chunk_in, output=chunk_out))

    # The pipeline consumes token ids and must produce the loss scalar.
    first = partition.chunks[0].components[0]
    if expected_input(first) != TOKENS:
        findings.append(
            Finding(
                "SH001",
                f"pipeline input is token ids {TOKENS.render()}, but "
                f"{first.name} expects {expected_input(first).render()}",
                stage=stage_of(0),
                op=OpId(OpKind.F, 0, 0, 0),
            )
        )
    if io and io[-1].output != LOSS:
        last_chunk = partition.chunks[-1]
        findings.append(
            Finding(
                "SH001",
                f"pipeline output is {io[-1].output.render()}, not the loss "
                f"scalar — the last component is "
                f"{last_chunk.components[-1].name}",
                stage=stage_of(last_chunk.index),
                op=OpId(OpKind.F, 0, 0, last_chunk.index),
            )
        )

    # Chunk-boundary interfaces: what c emits is what c+1 consumes.
    for c in range(len(io) - 1):
        emitted, expected = io[c].output, io[c + 1].input
        if emitted == expected:
            continue
        src, dst = stage_of(c), stage_of(c + 1)
        crossing = src is not None and dst is not None and src != dst
        channel = (
            f"stage {src} -> stage {dst} channel payload"
            if crossing
            else "same-stage chunk boundary"
        )
        findings.append(
            Finding(
                "SH003",
                f"chunk {c} emits {emitted.render()}, chunk {c + 1} expects "
                f"{expected.render()} ({channel})",
                stage=dst,
                op=OpId(OpKind.F, 0, 0, c + 1),
                witness=(
                    f"F0.0c{c} emits    {emitted.render()}",
                    f"F0.0c{c + 1} expects  {expected.render()}",
                    "backward channel mirrors the forward interface: "
                    f"B0.0c{c + 1} -> B0.0c{c} dy payload disagrees identically",
                ),
            )
        )
    return findings, io
