"""Pass 3: happens-before hazard detection (HZ rules).

Derives the partial order of one iteration from the compiled graph's
CSR dependency edges plus per-stage program order (the
:meth:`~repro.analysis.program.ModelProgram.happens_before_closure`),
then proves three freedom-from-races properties the dependency edges
alone do *not* imply:

* **HZ001** — all ops accumulating into one parameter-gradient buffer
  are totally ordered.  Contributions of different micro-batches/slices
  share the accumulator but have no dependency edge between them; their
  only ordering is same-stage program order, exactly what a deployment
  overlapping W GEMMs with communication must preserve.
* **HZ002** — every cross-chunk payload read (forward activations,
  backward ``dy``) is ordered after its write.
* **HZ003** — the W ops of one cell have a happens-before maximum.
  They share the cell's pinned activations, released when the last one
  completes; without a unique last op the release races a read
  (write-after-read).

Witnesses are minimal: each finding names the two unordered ops.
Total-order checking is linear, not quadratic — writers are sorted
along a linear extension of the partial order and only consecutive
pairs are tested (happens-before is transitive, so a chain implies the
total order).
"""

from __future__ import annotations

import repro.analysis.rules  # noqa: F401  (registers the HZ rules)
from repro.analysis.program import ModelProgram
from repro.schedules.verify.diagnostics import Finding


def _pair_witness(
    program: ModelProgram, a: int, b: int, buffer: str
) -> tuple[str, ...]:
    graph = program.graph
    return (
        f"{graph.ops[a]} (stage {graph.stage[a]}, position {graph.pos[a]})",
        f"{graph.ops[b]} (stage {graph.stage[b]}, position {graph.pos[b]})",
        f"shared buffer: {buffer}",
        "no happens-before path orders the two accesses",
    )


def check_hazards(program: ModelProgram) -> list[Finding]:
    """Prove hazard freedom; returns the races found."""
    graph = program.graph
    problem = graph.problem
    n, s, chunks = problem.num_microbatches, problem.num_slices, problem.num_chunks
    split = problem.split_backward
    gemms = problem.wgrad_gemms if split else 1
    position = program.topo_position()
    findings: list[Finding] = []

    # ------------------------------------------------------------------
    # HZ001: gradient-accumulator writes are totally ordered.
    # ------------------------------------------------------------------
    for c, tasks in enumerate(program.chunk_tasks):
        # Queue position of each task decides which W op performs it.
        for pos_in_queue, task in enumerate(tasks):
            writers: list[int] = []
            for mb in range(n):
                for sl in range(s):
                    cell = (mb * s + sl) * chunks + c
                    if split:
                        op = program.w_of.get(cell, {}).get(
                            pos_in_queue % gemms
                        )
                    else:
                        op = program.b_of.get(cell)
                    if op is not None:
                        writers.append(op)
            writers.sort(key=lambda i: position[i])
            hazard = next(
                (
                    (a, b)
                    for a, b in zip(writers, writers[1:])
                    if not program.happens_before(a, b)
                ),
                None,
            )
            if hazard is not None:
                a, b = hazard
                buffer = f"grads[{task.render()}] of chunk {c}"
                findings.append(
                    Finding(
                        "HZ001",
                        f"unordered accumulation into {buffer}: {graph.ops[a]}"
                        f" and {graph.ops[b]} may overlap (write-after-write)",
                        stage=graph.stage[b],
                        op=graph.ops[b],
                        witness=_pair_witness(program, a, b, buffer),
                    )
                )

    # ------------------------------------------------------------------
    # HZ002: channel payload reads are ordered after their writes.
    # ------------------------------------------------------------------
    for mb in range(n):
        for sl in range(s):
            base = (mb * s + sl) * chunks
            for c in range(chunks - 1):
                # Forward payload: F(c) writes, F(c+1) reads.
                w = program.f_of.get(base + c)
                r = program.f_of.get(base + c + 1)
                if w is not None and r is not None and not program.happens_before(w, r):
                    buffer = f"forward channel ({mb}, {sl}, {c}->{c + 1})"
                    findings.append(
                        Finding(
                            "HZ002",
                            f"{graph.ops[r]} reads the {buffer} payload "
                            f"without ordering after its writer {graph.ops[w]}",
                            stage=graph.stage[r],
                            op=graph.ops[r],
                            witness=_pair_witness(program, w, r, buffer),
                        )
                    )
                # Backward payload: B(c+1) writes dy, B(c) reads.
                w = program.b_of.get(base + c + 1)
                r = program.b_of.get(base + c)
                if w is not None and r is not None and not program.happens_before(w, r):
                    buffer = f"backward channel ({mb}, {sl}, {c + 1}->{c})"
                    findings.append(
                        Finding(
                            "HZ002",
                            f"{graph.ops[r]} reads the {buffer} payload "
                            f"without ordering after its writer {graph.ops[w]}",
                            stage=graph.stage[r],
                            op=graph.ops[r],
                            witness=_pair_witness(program, w, r, buffer),
                        )
                    )

    # ------------------------------------------------------------------
    # HZ003: each cell's W ops have a happens-before maximum.
    # ------------------------------------------------------------------
    if split:
        for cell, w_ops in sorted(program.w_of.items()):
            ops = sorted(w_ops.values(), key=lambda i: position[i])
            if len(ops) < 2:
                continue
            last = ops[-1]
            for other in ops[:-1]:
                if program.happens_before(other, last):
                    continue
                mb, rest = divmod(cell, s * chunks)
                sl, c = divmod(rest, chunks)
                buffer = (
                    f"pinned activations of micro-batch {mb} slice {sl} "
                    f"chunk {c}"
                )
                findings.append(
                    Finding(
                        "HZ003",
                        f"W ops of the cell have no happens-before maximum: "
                        f"{graph.ops[other]} and {graph.ops[last]} are "
                        f"unordered, so the release of {buffer} races a read",
                        stage=graph.stage[last],
                        op=graph.ops[last],
                        witness=_pair_witness(program, other, last, buffer),
                    )
                )
    return findings
