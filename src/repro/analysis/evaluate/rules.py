"""Rule catalogue of the analytic schedule evaluator.

The ``EV`` family covers the evaluator's provenance obligations: every
:class:`~repro.analysis.evaluate.core.AnalyticEvaluation` carries a
machine-checkable certificate (exact or bounded), and the
cross-validation harness (:mod:`repro.sim.crossval`) replays the same
schedule through the event simulator and files one finding per broken
obligation.  The rules register into the shared
:mod:`repro.schedules.verify.diagnostics` catalogue so evaluator
findings render, filter, and serialize exactly like schedule-verifier
and model-analyzer findings; ids are stable API.
"""

from __future__ import annotations

from repro.schedules.verify.diagnostics import Rule, Severity, register_rules

#: Version of the analytic evaluator's closed forms and certificates.
#: Bump whenever the arithmetic changes; the sweep cache folds it into
#: every fingerprint so stale analytic entries can never be replayed.
EVALUATOR_VERSION: int = 1

#: Everything the evaluator cross-validation checks.
EVALUATE_RULES: tuple[str, ...] = ("EV001", "EV002", "EV003", "EV004")

register_rules(
    Rule(
        "EV001",
        "analytic/sim divergence",
        Severity.ERROR,
        "A quantity the evaluator certified as exact (op start/end "
        "time, stage busy time, peak ledger units, makespan, or bubble "
        "ratio) differs bit-for-bit from the event simulator's replay "
        "of the same schedule under the same cost model.",
    ),
    Rule(
        "EV002",
        "certified bound violated",
        Severity.ERROR,
        "The simulated iteration time falls outside the evaluator's "
        "bounded-error certificate: the closed-form lower/upper bounds "
        "do not contain the event simulator's result.",
    ),
    Rule(
        "EV003",
        "inconsistent certificate",
        Severity.ERROR,
        "An evaluation's certificate is self-contradictory: an exact "
        "certificate with a non-degenerate bound interval, a lower "
        "bound above the upper bound, or a certified value outside its "
        "own interval.",
    ),
    Rule(
        "EV004",
        "phase decomposition mismatch",
        Severity.ERROR,
        "A stage's warmup/steady/cooldown boundaries do not tile the "
        "stage's busy window: a boundary is out of order, negative, or "
        "beyond the stage's last op end.",
    ),
)
