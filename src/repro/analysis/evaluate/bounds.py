"""Build-free certified bounds from the cost tables alone.

Where :mod:`repro.analysis.evaluate.core` needs a generated schedule
(and is exact), this module bounds what *any* compilable schedule of a
:class:`~repro.schedules.base.PipelineProblem` can achieve, straight
from the per-(slice, chunk) cost tables — no ``build_schedule``, no
graph.  The planner's tiered first pass uses these to prune dominated
configurations before paying for schedule generation.

Soundness arguments (each a dependency-graph fact, independent of the
builder's program order):

* ``busy(k)``: stage ``k`` must execute all of its ops serially, so the
  makespan is at least its total work.
* ``ramp(k)``: no op of stage ``k`` can start before the cheapest
  forward chain reaches the stage's lowest chunk, so the makespan is at
  least ``ramp(k) + busy(k)``.
* ``chain(sl)``: one micro-batch's F chain out, B chain back, and a
  final W GEMM form a real dependency path; the makespan is at least
  the longest such chain.
* Upper bound: backtracking binding constraints from the last-ending op
  yields a path that tiles ``[0, makespan]`` with op executions and
  comm waits, each op/edge at most once — so the makespan is at most
  total work plus total edge communication.

All comparisons against these bounds must treat them as certified only
up to the stored guard band (:data:`GUARD`), which absorbs the
summation-order rounding between the tabular sums and the simulator's
sequential accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.evaluate.core import EvalCertificate
from repro.schedules.base import OpId, OpKind, PipelineProblem
from repro.sim.cost import CostModel, op_cost_fns

#: Relative guard band on certified bounds: float summation order
#: differs between these closed forms and the simulator's sequential
#: accumulation by at most a few ulps; 1e-9 dominates that comfortably
#: while staying far below any real scheduling difference.
GUARD: float = 1e-9


@dataclass(frozen=True)
class TimeBounds:
    """Certified iteration-time interval for any schedule of a problem."""

    lower: float
    upper: float
    stage_busy: tuple[float, ...]
    certificate: EvalCertificate


def iteration_time_bounds(
    problem: PipelineProblem,
    cost: CostModel,
    overhead_time: float = 0.0,
) -> TimeBounds | None:
    """Certified ``[lower, upper]`` on the iteration time, build-free.

    Returns ``None`` when the cost model does not declare
    ``microbatch_invariant`` — the tables below probe micro-batch 0
    only, which is only sound when costs do not depend on the
    micro-batch index (both built-in models qualify).
    """
    if not getattr(cost, "microbatch_invariant", False):
        return None
    dur_fn, comm_fn, _act_fn = op_cost_fns(cost)
    n = problem.num_microbatches
    s = problem.num_slices
    chunks = problem.num_chunks
    split = problem.split_backward
    gemms = problem.wgrad_gemms
    p = problem.num_stages

    def f_op(sl: int, c: int) -> OpId:
        return OpId(OpKind.F, 0, sl, c)

    def b_op(sl: int, c: int) -> OpId:
        return OpId(OpKind.B, 0, sl, c)

    def w_op(sl: int, c: int, g: int) -> OpId:
        return OpId(OpKind.W, 0, sl, c, g)

    # Per-(slice, chunk) cost tables.
    d_f = [[dur_fn(f_op(sl, c)) for c in range(chunks)] for sl in range(s)]
    d_b = [[dur_fn(b_op(sl, c)) for c in range(chunks)] for sl in range(s)]
    d_w = [
        [
            sum(dur_fn(w_op(sl, c, g)) for g in range(gemms)) if split else 0.0
            for c in range(chunks)
        ]
        for sl in range(s)
    ]
    # Forward-chain comm into chunk c (edge F(c-1) -> F(c)).
    c_f = [
        [comm_fn(f_op(sl, c - 1), f_op(sl, c)) for c in range(1, chunks)]
        for sl in range(s)
    ]
    # Backward-chain comm into chunk c (edge B(c+1) -> B(c)).
    c_b = [
        [comm_fn(b_op(sl, c + 1), b_op(sl, c)) for c in range(chunks - 1)]
        for sl in range(s)
    ]

    # busy(k): every stage must run all its ops.
    stage_busy: list[float] = []
    for k in range(p):
        work = 0.0
        for c in problem.chunks_of_stage(k):
            for sl in range(s):
                work += d_f[sl][c] + d_b[sl][c] + d_w[sl][c]
        stage_busy.append(n * work)

    # ramp(k): cheapest forward chain to the stage's lowest chunk.
    ramps: list[float] = []
    for k in range(p):
        c_min = min(problem.chunks_of_stage(k))
        ramp = min(
            sum(d_f[sl][c] for c in range(c_min))
            + sum(c_f[sl][c] for c in range(c_min))
            for sl in range(s)
        )
        ramps.append(ramp)

    # chain(sl): one micro-batch's F chain out, B chain back, one W GEMM.
    chains: list[float] = []
    for sl in range(s):
        chain = sum(d_f[sl]) + sum(c_f[sl]) + sum(d_b[sl]) + sum(c_b[sl])
        chain += comm_fn(f_op(sl, chunks - 1), b_op(sl, chunks - 1))
        if split:
            chain += min(
                dur_fn(w_op(sl, 0, g)) + comm_fn(b_op(sl, 0), w_op(sl, 0, g))
                for g in range(gemms)
            )
        chains.append(chain)

    lb_raw = max(
        max(ramps[k] + stage_busy[k] for k in range(p)),
        max(chains),
    )

    # Upper bound: total work plus every dependency edge's comm.
    total_comm = 0.0
    for sl in range(s):
        total_comm += sum(c_f[sl]) + sum(c_b[sl])
        for c in range(chunks):
            if sl > 0:
                total_comm += comm_fn(f_op(sl - 1, c), f_op(sl, c))
            if sl < s - 1:
                total_comm += comm_fn(b_op(sl + 1, c), b_op(sl, c))
            total_comm += comm_fn(f_op(sl, c), b_op(sl, c))
            if split:
                total_comm += sum(
                    comm_fn(b_op(sl, c), w_op(sl, c, g)) for g in range(gemms)
                )
    ub_raw = sum(stage_busy) + n * total_comm

    lower = lb_raw * (1.0 - GUARD) + overhead_time
    upper = ub_raw * (1.0 + GUARD) + overhead_time
    certificate = EvalCertificate(
        kind="bounded",
        lower=lower,
        upper=upper,
        basis=(
            "tabular busy/ramp/chain lower bound and binding-path upper "
            "bound over the per-(slice, chunk) cost tables, guard band "
            f"{GUARD:g}"
        ),
    )
    return TimeBounds(
        lower=lower,
        upper=upper,
        stage_busy=tuple(stage_busy),
        certificate=certificate,
    )


def peak_units_floor(
    problem: PipelineProblem,
    cost: CostModel,
    forwards_floor: int | None = None,
) -> float:
    """Certified lower bound on any schedule's peak ledger units.

    ``forwards_floor`` asserts that some stage holds at least that many
    forward ops' activations live at once (the schedule family's
    forwards-before-first-backward knob); without it, the floor is the
    single cheapest forward — the instant before the first backward
    starts, at least one forward's activation is pinned.

    The bound multiplies the *cheapest* per-forward units, so it is
    sound for any mix of slices/chunks the floor's forwards cover, and
    it is pre-scaled by :data:`GUARD` to absorb summation-order
    rounding against the simulator's ledger.
    """
    if not getattr(cost, "microbatch_invariant", False):
        return 0.0
    _dur_fn, _comm_fn, act_fn = op_cost_fns(cost)
    min_units = min(
        act_fn(OpId(OpKind.F, 0, sl, c))
        for sl in range(problem.num_slices)
        for c in range(problem.num_chunks)
    )
    # A stage's first chunk sees n*s forwards in total, so the in-flight
    # count can never legitimately exceed that — cap the asserted floor.
    available = problem.num_microbatches * problem.num_slices
    count = max(1, min(forwards_floor or 1, available))
    return count * min_units * (1.0 - GUARD)
