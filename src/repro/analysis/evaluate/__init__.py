"""Analytic schedule evaluator: static timing/memory with provenance.

Public surface of the evaluator tier:

* :func:`evaluate_schedule` — exact closed-form evaluation of a built
  schedule (bit-identical to the event simulator, certified);
* :func:`evaluate_schedule_batch` — the same evaluation stacked over a
  whole *topology class* (structurally identical schedules, distinct
  cost tables) in one ``(n_configs, n_ops)`` vectorized sweep,
  bit-identical per member to :func:`evaluate_schedule`;
* :func:`iteration_time_bounds` / :func:`peak_units_floor` — certified
  build-free bounds used by the planner's first-pass pruning;
* the ``EV001``–``EV004`` diagnostic rules and the evaluator version
  that the sweep cache folds into its fingerprints.

See ``docs/evaluation.md`` for the closed forms and the
exactness/bound taxonomy.
"""

from repro.analysis.evaluate.batch import (
    batched_wavefront_times,
    evaluate_schedule_batch,
)
from repro.analysis.evaluate.bounds import (
    GUARD,
    TimeBounds,
    iteration_time_bounds,
    peak_units_floor,
)
from repro.analysis.evaluate.core import (
    AnalyticEvaluation,
    EvalCertificate,
    StagePhases,
    evaluate_schedule,
)
from repro.analysis.evaluate.dense import (
    DenseTimes,
    dense_schedule_times,
    op_cost_arrays,
    wavefront_times,
)
from repro.analysis.evaluate.rules import EVALUATE_RULES, EVALUATOR_VERSION

__all__ = [
    "GUARD",
    "AnalyticEvaluation",
    "DenseTimes",
    "EvalCertificate",
    "EVALUATE_RULES",
    "EVALUATOR_VERSION",
    "StagePhases",
    "TimeBounds",
    "batched_wavefront_times",
    "dense_schedule_times",
    "evaluate_schedule",
    "evaluate_schedule_batch",
    "iteration_time_bounds",
    "op_cost_arrays",
    "peak_units_floor",
    "wavefront_times",
]
