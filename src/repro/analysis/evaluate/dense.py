"""Vectorized max-plus evaluation of a compiled schedule graph.

The simulator's replay recurrence

``start[i] = max(end[i-1] if pos[i] > 0 else 0,
maxₑ end[pred[e]] + comm[e])``, ``end[i] = start[i] + duration[i]``

is a longest-path computation in the max-plus semiring over the op DAG.
IEEE-754 ``max`` is exact and order-independent, and every add uses the
identical float operands, so *any* topological evaluation order yields
bit-identical start/end arrays — this is the exactness theorem behind
the analytic evaluator's certificates and behind the simulator's
vectorized ``"event"`` engine, both of which consume the times computed
here.

Two optimizations keep this path an order of magnitude cheaper than
the event-driven replay without touching a single float:

* **Key-table cost probing** — when the cost model declares
  ``microbatch_invariant`` (the same contract
  :func:`~repro.sim.cost.op_cost_fns` memoizes on), every op cost is a
  pure function of ``(kind, slice, chunk, gemm)``.  The tables are
  probed once per distinct key (a few dozen calls) and broadcast to all
  ops/edges with NumPy gathers, instead of one Python-level cost call
  per op and per edge.
* **Plan caching** — the topological evaluation order and dependency
  height depend only on the graph, not the cost model, so they are
  computed once (Kahn) and cached on the compiled graph; replaying the
  recurrence for a cost model is then a single pass over flat arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.schedules.base import OpId, OpKind
from repro.schedules.graph import KIND_F, KIND_W, ScheduleGraph, TopoPlan, toposort_plan
from repro.sim.cost import CostModel, op_cost_fns

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]


@dataclass(frozen=True)
class DenseTimes:
    """Start/end times of every op, plus the cost tables that made them.

    All arrays are indexed by the graph's dense op index; ``comm`` is
    indexed like the graph's ``pred`` edge array.  ``levels`` is the
    dependency height of the schedule (the number of Kahn wavefronts).
    """

    start: FloatArray
    end: FloatArray
    duration: FloatArray
    act_units: FloatArray
    comm: FloatArray
    levels: int

    @property
    def num_ops(self) -> int:
        return int(self.start.shape[0])


def op_cost_arrays(
    graph: ScheduleGraph, cost: CostModel
) -> tuple[FloatArray, FloatArray, FloatArray]:
    """``(duration, act_units, comm)`` flat cost tables for ``graph``.

    Micro-batch-invariant cost models are probed once per distinct
    ``(kind, slice, chunk, gemm)`` key — exactly the key the event
    engine's :func:`op_cost_fns` memo collapses to, so two ops sharing
    a key receive the identical float either way and the tables are
    bit-for-bit the simulator's.  The few representative ``OpId``\\ s
    those probes need are decoded from the graph's dense tables, so
    ``graph.ops`` (the full 10k+ tuple) is never materialized on this
    path.  Non-invariant models fall back to one probe per op and per
    edge over the full op tuple.
    """
    num_ops = graph.num_ops
    if not getattr(cost, "microbatch_invariant", False):
        ops = graph.ops
        dur_fn, comm_fn, act_fn = op_cost_fns(cost)
        duration = np.fromiter(
            (dur_fn(op) for op in ops), dtype=np.float64, count=num_ops
        )
        act_units = np.fromiter(
            (act_fn(op) for op in ops), dtype=np.float64, count=num_ops
        )
        pred_indptr, pred = graph.pred_indptr, graph.pred
        comm = np.empty(len(pred), dtype=np.float64)
        for i in range(num_ops):
            op = ops[i]
            for e in range(pred_indptr[i], pred_indptr[i + 1]):
                comm[e] = comm_fn(ops[pred[e]], op)
        return duration, act_units, comm

    problem = graph.problem
    chunks = problem.num_chunks
    s = problem.num_slices
    gemms = problem.wgrad_gemms
    if num_ops == 0:
        empty = np.zeros(0, dtype=np.float64)
        return empty, empty.copy(), np.zeros(len(graph.pred), dtype=np.float64)

    kind = np.asarray(graph.kind, dtype=np.int64)
    cell = np.asarray(graph.cell, dtype=np.int64)
    gemm = np.asarray(graph.gemm, dtype=np.int64)  # -1 for F/B ops
    sl = (cell // chunks) % s
    c = cell % chunks
    # Dense memo key: (kind, slice, chunk, gemm), gemm shifted to >= 0.
    code = ((kind * s + sl) * chunks + c) * (gemms + 1) + (gemm + 1)
    uniq, inverse = np.unique(code, return_inverse=True)
    rep = np.empty(uniq.shape[0], dtype=np.int64)
    rep[inverse] = np.arange(num_ops, dtype=np.int64)

    def op_at(i: int) -> OpId:
        # Decode the true OpId of dense index ``i`` from the graph's
        # tables (cell = (mb*s + sl)*chunks + c); field-for-field equal
        # to ``graph.ops[i]`` without materializing the full tuple.
        kc, ce = graph.kind[i], graph.cell[i]
        op_kind = (
            OpKind.F if kc == KIND_F else OpKind.W if kc == KIND_W else OpKind.B
        )
        return OpId(
            op_kind,
            ce // (chunks * s),
            (ce // chunks) % s,
            ce % chunks,
            graph.gemm[i],
        )

    dur_table = np.fromiter(
        (cost.duration(op_at(i)) for i in rep),
        dtype=np.float64,
        count=uniq.shape[0],
    )
    act_table = np.fromiter(
        (cost.act_units(op_at(i)) for i in rep),
        dtype=np.float64,
        count=uniq.shape[0],
    )
    duration = dur_table[inverse]
    act_units = act_table[inverse]

    pred = np.asarray(graph.pred, dtype=np.int64)
    pred_indptr = np.asarray(graph.pred_indptr, dtype=np.int64)
    if pred.shape[0] == 0:
        return duration, act_units, np.zeros(0, dtype=np.float64)
    edge_op = np.repeat(
        np.arange(num_ops, dtype=np.int64), np.diff(pred_indptr)
    )
    span = np.int64(int(code.max()) + 1)
    ecode = code[pred] * span + code[edge_op]
    euniq, einverse = np.unique(ecode, return_inverse=True)
    erep = np.empty(euniq.shape[0], dtype=np.int64)
    erep[einverse] = np.arange(ecode.shape[0], dtype=np.int64)
    comm_table = np.fromiter(
        (cost.comm_time(op_at(int(pred[e])), op_at(int(edge_op[e]))) for e in erep),
        dtype=np.float64,
        count=euniq.shape[0],
    )
    return duration, act_units, comm_table[einverse]


#: The evaluation plan *is* the graph's shared topological plan: one
#: Kahn pass per topology class serves the verifier's deadlock verdict,
#: this module's replay order, and the batched evaluator's wavefront
#: boundaries (see :class:`repro.schedules.graph.TopoPlan`).
_EvalPlan = TopoPlan


def _graph_plan(graph: ScheduleGraph) -> TopoPlan:
    """The graph's cached evaluation plan (built on first use)."""
    return toposort_plan(graph)


def dense_schedule_times(graph: ScheduleGraph, cost: CostModel) -> DenseTimes:
    """Evaluate the replay recurrence over ``graph`` under ``cost``."""
    duration, act_units, comm = op_cost_arrays(graph, cost)
    return wavefront_times(graph, duration, act_units, comm)


def wavefront_times(
    graph: ScheduleGraph,
    duration: FloatArray,
    act_units: FloatArray,
    comm: FloatArray,
) -> DenseTimes:
    """Max-plus replay in the graph's cached topological plan order.

    Raises :class:`ScheduleError` if the graph plus program-order edges
    contains a cycle — the same deadlock the simulator's engines
    detect.
    """
    num_ops = graph.num_ops
    if num_ops == 0:
        empty = np.zeros(0, dtype=np.float64)
        return DenseTimes(
            start=empty,
            end=empty.copy(),
            duration=duration,
            act_units=act_units,
            comm=comm,
            levels=0,
        )
    plan = _graph_plan(graph)
    pred_indptr, pred = graph.pred_indptr, graph.pred
    pos = graph.pos
    # Scalar replay over flat lists: the recurrence is a dependency
    # chain (max alternating with add), so per-op latency — not
    # vectorizable width — is what matters; plain-list indexing beats
    # per-wavefront NumPy dispatch on the narrow fronts these pipeline
    # graphs produce.  Floats are bit-identical either way (module
    # docstring).
    dur = duration.tolist()
    cm = comm.tolist()
    start = [0.0] * num_ops
    end = [0.0] * num_ops
    for i in plan.order:
        t = end[i - 1] if pos[i] > 0 else 0.0
        for e in range(pred_indptr[i], pred_indptr[i + 1]):
            arrival = end[pred[e]] + cm[e]
            if arrival > t:
                t = arrival
        start[i] = t
        end[i] = t + dur[i]
    return DenseTimes(
        start=np.asarray(start, dtype=np.float64),
        end=np.asarray(end, dtype=np.float64),
        duration=duration,
        act_units=act_units,
        comm=comm,
        levels=plan.levels,
    )
