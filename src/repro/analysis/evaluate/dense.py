"""Vectorized max-plus evaluation of a compiled schedule graph.

The simulator's replay recurrence

``start[i] = max(end[i-1] if pos[i] > 0 else 0,
maxₑ end[pred[e]] + comm[e])``, ``end[i] = start[i] + duration[i]``

is a longest-path computation in the max-plus semiring over the op DAG.
IEEE-754 ``max`` is exact and order-independent, and every add uses the
identical float operands, so *any* topological evaluation order yields
bit-identical start/end arrays — this is the exactness theorem behind
the analytic evaluator's certificates and behind the simulator's
vectorized ``"event"`` engine, both of which consume the times computed
here.

Two optimizations keep this path an order of magnitude cheaper than
the event-driven replay without touching a single float:

* **Key-table cost probing** — when the cost model declares
  ``microbatch_invariant`` (the same contract
  :func:`~repro.sim.cost.op_cost_fns` memoizes on), every op cost is a
  pure function of ``(kind, slice, chunk, gemm)``.  The tables are
  probed once per distinct key (a few dozen calls) and broadcast to all
  ops/edges with NumPy gathers, instead of one Python-level cost call
  per op and per edge.
* **Plan caching** — the topological evaluation order and dependency
  height depend only on the graph, not the cost model, so they are
  computed once (Kahn) and cached on the compiled graph; replaying the
  recurrence for a cost model is then a single pass over flat arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.schedules.base import ScheduleError
from repro.schedules.graph import ScheduleGraph
from repro.sim.cost import CostModel, op_cost_fns

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]


@dataclass(frozen=True)
class DenseTimes:
    """Start/end times of every op, plus the cost tables that made them.

    All arrays are indexed by the graph's dense op index; ``comm`` is
    indexed like the graph's ``pred`` edge array.  ``levels`` is the
    dependency height of the schedule (the number of Kahn wavefronts).
    """

    start: FloatArray
    end: FloatArray
    duration: FloatArray
    act_units: FloatArray
    comm: FloatArray
    levels: int

    @property
    def num_ops(self) -> int:
        return int(self.start.shape[0])


def op_cost_arrays(
    graph: ScheduleGraph, cost: CostModel
) -> tuple[FloatArray, FloatArray, FloatArray]:
    """``(duration, act_units, comm)`` flat cost tables for ``graph``.

    Micro-batch-invariant cost models are probed once per distinct
    ``(kind, slice, chunk, gemm)`` key — exactly the key the event
    engine's :func:`op_cost_fns` memo collapses to, so two ops sharing
    a key receive the identical float either way and the tables are
    bit-for-bit the simulator's.  Non-invariant models fall back to one
    probe per op and per edge.
    """
    ops = graph.ops
    num_ops = graph.num_ops
    if not getattr(cost, "microbatch_invariant", False):
        dur_fn, comm_fn, act_fn = op_cost_fns(cost)
        duration = np.fromiter(
            (dur_fn(op) for op in ops), dtype=np.float64, count=num_ops
        )
        act_units = np.fromiter(
            (act_fn(op) for op in ops), dtype=np.float64, count=num_ops
        )
        pred_indptr, pred = graph.pred_indptr, graph.pred
        comm = np.empty(len(pred), dtype=np.float64)
        for i in range(num_ops):
            op = ops[i]
            for e in range(pred_indptr[i], pred_indptr[i + 1]):
                comm[e] = comm_fn(ops[pred[e]], op)
        return duration, act_units, comm

    problem = graph.problem
    chunks = problem.num_chunks
    s = problem.num_slices
    gemms = problem.wgrad_gemms
    if num_ops == 0:
        empty = np.zeros(0, dtype=np.float64)
        return empty, empty.copy(), np.zeros(len(graph.pred), dtype=np.float64)

    kind = np.asarray(graph.kind, dtype=np.int64)
    cell = np.asarray(graph.cell, dtype=np.int64)
    gemm = np.asarray(graph.gemm, dtype=np.int64)  # -1 for F/B ops
    sl = (cell // chunks) % s
    c = cell % chunks
    # Dense memo key: (kind, slice, chunk, gemm), gemm shifted to >= 0.
    code = ((kind * s + sl) * chunks + c) * (gemms + 1) + (gemm + 1)
    uniq, inverse = np.unique(code, return_inverse=True)
    rep = np.empty(uniq.shape[0], dtype=np.int64)
    rep[inverse] = np.arange(num_ops, dtype=np.int64)
    dur_table = np.fromiter(
        (cost.duration(ops[i]) for i in rep),
        dtype=np.float64,
        count=uniq.shape[0],
    )
    act_table = np.fromiter(
        (cost.act_units(ops[i]) for i in rep),
        dtype=np.float64,
        count=uniq.shape[0],
    )
    duration = dur_table[inverse]
    act_units = act_table[inverse]

    pred = np.asarray(graph.pred, dtype=np.int64)
    pred_indptr = np.asarray(graph.pred_indptr, dtype=np.int64)
    if pred.shape[0] == 0:
        return duration, act_units, np.zeros(0, dtype=np.float64)
    edge_op = np.repeat(
        np.arange(num_ops, dtype=np.int64), np.diff(pred_indptr)
    )
    span = np.int64(int(code.max()) + 1)
    ecode = code[pred] * span + code[edge_op]
    euniq, einverse = np.unique(ecode, return_inverse=True)
    erep = np.empty(euniq.shape[0], dtype=np.int64)
    erep[einverse] = np.arange(ecode.shape[0], dtype=np.int64)
    comm_table = np.fromiter(
        (cost.comm_time(ops[pred[e]], ops[edge_op[e]]) for e in erep),
        dtype=np.float64,
        count=euniq.shape[0],
    )
    return duration, act_units, comm_table[einverse]


@dataclass(frozen=True)
class _EvalPlan:
    """Cost-independent evaluation plan for one compiled graph.

    ``order`` is a topological order of the op indices (dependency and
    program-order edges); ``levels`` is the dependency height.  Both
    depend only on the graph structure, so the plan is computed once
    (Kahn's algorithm) and cached on the graph — replaying the timing
    recurrence for a cost model is then a single scalar pass.
    """

    order: list[int]
    levels: int


def _build_plan(graph: ScheduleGraph) -> _EvalPlan:
    """Kahn's algorithm over dependency + program-order edges.

    Raises :class:`ScheduleError` if the combined edge relation has a
    cycle (the frontier stalls before covering every op) — the same
    deadlock the simulator's engines detect.
    """
    num_ops = graph.num_ops
    pred_indptr = graph.pred_indptr
    succ_indptr, succ = graph.succ_indptr, graph.succ
    pos = graph.pos
    indeg = [
        pred_indptr[i + 1] - pred_indptr[i] + (1 if pos[i] > 0 else 0)
        for i in range(num_ops)
    ]
    frontier = [i for i in range(num_ops) if indeg[i] == 0]
    order: list[int] = []
    levels = 0
    while frontier:
        levels += 1
        order.extend(frontier)
        nxt: list[int] = []
        for i in frontier:
            for e in range(succ_indptr[i], succ_indptr[i + 1]):
                j = succ[e]
                indeg[j] -= 1
                if indeg[j] == 0:
                    nxt.append(j)
            j = i + 1
            if j < num_ops and pos[j] > 0:
                indeg[j] -= 1
                if indeg[j] == 0:
                    nxt.append(j)
        frontier = nxt
    if len(order) != num_ops:
        stuck = [str(graph.ops[i]) for i in range(num_ops) if indeg[i] > 0][:8]
        raise ScheduleError(f"evaluation deadlock; blocked ops: {stuck}")
    return _EvalPlan(order=order, levels=levels)


def _graph_plan(graph: ScheduleGraph) -> _EvalPlan:
    """The graph's cached evaluation plan (built on first use)."""
    plan = graph._dense_plan
    if not isinstance(plan, _EvalPlan):
        plan = _build_plan(graph)
        graph._dense_plan = plan
    return plan


def dense_schedule_times(graph: ScheduleGraph, cost: CostModel) -> DenseTimes:
    """Evaluate the replay recurrence over ``graph`` under ``cost``."""
    duration, act_units, comm = op_cost_arrays(graph, cost)
    return wavefront_times(graph, duration, act_units, comm)


def wavefront_times(
    graph: ScheduleGraph,
    duration: FloatArray,
    act_units: FloatArray,
    comm: FloatArray,
) -> DenseTimes:
    """Max-plus replay in the graph's cached topological plan order.

    Raises :class:`ScheduleError` if the graph plus program-order edges
    contains a cycle — the same deadlock the simulator's engines
    detect.
    """
    num_ops = graph.num_ops
    if num_ops == 0:
        empty = np.zeros(0, dtype=np.float64)
        return DenseTimes(
            start=empty,
            end=empty.copy(),
            duration=duration,
            act_units=act_units,
            comm=comm,
            levels=0,
        )
    plan = _graph_plan(graph)
    pred_indptr, pred = graph.pred_indptr, graph.pred
    pos = graph.pos
    # Scalar replay over flat lists: the recurrence is a dependency
    # chain (max alternating with add), so per-op latency — not
    # vectorizable width — is what matters; plain-list indexing beats
    # per-wavefront NumPy dispatch on the narrow fronts these pipeline
    # graphs produce.  Floats are bit-identical either way (module
    # docstring).
    dur = duration.tolist()
    cm = comm.tolist()
    start = [0.0] * num_ops
    end = [0.0] * num_ops
    for i in plan.order:
        t = end[i - 1] if pos[i] > 0 else 0.0
        for e in range(pred_indptr[i], pred_indptr[i + 1]):
            arrival = end[pred[e]] + cm[e]
            if arrival > t:
                t = arrival
        start[i] = t
        end[i] = t + dur[i]
    return DenseTimes(
        start=np.asarray(start, dtype=np.float64),
        end=np.asarray(end, dtype=np.float64),
        duration=duration,
        act_units=act_units,
        comm=comm,
        levels=plan.levels,
    )
