"""Batched (multi-config) analytic evaluation of one topology class.

A *topology class* is a set of schedules whose compiled graphs are
structurally identical — same op numbering, kinds, cells, stage layout,
and therefore the same dependency edges and the same topological plan —
while their cost key-tables differ (distinct cost models, e.g. the
recompute on/off pair of one placement, or the same placement priced
for different model scales).  For such a class the max-plus replay

``start[i] = max(end[i-1] if pos[i] > 0 else 0,
maxₑ end[pred[e]] + comm[e])``, ``end[i] = start[i] + duration[i]``

is the *same* recurrence over the *same* DAG for every member; only the
``duration``/``comm`` operands differ.  :func:`evaluate_schedule_batch`
therefore stacks the members' cost tables into ``(n_configs, n_ops)``
matrices and sweeps the shared plan once, one Kahn wavefront at a time,
with every member advanced per NumPy gather — followed by batched
strictly-sequential prefix sums (``np.add.accumulate(..., axis=1)``)
for the per-stage busy/peak ledgers and vectorized phase boundaries.

Bit-identity argument (the same exactness theorem as
:mod:`repro.analysis.evaluate.dense`, member by member):

* each member's row of the stacked sweep performs float ``max`` and
  ``+`` on exactly the operands the scalar replay uses — ``max`` is
  exact and order-independent, and the padded predecessor slots
  contribute ``max(…, 0.0)`` which is absorbed because every start
  time is non-negative;
* ``np.add.accumulate`` along ``axis=1`` is strictly sequential per
  row, so every partial sum (and hence every busy total and ledger
  peak) equals the scalar evaluator's float for float;
* phase boundaries and the critical-path backtrack read individual
  start/end floats at structure-determined positions, identical per
  member.

So ``evaluate_schedule_batch([sᵢ], [cᵢ], …)[j]`` equals
``evaluate_schedule(sⱼ, cⱼ, …)`` exactly (golden-tested over the
acceptance grid by ``tests/test_evaluate_batch.py``).  Structural
agreement is *checked*, not assumed: the members' graph tables are
compared outright, so a caller that mis-groups configurations gets a
``ValueError`` instead of silently wrong floats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np
import numpy.typing as npt

from repro.analysis.evaluate.core import (
    EXACT_CERTIFICATE_BASIS,
    AnalyticEvaluation,
    EvalCertificate,
    StagePhases,
    _critical_path,
    _ledger_deltas,
)
from repro.analysis.evaluate.dense import (
    DenseTimes,
    FloatArray,
    IntArray,
    _graph_plan,
    op_cost_arrays,
)
from repro.obs.events import NULL_SINK, EventSink
from repro.schedules import gencache
from repro.schedules.base import Schedule
from repro.schedules.graph import KIND_B, KIND_F, ScheduleGraph, compiled_graph
from repro.sim.cost import CostModel


@dataclass(frozen=True)
class _BatchTables:
    """Gather tables for the stacked wavefront, one per structure.

    ``order``/``level_indptr`` are the shared topological plan as flat
    arrays.  The remaining tables are *pre-gathered into plan order* —
    row ``r`` describes op ``order[r]`` — so the per-level loop slices
    contiguous views instead of re-gathering by ``idx`` every level:
    ``prog_src``/``prog_mask`` give each op's program-order predecessor
    (clamped to 0 where absent, with the mask recording absence), and
    ``dep_src``/``dep_edge``/``dep_mask`` give the dependency
    predecessors (and their edge indices into the ``comm`` table)
    padded to the maximum in-degree.  All of it depends only on the
    graph structure, so one instance serves every member of a topology
    class — and, via the structure store in
    :mod:`repro.schedules.gencache`, every future graph with the same
    structure key.
    """

    order: IntArray
    level_indptr: IntArray
    levels: int
    prog_src: IntArray
    prog_mask: npt.NDArray[np.bool_]
    dep_src: IntArray
    dep_edge: IntArray
    dep_mask: npt.NDArray[np.bool_]


def _build_tables(graph: ScheduleGraph) -> _BatchTables:
    plan = _graph_plan(graph)
    num_ops = graph.num_ops
    pos = np.asarray(graph.pos, dtype=np.int64)
    pred_indptr = np.asarray(graph.pred_indptr, dtype=np.int64)
    pred = np.asarray(graph.pred, dtype=np.int64)
    counts = np.diff(pred_indptr)
    width = int(counts.max()) if num_ops else 0
    slot_pred = np.full((num_ops, width), -1, dtype=np.int64)
    slot_edge = np.full((num_ops, width), -1, dtype=np.int64)
    if width:
        # Edge e of op i lands in slot e - pred_indptr[i]; vectorized
        # over the flat edge list.
        edge_op = np.repeat(np.arange(num_ops, dtype=np.int64), counts)
        slot = np.arange(pred.shape[0], dtype=np.int64) - pred_indptr[edge_op]
        slot_pred[edge_op, slot] = pred
        slot_edge[edge_op, slot] = np.arange(pred.shape[0], dtype=np.int64)
    prog_pred = np.where(
        pos > 0, np.arange(num_ops, dtype=np.int64) - 1, np.int64(-1)
    )
    # Pre-gather everything into plan order and pre-clamp the -1 pads,
    # so the sweep's inner loop is pure contiguous slicing.
    order = np.asarray(plan.order, dtype=np.int64)
    prog_ordered = prog_pred[order]
    dep_src = slot_pred[order]
    dep_edge = slot_edge[order]
    return _BatchTables(
        order=order,
        level_indptr=np.asarray(plan.level_indptr, dtype=np.int64),
        levels=plan.levels,
        prog_src=np.maximum(prog_ordered, 0),
        prog_mask=prog_ordered >= 0,
        dep_src=np.maximum(dep_src, 0),
        dep_edge=np.maximum(dep_edge, 0),
        dep_mask=dep_src >= 0,
    )


def _graph_tables(graph: ScheduleGraph) -> _BatchTables:
    """The structure's batch tables, shared through the structure store."""
    key = ("batch", graph.structure_key())
    cached = gencache.get_structure(key)
    if isinstance(cached, _BatchTables):
        return cached
    tables = _build_tables(graph)
    gencache.put_structure(key, tables)
    return tables


def _stack_cost_tables(
    graph: ScheduleGraph, costs: Sequence[CostModel]
) -> tuple[FloatArray, FloatArray, FloatArray]:
    """Stacked ``(n_configs, …)`` duration/act/comm tables.

    Row ``j`` is exactly :func:`~repro.analysis.evaluate.dense
    .op_cost_arrays` for member ``j`` — same probes, same floats — so
    stacking changes layout, never values.
    """
    rows = [op_cost_arrays(graph, cost) for cost in costs]
    duration = np.stack([r[0] for r in rows])
    act_units = np.stack([r[1] for r in rows])
    comm = np.stack([r[2] for r in rows])
    return duration, act_units, comm


def batched_wavefront_times(
    graph: ScheduleGraph,
    duration: FloatArray,
    act_units: FloatArray,
    comm: FloatArray,
) -> list[DenseTimes]:
    """Stacked max-plus replay: all rows sweep the shared plan at once.

    ``duration``/``act_units`` are ``(k, num_ops)``, ``comm`` is
    ``(k, num_edges)``; the result is one :class:`DenseTimes` per row,
    each bit-identical to :func:`~repro.analysis.evaluate.dense
    .wavefront_times` on that row (module docstring).
    """
    num_ops = graph.num_ops
    k = int(duration.shape[0])
    if num_ops == 0:
        empty = np.zeros(0, dtype=np.float64)
        return [
            DenseTimes(
                start=empty,
                end=empty.copy(),
                duration=duration[j],
                act_units=act_units[j],
                comm=comm[j],
                levels=0,
            )
            for j in range(k)
        ]
    tables = _graph_tables(graph)
    start = np.zeros((k, num_ops), dtype=np.float64)
    end = np.zeros((k, num_ops), dtype=np.float64)
    order, indptr = tables.order, tables.level_indptr
    width = tables.dep_src.shape[1]
    zero = np.float64(0.0)
    for lv in range(tables.levels):
        a, b = int(indptr[lv]), int(indptr[lv + 1])
        # The tables are pre-gathered into plan order, so each level is
        # a contiguous slice; padded slots read a harmless column 0 and
        # are masked to 0.0, which max() absorbs (start times are
        # >= 0).  One 3-D gather per level replaces the former
        # per-in-degree-slot loop — same operands, same floats, a
        # constant number of NumPy dispatches per wavefront.
        t = np.where(
            tables.prog_mask[a:b], end[:, tables.prog_src[a:b]], zero
        )
        if width:
            arrival = (
                end[:, tables.dep_src[a:b]] + comm[:, tables.dep_edge[a:b]]
            )
            np.maximum(
                t,
                np.where(tables.dep_mask[a:b], arrival, zero).max(axis=2),
                out=t,
            )
        idx = order[a:b]
        start[:, idx] = t
        end[:, idx] = t + duration[:, idx]
    return [
        DenseTimes(
            start=start[j],
            end=end[j],
            duration=duration[j],
            act_units=act_units[j],
            comm=comm[j],
            levels=tables.levels,
        )
        for j in range(k)
    ]


def _require_one_topology(
    rep: ScheduleGraph, graphs: Sequence[ScheduleGraph]
) -> None:
    """Exact structural-agreement check over the raw graph tables.

    Deliberately *not* phrased through ``structure_key()`` or any
    caller-provided grouping key: a bug (or seeded mutation) in the
    planner's class grouping must land here as a ``ValueError``, never
    as silently mis-priced members.
    """
    for j, graph in enumerate(graphs):
        if graph is rep:
            continue
        if (
            graph.problem != rep.problem
            or graph.kind != rep.kind
            or graph.cell != rep.cell
            or graph.gemm != rep.gemm
            or graph.stage_bounds != rep.stage_bounds
        ):
            raise ValueError(
                f"batched evaluation requires one topology class: member "
                f"{j} is structurally different from the representative "
                f"({graph.num_ops} vs {rep.num_ops} ops, problem "
                f"{graph.problem} vs {rep.problem})"
            )


def evaluate_schedule_batch(
    schedules: Sequence[Schedule],
    costs: Sequence[CostModel],
    overhead_times: Sequence[float],
    actgrad_factor: float = 1.0,
    sink: EventSink = NULL_SINK,
) -> list[AnalyticEvaluation]:
    """Evaluate one topology class of schedules in a single stacked pass.

    ``schedules[j]`` under ``costs[j]`` (plus ``overhead_times[j]``)
    produces element ``j`` of the result, bit-identical to
    ``evaluate_schedule(schedules[j], costs[j], overhead_times[j])`` —
    the structure (plan, gather tables, ledger masks, phase positions)
    is built once from the representative and shared, while every float
    comes from member ``j``'s own cost tables.  Raises ``ValueError``
    when the schedules are not structurally identical.
    """
    from repro.schedules.verify import ensure_verified

    if not (len(schedules) == len(costs) == len(overhead_times)):
        raise ValueError(
            f"mismatched batch: {len(schedules)} schedules, "
            f"{len(costs)} costs, {len(overhead_times)} overheads"
        )
    if not schedules:
        return []
    wall_start = time.perf_counter()
    for schedule in schedules:
        ensure_verified(schedule, context="evaluate")
    graphs = [compiled_graph(schedule) for schedule in schedules]
    rep = graphs[0]
    _require_one_topology(rep, graphs)

    duration, act_units, comm = _stack_cost_tables(rep, costs)
    times = batched_wavefront_times(rep, duration, act_units, comm)
    k = len(schedules)

    # Ledger deltas: `_ledger_deltas` is written over one row but every
    # operation broadcasts over (k, num_ops) unchanged — the per-row
    # floats are the scalar evaluator's.
    deltas = _ledger_deltas(rep, act_units, actgrad_factor)
    kind = np.asarray(rep.kind, dtype=np.int64)
    num_stages = len(rep.stage_bounds)
    zeros = np.zeros(k, dtype=np.float64)
    stage_busy = np.zeros((k, num_stages), dtype=np.float64)
    stage_peak = np.zeros((k, num_stages), dtype=np.float64)
    stage_ends = np.zeros((k, num_stages), dtype=np.float64)
    op_counts: list[int] = []
    warmups = np.zeros((k, num_stages), dtype=np.float64)
    steadies = np.zeros((k, num_stages), dtype=np.float64)
    start2d = np.stack([t.start for t in times])
    end2d = np.stack([t.end for t in times])
    for s, (lo, hi) in enumerate(rep.stage_bounds):
        op_counts.append(hi - lo)
        if hi > lo:
            # Batched strictly-sequential prefix sums: accumulate along
            # axis 1 visits each row's ops in program order, exactly
            # like the scalar evaluator's 1-D accumulate per stage.
            stage_busy[:, s] = np.add.accumulate(
                duration[:, lo:hi], axis=1
            )[:, -1]
            running = np.add.accumulate(deltas[:, lo:hi], axis=1)
            stage_peak[:, s] = np.maximum(0.0, running.max(axis=1))
            stage_ends[:, s] = end2d[:, hi - 1]
        # Phase boundaries from structure-determined positions (the
        # first B and last F of a stage are the same op for every
        # member of the class).
        kind_s = kind[lo:hi]
        b_pos = np.nonzero(kind_s == KIND_B)[0]
        f_pos = np.nonzero(kind_s == KIND_F)[0]
        s_end = stage_ends[:, s] if hi > lo else zeros
        warm = start2d[:, lo + int(b_pos[0])] if b_pos.size else s_end
        last_f = end2d[:, lo + int(f_pos[-1])] if f_pos.size else warm
        warmups[:, s] = warm
        steadies[:, s] = np.minimum(np.maximum(warm, last_f), s_end)

    results: list[AnalyticEvaluation] = []
    for j in range(k):
        ends_j = stage_ends[j].tolist()
        makespan = max(ends_j) if ends_j else 0.0
        comm_s, path_ops = _critical_path(rep, times[j])
        phases = tuple(
            StagePhases(
                stage=s,
                warmup_end=float(warmups[j, s]),
                steady_end=float(steadies[j, s]),
                end=float(stage_ends[j, s]),
            )
            for s in range(num_stages)
        )
        iteration = makespan + overhead_times[j]
        certificate = EvalCertificate(
            kind="exact",
            lower=iteration,
            upper=iteration,
            basis=EXACT_CERTIFICATE_BASIS,
        )
        result = AnalyticEvaluation(
            schedule_name=schedules[j].name,
            problem=rep.problem,
            makespan=makespan,
            overhead_time=overhead_times[j],
            stage_busy=tuple(stage_busy[j].tolist()),
            stage_peak_units=tuple(stage_peak[j].tolist()),
            stage_ends=tuple(ends_j),
            stage_op_counts=tuple(op_counts),
            phases=phases,
            comm_on_critical_path_s=comm_s,
            critical_path_ops=path_ops,
            levels=times[j].levels,
            certificate=certificate,
            times=times[j],
        )
        act_bytes = getattr(costs[j], "activation_bytes_per_unit", None)
        if callable(act_bytes):
            object.__setattr__(
                result, "activation_bytes_per_unit", float(act_bytes())
            )
        msg_bytes = getattr(costs[j], "boundary_message_bytes", None)
        if callable(msg_bytes):
            object.__setattr__(
                result, "comm_bytes_per_message", float(msg_bytes())
            )
        results.append(result)

    if sink.enabled:
        wall_end = time.perf_counter()
        sink.span(
            f"evaluate batch x{k} {schedules[0].name}",
            ts=wall_start,
            dur=wall_end - wall_start,
            cat="evaluate",
            args={
                "ops": rep.num_ops,
                "batch": k,
                "levels": tables_levels(times),
            },
        )
        sink.counter("batch_size", float(k), ts=wall_end)
    return results


def tables_levels(times: Sequence[DenseTimes]) -> int:
    """Dependency height of the batch (shared by every member)."""
    return times[0].levels if times else 0
