"""Closed-form/tabular evaluation of a compiled schedule.

:func:`evaluate_schedule` derives, without running the discrete-event
replay loop, everything the planner asks the simulator for:

* per-op start/end times and the iteration makespan — via the
  vectorized max-plus wavefront (:mod:`repro.analysis.evaluate.dense`),
  which is *provably* bit-identical to the event engine (float ``max``
  is exact and order-independent; see the dense module docstring);
* per-stage busy time and peak live ledger units — via strictly
  sequential ``np.add.accumulate`` prefix sums over the same per-op
  cost/delta floats the simulator's program-order loops add up, so the
  partial sums (and hence peaks) match bit for bit;
* the bubble ratio, warmup/steady/cooldown phase boundaries per stage,
  and the communication seconds on the binding critical path.

Every result carries an :class:`EvalCertificate` stating *why* it can
be trusted: results from this module are certified ``"exact"`` (the
max-plus theorem applies to every compilable schedule), while the
build-free closed forms in :mod:`repro.analysis.evaluate.bounds` issue
``"bounded"`` certificates.  :mod:`repro.sim.crossval` replays either
kind against the event simulator and files ``EV001``–``EV004``
diagnostics when an obligation breaks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.evaluate.dense import (
    DenseTimes,
    FloatArray,
    dense_schedule_times,
)
from repro.analysis.evaluate.rules import EVALUATOR_VERSION
from repro.obs.events import NULL_SINK, EventSink
from repro.schedules.base import PipelineProblem, Schedule
from repro.schedules.graph import (
    KIND_B,
    KIND_F,
    ScheduleGraph,
    compiled_graph,
)
from repro.sim.cost import CostModel

#: Basis text of every ``"exact"`` certificate — shared verbatim by the
#: scalar and batched evaluators so their results compare equal.
EXACT_CERTIFICATE_BASIS = (
    "max-plus wavefront over the compiled graph: float max is "
    "exact and order-independent, adds reuse the simulator's "
    "operands, prefix sums are strictly sequential"
)


@dataclass(frozen=True)
class EvalCertificate:
    """Machine-checkable provenance of one analytic evaluation.

    ``kind`` is ``"exact"`` (the value is proven bit-identical to the
    event simulator; ``lower == value == upper``) or ``"bounded"`` (the
    simulated iteration time is certified to lie in
    ``[lower, upper]``).  ``basis`` names the argument; ``version`` is
    the evaluator arithmetic version the certificate was issued under.
    """

    kind: str
    lower: float
    upper: float
    basis: str
    version: int = EVALUATOR_VERSION

    def contains(self, value: float) -> bool:
        """Whether ``value`` satisfies the certificate."""
        return self.lower <= value <= self.upper

    def consistent(self) -> bool:
        """Internal sanity: interval ordered, exact ⇒ degenerate."""
        if not self.lower <= self.upper:
            return False
        if self.kind == "exact" and self.lower != self.upper:
            return False
        return self.kind in ("exact", "bounded")


@dataclass(frozen=True)
class StagePhases:
    """Warmup/steady/cooldown decomposition of one stage's timeline.

    ``[0, warmup_end)`` is the warmup (before the stage's first
    backward starts), ``[warmup_end, steady_end)`` the steady phase
    (forwards and backwards interleave), and ``[steady_end, end]`` the
    cooldown (only backward-side work remains).  The boundaries always
    satisfy ``0 <= warmup_end <= steady_end <= end`` (rule EV004).
    """

    stage: int
    warmup_end: float
    steady_end: float
    end: float

    @property
    def warmup(self) -> float:
        return self.warmup_end

    @property
    def steady(self) -> float:
        return self.steady_end - self.warmup_end

    @property
    def cooldown(self) -> float:
        return self.end - self.steady_end

    def ordered(self) -> bool:
        """The EV004 obligation."""
        return 0.0 <= self.warmup_end <= self.steady_end <= self.end


@dataclass(frozen=True)
class AnalyticEvaluation:
    """Everything the analytic evaluator derives from one schedule."""

    schedule_name: str
    problem: PipelineProblem
    makespan: float
    overhead_time: float
    stage_busy: tuple[float, ...]
    stage_peak_units: tuple[float, ...]
    stage_ends: tuple[float, ...]
    stage_op_counts: tuple[int, ...]
    phases: tuple[StagePhases, ...]
    #: Seconds of communication on the binding critical path, and the
    #: number of ops that path visits.
    comm_on_critical_path_s: float
    critical_path_ops: int
    #: Dependency height of the schedule (Kahn wavefront count).
    levels: int
    certificate: EvalCertificate
    activation_bytes_per_unit: float = 0.0
    comm_bytes_per_message: float = 0.0
    times: DenseTimes | None = field(default=None, repr=False, compare=False)

    @property
    def iteration_time(self) -> float:
        """Makespan plus iteration-level overheads (DP sync, optimizer)."""
        return self.makespan + self.overhead_time

    @property
    def bubble_ratio(self) -> float:
        """Aggregate idle fraction: ``1 - busy / (p * makespan)``."""
        if self.makespan <= 0:
            return 0.0
        busy = sum(self.stage_busy)
        return 1.0 - busy / (len(self.stage_busy) * self.makespan)

    @property
    def peak_activation_units(self) -> float:
        """Maximum over stages of pinned ledger memory, in units of A."""
        return max(self.stage_peak_units)

    @property
    def num_stages(self) -> int:
        return len(self.stage_busy)

    def stage_bubble_ratio(self, stage: int) -> float:
        """Idle fraction of one stage over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return 1.0 - self.stage_busy[stage] / self.makespan

    @property
    def stage_peak_bytes(self) -> tuple[int, ...]:
        """Per-stage peak activation bytes (ledger units × bytes/unit)."""
        bpu = self.activation_bytes_per_unit
        return tuple(int(round(u * bpu)) for u in self.stage_peak_units)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready summary (CLI ``--json`` output)."""
        return {
            "schedule": self.schedule_name,
            "iteration_time": self.iteration_time,
            "makespan": self.makespan,
            "overhead_time": self.overhead_time,
            "bubble_ratio": self.bubble_ratio,
            "peak_activation_units": self.peak_activation_units,
            "comm_on_critical_path_s": self.comm_on_critical_path_s,
            "critical_path_ops": self.critical_path_ops,
            "levels": self.levels,
            "certificate": {
                "kind": self.certificate.kind,
                "lower": self.certificate.lower,
                "upper": self.certificate.upper,
                "basis": self.certificate.basis,
                "version": self.certificate.version,
            },
            "stages": [
                {
                    "stage": s,
                    "busy": self.stage_busy[s],
                    "peak_units": self.stage_peak_units[s],
                    "end": self.stage_ends[s],
                    "ops": self.stage_op_counts[s],
                    "warmup_end": self.phases[s].warmup_end,
                    "steady_end": self.phases[s].steady_end,
                }
                for s in range(self.num_stages)
            ],
        }

    def render_text(self) -> str:
        """Human-readable summary (CLI default output)."""
        cert = self.certificate
        lines = [
            f"schedule {self.schedule_name}: "
            f"iteration {self.iteration_time:.6g}s "
            f"(makespan {self.makespan:.6g}s + overhead "
            f"{self.overhead_time:.6g}s), "
            f"bubble {self.bubble_ratio:.2%}, "
            f"peak {self.peak_activation_units:.4g} units of A",
            f"critical path: {self.critical_path_ops} ops, "
            f"{self.comm_on_critical_path_s:.6g}s comm; "
            f"dependency height {self.levels}",
            f"certificate: {cert.kind} v{cert.version} "
            f"[{cert.lower:.6g}, {cert.upper:.6g}] — {cert.basis}",
        ]
        for s in range(self.num_stages):
            ph = self.phases[s]
            lines.append(
                f"  stage {s}: busy {self.stage_busy[s]:.6g}s "
                f"({self.stage_bubble_ratio(s):.2%} idle), "
                f"peak {self.stage_peak_units[s]:.4g}u, "
                f"warmup {ph.warmup:.6g}s / steady {ph.steady:.6g}s / "
                f"cooldown {ph.cooldown:.6g}s"
            )
        return "\n".join(lines)


def _ledger_deltas(
    graph: ScheduleGraph,
    act_units: FloatArray,
    actgrad_factor: float,
) -> FloatArray:
    """Per-op ledger deltas replicating ``_Ledger.apply`` exactly.

    Each delta is computed with the same float expression the
    simulator's ledger uses (``a - x`` equals ``a + (-x)`` in IEEE-754,
    so accumulating negated deltas preserves every partial sum bit for
    bit).
    """
    problem = graph.problem
    kind = np.asarray(graph.kind, dtype=np.int64)
    if problem.split_backward:
        b_delta = act_units * actgrad_factor
        w_delta = -(
            act_units * (1.0 + actgrad_factor) / problem.wgrad_gemms
        )
    else:
        b_delta = -act_units
        w_delta = np.zeros_like(act_units)
    return np.where(
        kind == KIND_F,
        act_units,
        np.where(kind == KIND_B, b_delta, w_delta),
    )


def _stage_phases(
    graph: ScheduleGraph, times: DenseTimes, stage: int
) -> StagePhases:
    """Phase boundaries of one stage from the dense times."""
    lo, hi = graph.stage_bounds[stage]
    stage_end = float(times.end[hi - 1]) if hi > lo else 0.0
    kind = np.asarray(graph.kind[lo:hi], dtype=np.int64)
    b_pos = np.nonzero(kind == KIND_B)[0]
    f_pos = np.nonzero(kind == KIND_F)[0]
    warmup_end = (
        float(times.start[lo + int(b_pos[0])]) if b_pos.size else stage_end
    )
    last_f_end = (
        float(times.end[lo + int(f_pos[-1])]) if f_pos.size else warmup_end
    )
    steady_end = min(max(warmup_end, last_f_end), stage_end)
    return StagePhases(
        stage=stage,
        warmup_end=warmup_end,
        steady_end=steady_end,
        end=stage_end,
    )


def _critical_path(
    graph: ScheduleGraph, times: DenseTimes
) -> tuple[float, int]:
    """Backtrack one binding critical path from the latest-ending op.

    At each op the binding constraint is recovered by re-testing the
    exact float equalities the wavefront's ``max`` resolved — the
    program predecessor first, then dependency edges in ``pred`` order —
    so the walk is deterministic and terminates at a chain origin
    (``start == 0`` with no binding constraint).  Returns the summed
    communication seconds along the path and the op count it visits.
    """
    num_ops = graph.num_ops
    if num_ops == 0:
        return 0.0, 0
    start, end, comm = times.start, times.end, times.comm
    pos = graph.pos
    pred_indptr, pred = graph.pred_indptr, graph.pred
    i = int(np.argmax(end))
    comm_s = 0.0
    visited = 0
    while visited <= num_ops:
        visited += 1
        s_i = start[i]
        if pos[i] > 0 and end[i - 1] == s_i:
            i -= 1
            continue
        for e in range(pred_indptr[i], pred_indptr[i + 1]):
            if end[pred[e]] + comm[e] == s_i:
                comm_s += float(comm[e])
                i = pred[e]
                break
        else:
            break  # chain origin: start == 0 with no binding constraint
    return comm_s, visited


def evaluate_schedule(
    schedule: Schedule,
    cost: CostModel,
    overhead_time: float = 0.0,
    actgrad_factor: float = 1.0,
    sink: EventSink = NULL_SINK,
) -> AnalyticEvaluation:
    """Statically evaluate ``schedule`` under ``cost``.

    Produces the same iteration time, bubble ratio, per-stage busy
    times, and per-stage peak ledger units as
    ``repro.sim.executor.simulate`` — certified exact (bit-for-bit) by
    the max-plus argument in :mod:`repro.analysis.evaluate.dense` —
    plus the phase decomposition and critical-path communication the
    simulator does not report.  The schedule is statically verified on
    entry exactly like the simulator's entry point (cached verdict, so
    re-verification is free when the builder already checked it).
    """
    from repro.schedules.verify import ensure_verified

    wall_start = time.perf_counter()
    ensure_verified(schedule, context="evaluate")
    graph = compiled_graph(schedule)
    times = dense_schedule_times(graph, cost)

    deltas = _ledger_deltas(graph, times.act_units, actgrad_factor)
    stage_busy: list[float] = []
    stage_peak: list[float] = []
    stage_ends: list[float] = []
    op_counts: list[int] = []
    phases: list[StagePhases] = []
    for s, (lo, hi) in enumerate(graph.stage_bounds):
        if hi > lo:
            # Strictly sequential prefix sums: identical partial-sum
            # floats to the simulator's program-order accumulation.
            stage_busy.append(
                float(np.add.accumulate(times.duration[lo:hi])[-1])
            )
            running = np.add.accumulate(deltas[lo:hi])
            stage_peak.append(max(0.0, float(running.max())))
            stage_ends.append(float(times.end[hi - 1]))
        else:
            stage_busy.append(0.0)
            stage_peak.append(0.0)
            stage_ends.append(0.0)
        op_counts.append(hi - lo)
        phases.append(_stage_phases(graph, times, s))
    makespan = max(stage_ends) if stage_ends else 0.0
    comm_s, path_ops = _critical_path(graph, times)

    iteration = makespan + overhead_time
    certificate = EvalCertificate(
        kind="exact",
        lower=iteration,
        upper=iteration,
        basis=EXACT_CERTIFICATE_BASIS,
    )
    result = AnalyticEvaluation(
        schedule_name=schedule.name,
        problem=graph.problem,
        makespan=makespan,
        overhead_time=overhead_time,
        stage_busy=tuple(stage_busy),
        stage_peak_units=tuple(stage_peak),
        stage_ends=tuple(stage_ends),
        stage_op_counts=tuple(op_counts),
        phases=tuple(phases),
        comm_on_critical_path_s=comm_s,
        critical_path_ops=path_ops,
        levels=times.levels,
        certificate=certificate,
        times=times,
    )

    act_bytes = getattr(cost, "activation_bytes_per_unit", None)
    if callable(act_bytes):
        object.__setattr__(
            result, "activation_bytes_per_unit", float(act_bytes())
        )
    msg_bytes = getattr(cost, "boundary_message_bytes", None)
    if callable(msg_bytes):
        object.__setattr__(
            result, "comm_bytes_per_message", float(msg_bytes())
        )

    if sink.enabled:
        wall_end = time.perf_counter()
        sink.span(
            f"evaluate {schedule.name}",
            ts=wall_start,
            dur=wall_end - wall_start,
            cat="evaluate",
            args={
                "ops": graph.num_ops,
                "levels": times.levels,
                "iteration_time": iteration,
            },
        )
        sink.counter("evaluate_ops", float(graph.num_ops), ts=wall_end)
        sink.counter(
            "evaluate_comm_critical_s", comm_s, ts=wall_end
        )
    return result
