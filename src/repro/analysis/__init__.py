"""Static analysis of the (model partition, schedule) pair.

Abstract-interprets the partitioned model over a symbolic tensor IR —
no numerics — and proves shape/interface agreement (SH rules), gradient
coverage of the deferred weight-gradient queues (GC rules), and
happens-before hazard freedom (HZ rules).  See ``docs/analysis.md`` for
the pass and rule catalogue, and ``python -m repro check-model`` for
the CLI.

The :mod:`repro.analysis.evaluate` subpackage extends the tier with the
analytic schedule evaluator: certified closed-form timing/memory (EV
rules, ``python -m repro evaluate``, ``docs/evaluation.md``), and
:mod:`repro.analysis.capacity` adds bounded-channel certification:
slot-reuse deadlock proofs, minimal ring-size inference, and
backpressure analysis (CP rules, ``python -m repro capacity``,
``docs/verification.md``).
"""

from repro.analysis.capacity import (
    CAPACITY_RULES,
    CapacityCertificate,
    CapacityPlan,
    ChannelCapacity,
    certify_capacities,
    check_capacities,
    cross_validate_capacities,
    infer_capacities,
    ring_bytes_per_stage,
)
from repro.analysis.core import (
    ModelAnalysisError,
    analyze_model,
    analyze_partition,
    analyze_spec,
    ensure_model_verified,
    interface_report,
    model_program,
)
from repro.analysis.coverage import check_coverage
from repro.analysis.evaluate import (
    EVALUATE_RULES,
    AnalyticEvaluation,
    EvalCertificate,
    TimeBounds,
    evaluate_schedule,
    iteration_time_bounds,
    peak_units_floor,
)
from repro.analysis.extract import (
    component_spec,
    partition_from_model,
    partition_from_spec,
)
from repro.analysis.hazards import check_hazards
from repro.analysis.ir import (
    ChunkSpec,
    ComponentSpec,
    PartitionSpec,
    SymTensor,
)
from repro.analysis.memory import (
    StageMemory,
    infer_channel_buffers,
    infer_stage_memory,
)
from repro.analysis.program import ModelProgram, TaskRef, build_program
from repro.analysis.rules import (
    COVERAGE_RULES,
    HAZARD_RULES,
    MODEL_RULES,
    SHAPE_RULES,
)
from repro.analysis.shapes import check_shapes

__all__ = [
    "CAPACITY_RULES",
    "COVERAGE_RULES",
    "EVALUATE_RULES",
    "HAZARD_RULES",
    "MODEL_RULES",
    "SHAPE_RULES",
    "AnalyticEvaluation",
    "CapacityCertificate",
    "CapacityPlan",
    "ChannelCapacity",
    "ChunkSpec",
    "ComponentSpec",
    "EvalCertificate",
    "ModelAnalysisError",
    "ModelProgram",
    "PartitionSpec",
    "StageMemory",
    "SymTensor",
    "TaskRef",
    "TimeBounds",
    "analyze_model",
    "analyze_partition",
    "analyze_spec",
    "build_program",
    "certify_capacities",
    "check_capacities",
    "check_coverage",
    "check_hazards",
    "check_shapes",
    "component_spec",
    "cross_validate_capacities",
    "ensure_model_verified",
    "evaluate_schedule",
    "infer_capacities",
    "infer_channel_buffers",
    "infer_stage_memory",
    "interface_report",
    "iteration_time_bounds",
    "model_program",
    "partition_from_model",
    "partition_from_spec",
    "peak_units_floor",
    "ring_bytes_per_stage",
]
