"""Rule catalogue of the model-level static analyzer.

Three families, one per pass (see ``docs/analysis.md``):

* ``SH``: symbolic shape/dtype inference through the partitioned model
  and the cross-chunk channel interfaces;
* ``GC``: the gradient-coverage proof over the compiled schedule graph
  joined with the partition's weight-gradient task table;
* ``HZ``: happens-before hazard detection between overlapped weight-
  gradient GEMMs, activation releases, and channel payloads.

The rules register into the shared
:mod:`repro.schedules.verify.diagnostics` catalogue so analyzer
findings render, filter, and serialize exactly like schedule-verifier
findings; ids are stable API.
"""

from __future__ import annotations

from repro.schedules.verify.diagnostics import Rule, Severity, register_rules

#: Shape/dtype inference rules (pass 1).
SHAPE_RULES: tuple[str, ...] = ("SH001", "SH002", "SH003", "SH004")

#: Gradient-coverage rules (pass 2).
COVERAGE_RULES: tuple[str, ...] = ("GC001", "GC002", "GC003", "GC004")

#: Happens-before hazard rules (pass 3).
HAZARD_RULES: tuple[str, ...] = ("HZ001", "HZ002", "HZ003")

#: Everything the model analyzer checks.
MODEL_RULES: tuple[str, ...] = SHAPE_RULES + COVERAGE_RULES + HAZARD_RULES

register_rules(
    Rule(
        "SH001",
        "shape mismatch",
        Severity.ERROR,
        "Symbolic shape inference failed: a component receives a tensor "
        "whose inferred dimensions do not match its expected input "
        "interface, or the pipeline's final output is not a loss scalar.",
    ),
    Rule(
        "SH002",
        "dtype mismatch",
        Severity.ERROR,
        "A component receives a tensor of the wrong dtype tag (e.g. "
        "float hidden states where integer token ids are expected).",
    ),
    Rule(
        "SH003",
        "channel interface mismatch",
        Severity.ERROR,
        "The payload a chunk emits does not match the interface the "
        "consuming chunk expects; for cross-stage boundaries this is the "
        "tensor a real deployment would send over the wire, so the "
        "receiving stage would deserialize garbage.",
    ),
    Rule(
        "SH004",
        "inconsistent component configuration",
        Severity.ERROR,
        "A component's internal architecture is contradictory: GQA head "
        "counts that do not divide, or parameter shapes inconsistent "
        "with the declared widths.",
    ),
    Rule(
        "GC001",
        "missing weight-gradient contribution",
        Severity.ERROR,
        "A parameter receives no deferred W-task contribution for some "
        "(micro-batch, slice): its gradient would silently stay zero.",
    ),
    Rule(
        "GC002",
        "duplicate weight-gradient contribution",
        Severity.ERROR,
        "A parameter receives more than one W-task contribution for one "
        "(micro-batch, slice): its gradient would be double-counted.",
    ),
    Rule(
        "GC003",
        "undrained weight-gradient queue",
        Severity.ERROR,
        "A deferred weight-gradient task is never assigned to any "
        "scheduled W op; the queue would still hold work at iteration "
        "end.",
    ),
    Rule(
        "GC004",
        "weight gradient before backward",
        Severity.ERROR,
        "A W op is not ordered after the B op that produces the "
        "activation gradients it reads.",
    ),
    Rule(
        "HZ001",
        "unordered gradient accumulation",
        Severity.ERROR,
        "Two ops accumulate into the same parameter-gradient buffer "
        "with no happens-before order between them — a write-after-"
        "write race once W GEMMs overlap with communication.",
    ),
    Rule(
        "HZ002",
        "channel payload race",
        Severity.ERROR,
        "A cross-chunk payload is read without a happens-before path "
        "from the op that writes it — a read-before-write race on the "
        "channel buffer.",
    ),
    Rule(
        "HZ003",
        "ambiguous activation release",
        Severity.ERROR,
        "The W ops of one (micro-batch, slice, chunk) have no happens-"
        "before maximum: the pinned activations they share have no "
        "well-defined release point, so a free could race a read "
        "(write-after-read).",
    ),
)
