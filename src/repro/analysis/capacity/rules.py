"""The capacity analyzer's rule family (CP001-CP004).

Registered in the shared diagnostics catalogue
(:mod:`repro.schedules.verify.diagnostics`) so capacity findings render
and filter exactly like the verifier's ST/DL/CH rules and the
evaluator's EV rules: same ``Finding``/``Report`` shapes, same
``--rules`` selection, same text/JSON output.

``CAPACITY_VERSION`` is folded into planner sweep-cache fingerprints
(:mod:`repro.planner.parallel`); bump it whenever the inference or
certification semantics change so cached rows can never alias across
analyzer versions.
"""

from __future__ import annotations

from repro.schedules.verify.diagnostics import Rule, Severity, register_rules

#: Version of the capacity inference/certification semantics; part of
#: every planner sweep-cache fingerprint.
CAPACITY_VERSION: int = 1

#: Rule ids this analyzer can file, in catalogue order.
CAPACITY_RULES: tuple[str, ...] = ("CP001", "CP002", "CP003", "CP004")

register_rules(
    Rule(
        "CP001",
        "bounded-channel deadlock",
        Severity.ERROR,
        "Under the configured ring capacities the schedule deadlocks: "
        "adding one slot-reuse edge per in-flight message beyond each "
        "channel's capacity (send #i cannot start before recv #(i-K) "
        "completes) makes the dependency + program-order graph cyclic. "
        "The witness is a minimal blocking cycle naming the saturated "
        "channel.",
    ),
    Rule(
        "CP002",
        "invalid channel capacity",
        Severity.ERROR,
        "A configured capacity is unusable: a message-carrying channel "
        "was given fewer than one slot, no capacity at all, or a "
        "capacity was configured for a channel the schedule never "
        "sends on.",
    ),
    Rule(
        "CP003",
        "channel backpressure",
        Severity.WARNING,
        "The configured capacities are deadlock-free but lengthen the "
        "critical path: the analytic makespan on the slot-augmented "
        "graph exceeds the unbounded-channel makespan. The witness "
        "shows the slowdown and every channel sized below its inferred "
        "backpressure-free capacity.",
    ),
    Rule(
        "CP004",
        "capacity certificate divergence",
        Severity.ERROR,
        "A capacity certificate failed re-validation: its recorded "
        "makespans do not reproduce bit-for-bit from the slot-augmented "
        "graph, its backpressure-free claim is false, or the bounded "
        "event simulation disagrees with the analytic max-plus times at "
        "the certified capacities.",
    ),
)
