"""Bounded-channel capacity analysis of compiled schedules.

The third static-analysis pass: augments the compiled
:class:`~repro.schedules.graph.ScheduleGraph` with slot-reuse edges to
certify deadlock-freedom under finite ring capacities (CP001), infers
the componentwise-minimal deadlock-free and backpressure-free capacity
vectors in closed form, and cross-validates every certificate against
the simulator's independent bounded-channel engine (CP004).  See
``docs/verification.md`` (rule table) and ``docs/analysis.md``
(inference guarantees and limits).
"""

from repro.analysis.capacity.core import (
    CapacityCertificate,
    CapacityPlan,
    ChannelCapacity,
    ChannelId,
    bounded_dense_times,
    certify_capacities,
    channel_messages,
    check_capacities,
    cross_validate_capacities,
    infer_capacities,
    normalize_capacities,
    ring_bytes_per_stage,
)
from repro.analysis.capacity.rules import CAPACITY_RULES, CAPACITY_VERSION

__all__ = [
    "CAPACITY_RULES",
    "CAPACITY_VERSION",
    "CapacityCertificate",
    "CapacityPlan",
    "ChannelCapacity",
    "ChannelId",
    "bounded_dense_times",
    "certify_capacities",
    "channel_messages",
    "check_capacities",
    "cross_validate_capacities",
    "infer_capacities",
    "normalize_capacities",
    "ring_bytes_per_stage",
]
