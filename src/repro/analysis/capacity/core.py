"""Bounded-channel certification of compiled schedules.

The verifier and the analytic evaluator prove deadlock-freedom and
timing under *unbounded* channels, but the multi-process runtime
executes on finite shared-memory SPSC rings.  A ring of capacity ``K``
on channel ``(src, dst, kind)`` adds one structural constraint per
message beyond the first ``K``: send ``#i`` cannot start before recv
``#(i-K)`` completes, because the producer blocks until the consumer
frees a slot.  This module augments the compiled
:class:`~repro.schedules.graph.ScheduleGraph` with exactly those
*slot-reuse edges* and answers three questions in closed form:

* **Safety** — is the schedule deadlock-free at the configured
  capacities?  Execution order on each stage is fixed by its program,
  so a bounded-buffer deadlock is timing-independent: it happens iff
  the slot-augmented graph (dependency + program-order + slot-reuse
  edges) has a cycle.  On failure the existing minimal-cycle machinery
  produces a witness naming the saturated channel (CP001).
* **Minimal deadlock-free capacity** — the all-ones vector is tested
  first with a single Kahn pass; when it is acyclic it is the global
  componentwise minimum (one slot per channel is the floor).  Otherwise
  a coordinate descent from the canonical-order occupancy peaks
  binary-searches each channel down while every probe keeps the *full*
  current vector acyclic, yielding a componentwise-minimal vector:
  lowering any single coordinate of the result re-adds a superset of
  the slot edges present when that coordinate was minimized, and
  cyclicity is monotone under edge addition.  (The jointly-minimal
  total buffer count is NP-hard; see ``docs/verification.md``.)
* **Minimal backpressure-free capacity** — from the unbounded max-plus
  times, channel by channel: with sends ordered by the producer's
  program (``S[i] = start[src_i]`` nondecreasing) and ``M[j]`` the
  running max of consumer completions, message ``#i`` needs
  ``K >= i - r(i)`` slots where ``r(i)`` is the last message whose
  consumption finishes by ``S[i]`` — a two-pointer scan.  At these
  capacities every slot-reuse edge arrives no later than the
  unbounded start it joins, so the IEEE-754 ``max`` in the replay
  recurrence returns bit-identical times: bounded equals unbounded
  exactly, not approximately.

Certificates produced here are re-validated by
:func:`cross_validate_capacities`, which replays the slot-augmented
recurrence *and* runs the simulator's independent bounded-channel heap
engine (`simulate(..., channel_capacities=...)`), filing CP004 on any
bit-level disagreement.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.analysis.capacity.rules import CAPACITY_RULES
from repro.analysis.evaluate.dense import (
    DenseTimes,
    IntArray,
    _graph_plan,
    dense_schedule_times,
)
from repro.schedules.base import OpId, Schedule, ScheduleError
from repro.schedules.graph import ScheduleGraph, compiled_graph
from repro.schedules.verify.deps import _edge_label, _minimal_cycle
from repro.schedules.verify.diagnostics import Finding, Report
from repro.sim.cost import CostModel

#: A channel's identity: ``(src_stage, dst_stage, kind)`` with kind one
#: of ``"F"``/``"B"``/``"W"`` — the same granularity the FIFO verifier
#: (CH001) and the runtime's shared-memory rings use.
ChannelId = tuple[int, int, str]

_KIND_CHARS = ("F", "B", "W")


def _channel_str(key: ChannelId) -> str:
    """Render a channel like the runtime's ``ChannelKey.__str__``."""
    return f"stage {key[0]} -> stage {key[1]} ({key[2]})"


def normalize_capacities(
    capacities: Mapping[Any, int],
) -> dict[ChannelId, int]:
    """Coerce a capacity mapping onto plain ``(src, dst, kind)`` keys.

    Accepts tuples or any key object exposing ``src_stage`` /
    ``dst_stage`` / ``kind`` attributes (e.g. the runtime's
    ``ChannelKey``); ``kind`` may be a string or an ``OpKind``.
    """
    out: dict[ChannelId, int] = {}
    for key, value in capacities.items():
        if isinstance(key, tuple):
            src, dst, kind = key
        else:
            src, dst, kind = key.src_stage, key.dst_stage, key.kind
        kind = getattr(kind, "value", kind)
        out[(int(src), int(dst), str(kind))] = int(value)
    return out


# ----------------------------------------------------------------------
# Channel extraction and slot-reuse edges
# ----------------------------------------------------------------------
@dataclass
class _GraphTables:
    """Cost-independent channel tables, cached on the compiled graph.

    ``arrays`` carries each channel's ``(src_ops, dst_ops)`` as dense
    int arrays in slot-claim order (the vectorized twin of
    ``channels``); ``rank`` is each op's position in the cached
    unbounded topological plan.  ``dl_caps`` is filled lazily — the
    coordinate descent behind it is the one genuinely expensive
    inference, and cost-model consumers (the planner's
    backpressure-free ledger) never need it.
    """

    arrays: dict[ChannelId, tuple[IntArray, IntArray]]
    peaks: dict[ChannelId, int]
    rank: IntArray
    dl_caps: dict[ChannelId, int] | None = None
    _channels: dict[ChannelId, list[tuple[int, int]]] | None = None

    @property
    def channels(self) -> dict[ChannelId, list[tuple[int, int]]]:
        """``arrays`` as Python pair lists, materialized on first use.

        Only the Kahn-based paths (deadlock inference, the bounded
        replay fallback, witness search) walk these lists; the
        planner's vectorized ledger never pays for them.
        """
        if self._channels is None:
            self._channels = {
                key: list(zip(sa.tolist(), da.tolist(), strict=True))
                for key, (sa, da) in self.arrays.items()
            }
        return self._channels


def _graph_tables(graph: ScheduleGraph) -> _GraphTables:
    """Extract (and cache) every channel's message tables, vectorized.

    One pass over the CSR predecessor arrays classifies cross-stage
    edges into channels; a lexsort orders each channel's messages by
    the producer's program position — the order ring slots are claimed
    in.  Occupancy peaks fall out of a per-channel cumulative sum of
    ±1 events along the cached topological plan.
    """
    cached = graph._capacity_tables
    if isinstance(cached, _GraphTables):
        return cached
    num_ops = graph.num_ops
    indptr = np.asarray(graph.pred_indptr, dtype=np.int64)
    pred = np.asarray(graph.pred, dtype=np.int64)
    cross = np.asarray(graph.pred_cross, dtype=bool)
    stage = np.asarray(graph.stage, dtype=np.int64)
    kind = np.asarray(graph.kind, dtype=np.int64)
    pos = np.asarray(graph.pos, dtype=np.int64)
    heads = np.repeat(np.arange(num_ops, dtype=np.int64), np.diff(indptr))
    srcs = pred[cross]
    dsts = heads[cross]
    order = np.lexsort((pos[srcs], kind[srcs], stage[dsts], stage[srcs]))
    srcs = srcs[order]
    dsts = dsts[order]
    rank = np.empty(num_ops, dtype=np.int64)
    rank[np.asarray(_graph_plan(graph).order, dtype=np.int64)] = np.arange(
        num_ops, dtype=np.int64
    )
    arrays: dict[ChannelId, tuple[IntArray, IntArray]] = {}
    peaks: dict[ChannelId, int] = {}
    if srcs.size:
        ss, ds, ks = stage[srcs], stage[dsts], kind[srcs]
        change = (
            np.flatnonzero(
                (np.diff(ss) != 0) | (np.diff(ds) != 0) | (np.diff(ks) != 0)
            )
            + 1
        )
        bounds = np.concatenate(([0], change, [srcs.size]))
        for b, e in zip(bounds[:-1], bounds[1:]):
            key = (int(ss[b]), int(ds[b]), _KIND_CHARS[int(ks[b])])
            sa, da = srcs[b:e], dsts[b:e]
            arrays[key] = (sa, da)
            # A message is in flight from its producer to its consumer
            # along the plan; distinct ops have distinct ranks, so the
            # signed events sort unambiguously.
            deltas = np.concatenate(
                (np.ones(sa.size, np.int64), -np.ones(da.size, np.int64))
            )
            ev = np.argsort(np.concatenate((rank[sa], rank[da])))
            peaks[key] = int(np.cumsum(deltas[ev]).max())
    tables = _GraphTables(arrays=arrays, peaks=peaks, rank=rank)
    graph._capacity_tables = tables
    return tables


def channel_messages(
    graph: ScheduleGraph,
) -> dict[ChannelId, list[tuple[int, int]]]:
    """Every cross-stage message, grouped by channel.

    Returns ``{(src_stage, dst_stage, kind): [(src_op, dst_op), ...]}``
    with dense op indices, each channel's list sorted by the producer's
    program position — the order ring slots are claimed in.
    """
    return _graph_tables(graph).channels


def _slot_edges(
    channels: Mapping[ChannelId, list[tuple[int, int]]],
    capacities: Mapping[ChannelId, int],
) -> list[tuple[int, int, ChannelId]]:
    """Slot-reuse edges ``dst[i-K] -> src[i]`` for every channel."""
    edges: list[tuple[int, int, ChannelId]] = []
    for key in sorted(channels):
        msgs = channels[key]
        k = capacities[key]
        for i in range(k, len(msgs)):
            edges.append((msgs[i - k][1], msgs[i][0], key))
    return edges


def _bounded_order(
    graph: ScheduleGraph, edges: list[tuple[int, int, ChannelId]]
) -> tuple[list[int], list[int]]:
    """Kahn over dependency + program-order + slot-reuse edges.

    Returns ``(order, residual)``; a non-empty residual means the
    slot-augmented graph is cyclic (bounded-channel deadlock).
    """
    num_ops = graph.num_ops
    pred_indptr = graph.pred_indptr
    succ_indptr, succ = graph.succ_indptr, graph.succ
    pos = graph.pos
    slot_succ: dict[int, list[int]] = {}
    indeg = [
        pred_indptr[i + 1] - pred_indptr[i] + (1 if pos[i] > 0 else 0)
        for i in range(num_ops)
    ]
    for tail, head, _key in edges:
        slot_succ.setdefault(tail, []).append(head)
        indeg[head] += 1
    queue = deque(i for i in range(num_ops) if indeg[i] == 0)
    order: list[int] = []
    while queue:
        i = queue.popleft()
        order.append(i)
        for e in range(succ_indptr[i], succ_indptr[i + 1]):
            j = succ[e]
            indeg[j] -= 1
            if indeg[j] == 0:
                queue.append(j)
        j = i + 1
        if j < num_ops and pos[j] > 0:
            indeg[j] -= 1
            if indeg[j] == 0:
                queue.append(j)
        for j in slot_succ.get(i, ()):
            indeg[j] -= 1
            if indeg[j] == 0:
                queue.append(j)
    residual = [i for i in range(num_ops) if indeg[i] > 0]
    return order, residual


def _feasible(
    graph: ScheduleGraph,
    channels: Mapping[ChannelId, list[tuple[int, int]]],
    capacities: Mapping[ChannelId, int],
) -> bool:
    """Whether the slot-augmented graph is acyclic at ``capacities``."""
    order, _residual = _bounded_order(graph, _slot_edges(channels, capacities))
    return len(order) == graph.num_ops


# ----------------------------------------------------------------------
# Capacity inference
# ----------------------------------------------------------------------
def _deadlock_free_capacities(
    graph: ScheduleGraph, tables: _GraphTables
) -> dict[ChannelId, int]:
    """Minimal deadlock-free capacities (componentwise-local minimum).

    Fast path: one slot per channel is the componentwise floor, so if
    the all-ones vector is acyclic it is *the* global componentwise
    minimum and a single Kahn pass settles everything.  Otherwise a
    coordinate descent from a known-feasible start (occupancy peaks,
    verified; message counts as fallback) binary-searches each channel
    in deterministic key order with all other channels at their current
    values — every accepted value keeps the full vector acyclic, so
    feasibility is an invariant and the result is componentwise
    minimal.
    """
    channels, peaks = tables.channels, tables.peaks
    if not channels:
        return {}
    ones = dict.fromkeys(channels, 1)
    if all(p <= 1 for p in peaks.values()) or _feasible(
        graph, channels, ones
    ):
        # Capacities at (or above) the plan-order occupancy peaks are
        # always acyclic — the plan itself witnesses the order — so
        # all-ones peaks need no Kahn pass at all.
        return ones
    caps = dict(peaks)
    if not _feasible(graph, channels, caps):
        caps = {key: len(msgs) for key, msgs in channels.items()}
    for key in sorted(channels):
        lo, hi = 1, caps[key]
        while lo < hi:
            mid = (lo + hi) // 2
            caps[key] = mid
            if _feasible(graph, channels, caps):
                hi = mid
            else:
                lo = mid + 1
        caps[key] = lo
    return caps


def _deadlock_caps(graph: ScheduleGraph) -> dict[ChannelId, int]:
    """The (lazily computed, cached) minimal deadlock-free vector."""
    tables = _graph_tables(graph)
    if tables.dl_caps is None:
        tables.dl_caps = _deadlock_free_capacities(graph, tables)
    return tables.dl_caps


def _backpressure_free_capacities(
    arrays: Mapping[ChannelId, tuple[IntArray, IntArray]],
    times: DenseTimes,
) -> dict[ChannelId, int]:
    """Smallest per-channel capacities that cannot delay any send.

    For each channel, ``S[i]`` (producer starts, nondecreasing in slot
    order) and the running max ``M[j]`` of consumer completions give
    message ``#i`` a tolerance of ``i - r(i)`` slots, where ``r(i)``
    (a ``searchsorted`` into the running max) is the last message
    consumed by ``S[i]``.  At the per-channel max, every slot-reuse
    edge lands at or before the start it joins, so the bounded replay
    is bit-identical to the unbounded one.
    """
    start = times.start
    end = times.end
    caps: dict[ChannelId, int] = {}
    for key, (sa, da) in arrays.items():
        sends = start[sa]
        running = np.maximum.accumulate(end[da])
        idx = np.arange(sends.size, dtype=np.int64)
        r = np.minimum(
            np.searchsorted(running, sends, side="right") - 1, idx - 1
        )
        caps[key] = max(1, int((idx - r).max())) if sends.size else 1
    return caps


@dataclass(frozen=True)
class ChannelCapacity:
    """Inferred capacity profile of one cross-stage channel."""

    src_stage: int
    dst_stage: int
    kind: str
    #: Total messages the channel carries in one iteration (the legacy
    #: ring size — "never blocks" by construction).
    messages: int
    #: Peak in-flight messages along the canonical unbounded order.
    occupancy_peak: int
    #: Componentwise-minimal deadlock-free capacity; ``None`` when the
    #: inference was asked to skip it (the planner's backpressure-free
    #: ledger never reads it, and the coordinate descent behind it is
    #: the analyzer's one expensive step).
    deadlock_free: int | None
    #: Minimal capacity with zero critical-path impact; ``None`` when
    #: no cost model was supplied to the inference.
    backpressure_free: int | None = None

    @property
    def key(self) -> ChannelId:
        return (self.src_stage, self.dst_stage, self.kind)

    def describe(self) -> str:
        parts = [
            f"{_channel_str(self.key)}: {self.messages} msg",
            f"occupancy {self.occupancy_peak}",
        ]
        if self.deadlock_free is not None:
            parts.append(f"deadlock-free {self.deadlock_free}")
        if self.backpressure_free is not None:
            parts.append(f"backpressure-free {self.backpressure_free}")
        return ", ".join(parts)


@dataclass(frozen=True)
class CapacityPlan:
    """The capacity analyzer's verdict for one schedule."""

    schedule_name: str
    channels: tuple[ChannelCapacity, ...]
    #: Makespan of the unbounded max-plus replay (cost runs only).
    unbounded_makespan: float | None = None
    #: Makespan at the backpressure-free capacities — equal to
    #: ``unbounded_makespan`` bit-for-bit by construction.
    backpressure_free_makespan: float | None = None

    def capacities(self, mode: str = "deadlock-free") -> dict[ChannelId, int]:
        """Per-channel ring sizes for ``mode``.

        ``"deadlock-free"`` is the memory-minimal safe vector,
        ``"backpressure-free"`` additionally provably never delays a
        send (requires the plan to have been inferred with a cost
        model), ``"full"`` is the legacy one-slot-per-message sizing.
        """
        caps: dict[ChannelId, int] = {}
        if mode == "deadlock-free":
            for c in self.channels:
                if c.deadlock_free is None:
                    raise ValueError(
                        "deadlock-free capacities were skipped at "
                        "inference time (include_deadlock_free=False)"
                    )
                caps[c.key] = c.deadlock_free
            return caps
        if mode == "full":
            return {c.key: c.messages for c in self.channels}
        if mode == "backpressure-free":
            for c in self.channels:
                if c.backpressure_free is None:
                    raise ValueError(
                        "backpressure-free capacities require a plan "
                        "inferred with a cost model"
                    )
                caps[c.key] = c.backpressure_free
            return caps
        raise ValueError(f"unknown capacity mode {mode!r}")

    def to_dict(self) -> dict[str, object]:
        return {
            "schedule": self.schedule_name,
            "channels": [
                {
                    "src_stage": c.src_stage,
                    "dst_stage": c.dst_stage,
                    "kind": c.kind,
                    "messages": c.messages,
                    "occupancy_peak": c.occupancy_peak,
                    "deadlock_free": c.deadlock_free,
                    "backpressure_free": c.backpressure_free,
                }
                for c in self.channels
            ],
            "unbounded_makespan": self.unbounded_makespan,
            "backpressure_free_makespan": self.backpressure_free_makespan,
        }


@dataclass(frozen=True)
class CapacityCertificate:
    """A re-checkable claim about one capacity assignment.

    ``cross_validate_capacities`` re-derives every field from scratch
    (slot-augmented analytic replay *and* the simulator's independent
    bounded heap engine) and files CP004 on any bit-level mismatch.
    """

    schedule_name: str
    #: Sorted ``(src_stage, dst_stage, kind, capacity)`` rows.
    capacities: tuple[tuple[int, int, str, int], ...]
    #: Analytic makespan on the slot-augmented graph at these caps.
    makespan: float
    #: Analytic makespan with unbounded channels.
    unbounded_makespan: float
    #: Claim that the capacities cause zero critical-path lengthening.
    backpressure_free: bool

    def caps(self) -> dict[ChannelId, int]:
        return {(s, d, k): cap for s, d, k, cap in self.capacities}

    def to_dict(self) -> dict[str, object]:
        return {
            "schedule": self.schedule_name,
            "capacities": [list(row) for row in self.capacities],
            "makespan": self.makespan,
            "unbounded_makespan": self.unbounded_makespan,
            "backpressure_free": self.backpressure_free,
        }


def infer_capacities(
    schedule: Schedule,
    cost: CostModel | None = None,
    *,
    times: DenseTimes | None = None,
    include_deadlock_free: bool = True,
) -> CapacityPlan:
    """Infer minimal ring capacities for every channel of ``schedule``.

    Without a cost model the plan carries the (timing-independent)
    deadlock-free minima and occupancy peaks.  With one — or with
    precomputed unbounded ``times`` — it additionally carries the
    backpressure-free minima and both makespans.
    ``include_deadlock_free=False`` skips the deadlock-free coordinate
    descent (the one expensive inference; the planner's per-cell
    backpressure-free ledger never reads it).
    """
    graph = compiled_graph(schedule)
    tables = _graph_tables(graph)
    arrays, peaks = tables.arrays, tables.peaks
    dl_caps = _deadlock_caps(graph) if include_deadlock_free else None
    bp_caps: dict[ChannelId, int] | None = None
    unbounded = bounded = None
    if times is None and cost is not None:
        times = dense_schedule_times(graph, cost)
    if times is not None and arrays:
        bp_caps = _backpressure_free_capacities(tables.arrays, times)
        unbounded = float(times.end.max()) if times.num_ops else 0.0
        try:
            bounded_times = bounded_dense_times(graph, bp_caps, times=times)
        except ScheduleError:
            # Zero-duration ties can make the closed-form vector cyclic
            # even though the times are satisfiable; widening to the
            # known-feasible occupancy peaks removes slot edges without
            # weakening the no-delay property.
            bp_caps = {k: max(v, peaks[k]) for k, v in bp_caps.items()}
            bounded_times = bounded_dense_times(graph, bp_caps, times=times)
        bounded = (
            float(bounded_times.end.max()) if bounded_times.num_ops else 0.0
        )
    elif times is not None:
        unbounded = bounded = float(times.end.max()) if times.num_ops else 0.0
    rows = tuple(
        ChannelCapacity(
            src_stage=key[0],
            dst_stage=key[1],
            kind=key[2],
            messages=int(arrays[key][0].size),
            occupancy_peak=peaks[key],
            deadlock_free=None if dl_caps is None else dl_caps[key],
            backpressure_free=None if bp_caps is None else bp_caps[key],
        )
        for key in sorted(arrays)
    )
    return CapacityPlan(
        schedule_name=schedule.name,
        channels=rows,
        unbounded_makespan=unbounded,
        backpressure_free_makespan=bounded,
    )


# ----------------------------------------------------------------------
# Bounded max-plus replay
# ----------------------------------------------------------------------
def bounded_dense_times(
    graph: ScheduleGraph,
    capacities: Mapping[ChannelId, int],
    cost: CostModel | None = None,
    *,
    times: DenseTimes | None = None,
) -> DenseTimes:
    """Max-plus replay over the slot-augmented graph.

    Identical to the unbounded recurrence plus one zero-cost term per
    slot-reuse edge (``end`` of the slot-freeing recv); any topological
    order yields bit-identical floats, so whenever no slot edge is ever
    the strict maximum the result equals the unbounded times exactly.
    Raises :class:`ScheduleError` when the augmented graph is cyclic.
    """
    if times is None:
        if cost is None:
            raise ValueError("bounded_dense_times needs a cost model or times")
        times = dense_schedule_times(graph, cost)
    tables = _graph_tables(graph)
    caps = normalize_capacities(capacities)
    bad = sorted(k for k in tables.arrays if caps.get(k, 0) < 1)
    if bad:
        listed = ", ".join(_channel_str(k) for k in bad)
        raise ScheduleError(
            f"missing or sub-1 capacity for channel(s): {listed}"
        )
    # Vectorized shortcut: sorting ops by (unbounded start, plan rank)
    # gives a topological order of the *unbounded* graph; if every slot
    # edge both respects that order and frees its slot no later than
    # the send it joins (``end[tail] <= start[head]``), the augmented
    # graph is acyclic and no slot term is ever the strict maximum —
    # the unbounded times already solve the bounded recurrence, bit
    # for bit, with no per-op replay needed.
    trank = np.empty(graph.num_ops, dtype=np.int64)
    trank[np.lexsort((tables.rank, times.start))] = np.arange(
        graph.num_ops, dtype=np.int64
    )
    clean = True
    for key, (sa, da) in tables.arrays.items():
        k = caps[key]
        if k < sa.size:
            tails, heads = da[: sa.size - k], sa[k:]
            if (times.end[tails] > times.start[heads]).any() or (
                trank[tails] >= trank[heads]
            ).any():
                clean = False
                break
    if clean:
        return DenseTimes(
            start=times.start,
            end=times.end,
            duration=times.duration,
            act_units=times.act_units,
            comm=times.comm,
            levels=times.levels,
        )
    edges = _slot_edges(tables.channels, caps)
    # The cached unbounded plan is usually already a topological order
    # of the augmented graph (slot edges point forward in it); only
    # when some edge disagrees is a fresh Kahn pass needed.
    rank = tables.rank
    if all(int(rank[tail]) < int(rank[head]) for tail, head, _key in edges):
        order = [int(i) for i in np.argsort(rank)]
    else:
        order, residual = _bounded_order(graph, edges)
        if residual:
            stuck = [str(graph.ops[i]) for i in residual[:8]]
            raise ScheduleError(
                f"bounded-channel deadlock; blocked ops: {stuck} "
                f"(run `repro capacity` for a minimal-cycle witness)"
            )
    num_ops = graph.num_ops
    pred_indptr, pred = graph.pred_indptr, graph.pred
    pos = graph.pos
    slot_pred: dict[int, list[int]] = {}
    for tail, head, _key in edges:
        slot_pred.setdefault(head, []).append(tail)
    dur = times.duration.tolist()
    cm = times.comm.tolist()
    start = [0.0] * num_ops
    end = [0.0] * num_ops
    for i in order:
        t = end[i - 1] if pos[i] > 0 else 0.0
        for e in range(pred_indptr[i], pred_indptr[i + 1]):
            arrival = end[pred[e]] + cm[e]
            if arrival > t:
                t = arrival
        for j in slot_pred.get(i, ()):
            freed = end[j]
            if freed > t:
                t = freed
        start[i] = t
        end[i] = t + dur[i]
    return DenseTimes(
        start=np.asarray(start, dtype=np.float64),
        end=np.asarray(end, dtype=np.float64),
        duration=times.duration,
        act_units=times.act_units,
        comm=times.comm,
        levels=times.levels,
    )


# ----------------------------------------------------------------------
# Checking and certification (the CP rules)
# ----------------------------------------------------------------------
def _deadlock_witness(
    graph: ScheduleGraph,
    residual: list[int],
    edges: list[tuple[int, int, ChannelId]],
    capacities: Mapping[ChannelId, int],
) -> Finding:
    """A CP001 finding with a minimal blocking-cycle witness."""
    ops = graph.ops
    stage, pos = graph.stage, graph.pos
    succ_indptr, succ = graph.succ_indptr, graph.succ
    residual_set = set(residual)
    slot_label: dict[tuple[int, int], ChannelId] = {}
    id_succ: dict[OpId, list[OpId]] = {ops[i]: [] for i in residual}
    index_of = {ops[i]: i for i in residual}
    for i in residual:
        for e in range(succ_indptr[i], succ_indptr[i + 1]):
            j = int(succ[e])
            if j in residual_set:
                id_succ[ops[i]].append(ops[j])
        j = i + 1
        if j < graph.num_ops and pos[j] > 0 and j in residual_set:
            id_succ[ops[i]].append(ops[j])
    for tail, head, key in edges:
        if tail in residual_set and head in residual_set:
            id_succ[ops[tail]].append(ops[head])
            slot_label[(tail, head)] = key
    cycle = _minimal_cycle(set(id_succ), id_succ)
    saturated: list[ChannelId] = []
    witness: list[str] = []
    if cycle:
        witness.append(f"minimal blocking cycle ({len(cycle)} edges):")
        problem = graph.problem
        for i, op in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            a, b = index_of[op], index_of[nxt]
            key = slot_label.get((a, b))
            if key is not None:
                label = (
                    f"channel {_channel_str(key)} slot reuse "
                    f"(capacity {capacities[key]})"
                )
                if key not in saturated:
                    saturated.append(key)
            elif op in problem.deps(nxt):
                label = _edge_label(problem, op, nxt)
            else:
                label = f"stage {stage[a]} program order"
            witness.append(
                f"  {op} @ stage {stage[a]}#{pos[a]} -> {nxt}  [{label}]"
            )
    if saturated:
        channel_note = "; ".join(
            f"channel {_channel_str(key)} saturates at capacity "
            f"{capacities[key]}"
            for key in saturated
        )
    else:  # pragma: no cover - every bounded cycle crosses a slot edge
        channel_note = "no saturated channel identified"
    return Finding(
        "CP001",
        f"bounded-channel deadlock: {len(residual)} op(s) can never run "
        f"under the configured capacities; {channel_note}",
        witness=tuple(witness),
    )


def check_capacities(
    schedule: Schedule,
    capacities: Mapping[Any, int] | None = None,
    cost: CostModel | None = None,
) -> Report:
    """Certify ``schedule`` against a capacity assignment (CP001-CP003).

    With ``capacities=None`` the inferred minimal deadlock-free vector
    is checked (and, by construction, certifies clean).  With a cost
    model the bounded critical path is compared against the unbounded
    one and CP003 warns about any backpressure.
    """
    graph = compiled_graph(schedule)
    tables = _graph_tables(graph)
    channels = tables.channels
    checked: tuple[str, ...] = (
        ("CP001", "CP002", "CP003") if cost is not None else ("CP001", "CP002")
    )
    findings: list[Finding] = []
    caps = (
        dict(_deadlock_caps(graph))
        if capacities is None
        else normalize_capacities(capacities)
    )
    for key in sorted(set(caps) - set(channels)):
        findings.append(
            Finding(
                "CP002",
                f"capacity configured for unknown channel "
                f"{_channel_str(key)}; the schedule never sends on it",
                witness=tuple(
                    f"known channel: {_channel_str(k)}"
                    for k in sorted(channels)
                ),
            )
        )
    for key in sorted(channels):
        msgs = len(channels[key])
        if key not in caps:
            findings.append(
                Finding(
                    "CP002",
                    f"channel {_channel_str(key)} carries {msgs} message(s) "
                    f"but has no configured capacity",
                    stage=key[0],
                )
            )
        elif caps[key] < 1:
            findings.append(
                Finding(
                    "CP002",
                    f"channel {_channel_str(key)} configured with capacity "
                    f"{caps[key]}; a message-carrying channel needs at "
                    f"least 1 slot",
                    stage=key[0],
                    witness=(f"messages: {msgs}",),
                )
            )
    if findings:
        return Report(
            schedule_name=schedule.name,
            findings=findings,
            checked_rules=checked,
        )

    edges = _slot_edges(channels, caps)
    _order, residual = _bounded_order(graph, edges)
    if residual:
        findings.append(_deadlock_witness(graph, residual, edges, caps))
        return Report(
            schedule_name=schedule.name,
            findings=findings,
            checked_rules=checked,
        )

    if cost is not None and channels:
        times = dense_schedule_times(graph, cost)
        unbounded = float(times.end.max()) if times.num_ops else 0.0
        bounded_times = bounded_dense_times(graph, caps, times=times)
        bounded = float(bounded_times.end.max()) if times.num_ops else 0.0
        if bounded > unbounded:
            bp_caps = _backpressure_free_capacities(tables.arrays, times)
            tight = [
                f"channel {_channel_str(key)}: capacity {caps[key]} < "
                f"backpressure-free {bp_caps[key]}"
                for key in sorted(channels)
                if caps[key] < bp_caps[key]
            ]
            findings.append(
                Finding(
                    "CP003",
                    f"channel backpressure: the configured capacities "
                    f"lengthen the critical path by "
                    f"{bounded - unbounded!r}",
                    witness=(
                        f"unbounded makespan: {unbounded!r}",
                        f"bounded makespan:   {bounded!r}",
                        *tight,
                    ),
                )
            )
    return Report(
        schedule_name=schedule.name,
        findings=findings,
        checked_rules=checked,
    )


def certify_capacities(
    schedule: Schedule,
    cost: CostModel,
    capacities: Mapping[Any, int] | None = None,
    *,
    mode: str = "backpressure-free",
) -> CapacityCertificate:
    """Produce a re-checkable certificate for a capacity assignment.

    Defaults to the inferred capacities of ``mode``; an explicit
    ``capacities`` mapping overrides the mode.  Raises
    :class:`ScheduleError` if the assignment deadlocks.
    """
    graph = compiled_graph(schedule)
    times = dense_schedule_times(graph, cost)
    if capacities is None:
        plan = infer_capacities(schedule, cost, times=times)
        caps = plan.capacities(mode)
    else:
        caps = normalize_capacities(capacities)
    unbounded = float(times.end.max()) if times.num_ops else 0.0
    bounded_times = bounded_dense_times(graph, caps, times=times)
    bounded = float(bounded_times.end.max()) if times.num_ops else 0.0
    return CapacityCertificate(
        schedule_name=schedule.name,
        capacities=tuple(
            (key[0], key[1], key[2], caps[key]) for key in sorted(caps)
        ),
        makespan=bounded,
        unbounded_makespan=unbounded,
        backpressure_free=(bounded == unbounded),
    )


def cross_validate_capacities(
    schedule: Schedule,
    cost: CostModel,
    certificate: CapacityCertificate,
) -> Report:
    """Re-validate a capacity certificate end to end (CP001-CP004).

    Re-runs the CP001-CP003 checks at the certified capacities, replays
    the slot-augmented analytic recurrence, and runs the simulator's
    independent bounded-channel heap engine; any bit-level disagreement
    with the certificate files CP004.
    """
    from repro.sim.executor import simulate

    caps = certificate.caps()
    base = check_capacities(schedule, caps, cost)
    findings = list(base.findings)
    if any(f.rule_id == "CP001" for f in findings):
        findings.append(
            Finding(
                "CP004",
                "certificate capacities deadlock: the slot-augmented "
                "graph is cyclic, so the certified makespan is "
                "unsatisfiable",
                witness=(f"certified makespan: {certificate.makespan!r}",),
            )
        )
        return Report(
            schedule_name=schedule.name,
            findings=findings,
            checked_rules=CAPACITY_RULES,
        )

    graph = compiled_graph(schedule)
    times = dense_schedule_times(graph, cost)
    unbounded = float(times.end.max()) if times.num_ops else 0.0
    bounded_times = bounded_dense_times(graph, caps, times=times)
    bounded = float(bounded_times.end.max()) if times.num_ops else 0.0
    if certificate.unbounded_makespan != unbounded:
        findings.append(
            Finding(
                "CP004",
                "certificate unbounded makespan does not reproduce",
                witness=(
                    f"certified:  {certificate.unbounded_makespan!r}",
                    f"recomputed: {unbounded!r}",
                ),
            )
        )
    if certificate.makespan != bounded:
        findings.append(
            Finding(
                "CP004",
                "certificate bounded makespan does not reproduce",
                witness=(
                    f"certified:  {certificate.makespan!r}",
                    f"recomputed: {bounded!r}",
                ),
            )
        )
    if certificate.backpressure_free and bounded != unbounded:
        findings.append(
            Finding(
                "CP004",
                "certificate claims backpressure-free capacities but the "
                "bounded critical path differs from the unbounded one",
                witness=(
                    f"unbounded: {unbounded!r}",
                    f"bounded:   {bounded!r}",
                ),
            )
        )

    sim = simulate(schedule, cost, channel_capacities=caps)
    if sim.makespan != bounded:
        findings.append(
            Finding(
                "CP004",
                "bounded event simulation disagrees with the analytic "
                "slot-augmented makespan",
                witness=(
                    f"analytic:  {bounded!r}",
                    f"simulated: {sim.makespan!r}",
                ),
            )
        )
    else:
        ops = graph.ops
        starts = bounded_times.start.tolist()
        ends = bounded_times.end.tolist()
        for i in range(graph.num_ops):
            record = sim.records[ops[i]]
            if record.start != starts[i] or record.end != ends[i]:
                findings.append(
                    Finding(
                        "CP004",
                        f"bounded event simulation diverges from the "
                        f"analytic slot-augmented times at op {ops[i]}",
                        op=ops[i],
                        stage=int(graph.stage[i]),
                        witness=(
                            f"analytic:  start {starts[i]!r} end {ends[i]!r}",
                            f"simulated: start {record.start!r} "
                            f"end {record.end!r}",
                        ),
                    )
                )
                break  # one witness op is enough
    return Report(
        schedule_name=schedule.name,
        findings=findings,
        checked_rules=CAPACITY_RULES,
    )


# ----------------------------------------------------------------------
# The channel-buffer byte ledger
# ----------------------------------------------------------------------
def ring_bytes_per_stage(
    capacities: Mapping[Any, int],
    num_stages: int,
    slot_bytes: int,
) -> tuple[int, ...]:
    """Shared-memory ring bytes charged per stage.

    A ring's backing segment lives with (and is sized for) its
    *consumer*: the producer copies into a free slot and moves on, the
    consumer owns the buffered payloads until it drains them — the same
    convention as a receive buffer.  ``slot_bytes`` is the full slot
    footprint (header + payload), matching the runtime's allocation.
    """
    per_stage = [0] * num_stages
    for key, slots in normalize_capacities(capacities).items():
        per_stage[key[1]] += slots * slot_bytes
    return tuple(per_stage)
