"""Static per-stage live-memory inference for the numerical substrate.

Mirrors, array for array, the forward state each
:class:`~repro.nn.layers.Component` pins (its ``live_bytes``
accounting): the per-cell context tensors, the decoder's per-microbatch
KV cache growth and its release at slice 0's backward, and the pending
dK/dV buffers later slices leave for earlier ones.  Because a stage's
live state changes only at its own ops and a stage executes its program
strictly in order, the per-stage peak is a static property of the
program — the same argument that powers the schedule verifier's
liveness lint, applied to concrete bytes instead of activation units.

``infer_stage_memory`` therefore predicts exactly the
``peak_live_contexts`` / ``peak_live_bytes`` a
:class:`~repro.pipeline.runtime.PipelineRuntime` run observes; the
property tests assert bit-exact agreement over the E0 grid.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.ir import ComponentSpec, PartitionSpec
from repro.schedules.graph import KIND_B, KIND_F, ScheduleGraph

#: Bytes per element; the substrate computes in float64 / indexes int64.
_ITEM = 8


@dataclass
class StageMemory:
    """Inferred memory profile of one stage.

    ``channel_buffer_bytes`` is the shared-memory ring footprint the
    stage pins as a message consumer under a given capacity plan — see
    :func:`infer_channel_buffers`; it stays zero unless the caller
    stamps it, because ring sizing is a runtime/capacity choice, not a
    property of the program alone.
    """

    stage: int
    peak_live_bytes: int
    peak_live_contexts: int
    channel_buffer_bytes: int = 0


def decoder_ctx_bytes(
    comp: ComponentSpec, batch: int, t: int, sl: int
) -> int:
    """Bytes of one decoder slice context (non-recompute mode).

    Matches ``DecoderLayer._compute``'s saved dict: six ``B×t×h``
    tensors (x, y1, q_rot, merged, mid, y2), two ``B×t×1`` inverse-RMS
    vectors, three ``B×t×ffn`` MLP tensors, the attention probabilities
    ``B×H×t×(sl+1)·t`` (queries of this slice against the whole KV
    prefix), and the RoPE cos/sin tables ``t×(d/2)`` each.
    """
    h, f = comp.hidden, comp.ffn_hidden
    heads, d = comp.num_heads, comp.head_dim
    if comp.recompute:
        return _ITEM * batch * t * h  # layer input only
    elements = (
        6 * batch * t * h
        + 2 * batch * t
        + 3 * batch * t * f
        + batch * heads * t * (sl + 1) * t
        + 2 * t * (d // 2)
    )
    return _ITEM * elements


def kv_entry_bytes(comp: ComponentSpec, batch: int, t: int) -> int:
    """Bytes one slice appends to the KV cache (k_rot + v, kv-head
    layout)."""
    return 2 * _ITEM * batch * comp.num_kv_heads * t * comp.head_dim


def pending_entry_bytes(comp: ComponentSpec, batch: int, t: int) -> int:
    """Bytes of one pending (dK, dV) contribution buffer."""
    return kv_entry_bytes(comp, batch, t)


def embedding_ctx_bytes(batch: int, t: int) -> int:
    """The cached token-id slice (int64)."""
    return _ITEM * batch * t


def loss_head_ctx_bytes(comp: ComponentSpec, batch: int, t: int) -> int:
    """x, y (``B×t×h``), inv (``B×t×1``), dlogits (``B×t×V``)."""
    h, v = comp.hidden, comp.vocab_size
    return _ITEM * (2 * batch * t * h + batch * t + batch * t * v)


@dataclass
class _ComponentState:
    """Mutable abstract state of one live component."""

    spec: ComponentSpec
    ctx: dict[tuple[int, int], int] = field(default_factory=dict)
    kv: dict[int, list[int]] = field(default_factory=dict)
    pending: dict[tuple[int, int], int] = field(default_factory=dict)

    def live_bytes(self) -> int:
        total = sum(self.ctx.values())
        for entries in self.kv.values():
            total += sum(entries)
        total += sum(self.pending.values())
        return total

    def live_contexts(self) -> int:
        return len(self.ctx)

    # ------------------------------------------------------------------
    def forward(self, mb: int, sl: int, batch: int, t: int) -> None:
        spec = self.spec
        if spec.kind == "embedding":
            self.ctx[(mb, sl)] = embedding_ctx_bytes(batch, t)
        elif spec.kind == "loss_head":
            self.ctx[(mb, sl)] = loss_head_ctx_bytes(spec, batch, t)
        else:
            self.ctx[(mb, sl)] = decoder_ctx_bytes(spec, batch, t, sl)
            if spec.recompute:
                self.kv.pop(mb, None)
            else:
                self.kv.setdefault(mb, []).append(
                    kv_entry_bytes(spec, batch, t)
                )

    def backward(self, mb: int, sl: int, batch: int, t: int) -> None:
        spec = self.spec
        del self.ctx[(mb, sl)]
        if spec.kind != "decoder" or spec.recompute:
            return
        self.pending.pop((mb, sl), None)
        for j in range(sl):
            self.pending.setdefault(
                (mb, j), pending_entry_bytes(spec, batch, t)
            )
        if sl == 0:
            self.kv.pop(mb, None)


def infer_channel_buffers(
    graph: ScheduleGraph,
    capacities: Mapping[Any, int],
    slot_payload_bytes: int,
) -> list[int]:
    """Per-stage channel-buffer (ring) bytes under ``capacities``.

    The channel-buffer ledger of the capacity analyzer
    (:mod:`repro.analysis.capacity`): each ring's
    ``slots × (header + payload)`` bytes are charged to the consumer
    stage, mirroring how :class:`~repro.pipeline.parallel_runtime
    .ParallelPipelineRuntime` stamps ``StageStats
    .channel_buffer_bytes``.  ``capacities`` accepts the same keys as
    :func:`repro.analysis.capacity.normalize_capacities`.
    """
    from repro.analysis.capacity import (
        normalize_capacities,
        ring_bytes_per_stage,
    )
    from repro.pipeline.channels import _HEADER_BYTES

    return list(
        ring_bytes_per_stage(
            normalize_capacities(capacities),
            graph.problem.num_stages,
            _HEADER_BYTES + slot_payload_bytes,
        )
    )


def infer_stage_memory(
    partition: PartitionSpec,
    graph: ScheduleGraph,
    batch: int,
    slice_len: int,
) -> list[StageMemory]:
    """Walk every stage's program and return its inferred peaks."""
    problem = graph.problem
    s, chunks = problem.num_slices, problem.num_chunks
    result: list[StageMemory] = []
    for stage, (lo, hi) in enumerate(graph.stage_bounds):
        states = {
            c: [_ComponentState(spec=comp) for comp in partition.chunks[c].components]
            for c in problem.chunks_of_stage(stage)
        }
        peak_bytes = 0
        peak_contexts = 0
        for i in range(lo, hi):
            cell = graph.cell[i]
            mb, rest = divmod(cell, s * chunks)
            sl, c = divmod(rest, chunks)
            if graph.kind[i] == KIND_F:
                for state in states[c]:
                    state.forward(mb, sl, batch, slice_len)
            elif graph.kind[i] == KIND_B:
                for state in reversed(states[c]):
                    state.backward(mb, sl, batch, slice_len)
            live_bytes = sum(
                st.live_bytes() for group in states.values() for st in group
            )
            live_contexts = sum(
                st.live_contexts() for group in states.values() for st in group
            )
            peak_bytes = max(peak_bytes, live_bytes)
            peak_contexts = max(peak_contexts, live_contexts)
        result.append(
            StageMemory(
                stage=stage,
                peak_live_bytes=peak_bytes,
                peak_live_contexts=peak_contexts,
            )
        )
    return result
