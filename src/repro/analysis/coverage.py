"""Pass 2: the gradient-coverage proof (GC rules).

MEPipe's central correctness obligation (Section 5): splitting the
backward into B (activation gradients) and deferred, fine-grained W
GEMMs must not lose, duplicate, or reorder any parameter-gradient
contribution.  This pass proves it statically from the joined
:class:`~repro.analysis.program.ModelProgram`:

* **GC001 / GC002** — for every (micro-batch, slice, chunk) cell, each
  live parameter of the chunk appears in the cell's wgrad task queue
  exactly once.  The expected set comes from the components' parameter
  tables, the actual set from the queues their backwards declare — a
  component whose backward forgets (or double-queues) a task is caught
  before any gradient is computed.
* **GC003** — the runtime splits each cell's queue round-robin into
  ``wgrad_gemms`` groups (``tasks[i::g]``); every non-empty group must
  have its W op scheduled, or the queue cannot drain by iteration end.
* **GC004** — every W op is happens-before-ordered after the B op that
  produces the activation gradients its GEMMs read.

Monolithic-backward methods run the queue inline at B, so only
GC001/GC002 apply to them.
"""

from __future__ import annotations

import repro.analysis.rules  # noqa: F401  (registers the GC rules)
from repro.analysis.program import ModelProgram
from repro.schedules.verify.diagnostics import Finding


def _cell_of(mb: int, sl: int, c: int, s: int, chunks: int) -> int:
    return (mb * s + sl) * chunks + c


def check_coverage(program: ModelProgram) -> list[Finding]:
    """Prove gradient coverage; returns the violations found."""
    graph = program.graph
    problem = graph.problem
    n, s, chunks = problem.num_microbatches, problem.num_slices, problem.num_chunks
    gemms = problem.wgrad_gemms if problem.split_backward else 1
    findings: list[Finding] = []
    seen_missing: set[tuple[int, str]] = set()
    seen_dup: set[tuple[int, str]] = set()
    seen_undrained: set[int] = set()

    for c, chunk in enumerate(program.partition.chunks):
        tasks = program.chunk_tasks[c]
        declared = [t.render() for t in tasks]
        counts: dict[str, int] = {}
        for key in declared:
            counts[key] = counts.get(key, 0) + 1
        expected = [
            f"{comp.name}.{param}"
            for comp in chunk.components
            for param, _shape in comp.param_shapes
        ]

        for mb in range(n):
            for sl in range(s):
                cell = _cell_of(mb, sl, c, s, chunks)
                b_op = program.b_of.get(cell)
                b_id = graph.ops[b_op] if b_op is not None else None

                for key in expected:
                    got = counts.get(key, 0)
                    if got == 0 and (c, key) not in seen_missing:
                        seen_missing.add((c, key))
                        findings.append(
                            Finding(
                                "GC001",
                                f"parameter {key} of chunk {c} receives no "
                                f"weight-gradient contribution in "
                                f"micro-batch {mb} slice {sl}",
                                stage=graph.stage[b_op] if b_op is not None else None,
                                op=b_id,
                                witness=(
                                    f"backward {b_id} queues: "
                                    + (", ".join(declared) or "(nothing)"),
                                    f"live parameters expect: {key}",
                                ),
                            )
                        )
                    elif got > 1 and (c, key) not in seen_dup:
                        seen_dup.add((c, key))
                        findings.append(
                            Finding(
                                "GC002",
                                f"parameter {key} of chunk {c} receives {got} "
                                f"weight-gradient contributions in "
                                f"micro-batch {mb} slice {sl}",
                                stage=graph.stage[b_op] if b_op is not None else None,
                                op=b_id,
                                witness=(
                                    f"backward {b_id} queues {key} "
                                    f"{got} times",
                                ),
                            )
                        )

                if not problem.split_backward:
                    continue

                # Round-robin drain: task at queue position p belongs to
                # W-op gemm p % gemms (PipelineRuntime's tasks[i::g]).
                w_ops = program.w_of.get(cell, {})
                for g in range(gemms):
                    group = [t.render() for t in tasks[g::gemms]]
                    if not group:
                        continue
                    if g in w_ops:
                        continue
                    if c in seen_undrained:
                        continue
                    seen_undrained.add(c)
                    findings.append(
                        Finding(
                            "GC003",
                            f"wgrad queue of micro-batch {mb} slice {sl} "
                            f"chunk {c} never drains: no W op executes gemm "
                            f"group {g}",
                            stage=graph.stage[b_op] if b_op is not None else None,
                            op=b_id,
                            witness=(
                                f"group {g} holds: " + ", ".join(group),
                                f"scheduled W gemm groups for the cell: "
                                f"{sorted(w_ops) or '(none)'}",
                            ),
                        )
                    )

                if b_op is None:
                    continue
                for g, w_op in sorted(w_ops.items()):
                    if program.happens_before(b_op, w_op):
                        continue
                    w_id = graph.ops[w_op]
                    findings.append(
                        Finding(
                            "GC004",
                            f"{w_id} is not ordered after its backward "
                            f"{b_id}: the W GEMMs would read activation "
                            f"gradients that are not yet produced",
                            stage=graph.stage[w_op],
                            op=w_id,
                            witness=(
                                f"write: {b_id} (stage {graph.stage[b_op]}, "
                                f"position {graph.pos[b_op]})",
                                f"read:  {w_id} (stage {graph.stage[w_op]}, "
                                f"position {graph.pos[w_op]})",
                                "no happens-before path orders the read "
                                "after the write",
                            ),
                        )
                    )
    return findings
