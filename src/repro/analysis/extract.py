"""Derive a :class:`~repro.analysis.ir.PartitionSpec` from a model.

Two sources, one abstract form:

* :func:`partition_from_model` reads a live
  :class:`~repro.nn.model.TransformerModel` — the pipeline runtime uses
  this so the analyzer proves properties of the *actual* partitioned
  components it is about to execute;
* :func:`partition_from_spec` builds the same description straight from
  a :class:`~repro.model.spec.ModelSpec` without allocating a single
  array — the planner and the ``check-model`` CLI use this to reject
  configurations whose partition cannot interface-check, long before
  any numerics exist.

Both apply the same contiguous balanced split as
:meth:`TransformerModel.partition`, so the abstract chunks line up
one-to-one with the chunks the runtime executes.

The ``wgrad_params`` orders recorded here must match the order each
component's ``backward`` queues its weight-gradient tasks
(``repro/nn/layers.py``); the gradient-coverage pass joins the
schedule's W ops against these tuples.
"""

from __future__ import annotations

from repro.analysis.ir import ChunkSpec, ComponentSpec, PartitionSpec
from repro.model.spec import ModelSpec
from repro.nn.layers import Component, DecoderLayer, Embedding, LossHead
from repro.nn.model import TransformerModel

#: Order in which ``DecoderLayer.backward`` queues its wgrad tasks.
DECODER_WGRAD_ORDER: tuple[str, ...] = (
    "wq", "wk", "wv", "wo", "wg", "wu", "wd", "g1", "g2",
)

#: Order in which ``LossHead.backward`` queues its wgrad tasks.
LOSS_HEAD_WGRAD_ORDER: tuple[str, ...] = ("wh", "gf")

#: Order in which ``Embedding.backward`` queues its wgrad tasks.
EMBEDDING_WGRAD_ORDER: tuple[str, ...] = ("table",)


def _param_shapes(comp: Component) -> tuple[tuple[str, tuple[int, ...]], ...]:
    return tuple(
        (name, tuple(int(d) for d in array.shape))
        for name, array in comp.params.items()
    )


def component_spec(comp: Component, name: str) -> ComponentSpec:
    """Abstract one live component."""
    if isinstance(comp, Embedding):
        vocab, hidden = comp.params["table"].shape
        return ComponentSpec(
            name=name,
            kind="embedding",
            hidden=int(hidden),
            vocab_size=int(vocab),
            param_shapes=_param_shapes(comp),
            wgrad_params=EMBEDDING_WGRAD_ORDER,
        )
    if isinstance(comp, DecoderLayer):
        return ComponentSpec(
            name=name,
            kind="decoder",
            hidden=comp.hidden,
            num_heads=comp.num_heads,
            num_kv_heads=comp.num_kv_heads,
            ffn_hidden=int(comp.params["wg"].shape[1]),
            recompute=comp.recompute,
            param_shapes=_param_shapes(comp),
            wgrad_params=DECODER_WGRAD_ORDER,
        )
    if isinstance(comp, LossHead):
        hidden, vocab = comp.params["wh"].shape
        return ComponentSpec(
            name=name,
            kind="loss_head",
            hidden=int(hidden),
            vocab_size=int(vocab),
            param_shapes=_param_shapes(comp),
            wgrad_params=LOSS_HEAD_WGRAD_ORDER,
        )
    raise TypeError(
        f"cannot abstract component {name}: unknown type {type(comp).__name__}"
    )


def _component_name(comp: Component, index: int) -> str:
    if isinstance(comp, Embedding):
        return "embedding"
    if isinstance(comp, LossHead):
        return "loss_head"
    return f"decoder[{index - 1}]"


def _chunked(
    components: list[ComponentSpec], num_chunks: int
) -> PartitionSpec:
    total = len(components)
    if num_chunks > total:
        raise ValueError(
            f"cannot cut {total} components into {num_chunks} chunks"
        )
    base, extra = divmod(total, num_chunks)
    chunks: list[ChunkSpec] = []
    start = 0
    for i in range(num_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(
            ChunkSpec(index=i, components=tuple(components[start : start + size]))
        )
        start += size
    return PartitionSpec(chunks=tuple(chunks))


def partition_from_model(
    model: TransformerModel, num_chunks: int
) -> PartitionSpec:
    """Abstract a live model's ``num_chunks``-way partition."""
    specs = [
        component_spec(comp, _component_name(comp, i))
        for i, comp in enumerate(model.components)
    ]
    return _chunked(specs, num_chunks)


def decoder_spec_from_model_spec(spec: ModelSpec, index: int) -> ComponentSpec:
    """The abstract decoder layer a :class:`ModelSpec` describes."""
    h, kv_w = spec.hidden_size, spec.kv_hidden_size
    f = spec.ffn_hidden_size
    return ComponentSpec(
        name=f"decoder[{index}]",
        kind="decoder",
        hidden=h,
        num_heads=spec.num_heads,
        num_kv_heads=spec.kv_heads,
        ffn_hidden=f,
        param_shapes=(
            ("wq", (h, h)), ("wk", (h, kv_w)), ("wv", (h, kv_w)),
            ("wo", (h, h)), ("wg", (h, f)), ("wu", (h, f)), ("wd", (f, h)),
            ("g1", (h,)), ("g2", (h,)),
        ),
        wgrad_params=DECODER_WGRAD_ORDER,
    )


def partition_from_spec(spec: ModelSpec, num_chunks: int) -> PartitionSpec:
    """Abstract the partition :func:`repro.nn.build_model` would yield,
    without building it."""
    h, v = spec.hidden_size, spec.vocab_size
    components = [
        ComponentSpec(
            name="embedding",
            kind="embedding",
            hidden=h,
            vocab_size=v,
            param_shapes=(("table", (v, h)),),
            wgrad_params=EMBEDDING_WGRAD_ORDER,
        )
    ]
    components.extend(
        decoder_spec_from_model_spec(spec, i) for i in range(spec.num_layers)
    )
    components.append(
        ComponentSpec(
            name="loss_head",
            kind="loss_head",
            hidden=h,
            vocab_size=v,
            param_shapes=(("gf", (h,)), ("wh", (h, v))),
            wgrad_params=LOSS_HEAD_WGRAD_ORDER,
        )
    )
    return _chunked(components, num_chunks)
