"""The joined (partition × compiled schedule) program the proof passes walk.

:func:`build_program` joins a :class:`~repro.analysis.ir.PartitionSpec`
with the PR 2 compiled :class:`~repro.schedules.graph.ScheduleGraph`
into a :class:`ModelProgram`:

* the per-chunk **weight-gradient task table** — ``(component, param)``
  pairs in the exact order ``PipelineRuntime`` drains them (components
  reversed within the chunk, each component's queue order as declared
  by its ``wgrad_params``), which the runtime splits round-robin into
  ``wgrad_gemms`` groups (``tasks[i::g]``);
* dense op lookup tables (cell → F/B/W indices);
* the **happens-before edge list**: the graph's CSR dependency edges
  plus each stage's program-order edges.

The structure is deliberately mutable: seeded mutation tests corrupt a
field (drop a task, remove an op, delete a happens-before edge) and
assert the passes report the exact rule and witness.  The clean path
always derives it fresh from the fingerprint-cached graph, so mutation
never leaks into real runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ir import PartitionSpec
from repro.schedules.graph import KIND_B, KIND_F, KIND_W, ScheduleGraph


@dataclass(frozen=True)
class TaskRef:
    """One deferred weight-gradient GEMM: a (component, param) pair."""

    component: str
    param: str

    def render(self) -> str:
        return f"{self.component}.{self.param}"


@dataclass
class ModelProgram:
    """The analyzer's view of one (partition, schedule) pair."""

    graph: ScheduleGraph
    partition: PartitionSpec
    #: Per chunk: the wgrad task queue of one (mb, slice) backward, in
    #: runtime drain order.
    chunk_tasks: list[tuple[TaskRef, ...]]
    #: cell -> dense op index of its F / B op.
    f_of: dict[int, int]
    b_of: dict[int, int]
    #: cell -> {gemm -> dense op index} of its W ops.
    w_of: dict[int, dict[int, int]]
    #: Happens-before edges: dependency + same-stage program order.
    hb_edges: list[tuple[int, int]]
    _closure: list[int] | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def happens_before_closure(self) -> list[int]:
        """``before[i]`` as a bitmask of every op ordered before op ``i``.

        Computed once per program by a Kahn pass over ``hb_edges`` and
        cached; mutation tests that edit ``hb_edges`` must do so before
        the first query.
        """
        if self._closure is not None:
            return self._closure
        n = self.graph.num_ops
        succs: list[list[int]] = [[] for _ in range(n)]
        indeg = [0] * n
        for a, b in self.hb_edges:
            succs[a].append(b)
            indeg[b] += 1
        before = [0] * n
        ready = [i for i in range(n) if indeg[i] == 0]
        done = 0
        while ready:
            nxt: list[int] = []
            for i in ready:
                done += 1
                mask = before[i] | (1 << i)
                for j in succs[i]:
                    before[j] |= mask
                    indeg[j] -= 1
                    if indeg[j] == 0:
                        nxt.append(j)
            ready = nxt
        if done != n:
            raise ValueError("happens-before edges contain a cycle")
        self._closure = before
        return before

    def happens_before(self, a: int, b: int) -> bool:
        """Whether op ``a`` is ordered before op ``b``."""
        return bool((self.happens_before_closure()[b] >> a) & 1)

    def topo_position(self) -> list[int]:
        """A total order extension: ops sorted by closure popcount then
        stage position — stable and consistent with happens-before."""
        before = self.happens_before_closure()
        order = sorted(
            range(self.graph.num_ops),
            key=lambda i: (before[i].bit_count(), self.graph.stage[i],
                           self.graph.pos[i]),
        )
        position = [0] * self.graph.num_ops
        for rank, i in enumerate(order):
            position[i] = rank
        return position


def build_program(
    partition: PartitionSpec, graph: ScheduleGraph
) -> ModelProgram:
    """Join the partition with the compiled schedule graph."""
    chunk_tasks: list[tuple[TaskRef, ...]] = []
    for chunk in partition.chunks:
        tasks: list[TaskRef] = []
        # PipelineRuntime walks the chunk's components in reverse for
        # the backward and extends one flat task list.
        for comp in reversed(chunk.components):
            tasks.extend(TaskRef(comp.name, p) for p in comp.wgrad_params)
        chunk_tasks.append(tuple(tasks))

    f_of: dict[int, int] = {}
    b_of: dict[int, int] = {}
    w_of: dict[int, dict[int, int]] = {}
    for i in range(graph.num_ops):
        cell = graph.cell[i]
        kind = graph.kind[i]
        if kind == KIND_F:
            f_of[cell] = i
        elif kind == KIND_B:
            b_of[cell] = i
        elif kind == KIND_W:
            w_of.setdefault(cell, {})[graph.gemm[i]] = i

    hb_edges: list[tuple[int, int]] = []
    for i in range(graph.num_ops):
        if graph.pos[i] > 0:
            hb_edges.append((i - 1, i))
        for j in graph.preds_of(i):
            hb_edges.append((j, i))

    return ModelProgram(
        graph=graph,
        partition=partition,
        chunk_tasks=chunk_tasks,
        f_of=f_of,
        b_of=b_of,
        w_of=w_of,
        hb_edges=hb_edges,
    )
