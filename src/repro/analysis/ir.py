"""Symbolic tensor IR for the static model analyzer.

The numerical substrate (:mod:`repro.nn`) computes on concrete NumPy
arrays; this module describes the *types* of those arrays without
touching numerics.  A :class:`SymTensor` carries a tuple of dimensions
— concrete integers for model widths (``hidden``, ``ffn_hidden``,
``vocab``) and named symbols for the data-dependent extents ``batch``
and ``slice_len`` — plus a dtype tag.  Two tensors are interface
compatible exactly when their dim tuples and dtypes are equal; symbolic
dims compare by name, so ``batch × slice_len × 512`` matches itself on
any actual batch size but never matches ``batch × slice_len × 256``.

A :class:`PartitionSpec` is the abstract form of a chunk-partitioned
:class:`~repro.nn.model.TransformerModel`: per chunk, the ordered
:class:`ComponentSpec` descriptions the three analysis passes interpret
(:mod:`repro.analysis.shapes`, :mod:`repro.analysis.coverage`,
:mod:`repro.analysis.memory`).  All IR nodes are frozen and hashable —
the analyzer's verdict cache keys on ``hash(partition)`` alongside the
schedule-graph fingerprint.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

#: A tensor dimension: a concrete width or a named symbolic extent.
Dim = int | str

#: The symbolic per-sample batch extent.
BATCH: str = "batch"

#: The symbolic tokens-per-slice extent (``seq_length / num_slices``).
SLICE_LEN: str = "slice_len"

#: Bytes per element of each dtype tag (the substrate computes in
#: float64 and indexes with int64).
ITEMSIZE: dict[str, int] = {"i64": 8, "f64": 8}


@dataclass(frozen=True)
class SymTensor:
    """A symbolic tensor type: dimensions plus a dtype tag.

    ``dims == ()`` with dtype ``"f64"`` is the scalar loss produced by
    the pipeline's last component.
    """

    dims: tuple[Dim, ...]
    dtype: str = "f64"

    def __post_init__(self) -> None:
        if self.dtype not in ITEMSIZE:
            raise ValueError(f"unknown dtype tag {self.dtype!r}")

    @property
    def rank(self) -> int:
        return len(self.dims)

    def render(self) -> str:
        """Human-readable form, e.g. ``batch×slice_len×512:f64``."""
        if not self.dims:
            return f"scalar:{self.dtype}"
        return "×".join(str(d) for d in self.dims) + f":{self.dtype}"

    def nbytes(self, bindings: Mapping[str, int]) -> int:
        """Concrete byte size once every symbolic dim is bound."""
        total = ITEMSIZE[self.dtype]
        for d in self.dims:
            total *= bindings[d] if isinstance(d, str) else d
        return total


#: Token-id input of the pipeline's first component.
TOKENS = SymTensor((BATCH, SLICE_LEN), "i64")

#: The scalar loss the pipeline's last component produces.
LOSS = SymTensor((), "f64")


def hidden_states(hidden: int) -> SymTensor:
    """The ``batch × slice_len × hidden`` activation payload."""
    return SymTensor((BATCH, SLICE_LEN, hidden), "f64")


@dataclass(frozen=True)
class ComponentSpec:
    """Abstract description of one :class:`~repro.nn.layers.Component`.

    Attributes:
        name: Position-qualified identifier, e.g. ``"decoder[3]"``.
        kind: ``"embedding"``, ``"decoder"``, or ``"loss_head"``.
        hidden: Model width the component consumes/produces.
        num_heads: Decoder attention heads (0 otherwise).
        num_kv_heads: Decoder key/value heads (GQA; 0 otherwise).
        ffn_hidden: Decoder MLP inner width (0 otherwise).
        vocab_size: Embedding/head vocabulary (0 otherwise).
        recompute: Decoder full-recomputation mode (keeps only the
            layer input after forward).
        param_shapes: ``(name, shape)`` pairs of the live parameters,
            checked against the architecture attributes.
        wgrad_params: Parameter names in the exact order the
            component's backward queues their weight-gradient tasks —
            the join key of the gradient-coverage proof.
    """

    name: str
    kind: str
    hidden: int
    num_heads: int = 0
    num_kv_heads: int = 0
    ffn_hidden: int = 0
    vocab_size: int = 0
    recompute: bool = False
    param_shapes: tuple[tuple[str, tuple[int, ...]], ...] = ()
    wgrad_params: tuple[str, ...] = ()

    @property
    def head_dim(self) -> int:
        """Per-head width; 0 for non-decoder components."""
        if self.kind != "decoder" or self.num_heads == 0:
            return 0
        return self.hidden // self.num_heads

    def param_shape(self, param: str) -> tuple[int, ...] | None:
        for name, shape in self.param_shapes:
            if name == param:
                return shape
        return None


@dataclass(frozen=True)
class ChunkSpec:
    """One contiguous model chunk of the pipeline partition."""

    index: int
    components: tuple[ComponentSpec, ...]


@dataclass(frozen=True)
class PartitionSpec:
    """A complete chunk-partitioned model, ready for abstract
    interpretation."""

    chunks: tuple[ChunkSpec, ...]

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def components(self) -> list[ComponentSpec]:
        """All components in pipeline order."""
        return [comp for chunk in self.chunks for comp in chunk.components]
