"""Analyzer entry points: orchestration, caching, enforcement.

The model analyzer is the second static-analysis tier.  The schedule
verifier (:mod:`repro.schedules.verify`) proves properties of a
schedule *alone*; this package proves properties of a (model partition,
schedule) *pair* by abstract interpretation — no array is allocated, no
numeric is computed:

* :func:`analyze_partition` runs the three passes (shape/interface,
  gradient coverage, happens-before hazards) over an abstract
  :class:`~repro.analysis.ir.PartitionSpec` and returns a
  :class:`~repro.schedules.verify.diagnostics.Report`;
* :func:`analyze_model` / :func:`analyze_spec` derive the partition
  from a live :class:`~repro.nn.model.TransformerModel` or a bare
  :class:`~repro.model.spec.ModelSpec` first;
* :func:`ensure_model_verified` is the runtime's entry gate: it raises
  :class:`ModelAnalysisError` with the rendered report on any
  ERROR-severity finding, and caches the clean verdict on the schedule
  object keyed by (schedule fingerprint, partition) so re-entering the
  runtime with the same pair is nearly free.

Passes 2 and 3 walk the compiled :class:`ScheduleGraph`, so the
schedule must be structurally sound; :func:`analyze_partition` enforces
the verifier's safety tier first and lets its
:class:`~repro.schedules.base.ScheduleError` propagate — diagnosing a
malformed schedule is the verifier's job, not this package's.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.coverage import check_coverage
from repro.analysis.extract import partition_from_model, partition_from_spec
from repro.analysis.hazards import check_hazards
from repro.analysis.ir import PartitionSpec
from repro.analysis.program import ModelProgram, build_program
from repro.analysis.rules import COVERAGE_RULES, HAZARD_RULES, MODEL_RULES, SHAPE_RULES
from repro.analysis.shapes import check_shapes
from repro.model.spec import ModelSpec
from repro.nn.model import TransformerModel
from repro.schedules.base import PipelineProblem, Schedule, ScheduleError
from repro.schedules.graph import compiled_graph, fingerprint
from repro.schedules.verify.core import ensure_verified
from repro.schedules.verify.diagnostics import Finding, Report


class ModelAnalysisError(ScheduleError):
    """A (model, schedule) pair failed static analysis.

    Subclasses :class:`ScheduleError` so callers guarding runtime entry
    against bad schedules also catch bad pairings.
    """


def analyze_partition(
    partition: PartitionSpec,
    schedule: Schedule,
    rules: Iterable[str] | None = None,
) -> Report:
    """Run all three proof passes over an abstract partition.

    Args:
        partition: The abstract partitioned model.
        schedule: The schedule it will execute under.  Must pass the
            verifier's safety tier (enforced here; ``ScheduleError``
            propagates otherwise).
        rules: Rule ids to check (default: :data:`MODEL_RULES`).
            Passes whose rules are all excluded are skipped entirely.
    """
    selected = tuple(rules) if rules is not None else MODEL_RULES
    wanted = set(selected)
    report = Report(
        schedule_name=schedule.name, checked_rules=selected
    )

    findings: list[Finding] = []
    shape_findings, _io = check_shapes(partition, schedule.problem)
    findings.extend(shape_findings)

    # The graph passes join partition chunks with schedule cells; with
    # a chunk-count mismatch the join is undefined and the SH004
    # finding already explains why.
    joinable = partition.num_chunks == schedule.problem.num_chunks and all(
        chunk.components for chunk in partition.chunks
    )
    if joinable and wanted & set(COVERAGE_RULES + HAZARD_RULES):
        ensure_verified(schedule, context="model analysis")
        program = build_program(partition, compiled_graph(schedule))
        if wanted & set(COVERAGE_RULES):
            findings.extend(check_coverage(program))
        if wanted & set(HAZARD_RULES):
            findings.extend(check_hazards(program))

    report.findings = [f for f in findings if f.rule_id in wanted]
    return report


def analyze_model(
    model: TransformerModel,
    schedule: Schedule,
    rules: Iterable[str] | None = None,
) -> Report:
    """Analyze a live model against ``schedule``."""
    partition = partition_from_model(model, schedule.problem.num_chunks)
    return analyze_partition(partition, schedule, rules=rules)


def analyze_spec(
    spec: ModelSpec,
    schedule: Schedule,
    rules: Iterable[str] | None = None,
) -> Report:
    """Analyze the partition ``spec`` describes, without building it."""
    partition = partition_from_spec(spec, schedule.problem.num_chunks)
    return analyze_partition(partition, schedule, rules=rules)


def interface_report(
    spec: ModelSpec, problem: PipelineProblem, name: str = "partition"
) -> Report:
    """Shape/interface-check the partition ``spec`` implies for
    ``problem`` — the planner's cheap rejection gate (no schedule, no
    graph, no arrays).

    Raises :class:`ValueError` when the model cannot even be cut into
    ``problem.num_chunks`` chunks.
    """
    partition = partition_from_spec(spec, problem.num_chunks)
    findings, _io = check_shapes(partition, problem)
    return Report(
        schedule_name=name,
        findings=list(findings),
        checked_rules=SHAPE_RULES,
    )


def model_program(
    model: TransformerModel, schedule: Schedule
) -> ModelProgram:
    """The joined program of a live model and a schedule (test hook)."""
    partition = partition_from_model(model, schedule.problem.num_chunks)
    return build_program(partition, compiled_graph(schedule))


def ensure_model_verified(
    model: TransformerModel, schedule: Schedule, context: str = ""
) -> None:
    """Assert the pair analyzer-clean; raise :class:`ModelAnalysisError`
    with the rendered report on failure.

    The clean verdict is cached on the schedule object keyed by
    (content fingerprint, abstract partition), so runtime entry after a
    construction-time analysis is nearly free — and a schedule reused
    with a *different* model is re-proved.
    """
    partition = partition_from_model(model, schedule.problem.num_chunks)
    token = (fingerprint(schedule), partition)
    if getattr(schedule, "_analysis_token", None) == token:
        return
    report = analyze_partition(partition, schedule)
    if not report.ok:
        prefix = f"{context}: " if context else ""
        raise ModelAnalysisError(prefix + report.render_text())
    schedule._analysis_token = token  # type: ignore[attr-defined]
