"""Command-line interface: ``mepipe <command>`` / ``python -m repro``.

Commands:

* ``experiment <id>`` — regenerate one paper artifact (``list`` to see
  ids) and print it.
* ``schedule <method>`` — generate a schedule and print its ASCII
  timeline (Figures 2-7 style).
* ``verify <method>`` — statically verify a generated schedule
  (placement, coverage, deadlock witnesses, channel order, activation
  liveness, Table 3 closed-form agreement); exits non-zero on errors.
* ``check-model <method|grid>`` — statically analyze the (model
  partition, schedule) pair (shape/interface inference, gradient
  coverage, happens-before hazards); exits non-zero on errors.
* ``plan <model> <gbs>`` — grid-search every method and print the
  winners.
"""

from __future__ import annotations

import argparse
import json as _json
import sys
from collections.abc import Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.schedules.verify import Report


# ----------------------------------------------------------------------
# Shared report plumbing: ``verify`` and ``check-model`` take the same
# ``--rules`` selector and ``--format text|json`` switch (``--json`` is
# the historical shorthand) and render their Reports identically.
# ----------------------------------------------------------------------
def _add_report_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids (default: all)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report output format")
    parser.add_argument("--json", action="store_true",
                        help="shorthand for --format json")


def _selected_rules(
    args: argparse.Namespace, known: Sequence[str]
) -> tuple[list[str] | None, str | None]:
    """Parse ``--rules`` against a rule catalogue.

    Returns ``(rules, error)``; ``rules`` is ``None`` when the flag was
    not given (meaning: all of ``known``).
    """
    if not args.rules:
        return None, None
    rules = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in known]
    if unknown:
        return None, f"unknown rule(s) {unknown}; known: {', '.join(known)}"
    return rules, None


def _emit_reports(reports: list[Report], args: argparse.Namespace) -> int:
    """Render one or more reports per ``--format``; exit status 1 when
    any carries an error-severity finding."""
    as_json = args.json or args.format == "json"
    if as_json:
        if len(reports) == 1:
            print(reports[0].render_json())
        else:
            print(_json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        print("\n".join(r.render_text() for r in reports))
    return 0 if all(r.ok for r in reports) else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import REGISTRY
    from repro.experiments.common import configure_planner

    configure_planner(jobs=args.jobs, use_cache=not args.no_cache)
    if args.id == "list":
        for key in REGISTRY:
            print(key)
        return 0
    if args.id not in REGISTRY:
        print(f"unknown experiment {args.id!r}; try: {', '.join(REGISTRY)}")
        return 2
    print(REGISTRY[args.id]().render())
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.schedules import build_problem, build_schedule
    from repro.sim import UniformCost, simulate
    from repro.viz import render_memory_profile, render_timeline, write_chrome_trace

    problem = build_problem(
        args.method,
        args.stages,
        args.microbatches,
        num_slices=args.slices,
        virtual_size=args.virtual,
        wgrad_gemms=args.wgrad_gemms,
    )
    schedule = build_schedule(
        args.method, problem, forwards_before_first_backward=args.forwards
    )
    result = simulate(schedule, UniformCost(problem, tw=args.tw))
    print(render_timeline(result, width=args.width))
    if args.memory:
        print()
        print(render_memory_profile(result, stage=0, width=args.width))
    if args.trace:
        path = write_chrome_trace(result, args.trace)
        print(f"\nchrome trace written to {path} (open in ui.perfetto.dev)")
    return 0


def _build_for_cli(args: argparse.Namespace, method: str, **overrides):
    """Build (problem, schedule) from CLI shape flags.

    Returns ``(schedule, None)`` on success or ``(None, exit_code)``
    after printing the diagnosis — shared by ``verify`` and
    ``check-model``.
    """
    from repro.schedules import ScheduleError, build_problem, build_schedule

    kwargs = {
        "num_slices": args.slices,
        "virtual_size": args.virtual,
        "wgrad_gemms": args.wgrad_gemms,
    }
    kwargs.update(overrides)
    try:
        problem = build_problem(
            method, args.stages, args.microbatches, **kwargs
        )
        schedule = build_schedule(
            method, problem, forwards_before_first_backward=args.forwards
        )
    except KeyError as exc:  # unknown method name
        print(exc.args[0] if exc.args else exc)
        return None, 2
    except ValueError as exc:  # out-of-range shape (p/n/s/v/g)
        print(exc)
        return None, 2
    except ScheduleError as exc:
        # Invalid shape for the method, or the generator itself produced
        # a schedule the safety tier rejects — either way the message is
        # the diagnosis.
        print(exc)
        return None, 1
    return schedule, None


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.schedules.verify import ALL_RULES, verify_schedule

    rules, error = _selected_rules(args, ALL_RULES)
    if error:
        print(error)
        return 2
    schedule, status = _build_for_cli(args, args.method)
    if schedule is None:
        assert status is not None
        return status
    report = verify_schedule(schedule, method=args.method, rules=rules)
    return _emit_reports([report], args)


def _cmd_check_model(args: argparse.Namespace) -> int:
    from repro.analysis import MODEL_RULES, analyze_spec
    from repro.model import get_model
    from repro.model.spec import tiny_spec

    rules, error = _selected_rules(args, MODEL_RULES)
    if error:
        print(error)
        return 2
    if args.model == "tiny":
        # Enough decoder layers that embedding + head balance against
        # them under any p×v chunking the flags (or the grid's v=2
        # entries) request — the Section 7.1 layout.
        v = max(args.virtual, 2)
        spec = tiny_spec(num_layers=args.stages * v - 2)
    else:
        spec = get_model(args.model)

    if args.method == "grid":
        # The E0 acceptance grid: every scheduling method in its
        # reference configuration.
        from repro.experiments.e0 import METHOD_SETUPS

        setups = [
            (method, dict(kwargs)) for method, kwargs in METHOD_SETUPS
        ]
    else:
        setups = [(args.method, {})]

    reports = []
    for method, overrides in setups:
        schedule, status = _build_for_cli(args, method, **overrides)
        if schedule is None:
            assert status is not None
            return status
        reports.append(analyze_spec(spec, schedule, rules=rules))
    return _emit_reports(reports, args)


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.hardware import get_cluster
    from repro.model import get_model
    from repro.planner import SweepCache, search_method

    spec = get_model(args.model)
    cluster = get_cluster(args.cluster)
    cache = None if args.no_cache else SweepCache()
    for method in args.methods.split(","):
        result = search_method(
            method, spec, cluster, args.gbs, jobs=args.jobs, cache=cache
        )
        if result.best is None:
            print(f"{method:9s} OOM in every configuration")
        else:
            print(f"{method:9s} {result.best.describe()}")
        if args.show_skipped:
            for skip in result.skipped:
                print(f"  skipped {skip.config.describe()}: {skip.reason}")
    if cache is not None and (cache.hits or cache.misses):
        print(f"sweep cache: {cache.hits} hits, {cache.misses} misses")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="mepipe", description="MEPipe reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    p_exp.add_argument("id", help="experiment id, or 'list'")
    p_exp.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the grid searches")
    p_exp.add_argument("--no-cache", action="store_true",
                       help="do not reuse/persist sweep results on disk")
    p_exp.set_defaults(func=_cmd_experiment)

    p_sched = sub.add_parser("schedule", help="render a schedule timeline")
    p_sched.add_argument("method")
    p_sched.add_argument("--stages", type=int, default=4)
    p_sched.add_argument("--microbatches", type=int, default=4)
    p_sched.add_argument("--slices", type=int, default=1)
    p_sched.add_argument("--virtual", type=int, default=1)
    p_sched.add_argument("--forwards", type=int, default=None,
                         help="f variant (SVPP/MEPipe)")
    p_sched.add_argument("--wgrad-gemms", type=int, default=1)
    p_sched.add_argument("--tw", type=float, default=1.0,
                         help="weight-gradient time (split methods)")
    p_sched.add_argument("--width", type=int, default=120)
    p_sched.add_argument("--memory", action="store_true",
                         help="also render stage 0's activation profile")
    p_sched.add_argument("--trace", metavar="FILE", default=None,
                         help="write a Chrome/Perfetto trace JSON")
    p_sched.set_defaults(func=_cmd_schedule)

    p_ver = sub.add_parser(
        "verify", help="statically verify a generated schedule"
    )
    p_ver.add_argument("method")
    p_ver.add_argument("--stages", "--p", type=int, default=4,
                       help="pipeline stages p")
    p_ver.add_argument("--microbatches", "--n", type=int, default=4,
                       help="micro-batches n")
    p_ver.add_argument("--slices", "--s", type=int, default=1,
                       help="slices per sample s (SPP)")
    p_ver.add_argument("--virtual", "--v", type=int, default=1,
                       help="chunks per stage v (VPP)")
    p_ver.add_argument("--forwards", "--f", type=int, default=None,
                       help="f variant (SVPP/MEPipe)")
    p_ver.add_argument("--wgrad-gemms", type=int, default=1)
    _add_report_flags(p_ver)
    p_ver.set_defaults(func=_cmd_verify)

    p_chk = sub.add_parser(
        "check-model",
        help="statically analyze the (model partition, schedule) pair",
    )
    p_chk.add_argument(
        "method", help="scheduling method, or 'grid' for the E0 acceptance grid"
    )
    p_chk.add_argument("--model", default="tiny",
                       help="model spec: tiny / 7b / 13b / 34b")
    p_chk.add_argument("--stages", "--p", type=int, default=4,
                       help="pipeline stages p")
    p_chk.add_argument("--microbatches", "--n", type=int, default=4,
                       help="micro-batches n")
    p_chk.add_argument("--slices", "--s", type=int, default=1,
                       help="slices per sample s (SPP)")
    p_chk.add_argument("--virtual", "--v", type=int, default=1,
                       help="chunks per stage v (VPP)")
    p_chk.add_argument("--forwards", "--f", type=int, default=None,
                       help="f variant (SVPP/MEPipe)")
    p_chk.add_argument("--wgrad-gemms", type=int, default=1)
    _add_report_flags(p_chk)
    p_chk.set_defaults(func=_cmd_check_model)

    p_plan = sub.add_parser("plan", help="grid-search parallel strategies")
    p_plan.add_argument("model", help="7b / 13b / 34b")
    p_plan.add_argument("gbs", type=int)
    p_plan.add_argument("--cluster", default="rtx4090-64")
    p_plan.add_argument("--methods", default="dapple,vpp,zb,zbv,mepipe")
    p_plan.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the grid search")
    p_plan.add_argument("--no-cache", action="store_true",
                        help="do not reuse/persist sweep results on disk")
    p_plan.add_argument("--show-skipped", action="store_true",
                        help="print every pruned/rejected config with reason")
    p_plan.set_defaults(func=_cmd_plan)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
