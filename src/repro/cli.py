"""Command-line interface: ``mepipe <command>`` / ``python -m repro``.

Commands:

* ``experiment <id>`` — regenerate one paper artifact (``list`` to see
  ids) and print it.
* ``schedule <method>`` — generate a schedule and print its ASCII
  timeline (Figures 2-7 style).
* ``verify <method>`` — statically verify a generated schedule
  (placement, coverage, deadlock witnesses, channel order, activation
  liveness, Table 3 closed-form agreement); exits non-zero on errors.
  ``--capacity`` additionally certifies bounded-channel deadlock
  freedom at the inferred minimal ring sizes (CP rules).
* ``check-model <method|grid>`` — statically analyze the (model
  partition, schedule) pair (shape/interface inference, gradient
  coverage, happens-before hazards); exits non-zero on errors.
  ``--capacity`` folds the CP rule family into each report.
* ``capacity <method>`` — infer per-channel ring capacities (minimal
  deadlock-free and backpressure-free), certify them, and print the
  plan + CP diagnostics; ``--check`` cross-validates the certificate
  against the bounded-channel simulator (CP004).
* ``plan <model> <gbs>`` — grid-search every method and print the
  winners (routed through the analytic first pass).
* ``evaluate <method>`` — analytically evaluate a generated schedule
  (certified closed forms, ``docs/evaluation.md``); ``--check``
  cross-validates against the event simulator (EV rules).
* ``trace <method>`` — run one iteration on the simulator and/or the
  NumPy runtime and export a combined Chrome/Perfetto trace via the
  telemetry bus (``repro.obs``).
* ``report <method>`` — run both substrates and print their uniform
  :class:`~repro.obs.metrics.IterationMetrics` side by side.
* ``serve`` — run the planner-as-a-service HTTP endpoint
  (:mod:`repro.service`, ``docs/service.md``).
* ``client <kind>`` — talk to a running service with the same typed
  request payloads.

Subcommands are declared in the :data:`SUBCOMMANDS` registry — one
:class:`Subcommand` entry per command bundling its flag setup and
handler — so adding a command is one entry, not parser surgery.

The request-shaped commands (``verify``, ``check-model``, ``plan``,
``evaluate``, ``capacity``) build a typed request from
:mod:`repro.api.types` and route through :func:`repro.api.execute` —
the same code path the HTTP service runs — so the transports cannot
drift.
"""

from __future__ import annotations

import argparse
import json as _json
import sys
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.api import ShapeSpec, VerifyResponse
    from repro.model.spec import ModelSpec
    from repro.pipeline.runtime import RunResult
    from repro.schedules.base import PipelineProblem, Schedule
    from repro.sim.executor import SimResult


# ----------------------------------------------------------------------
# Declarative subcommand registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Subcommand:
    """One CLI command: name, help line, flag setup, and handler."""

    name: str
    help: str
    configure: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace], int]


# ----------------------------------------------------------------------
# Shared flag groups
# ----------------------------------------------------------------------
def _shape_flags(
    parser: argparse.ArgumentParser, *, aliases: bool = True
) -> None:
    """The (p, n, s, v, f, g) problem-shape flags every command shares."""
    alias = (lambda long, short: (long, short)) if aliases else (
        lambda long, short: (long,)
    )
    parser.add_argument(*alias("--stages", "--p"), type=int, default=4,
                        help="pipeline stages p")
    parser.add_argument(*alias("--microbatches", "--n"), type=int, default=4,
                        help="micro-batches n")
    parser.add_argument(*alias("--slices", "--s"), type=int, default=1,
                        help="slices per sample s (SPP)")
    parser.add_argument(*alias("--virtual", "--v"), type=int, default=1,
                        help="chunks per stage v (VPP)")
    parser.add_argument(*alias("--forwards", "--f"), type=int, default=None,
                        help="f variant (SVPP/MEPipe)")
    parser.add_argument("--wgrad-gemms", type=int, default=1)


def _report_flags(parser: argparse.ArgumentParser) -> None:
    """``--rules`` selector and ``--format text|json`` (``--json``
    is the historical shorthand), shared by verify and check-model."""
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids (default: all)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report output format")
    parser.add_argument("--json", action="store_true",
                        help="shorthand for --format json")


def _sweep_flags(parser: argparse.ArgumentParser, jobs_default: int | None) -> None:
    parser.add_argument("--jobs", type=int, default=jobs_default,
                        help="worker processes for the grid searches")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not reuse/persist sweep results on disk")
    parser.add_argument("--no-gen-cache", action="store_true",
                        help="disable in-process schedule-generation "
                             "memoization (repro.schedules.gencache)")
    parser.add_argument("--pool", choices=("persistent", "per-sweep"),
                        default=None,
                        help="planner worker-pool mode: reuse one warm "
                             "process pool across sweeps (default) or "
                             "spin up a fresh pool per sweep "
                             "(REPRO_PLANNER_POOL)")


def _shape_from_args(args: argparse.Namespace) -> "ShapeSpec":
    """The typed :class:`repro.api.ShapeSpec` for the shared shape flags."""
    from repro.api import ShapeSpec

    return ShapeSpec(
        stages=args.stages,
        microbatches=args.microbatches,
        slices=args.slices,
        virtual=args.virtual,
        forwards=args.forwards,
        wgrad_gemms=args.wgrad_gemms,
    )


def _rules_from_args(args: argparse.Namespace) -> tuple[str, ...] | None:
    """The raw ``--rules`` selector (validated by the API handlers)."""
    if not args.rules:
        return None
    return tuple(r for r in args.rules.split(",") if r.strip())


def _emit_report_response(
    response: "VerifyResponse", args: argparse.Namespace
) -> int:
    """Render a report-carrying response per ``--format``; exit status 1
    when any report carries an error-severity finding."""
    as_json = args.json or args.format == "json"
    if as_json:
        if len(response.reports) == 1:
            print(_json.dumps(response.reports[0], indent=2))
        else:
            print(_json.dumps(list(response.reports), indent=2))
    else:
        print(response.text)
    return 0 if response.ok else 1


def _build_for_cli(args: argparse.Namespace, method: str, **overrides):
    """Build (problem, schedule) from CLI shape flags.

    Returns ``(schedule, None)`` on success or ``(None, exit_code)``
    after printing the diagnosis — shared by every schedule-shaped
    command.
    """
    from repro.schedules import ScheduleError, build_problem, build_schedule

    kwargs = {
        "num_slices": args.slices,
        "virtual_size": args.virtual,
        "wgrad_gemms": args.wgrad_gemms,
    }
    kwargs.update(overrides)
    try:
        problem = build_problem(
            method, args.stages, args.microbatches, **kwargs
        )
        schedule = build_schedule(
            method, problem, forwards_before_first_backward=args.forwards
        )
    except KeyError as exc:  # unknown method name
        print(exc.args[0] if exc.args else exc)
        return None, 2
    except ValueError as exc:  # out-of-range shape (p/n/s/v/g)
        print(exc)
        return None, 2
    except ScheduleError as exc:
        # Invalid shape for the method, or the generator itself produced
        # a schedule the safety tier rejects — either way the message is
        # the diagnosis.
        print(exc)
        return None, 1
    return schedule, None


def _tiny_spec_for(problem: "PipelineProblem") -> "ModelSpec":
    """A miniature model spec executable under ``problem``.

    Enough decoder layers that embedding + head balance against them
    under the problem's chunking (the Section 7.1 layout), with the
    sequence divisible into the problem's slices.
    """
    from repro.model.spec import tiny_spec

    seq = 32
    if seq % problem.num_slices:
        seq = problem.num_slices * 8
    return tiny_spec(
        num_layers=2 * problem.num_chunks - 2, seq_length=seq
    )


def _run_both_substrates(
    args: argparse.Namespace,
    schedule: "Schedule",
    *,
    seed: int = 11,
    executor: str = "serial",
) -> "tuple[SimResult, RunResult]":
    """One iteration of ``schedule`` on the simulator and the runtime.

    ``executor`` selects the numerical substrate: ``"serial"`` for the
    single-process golden :class:`~repro.pipeline.PipelineRuntime`,
    ``"parallel"`` for the multi-process
    :class:`~repro.pipeline.ParallelPipelineRuntime` (one worker per
    stage; identical numerics, measured wall-clock overlap).

    The simulated result is stamped with the byte sizes of the
    runtime's actual float64 tensors, so the two substrates report the
    same communication volume (message counts always agree — they are
    derived from the same cross-stage boundary edges).
    """
    from repro.data import token_batches
    from repro.model.memory import sample_activation_bytes
    from repro.nn import build_model
    from repro.pipeline import ParallelPipelineRuntime, PipelineRuntime
    from repro.sim import UniformCost, simulate

    problem = schedule.problem
    spec = _tiny_spec_for(problem)
    batch = 2
    sim_result = simulate(schedule, UniformCost(problem, tw=args.tw))
    float64 = 8
    sim_result.comm_bytes_per_message = float(
        batch * (spec.seq_length // problem.num_slices)
        * spec.hidden_size * float64
    )
    sim_result.activation_bytes_per_unit = float(
        sample_activation_bytes(spec) * batch
    )
    tokens, targets = token_batches(
        spec.vocab_size, problem.num_microbatches, batch, spec.seq_length,
        seed=5,
    )
    model = build_model(spec, seed=seed)
    if executor == "parallel":
        run_result = ParallelPipelineRuntime(model, tokens, targets).run(schedule)
    else:
        run_result = PipelineRuntime(model, tokens, targets).run(schedule)
    return sim_result, run_result


# ----------------------------------------------------------------------
# Command handlers
# ----------------------------------------------------------------------
def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import REGISTRY
    from repro.experiments.common import configure_planner

    configure_planner(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        use_gen_cache=not args.no_gen_cache,
        pool=args.pool,
    )
    if args.id == "list":
        for key in REGISTRY:
            print(key)
        return 0
    if args.id not in REGISTRY:
        print(f"unknown experiment {args.id!r}; try: {', '.join(REGISTRY)}")
        return 2
    print(REGISTRY[args.id]().render())
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.obs.chrome import write_sim_trace
    from repro.sim import UniformCost, simulate
    from repro.viz import render_memory_profile, render_timeline

    schedule, status = _build_for_cli(args, args.method)
    if schedule is None:
        assert status is not None
        return status
    result = simulate(schedule, UniformCost(schedule.problem, tw=args.tw))
    print(render_timeline(result, width=args.width))
    if args.memory:
        print()
        print(render_memory_profile(result, stage=0, width=args.width))
    if args.trace:
        path = write_sim_trace(result, args.trace)
        print(f"\nchrome trace written to {path} (open in ui.perfetto.dev)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.api import RequestError, VerifyRequest, execute

    request = VerifyRequest(
        method=args.method,
        shape=_shape_from_args(args),
        rules=_rules_from_args(args),
        capacity=args.capacity,
    )
    try:
        response = execute(request)
    except RequestError as exc:
        print(exc)
        return exc.exit_status
    return _emit_report_response(response, args)


def _cmd_check_model(args: argparse.Namespace) -> int:
    from repro.api import CheckModelRequest, RequestError, execute

    request = CheckModelRequest(
        method=args.method,
        model=args.model,
        shape=_shape_from_args(args),
        rules=_rules_from_args(args),
        capacity=args.capacity,
    )
    try:
        response = execute(request)
    except RequestError as exc:
        print(exc)
        return exc.exit_status
    return _emit_report_response(response, args)


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.api import PlanRequest, RequestError, execute
    from repro.schedules import gencache

    if args.no_gen_cache:
        gencache.set_enabled(False)
    if args.pool is not None:
        from repro.planner import pool

        pool.set_mode(args.pool)
    request = PlanRequest(
        model=args.model,
        global_batch_size=args.gbs,
        cluster=args.cluster,
        methods=tuple(args.methods.split(",")),
        jobs=args.jobs,
        use_cache=not args.no_cache,
    )
    try:
        response = execute(request)
    except RequestError as exc:
        print(exc)
        return exc.exit_status
    for entry in response.methods:
        method = entry["method"]
        if entry["best"] is None:
            print(f"{method:9s} OOM in every configuration")
        else:
            print(f"{method:9s} {entry['describe']}")
        if args.show_skipped:
            for skip in entry["skipped"]:
                print(f"  skipped {skip['config']}: {skip['reason']}")
    cache = response.cache
    if cache is not None and (cache["hits"] or cache["misses"]):
        print(f"sweep cache: {cache['hits']} hits, {cache['misses']} misses")
    gen = response.gen_cache
    if gen["hits"] or gen["misses"]:
        print(
            f"gen cache: {gen['hits']} hits, "
            f"{gen['misses']} misses, {gen['size']} resident"
        )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.api import EvaluateRequest, RequestError, execute

    request = EvaluateRequest(
        method=args.method,
        shape=_shape_from_args(args),
        tw=args.tw,
        check=args.check,
    )
    try:
        response = execute(request)
    except RequestError as exc:
        print(exc)
        return exc.exit_status
    as_json = args.json or args.format == "json"
    if args.check:
        if as_json:
            print(_json.dumps(response.report, indent=2))
        else:
            print(response.text)
        return 0 if response.ok else 1
    if as_json:
        payload = dict(response.evaluation)
        if response.bounds is not None:
            payload["build_free_bounds"] = response.bounds
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(response.text)
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    from repro.api import CapacityRequest, RequestError, execute

    request = CapacityRequest(
        method=args.method,
        shape=_shape_from_args(args),
        tw=args.tw,
        mode=args.mode,
        rules=_rules_from_args(args),
        check=args.check,
    )
    try:
        response = execute(request)
    except RequestError as exc:
        print(exc)
        return exc.exit_status
    if args.json or args.format == "json":
        payload = dict(response.plan)
        payload["mode"] = response.mode
        payload["report"] = response.report
        if response.certificate is not None:
            payload["certificate"] = response.certificate
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(response.text)
    return 0 if response.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.record import record_iteration
    from repro.obs.sinks import ChromeTraceSink

    schedule, status = _build_for_cli(args, args.method)
    if schedule is None:
        assert status is not None
        return status
    executor = "parallel" if args.substrate == "parallel" else "serial"
    sim_result, run_result = _run_both_substrates(args, schedule, executor=executor)
    sink = ChromeTraceSink(
        args.out,
        other_data={
            "schedule": schedule.name,
            "sim_bubble_ratio": round(sim_result.bubble_ratio, 6),
            "runtime_bubble_ratio": round(run_result.bubble_ratio, 6),
        },
    )
    with sink:
        if args.substrate in ("both", "sim", "parallel"):
            record_iteration(sim_result, sink, pid=0, process="simulated")
        if args.substrate in ("both", "runtime"):
            record_iteration(run_result, sink, pid=1, process="executed")
        if args.substrate == "parallel":
            # The measured multi-process iteration renders alongside the
            # simulated one — same viewer schema, its own process group.
            record_iteration(run_result, sink, pid=2, process="parallel")
    print(f"chrome trace written to {args.out} (open in ui.perfetto.dev)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    schedule, status = _build_for_cli(args, args.method)
    if schedule is None:
        assert status is not None
        return status
    sim_result, run_result = _run_both_substrates(args, schedule)
    sim_metrics = sim_result.metrics()
    run_metrics = run_result.metrics()
    if args.json or args.format == "json":
        print(_json.dumps(
            {"sim": sim_metrics.to_dict(), "runtime": run_metrics.to_dict()},
            indent=2, sort_keys=True,
        ))
    else:
        print(sim_metrics.render_text())
        print()
        print(run_metrics.render_text())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import PlannerService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        request_timeout_s=args.timeout,
        dedup=not args.no_dedup,
        use_cache=not args.no_cache,
    )
    if args.tenant_quota is not None:
        config.tenant_quota = args.tenant_quota

    async def _serve() -> None:
        service = PlannerService(config)
        await service.start()
        print(
            f"planner service listening on {service.address} "
            f"(schema v{_schema_version()})",
            flush=True,
        )
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _schema_version() -> int:
    from repro.api import SCHEMA_VERSION

    return SCHEMA_VERSION


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.api import RequestError, request_from_dict
    from repro.api.types import REQUESTS
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(
        args.address, tenant=args.tenant, timeout_s=args.timeout
    )
    try:
        if args.what == "health":
            print(_json.dumps(client.health(), indent=2, sort_keys=True))
            return 0
        if args.what == "job":
            if not args.arg:
                print("usage: client job <job-id>")
                return 2
            data = client.wait(args.arg) if args.wait else client.job(args.arg)
            print(_json.dumps(data, indent=2, sort_keys=True))
            return 0
        if args.what == "events":
            if not args.arg:
                print("usage: client events <job-id>")
                return 2
            for name, payload in client.events(args.arg):
                print(f"{name}: {_json.dumps(payload, sort_keys=True)}")
            return 0
        if args.what not in REQUESTS:
            print(
                f"unknown request kind {args.what!r}; known: "
                f"{', '.join(sorted(REQUESTS))}, job, events, health"
            )
            return 2
        body: dict = _json.loads(args.body) if args.body else {}
        body["kind"] = args.what
        request = request_from_dict(body)
        if args.mode == "async":
            print(_json.dumps(client.submit(request), indent=2,
                              sort_keys=True))
            return 0
        response = client.request(request)
        print(_json.dumps(response.to_dict(), indent=2, sort_keys=True))
        return 0 if response.ok else 1
    except RequestError as exc:
        print(exc)
        return exc.exit_status
    except ServiceError as exc:
        print(exc)
        return 1
    except OSError as exc:
        print(f"cannot reach {args.address}: {exc}")
        return 1


# ----------------------------------------------------------------------
# Per-command flag setup
# ----------------------------------------------------------------------
def _configure_experiment(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("id", help="experiment id, or 'list'")
    _sweep_flags(parser, jobs_default=None)


def _configure_schedule(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("method")
    _shape_flags(parser)
    parser.add_argument("--tw", type=float, default=1.0,
                        help="weight-gradient time (split methods)")
    parser.add_argument("--width", type=int, default=120)
    parser.add_argument("--memory", action="store_true",
                        help="also render stage 0's activation profile")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome/Perfetto trace JSON")


def _configure_verify(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("method")
    _shape_flags(parser)
    _report_flags(parser)
    parser.add_argument("--capacity", action="store_true",
                        help="also certify bounded-channel deadlock freedom "
                             "at the inferred minimal ring sizes (CP rules)")


def _configure_check_model(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "method", help="scheduling method, or 'grid' for the E0 acceptance grid"
    )
    parser.add_argument("--model", default="tiny",
                        help="model spec: tiny / 7b / 13b / 34b")
    _shape_flags(parser)
    _report_flags(parser)
    parser.add_argument("--capacity", action="store_true",
                        help="fold the bounded-channel CP rule family into "
                             "each report")


def _configure_capacity(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("method")
    _shape_flags(parser)
    _report_flags(parser)
    parser.add_argument("--tw", type=float, default=1.0,
                        help="weight-gradient time (split methods)")
    parser.add_argument("--mode",
                        choices=("deadlock-free", "backpressure-free", "full"),
                        default="backpressure-free",
                        help="which inferred capacity vector to certify")
    parser.add_argument("--check", action="store_true",
                        help="cross-validate the certificate against the "
                             "bounded-channel event simulator (CP004)")


def _configure_plan(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("model", help="7b / 13b / 34b")
    parser.add_argument("gbs", type=int)
    parser.add_argument("--cluster", default="rtx4090-64")
    parser.add_argument("--methods", default="dapple,vpp,zb,zbv,mepipe")
    _sweep_flags(parser, jobs_default=1)
    parser.add_argument("--show-skipped", action="store_true",
                        help="print every pruned/rejected config with reason")


def _configure_evaluate(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("method")
    _shape_flags(parser)
    parser.add_argument("--tw", type=float, default=1.0,
                        help="weight-gradient time (split methods)")
    parser.add_argument("--check", action="store_true",
                        help="cross-validate the evaluation against the "
                             "event simulator (EV rules)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format")
    parser.add_argument("--json", action="store_true",
                        help="shorthand for --format json")


def _configure_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("method")
    _shape_flags(parser)
    parser.add_argument("--tw", type=float, default=1.0,
                        help="weight-gradient time (split methods)")
    parser.add_argument("--out", metavar="FILE", default="trace.json",
                        help="output trace path")
    parser.add_argument("--substrate",
                        choices=("both", "sim", "runtime", "parallel"),
                        default="both",
                        help="which substrate(s) to record")


def _configure_report(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("method")
    _shape_flags(parser)
    parser.add_argument("--tw", type=float, default=1.0,
                        help="weight-gradient time (split methods)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="metrics output format")
    parser.add_argument("--json", action="store_true",
                        help="shorthand for --format json")


def _configure_serve(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8731,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes per planner sweep")
    parser.add_argument("--timeout", type=float, default=None,
                        help="default request deadline in seconds "
                             "(default: REPRO_REQUEST_TIMEOUT, then "
                             "REPRO_CHANNEL_TIMEOUT, then 60)")
    parser.add_argument("--tenant-quota", type=int, default=None,
                        help="max concurrently active jobs per tenant")
    parser.add_argument("--no-dedup", action="store_true",
                        help="do not share identical in-flight requests")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not reuse/persist sweep results on disk")


def _configure_client(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "what",
        help="request kind (plan, verify, check-model, evaluate, "
             "capacity, simulate) or job / events / health",
    )
    parser.add_argument("arg", nargs="?", default=None,
                        help="job id for job/events")
    parser.add_argument("--address", default="http://127.0.0.1:8731")
    parser.add_argument("--body", default=None,
                        help="JSON request payload (kind is implied)")
    parser.add_argument("--mode", choices=("sync", "async"), default="sync",
                        help="async submits and prints the job descriptor")
    parser.add_argument("--tenant", default=None,
                        help="value for the X-Repro-Tenant header")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-request deadline in seconds")
    parser.add_argument("--wait", action="store_true",
                        help="with 'job': poll until the job finishes")


#: Every CLI command, declaratively.  ``build_parser`` materializes the
#: argparse tree from this table.
SUBCOMMANDS: tuple[Subcommand, ...] = (
    Subcommand("experiment", "regenerate a paper artifact",
               _configure_experiment, _cmd_experiment),
    Subcommand("schedule", "render a schedule timeline",
               _configure_schedule, _cmd_schedule),
    Subcommand("verify", "statically verify a generated schedule",
               _configure_verify, _cmd_verify),
    Subcommand("check-model",
               "statically analyze the (model partition, schedule) pair",
               _configure_check_model, _cmd_check_model),
    Subcommand("plan", "grid-search parallel strategies",
               _configure_plan, _cmd_plan),
    Subcommand("evaluate",
               "analytically evaluate a schedule (certified closed forms)",
               _configure_evaluate, _cmd_evaluate),
    Subcommand("capacity",
               "infer and certify bounded-channel ring capacities (CP rules)",
               _configure_capacity, _cmd_capacity),
    Subcommand("trace",
               "export a combined sim + runtime Chrome/Perfetto trace",
               _configure_trace, _cmd_trace),
    Subcommand("report",
               "print uniform iteration metrics from both substrates",
               _configure_report, _cmd_report),
    Subcommand("serve",
               "run the planner-as-a-service HTTP endpoint (docs/service.md)",
               _configure_serve, _cmd_serve),
    Subcommand("client",
               "talk to a running planner service",
               _configure_client, _cmd_client),
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="mepipe", description="MEPipe reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for command in SUBCOMMANDS:
        sub_parser = sub.add_parser(command.name, help=command.help)
        command.configure(sub_parser)
        sub_parser.set_defaults(func=command.run)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
